//! Cross-crate integration tests: the end-to-end assignment loop —
//! gain-based policies must buy more quality per answer than uninformed
//! ones, and the runner must be reproducible.

use tcrowd::baselines::{LoopingPolicy, RandomPolicy};
use tcrowd::core::{InherentGainPolicy, StructureAwarePolicy, TCrowd};
use tcrowd::prelude::*;
use tcrowd::sim::InferenceBackend;
use tcrowd::tabular::RowFamiliarity;

fn world(seed: u64) -> (Dataset, WorkerPool) {
    let d = generate_dataset(
        &GeneratorConfig {
            rows: 40,
            columns: 5,
            categorical_ratio: 0.6,
            num_workers: 30,
            answers_per_task: 1,
            row_familiarity: Some(RowFamiliarity::default()),
            ..Default::default()
        },
        seed,
    );
    let pool = WorkerPool::new(
        &d.schema,
        &d.truth,
        WorkerPoolConfig { num_workers: 30, ..Default::default() },
        seed * 17 + 1,
    );
    (d, pool)
}

fn run_policy(
    seed: u64,
    budget: f64,
    make: impl FnOnce() -> Box<dyn tcrowd::core::AssignmentPolicy>,
) -> tcrowd::sim::RunResult {
    let (d, mut pool) = world(seed);
    let _ = d;
    let runner = Runner::new(ExperimentConfig {
        budget_avg_answers: budget,
        checkpoint_step: 0.5,
        ..Default::default()
    });
    let mut policy = make();
    let backend = InferenceBackend::TCrowd(TCrowd::default_full());
    runner.run("run", &mut pool, policy.as_mut(), &backend)
}

#[test]
fn gain_policy_at_least_matches_random_at_equal_budget() {
    let mut gain_err = 0.0;
    let mut rand_err = 0.0;
    for seed in 0..3 {
        let g = run_policy(seed, 3.0, || Box::new(StructureAwarePolicy::default()));
        let r = run_policy(seed, 3.0, || Box::new(RandomPolicy::seeded(seed)));
        gain_err += g.final_report.error_rate.unwrap();
        rand_err += r.final_report.error_rate.unwrap();
    }
    assert!(
        gain_err <= rand_err + 0.02 * 3.0,
        "structure-aware {} vs random {}",
        gain_err / 3.0,
        rand_err / 3.0
    );
}

#[test]
fn inherent_gain_runs_and_improves_over_budget() {
    let result = run_policy(1, 4.0, || Box::new(InherentGainPolicy::default()));
    let first = result.points.first().unwrap();
    let last = result.points.last().unwrap();
    assert!(last.avg_answers > first.avg_answers);
    assert!(
        last.error_rate.unwrap() <= first.error_rate.unwrap() + 0.05,
        "error should not degrade: {} -> {}",
        first.error_rate.unwrap(),
        last.error_rate.unwrap()
    );
}

#[test]
fn runner_is_deterministic_given_seeds() {
    let a = run_policy(5, 2.5, || Box::new(LoopingPolicy::default()));
    let b = run_policy(5, 2.5, || Box::new(LoopingPolicy::default()));
    assert_eq!(a.total_answers, b.total_answers);
    assert_eq!(a.points.len(), b.points.len());
    for (pa, pb) in a.points.iter().zip(&b.points) {
        assert_eq!(pa, pb);
    }
}

#[test]
fn workers_never_answer_the_same_cell_twice() {
    let (d, mut pool) = world(8);
    let runner = Runner::new(ExperimentConfig { budget_avg_answers: 3.0, ..Default::default() });
    let mut policy = RandomPolicy::seeded(8);
    let backend = InferenceBackend::TCrowd(TCrowd::default_full());
    let result = runner.run("dup-check", &mut pool, &mut policy, &backend);
    // Re-derive the invariant from the run length: with 30 workers and 200
    // cells at budget 3.0 there is room, so the run must have completed.
    assert!(result.total_answers as f64 >= 3.0 * (d.rows() * d.cols()) as f64);
}

#[test]
fn redundancy_cap_is_respected_end_to_end() {
    let (_, mut pool) = world(9);
    let runner = Runner::new(ExperimentConfig {
        budget_avg_answers: 5.0,
        max_answers_per_cell: Some(3),
        ..Default::default()
    });
    let mut policy = RandomPolicy::seeded(9);
    let backend = InferenceBackend::TCrowd(TCrowd::default_full());
    let result = runner.run("capped", &mut pool, &mut policy, &backend);
    // 40×5 cells × cap 3 = 600 plus the seed round (cells can exceed the cap
    // only through the seed phase, which answers each cell once).
    assert!(result.total_answers <= 600 + 200);
}
