//! Integration tests over the full Table 7 method roster: every method must
//! produce schema-valid full tables on every dataset and beat random
//! guessing on its own datatype.

use tcrowd::prelude::*;
use tcrowd::tabular::real_sim;
use tcrowd_bench::table7_methods;

#[test]
fn all_methods_produce_valid_tables_on_all_datasets() {
    for d in [real_sim::celebrity(2), real_sim::restaurant(2), real_sim::emotion(2)] {
        for m in table7_methods() {
            let est = m.estimate(&d.schema, &d.answers);
            assert_eq!(est.len(), d.rows(), "{} on {}", m.name(), d.schema.name);
            for (i, row) in est.iter().enumerate() {
                assert_eq!(row.len(), d.cols());
                for (j, v) in row.iter().enumerate() {
                    assert!(
                        d.schema.column_type(j).accepts(v),
                        "{} produced invalid value at ({i},{j}) on {}",
                        m.name(),
                        d.schema.name
                    );
                }
            }
        }
    }
}

#[test]
fn every_method_beats_random_guessing_on_celebrity() {
    let d = real_sim::celebrity(3);
    // Random-guess baselines: expected error = 1 - 1/|L| per categorical
    // column; for MNAD, predicting the column mean gives NAD ≈ 1.
    let guess_error: f64 = {
        let cats = d.schema.categorical_columns();
        let per_col: Vec<f64> = cats
            .iter()
            .map(|&j| 1.0 - 1.0 / d.schema.column_type(j).cardinality().unwrap() as f64)
            .collect();
        per_col.iter().sum::<f64>() / per_col.len() as f64
    };
    // Single-datatype methods are only scored on their own datatype (their
    // off-type cells are fallback placeholders — Table 7 leaves those blank).
    let cat_only = ["Majority Voting", "D&S", "GLAD", "ZenCrowd", "TC-onlyCate", "Minimax-Entropy"];
    let cont_only = ["Median", "GTM", "TC-onlyCont"];
    for m in table7_methods() {
        let est = m.estimate(&d.schema, &d.answers);
        let rep = evaluate(&d.schema, &d.truth, &est);
        if let Some(er) = rep.error_rate {
            if !cont_only.contains(&m.name()) {
                assert!(
                    er < guess_error * 0.8,
                    "{}: error rate {er} not clearly better than guessing ({guess_error})",
                    m.name()
                );
            }
        }
        if let Some(mnad) = rep.mnad {
            if !cat_only.contains(&m.name()) {
                assert!(mnad < 0.95, "{}: MNAD {mnad} not better than the column mean", m.name());
            }
        }
    }
}

#[test]
fn methods_degrade_monotonically_with_noise_on_error_rate() {
    // A sanity check on the Fig. 10 pipeline: heavy noise must not *improve*
    // any method's categorical accuracy.
    use tcrowd::tabular::noise::add_noise;
    let clean = real_sim::celebrity(4);
    let noisy = add_noise(&clean, 0.4, 9);
    for m in table7_methods() {
        let e_clean =
            evaluate(&clean.schema, &clean.truth, &m.estimate(&clean.schema, &clean.answers));
        let e_noisy =
            evaluate(&noisy.schema, &noisy.truth, &m.estimate(&noisy.schema, &noisy.answers));
        if let (Some(c), Some(n)) = (e_clean.error_rate, e_noisy.error_rate) {
            assert!(n + 0.02 >= c, "{}: noise reduced error rate {c} -> {n}?!", m.name());
        }
    }
}
