//! Integration tests for the adoption-path features: TSV interchange I/O and
//! streaming inference, exercised together through the facade crate.

use tcrowd::core::{OnlineTCrowd, TCrowd};
use tcrowd::prelude::*;
use tcrowd::tabular::io;

fn workdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("tcrowd_root_io_tests")
        .join(format!("{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn io_roundtrip_preserves_inference_results() {
    let d = generate_dataset(
        &GeneratorConfig {
            rows: 20,
            columns: 5,
            num_workers: 12,
            answers_per_task: 4,
            ..Default::default()
        },
        77,
    );
    let dir = workdir("roundtrip");
    io::write_schema(&d.schema, dir.join("s.tsv")).unwrap();
    io::write_answers(&d.schema, &d.answers, dir.join("a.tsv")).unwrap();

    let schema = io::read_schema(dir.join("s.tsv")).unwrap();
    let answers = io::read_answers(&schema, d.rows(), dir.join("a.tsv")).unwrap();
    assert_eq!(schema, d.schema);
    assert_eq!(answers.all(), d.answers.all());

    // Identical input must give identical inference output.
    let direct = TCrowd::default_full().infer(&d.schema, &d.answers);
    let roundtripped = TCrowd::default_full().infer(&schema, &answers);
    assert_eq!(direct.estimates(), roundtripped.estimates());
    assert_eq!(direct.iterations, roundtripped.iterations);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn streaming_pipeline_from_files() {
    // Read answers from disk, stream them into OnlineTCrowd one at a time,
    // and verify the final state equals the batch fit.
    let d = generate_dataset(
        &GeneratorConfig {
            rows: 15,
            columns: 4,
            num_workers: 10,
            answers_per_task: 3,
            ..Default::default()
        },
        78,
    );
    let dir = workdir("stream");
    io::write_schema(&d.schema, dir.join("s.tsv")).unwrap();
    io::write_answers(&d.schema, &d.answers, dir.join("a.tsv")).unwrap();
    let schema = io::read_schema(dir.join("s.tsv")).unwrap();
    let answers = io::read_answers(&schema, d.rows(), dir.join("a.tsv")).unwrap();

    let mut online = OnlineTCrowd::empty(TCrowd::default_full(), schema.clone(), d.rows());
    for &a in answers.all() {
        online.add_answer(a);
    }
    online.refit();
    let batch = TCrowd::default_full().infer(&schema, &answers);
    assert_eq!(online.estimates(), batch.estimates());

    // Streamed estimates must score identically.
    let stream_rep = evaluate(&schema, &d.truth, &online.estimates());
    let batch_rep = evaluate(&schema, &d.truth, &batch.estimates());
    assert_eq!(stream_rep.error_rate, batch_rep.error_rate);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn entity_group_worlds_still_infer_well() {
    // The §7 extension: category-level familiarity. T-Crowd has no explicit
    // group model, but its row difficulties and unified quality must still
    // produce usable estimates on such data.
    let d = generate_dataset(
        &GeneratorConfig {
            rows: 60,
            columns: 4,
            num_workers: 20,
            answers_per_task: 5,
            entity_groups: Some(tcrowd::tabular::EntityGroups::default()),
            ..Default::default()
        },
        79,
    );
    let r = TCrowd::default_full().infer(&d.schema, &d.answers);
    assert!(r.converged);
    let rep = evaluate(&d.schema, &d.truth, &r.estimates());
    assert!(rep.error_rate.unwrap() < 0.3, "error {}", rep.error_rate.unwrap());
}
