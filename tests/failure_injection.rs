//! Failure-injection integration tests: adversarial crowds, degenerate
//! domains and missing data must degrade the system gracefully, never panic
//! it or produce malformed output.

use tcrowd::baselines::{MajorityVoting, TruthMethod};
use tcrowd::core::TCrowd;
use tcrowd::prelude::*;
use tcrowd::tabular::generator::WorkerQualityConfig;
use tcrowd::tabular::{Answer, Column, ColumnType};

/// A crowd of pure spammers: every worker has enormous variance.
fn spammer_dataset(seed: u64) -> Dataset {
    generate_dataset(
        &GeneratorConfig {
            rows: 25,
            columns: 4,
            categorical_ratio: 0.5,
            num_workers: 15,
            answers_per_task: 4,
            quality: WorkerQualityConfig {
                median_phi: 400.0,
                sigma_ln_phi: 0.1,
                spammer_fraction: 1.0,
                spammer_factor: 2.0,
            },
            ..Default::default()
        },
        seed,
    )
}

#[test]
fn spammer_only_crowd_does_not_panic_and_stays_bounded() {
    let d = spammer_dataset(1);
    let r = TCrowd::default_full().infer(&d.schema, &d.answers);
    let report = evaluate(&d.schema, &d.truth, &r.estimates());
    // Error rate can be terrible but must be a valid rate; MNAD finite.
    let er = report.error_rate.unwrap();
    assert!((0.0..=1.0).contains(&er), "error rate {er} out of range");
    assert!(report.mnad.unwrap().is_finite());
    // Every fitted quality must stay a probability.
    for w in &r.workers {
        let q = r.quality_of(*w).unwrap();
        assert!((0.0..=1.0).contains(&q), "quality {q} out of range");
    }
}

#[test]
fn model_separates_good_workers_from_spammers() {
    // A mixed crowd: the model must fit lower variance (higher quality) to
    // the good majority than to the spammer tail.
    let d = generate_dataset(
        &GeneratorConfig {
            rows: 40,
            columns: 5,
            num_workers: 20,
            answers_per_task: 5,
            quality: WorkerQualityConfig {
                median_phi: 0.3,
                sigma_ln_phi: 0.3,
                spammer_fraction: 0.25,
                spammer_factor: 100.0,
            },
            ..Default::default()
        },
        3,
    );
    let r = TCrowd::default_full().infer(&d.schema, &d.answers);
    let mut phis: Vec<f64> = r.workers.iter().filter_map(|w| r.phi_of(*w)).collect();
    phis.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // A clear gap between the best quartile and the worst quartile.
    let q1 = phis[phis.len() / 4];
    let q4 = phis[3 * phis.len() / 4];
    assert!(
        q4 / q1 > 3.0,
        "expected a spread between good ({q1:.3}) and spammer ({q4:.3}) variances"
    );
}

#[test]
fn colluding_wrong_majority_is_a_known_failure_mode() {
    // Five workers copy the same wrong label on a contested cell while two
    // honest workers answer correctly elsewhere-consistent labels. Majority
    // voting must fail; T-Crowd may fail too (no oracle), but both must
    // produce *valid* labels from the domain.
    let schema =
        Schema::new("t", "k", vec![Column::new("c", ColumnType::categorical_with_cardinality(4))]);
    let mut log = AnswerLog::new(6, 1);
    // Rows 0..5: honest consensus so quality is learnable.
    for i in 0..5u32 {
        for w in 0..2u32 {
            log.push(Answer {
                worker: WorkerId(w),
                cell: CellId::new(i, 0),
                value: Value::Categorical(i % 4),
            });
        }
        for w in 2..7u32 {
            log.push(Answer {
                worker: WorkerId(w),
                cell: CellId::new(i, 0),
                value: Value::Categorical(i % 4),
            });
        }
    }
    // Contested row 5: colluders all vote 3, honest workers vote 1.
    for w in 2..7u32 {
        log.push(Answer {
            worker: WorkerId(w),
            cell: CellId::new(5, 0),
            value: Value::Categorical(3),
        });
    }
    for w in 0..2u32 {
        log.push(Answer {
            worker: WorkerId(w),
            cell: CellId::new(5, 0),
            value: Value::Categorical(1),
        });
    }
    let mv = MajorityVoting.estimate(&schema, &log);
    assert_eq!(mv[5][0], Value::Categorical(3), "MV follows the colluding majority");
    let tc = TCrowd::default_full().infer(&schema, &log).estimates();
    match tc[5][0] {
        Value::Categorical(l) => assert!(l < 4),
        _ => panic!("type mismatch"),
    }
}

#[test]
fn systematically_biased_continuous_worker_gets_discounted() {
    // Worker 9 answers exactly truth + large offset everywhere; good workers
    // answer near the truth. The biased worker must end up with a larger
    // fitted variance than the median good worker.
    let mut d = generate_dataset(
        &GeneratorConfig {
            rows: 30,
            columns: 4,
            categorical_ratio: 0.0,
            num_workers: 8,
            answers_per_task: 4,
            ..Default::default()
        },
        4,
    );
    let biased = WorkerId(900);
    for i in 0..30u32 {
        for j in 0..4u32 {
            let t = d.truth[i as usize][j as usize].expect_continuous();
            d.answers.push(Answer {
                worker: biased,
                cell: CellId::new(i, j),
                value: Value::Continuous(t + 400.0),
            });
        }
    }
    let r = TCrowd::default_full().infer(&d.schema, &d.answers);
    let phi_biased = r.phi_of(biased).unwrap();
    assert!(
        phi_biased > 4.0 * r.median_phi(),
        "biased worker variance {phi_biased} should dwarf the median {}",
        r.median_phi()
    );
}

#[test]
fn rows_with_no_answers_still_get_estimates() {
    let d = generate_dataset(
        &GeneratorConfig {
            rows: 10,
            columns: 3,
            num_workers: 6,
            answers_per_task: 3,
            ..Default::default()
        },
        7,
    );
    // Rebuild a log that skips rows 3 and 7 entirely.
    let mut sparse = AnswerLog::new(10, 3);
    for a in d.answers.all() {
        if a.cell.row != 3 && a.cell.row != 7 {
            sparse.push(*a);
        }
    }
    let est = TCrowd::default_full().infer(&d.schema, &sparse).estimates();
    assert_eq!(est.len(), 10);
    for (i, row) in est.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            assert!(
                d.schema.column_type(j).accepts(v),
                "cell ({i},{j}) has a type-invalid estimate"
            );
            if let Value::Continuous(x) = v {
                assert!(x.is_finite());
            }
        }
    }
}

#[test]
fn single_worker_single_answer_everywhere() {
    // The sparsest possible log: one worker, one answer per cell.
    let d = generate_dataset(
        &GeneratorConfig {
            rows: 8,
            columns: 3,
            num_workers: 1,
            answers_per_task: 1,
            ..Default::default()
        },
        9,
    );
    let r = TCrowd::default_full().infer(&d.schema, &d.answers);
    let report = evaluate(&d.schema, &d.truth, &r.estimates());
    assert!(report.error_rate.unwrap() <= 1.0);
    assert!(report.mnad.unwrap().is_finite());
}

#[test]
fn one_label_column_is_trivially_exact() {
    let schema = Schema::new(
        "t",
        "k",
        vec![
            Column::new("only", ColumnType::categorical_with_cardinality(1)),
            Column::new("x", ColumnType::Continuous { min: 0.0, max: 10.0 }),
        ],
    );
    let mut log = AnswerLog::new(3, 2);
    for i in 0..3u32 {
        log.push(Answer {
            worker: WorkerId(0),
            cell: CellId::new(i, 0),
            value: Value::Categorical(0),
        });
        log.push(Answer {
            worker: WorkerId(0),
            cell: CellId::new(i, 1),
            value: Value::Continuous(5.0),
        });
    }
    let est = TCrowd::default_full().infer(&schema, &log).estimates();
    for row in &est {
        assert_eq!(row[0], Value::Categorical(0));
    }
}

#[test]
fn extreme_difficulty_table_stays_finite() {
    let d = generate_dataset(
        &GeneratorConfig {
            rows: 15,
            columns: 4,
            avg_difficulty: 50.0,
            num_workers: 10,
            answers_per_task: 4,
            ..Default::default()
        },
        13,
    );
    let r = TCrowd::default_full().infer(&d.schema, &d.answers);
    for i in 0..15u32 {
        for j in 0..4u32 {
            let est = r.estimate(CellId::new(i, j));
            if let Value::Continuous(x) = est {
                assert!(x.is_finite(), "cell ({i},{j}) diverged");
            }
        }
    }
}
