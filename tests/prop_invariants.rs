//! Property-based tests over the whole stack: invariants that must hold for
//! *any* table shape, worker population, or answer pattern the generator can
//! produce.

use proptest::prelude::*;
use tcrowd::core::entity::EntityModelOptions;
use tcrowd::core::{
    EntityModel, InherentGainPolicy, RowGrouping, StructureAwarePolicy, TCrowd, TruthDist,
};
use tcrowd::prelude::*;
use tcrowd::sim::{StoppingRule, TerminationState};
use tcrowd::tabular::generator::WorkerQualityConfig;
use tcrowd::tabular::noise::add_noise;

/// A compact strategy over generator configurations (kept small so each
/// proptest case stays fast).
fn config_strategy() -> impl Strategy<Value = (GeneratorConfig, u64)> {
    (
        2usize..10,   // rows
        1usize..5,    // columns
        0.0f64..=1.0, // categorical ratio
        1usize..4,    // answers per task
        4usize..10,   // workers
        0.3f64..3.0,  // avg difficulty
        any::<u64>(), // seed
    )
        .prop_map(|(rows, columns, ratio, ans, workers, diff, seed)| {
            (
                GeneratorConfig {
                    rows,
                    columns,
                    categorical_ratio: ratio,
                    answers_per_task: ans,
                    num_workers: workers,
                    avg_difficulty: diff,
                    quality: WorkerQualityConfig {
                        median_phi: 0.2,
                        sigma_ln_phi: 0.8,
                        spammer_fraction: 0.1,
                        spammer_factor: 10.0,
                    },
                    ..Default::default()
                },
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn em_objective_is_monotone_and_estimates_valid((cfg, seed) in config_strategy()) {
        let d = generate_dataset(&cfg, seed);
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        // ELBO trace is non-decreasing.
        for w in r.objective_trace.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-6 * (1.0 + w[0].abs()),
                "ELBO decreased: {} -> {}", w[0], w[1]);
        }
        // Posterior probabilities are normalised; variances positive.
        for i in 0..d.rows() as u32 {
            for j in 0..d.cols() as u32 {
                match r.truth_z(CellId::new(i, j)) {
                    TruthDist::Categorical(p) => {
                        let total: f64 = p.iter().sum();
                        prop_assert!((total - 1.0).abs() < 1e-9);
                        prop_assert!(p.iter().all(|x| *x >= 0.0));
                    }
                    TruthDist::Continuous(n) => prop_assert!(n.var > 0.0),
                }
            }
        }
        // Estimates match the schema.
        for (i, row) in r.estimates().iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                prop_assert!(d.schema.column_type(j).accepts(v), "({i},{j})");
            }
        }
        // Worker qualities are probabilities; difficulties positive.
        for w in &r.workers {
            let q = r.quality_of(*w).unwrap();
            prop_assert!(q > 0.0 && q < 1.0);
        }
        prop_assert!(r.alpha.iter().all(|a| *a > 0.0));
        prop_assert!(r.beta.iter().all(|b| *b > 0.0));
    }

    #[test]
    fn generator_is_deterministic_and_shape_correct((cfg, seed) in config_strategy()) {
        let a = generate_dataset(&cfg, seed);
        let b = generate_dataset(&cfg, seed);
        prop_assert_eq!(a.truth.clone(), b.truth.clone());
        prop_assert_eq!(a.answers.all(), b.answers.all());
        prop_assert_eq!(a.answers.len(), cfg.rows * cfg.columns * cfg.answers_per_task);
        prop_assert_eq!(a.validate(), Ok(()));
    }

    #[test]
    fn noise_preserves_counts_and_types(
        (cfg, seed) in config_strategy(),
        gamma in 0.0f64..=0.5,
        noise_seed in any::<u64>(),
    ) {
        let d = generate_dataset(&cfg, seed);
        let n = add_noise(&d, gamma, noise_seed);
        prop_assert_eq!(n.answers.len(), d.answers.len());
        prop_assert_eq!(n.validate(), Ok(()));
        for (a, b) in d.answers.all().iter().zip(n.answers.all()) {
            prop_assert_eq!(a.cell, b.cell);
            prop_assert_eq!(a.worker, b.worker);
            prop_assert_eq!(a.value.is_categorical(), b.value.is_categorical());
        }
    }

    #[test]
    fn policies_return_distinct_unanswered_cells(
        (cfg, seed) in config_strategy(),
        k in 1usize..6,
    ) {
        let d = generate_dataset(&cfg, seed);
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        let m = d.answers.to_matrix();
        let ctx = tcrowd::core::AssignmentContext {
            schema: &d.schema,
            answers: &d.answers,
            freeze: m.freeze_view(),
            inference: Some(&r),
            max_answers_per_cell: None,
            terminated: None,
            correlation: None,
        };
        let fresh = WorkerId(1_000_000);
        for policy in [
            &mut InherentGainPolicy::default() as &mut dyn AssignmentPolicy,
            &mut StructureAwarePolicy::default() as &mut dyn AssignmentPolicy,
        ] {
            let picks = policy.select(fresh, k, &ctx);
            prop_assert_eq!(picks.len(), k.min(d.rows() * d.cols()));
            let mut dedup = picks.clone();
            dedup.sort();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), picks.len(), "duplicate cells from {}", policy.name());
            for c in &picks {
                prop_assert!(!d.answers.has_answered(fresh, *c));
            }
        }
    }

    #[test]
    fn evaluation_metrics_are_bounded((cfg, seed) in config_strategy()) {
        let d = generate_dataset(&cfg, seed);
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        let rep = evaluate(&d.schema, &d.truth, &r.estimates());
        if let Some(er) = rep.error_rate {
            prop_assert!((0.0..=1.0).contains(&er));
        }
        if let Some(mnad) = rep.mnad {
            prop_assert!(mnad >= 0.0 && mnad.is_finite());
        }
        // Perfect estimates give perfect scores.
        let perfect = evaluate(&d.schema, &d.truth, &d.truth);
        if let Some(er) = perfect.error_rate {
            prop_assert_eq!(er, 0.0);
        }
        if let Some(mnad) = perfect.mnad {
            prop_assert!(mnad.abs() < 1e-12);
        }
    }

    #[test]
    fn entity_lambdas_stay_in_configured_range((cfg, seed) in config_strategy()) {
        let d = generate_dataset(&cfg, seed);
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        let opts = EntityModelOptions::default();
        let groups: Vec<usize> = (0..d.rows()).map(|i| i % 3).collect();
        let m = EntityModel::fit(&d.schema, &d.answers, &r, &RowGrouping::Known(groups), &opts);
        let (lo, hi) = opts.lambda_range;
        for w in d.answers.workers() {
            for i in 0..d.rows() as u32 {
                let l = m.lambda(w, i);
                prop_assert!(l >= lo * 0.99 && l <= hi * 1.01, "lambda {} escaped [{}, {}]", l, lo, hi);
            }
        }
        // Unknown worker always gets exactly 1.
        prop_assert_eq!(m.lambda(WorkerId(1_000_000), 0), 1.0);
    }

    #[test]
    fn learned_grouping_yields_a_valid_partition((cfg, seed) in config_strategy()) {
        let d = generate_dataset(&cfg, seed);
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        let k = 3usize;
        let m = EntityModel::fit(
            &d.schema, &d.answers, &r,
            &RowGrouping::Learned { groups: k, seed },
            &EntityModelOptions::default(),
        );
        prop_assert_eq!(m.groups().len(), d.rows());
        for &g in m.groups() {
            prop_assert!(g < k);
        }
    }

    #[test]
    fn termination_is_monotone_and_idempotent((cfg, seed) in config_strategy()) {
        let d = generate_dataset(&cfg, seed);
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        let mut state = TerminationState::new();
        let strict = StoppingRule { p_stop: 0.999, max_std: 1e-6, min_answers: 1 };
        let lenient = StoppingRule { p_stop: 0.5, max_std: 1.0, min_answers: 1 };
        let first = state.update(&r, &strict, |c| d.answers.count_for_cell(c));
        let after_strict = state.len();
        prop_assert_eq!(first, after_strict);
        // A more lenient rule can only add cells.
        state.update(&r, &lenient, |c| d.answers.count_for_cell(c));
        prop_assert!(state.len() >= after_strict);
        // Idempotent under re-application.
        let again = state.update(&r, &lenient, |c| d.answers.count_for_cell(c));
        prop_assert_eq!(again, 0);
        prop_assert!(state.len() <= d.rows() * d.cols());
    }

    #[test]
    fn answer_matrix_views_agree_with_naive_log_scan((cfg, seed) in config_strategy()) {
        let d = generate_dataset(&cfg, seed);
        let log = &d.answers;
        let m = log.to_matrix();
        prop_assert_eq!(m.len(), log.len());
        prop_assert_eq!(m.num_workers(), log.num_workers());
        // Worker table: sorted, and exactly the log's worker set.
        let log_workers: Vec<WorkerId> = log.workers().collect();
        prop_assert_eq!(m.worker_ids(), log_workers.as_slice());
        // By-cell view agrees with a naive scan (same multiset, same
        // insertion order within the cell).
        for cell in log.cells() {
            let naive: Vec<_> = log.for_cell(cell).copied().collect();
            let csr: Vec<_> = m.cell_answers(cell)
                .map(|a| tcrowd::tabular::Answer { worker: a.worker, cell: a.cell, value: a.value })
                .collect();
            prop_assert_eq!(naive, csr, "cell {:?}", cell);
        }
        // By-worker and by-(worker, row) views partition the payload.
        for (w, &wid) in m.worker_ids().iter().enumerate() {
            prop_assert_eq!(m.worker_answers(w).count(), log.for_worker(wid).count());
            for row in 0..log.rows() as u32 {
                let mut naive: Vec<String> =
                    log.for_worker_row(wid, row).map(|a| format!("{:?}", a)).collect();
                let mut csr: Vec<String> = m
                    .worker_row_answers(w, row)
                    .map(|a| format!("{:?}", tcrowd::tabular::Answer {
                        worker: a.worker, cell: a.cell, value: a.value,
                    }))
                    .collect();
                naive.sort();
                csr.sort();
                prop_assert_eq!(naive, csr, "worker {} row {}", wid, row);
            }
        }
    }

    #[test]
    fn columnar_and_reference_paths_agree((cfg, seed) in config_strategy()) {
        let d = generate_dataset(&cfg, seed);
        let model = TCrowd::default_full();
        let fast = model.infer(&d.schema, &d.answers);
        let naive = model.infer_reference(&d.schema, &d.answers);
        prop_assert_eq!(fast.iterations, naive.iterations);
        prop_assert_eq!(fast.workers.clone(), naive.workers.clone());
        for (a, b) in fast.phi.iter().zip(&naive.phi) {
            prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()), "phi {} vs {}", a, b);
        }
        for i in 0..d.rows() as u32 {
            for j in 0..d.cols() as u32 {
                let cell = CellId::new(i, j);
                match (fast.estimate(cell), naive.estimate(cell)) {
                    (Value::Categorical(a), Value::Categorical(b)) =>
                        prop_assert_eq!(a, b, "cell ({},{})", i, j),
                    (Value::Continuous(a), Value::Continuous(b)) =>
                        prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()),
                            "cell ({},{}): {} vs {}", i, j, a, b),
                    _ => prop_assert!(false, "datatype mismatch at ({},{})", i, j),
                }
            }
        }
    }

    #[test]
    fn new_baselines_always_produce_schema_valid_tables((cfg, seed) in config_strategy()) {
        use tcrowd::baselines::{Accu, MinimaxEntropy, PerColumnTCrowd, TruthMethod};
        let d = generate_dataset(&cfg, seed);
        let methods: Vec<Box<dyn TruthMethod>> = vec![
            Box::new(MinimaxEntropy::default()),
            Box::new(Accu::default()),
            Box::new(Accu::exact()),
            Box::new(PerColumnTCrowd::default()),
        ];
        for m in methods {
            let est = m.estimate(&d.schema, &d.answers);
            prop_assert_eq!(est.len(), d.rows(), "{} row count", m.name());
            for (i, row) in est.iter().enumerate() {
                prop_assert_eq!(row.len(), d.cols());
                for (j, v) in row.iter().enumerate() {
                    prop_assert!(
                        d.schema.column_type(j).accepts(v),
                        "{} produced an invalid value at ({}, {})", m.name(), i, j
                    );
                }
            }
        }
    }
}
