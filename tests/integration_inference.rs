//! Cross-crate integration tests: truth inference end-to-end against the
//! baselines it must dominate, on the paper's synthetic and simulated-real
//! workloads.

use tcrowd::baselines::{MajorityVoting, MedianBaseline, TruthMethod};
use tcrowd::core::TCrowd;
use tcrowd::prelude::*;
use tcrowd::stat::describe::pearson;
use tcrowd::tabular::real_sim;

fn spread_config(rows: usize) -> GeneratorConfig {
    GeneratorConfig {
        rows,
        columns: 6,
        categorical_ratio: 0.5,
        num_workers: 24,
        answers_per_task: 4,
        quality: tcrowd::tabular::generator::WorkerQualityConfig {
            median_phi: 0.18,
            sigma_ln_phi: 1.0,
            spammer_fraction: 0.2,
            spammer_factor: 30.0,
        },
        ..Default::default()
    }
}

#[test]
fn tcrowd_beats_mv_and_median_on_average() {
    let mut tc = (0.0, 0.0);
    let mut base = (0.0, 0.0);
    for seed in 0..3 {
        let d = generate_dataset(&spread_config(80), seed);
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        let tc_rep = evaluate(&d.schema, &d.truth, &r.estimates());
        let mv = evaluate(&d.schema, &d.truth, &MajorityVoting.estimate(&d.schema, &d.answers));
        let med = evaluate(&d.schema, &d.truth, &MedianBaseline.estimate(&d.schema, &d.answers));
        tc.0 += tc_rep.error_rate.unwrap();
        tc.1 += tc_rep.mnad.unwrap();
        base.0 += mv.error_rate.unwrap();
        base.1 += med.mnad.unwrap();
    }
    assert!(tc.0 < base.0, "T-Crowd error {} vs MV {}", tc.0 / 3.0, base.0 / 3.0);
    assert!(tc.1 < base.1, "T-Crowd MNAD {} vs Median {}", tc.1 / 3.0, base.1 / 3.0);
}

#[test]
fn unified_model_uses_cross_type_evidence() {
    // A worker answering many categorical cells and few continuous ones
    // still gets a well-calibrated quality thanks to the shared φ — verify
    // the calibration correlation on a mixed table.
    let d = generate_dataset(&spread_config(100), 7);
    let r = TCrowd::default_full().infer(&d.schema, &d.answers);
    let (mut est, mut truth) = (Vec::new(), Vec::new());
    for (&w, p) in &d.worker_truth {
        if let Some(phi) = r.phi_of(w) {
            est.push(phi.ln());
            truth.push(p.phi.ln());
        }
    }
    let rho = pearson(&est, &truth);
    assert!(rho > 0.7, "worker-quality calibration r = {rho}");
}

#[test]
fn constrained_variants_match_full_model_on_their_columns_approximately() {
    let d = generate_dataset(&spread_config(60), 5);
    let full = TCrowd::default_full().infer(&d.schema, &d.answers);
    let cat = TCrowd::only_categorical().infer(&d.schema, &d.answers);
    let full_rep = evaluate(&d.schema, &d.truth, &full.estimates());
    let cat_rep = evaluate(&d.schema, &d.truth, &cat.estimates());
    // The constrained model sees strictly less evidence; it must not be
    // dramatically better on its own datatype.
    assert!(cat_rep.error_rate.unwrap() + 1e-9 >= full_rep.error_rate.unwrap() - 0.05);
}

#[test]
fn inference_works_on_all_simulated_real_datasets() {
    for d in [real_sim::celebrity(0), real_sim::restaurant(0), real_sim::emotion(0)] {
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        assert!(r.converged, "{} did not converge", d.schema.name);
        assert!(r.iterations <= 50);
        let rep = evaluate(&d.schema, &d.truth, &r.estimates());
        if let Some(er) = rep.error_rate {
            assert!(er < 0.35, "{} error rate {er}", d.schema.name);
        }
        if let Some(mnad) = rep.mnad {
            assert!(mnad < 0.9, "{} MNAD {mnad}", d.schema.name);
        }
        // Every estimate matches its column type.
        for (i, row) in r.estimates().iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                assert!(d.schema.column_type(j).accepts(v), "({i},{j}) in {}", d.schema.name);
            }
        }
    }
}

#[test]
fn difficulty_ablation_degrades_gracefully() {
    use tcrowd::core::{EmOptions, TCrowdOptions};
    let d = generate_dataset(&spread_config(80), 9);
    let flat = TCrowd::new(TCrowdOptions {
        em: EmOptions {
            learn_row_difficulty: false,
            learn_col_difficulty: false,
            ..Default::default()
        },
        ..Default::default()
    })
    .infer(&d.schema, &d.answers);
    assert!(flat.converged);
    assert!(flat.alpha.iter().all(|a| (*a - 1.0).abs() < 1e-9));
    let rep = evaluate(&d.schema, &d.truth, &flat.estimates());
    // Still a functioning model, just without the difficulty refinement.
    assert!(rep.error_rate.unwrap() < 0.4);
}

#[test]
fn spammer_only_crowd_does_not_break_inference() {
    // Failure injection: every worker is a spammer. Inference must converge
    // and produce schema-valid output even though quality is hopeless.
    let cfg = GeneratorConfig {
        rows: 20,
        columns: 4,
        num_workers: 10,
        answers_per_task: 3,
        quality: tcrowd::tabular::generator::WorkerQualityConfig {
            median_phi: 8.0,
            sigma_ln_phi: 0.2,
            spammer_fraction: 1.0,
            spammer_factor: 3.0,
        },
        ..Default::default()
    };
    let d = generate_dataset(&cfg, 2);
    let r = TCrowd::default_full().infer(&d.schema, &d.answers);
    assert!(r.converged);
    for (i, row) in r.estimates().iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            assert!(d.schema.column_type(j).accepts(v), "({i},{j})");
        }
    }
    // Everyone should be diagnosed as low quality: nobody near a good
    // worker's ~0.9, and the bulk of the crowd clearly below chance-ish 0.6.
    let mut qs: Vec<f64> = r.workers.iter().map(|w| r.quality_of(*w).unwrap()).collect();
    qs.sort_by(|a, b| a.partial_cmp(b).expect("NaN quality"));
    assert!(qs[qs.len() / 2] < 0.6, "median quality {}", qs[qs.len() / 2]);
    assert!(
        *qs.last().unwrap() < 0.7,
        "even the luckiest spammer must stay low: {}",
        qs.last().unwrap()
    );
}

#[test]
fn single_answer_per_cell_is_handled() {
    let cfg = GeneratorConfig { answers_per_task: 1, ..spread_config(20) };
    let d = generate_dataset(&cfg, 4);
    let r = TCrowd::default_full().infer(&d.schema, &d.answers);
    assert!(r.converged);
    assert_eq!(r.estimates().len(), 20);
}
