//! Run-to-run determinism regression tests.
//!
//! The seed implementation iterated workers through `HashMap`s, whose
//! iteration order changes per process — two identical runs could disagree
//! in the last float bits (and k-means clustering could disagree outright).
//! The columnar `AnswerMatrix` orders workers by ascending id and every
//! sweep walks CSR slices, so repeating a fit must now be **bit-identical**.

use tcrowd::core::{CorrelationModel, EntityModel, EntityModelOptions, RowGrouping, TCrowd};
use tcrowd::prelude::*;

fn dataset(seed: u64) -> Dataset {
    generate_dataset(
        &GeneratorConfig {
            rows: 30,
            columns: 5,
            num_workers: 18,
            answers_per_task: 4,
            ..Default::default()
        },
        seed,
    )
}

#[test]
fn two_identical_inference_runs_are_bit_identical() {
    let d = dataset(42);
    let model = TCrowd::default_full();
    let a = model.infer(&d.schema, &d.answers);
    let b = model.infer(&d.schema, &d.answers);
    // Bit-identical across every fitted quantity, not merely "close".
    assert_eq!(a.workers, b.workers);
    assert_eq!(a.phi, b.phi);
    assert_eq!(a.alpha, b.alpha);
    assert_eq!(a.beta, b.beta);
    assert_eq!(a.epsilon.to_bits(), b.epsilon.to_bits());
    assert_eq!(a.objective_trace, b.objective_trace);
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.estimates(), b.estimates());
    for i in 0..d.rows() as u32 {
        for j in 0..d.cols() as u32 {
            assert_eq!(a.truth_z(CellId::new(i, j)), b.truth_z(CellId::new(i, j)));
        }
    }
}

#[test]
fn workers_iterate_in_sorted_id_order() {
    let d = dataset(7);
    let m = d.answers.to_matrix();
    let ids: Vec<u32> = m.worker_ids().iter().map(|w| w.0).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted);
    // The log's own worker iteration matches the matrix's order.
    let log_ids: Vec<WorkerId> = d.answers.workers().collect();
    assert_eq!(log_ids, m.worker_ids());
    // And the fitted result reports workers in exactly that order.
    let r = TCrowd::default_full().infer(&d.schema, &d.answers);
    assert_eq!(r.workers, m.worker_ids());
}

#[test]
fn correlation_model_is_bit_identical_across_runs() {
    let d = dataset(11);
    let r = TCrowd::default_full().infer(&d.schema, &d.answers);
    let c1 = CorrelationModel::fit(&d.schema, &d.answers, &r);
    let c2 = CorrelationModel::fit(&d.schema, &d.answers, &r);
    for j in 0..d.cols() {
        for k in 0..d.cols() {
            assert_eq!(c1.wjk(j, k).to_bits(), c2.wjk(j, k).to_bits(), "W[{j}][{k}]");
            assert_eq!(c1.support(j, k), c2.support(j, k));
        }
    }
}

#[test]
fn learned_entity_grouping_is_deterministic() {
    let d = dataset(13);
    let r = TCrowd::default_full().infer(&d.schema, &d.answers);
    let grouping = RowGrouping::Learned { groups: 3, seed: 5 };
    let opts = EntityModelOptions::default();
    let m1 = EntityModel::fit(&d.schema, &d.answers, &r, &grouping, &opts);
    let m2 = EntityModel::fit(&d.schema, &d.answers, &r, &grouping, &opts);
    assert_eq!(m1.groups(), m2.groups());
    let mut l1: Vec<_> = m1.multipliers().collect();
    let mut l2: Vec<_> = m2.multipliers().collect();
    l1.sort_by_key(|((w, g), _)| (*w, *g));
    l2.sort_by_key(|((w, g), _)| (*w, *g));
    assert_eq!(l1.len(), l2.len());
    for ((ka, va), (kb, vb)) in l1.iter().zip(&l2) {
        assert_eq!(ka, kb);
        assert_eq!(va.to_bits(), vb.to_bits());
    }
}
