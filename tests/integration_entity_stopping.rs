//! Cross-crate integration tests for the two extensions built on top of the
//! paper's evaluation: the §7 entity-correlation policy and the
//! confidence-based adaptive stopping rule.

use tcrowd::core::{EntityAwarePolicy, RowGrouping, StructureAwarePolicy, TCrowd};
use tcrowd::prelude::*;
use tcrowd::sim::InferenceBackend;
use tcrowd::tabular::generator::EntityGroups;

const ROWS: usize = 30;
const COLS: usize = 5;
const GROUPS: usize = 3;

/// A world with a strong entity-group familiarity effect.
fn grouped_world(seed: u64) -> (Dataset, WorkerPool) {
    let eg = EntityGroups { groups: GROUPS, p_unfamiliar: 0.35, difficulty_factor: 40.0 };
    let d = generate_dataset(
        &GeneratorConfig {
            rows: ROWS,
            columns: COLS,
            categorical_ratio: 0.6,
            num_workers: 20,
            answers_per_task: 1,
            entity_groups: Some(eg),
            ..Default::default()
        },
        seed,
    );
    let pool = WorkerPool::new(
        &d.schema,
        &d.truth,
        WorkerPoolConfig { num_workers: 20, entity_groups: Some(eg), ..Default::default() },
        seed * 31 + 5,
    );
    (d, pool)
}

fn run(
    seed: u64,
    budget: f64,
    stopping: Option<StoppingRule>,
    mut policy: Box<dyn AssignmentPolicy>,
) -> tcrowd::sim::RunResult {
    let (_, mut pool) = grouped_world(seed);
    let runner = Runner::new(ExperimentConfig {
        budget_avg_answers: budget,
        checkpoint_step: 1.0,
        stopping,
        ..Default::default()
    });
    let backend = InferenceBackend::TCrowd(TCrowd::default_full());
    runner.run("run", &mut pool, policy.as_mut(), &backend)
}

#[test]
fn entity_policy_matches_structure_aware_on_grouped_data() {
    // With a real entity-group effect in the oracle, the entity-aware policy
    // must do at least as well as the structure-aware one at equal budget
    // (averaged over seeds; a generous tolerance keeps the test robust).
    let known: Vec<usize> = (0..ROWS).map(|i| i % GROUPS).collect();
    let mut entity_err = 0.0;
    let mut structure_err = 0.0;
    for seed in 0..3 {
        let e = run(
            seed,
            3.0,
            None,
            Box::new(EntityAwarePolicy::new(RowGrouping::Known(known.clone()))),
        );
        let s = run(seed, 3.0, None, Box::new(StructureAwarePolicy::default()));
        entity_err += e.final_report.error_rate.unwrap();
        structure_err += s.final_report.error_rate.unwrap();
    }
    assert!(
        entity_err <= structure_err + 0.03 * 3.0,
        "entity-aware {} vs structure-aware {}",
        entity_err / 3.0,
        structure_err / 3.0
    );
}

#[test]
fn entity_policy_with_learned_groups_runs_end_to_end() {
    let r = run(
        7,
        2.5,
        None,
        Box::new(EntityAwarePolicy::new(RowGrouping::Learned { groups: GROUPS, seed: 9 })),
    );
    assert!(r.final_report.error_rate.is_some());
    assert!(r.total_answers as f64 >= 2.5 * (ROWS * COLS) as f64);
}

#[test]
fn adaptive_stopping_saves_answers_without_wrecking_quality() {
    let rule = StoppingRule { p_stop: 0.85, max_std: 0.35, min_answers: 2 };
    let mut saved = 0i64;
    let mut adaptive_err = 0.0;
    let mut fixed_err = 0.0;
    for seed in 20..23 {
        let a = run(seed, 6.0, Some(rule), Box::new(StructureAwarePolicy::default()));
        let f = run(seed, 6.0, None, Box::new(StructureAwarePolicy::default()));
        saved += f.total_answers as i64 - a.total_answers as i64;
        adaptive_err += a.final_report.error_rate.unwrap();
        fixed_err += f.final_report.error_rate.unwrap();
    }
    assert!(saved >= 0, "adaptive stopping must not spend more than fixed budget");
    // Quality may degrade slightly (that is the price of stopping early) but
    // must stay in the same regime.
    assert!(
        adaptive_err <= fixed_err + 0.10 * 3.0,
        "adaptive {} vs fixed {}",
        adaptive_err / 3.0,
        fixed_err / 3.0
    );
}

#[test]
fn stopping_terminates_cells_by_budget_end() {
    let rule = StoppingRule { p_stop: 0.7, max_std: 0.6, min_answers: 2 };
    let r = run(20, 5.0, Some(rule), Box::new(StructureAwarePolicy::default()));
    assert!(
        r.terminated_cells > 0,
        "a 5-answer budget should settle at least one cell under a lenient rule"
    );
}
