#!/usr/bin/env bash
# Run every CI bench gate locally against the BENCH_*.json files in the
# repo root — the exact scripts .github/workflows/ci.yml runs, so a green
# run here means the gate steps will be green in CI (given the same
# numbers). Pass gate names to run a subset:
#
#   ci/run_gates.sh                  # all gates
#   ci/run_gates.sh durability trust # just these
#
# Gates read the BENCH file recorded by the matching bench run, e.g.:
#   cargo bench -p tcrowd-bench --bench bench_persistence -- --quick
set -u

cd "$(dirname "$0")/.."
GATES=${*:-"trust obs service ingest_stall durability inference refresh"}
failed=0
for gate in $GATES; do
    script="ci/gates/${gate}.py"
    if [ ! -f "$script" ]; then
        echo "run_gates: no such gate '$gate' (expected one of: ci/gates/*.py)" >&2
        failed=1
        continue
    fi
    echo "== ${gate} =="
    if ! PYTHONPATH=ci/gates python3 "$script"; then
        failed=1
    fi
done
exit $failed
