"""Inference-kernel contract over BENCH_inference.json.

The SIMD batch kernels must be bit-equal across dispatch paths and the
pooled E/M-steps bit-identical to the serial ones (both are also
asserted inside the bench — a false here means the bench's own gate was
bypassed). On a multi-core runner the pooled M-step must be strictly
faster than serial; on a single core the pooled path degrades to the
serial code, so require no regression instead.
"""

from _common import finish, load

bench = load("BENCH_inference.json")
failures = []
if not bench["kernels_equal"]:
    failures.append("generic and AVX2 kernels are not bit-equal")
if not bench["serial_parallel_bit_identical"]:
    failures.append("parallel EM is not bit-identical to serial")
serial = bench["kernel_breakdown"]["serial"]
parallel = bench["kernel_breakdown"]["parallel"]
if serial["mstep_ns"] <= 0 or serial["objective_evals"] <= 0:
    failures.append("kernel breakdown missing: no M-step work was timed")
threads = bench["threads"]
if threads > 1:
    if bench["mstep_speedup"] <= 1.0:
        failures.append(
            f"pooled M-step not faster than serial on {threads} threads: "
            f"{bench['mstep_speedup']:.3f}x"
        )
elif bench["em_speedup_parallel_over_serial"] < 0.85:
    failures.append(
        f"single-thread pooled path regressed vs serial: "
        f"{bench['em_speedup_parallel_over_serial']:.3f}x"
    )
finish(
    "INFERENCE",
    failures,
    f"inference gates ok: kernel path {bench['kernel_path']}, {threads} thread(s), "
    f"mstep {serial['mstep_ns']/1e6:.0f} ms serial -> {parallel['mstep_ns']/1e6:.0f} ms "
    f"pooled ({bench['mstep_speedup']:.2f}x), estep {bench['estep_speedup']:.2f}x, "
    f"naive-vs-csr {bench['csr_speedup_over_naive']:.2f}x",
)
