"""Instrumentation-overhead contract over BENCH_obs.json.

The instrumentation delta per batch, relative to the service's measured
p50 ingest service time, must stay under the recorded bound — and both
A/B lanes must have actually measured something.
"""

from _common import finish, load

bench = load("BENCH_obs.json")
failures = []
lanes = bench["http_closed_loop"]
for lane in ("enabled", "disabled"):
    if lanes[lane]["answers_total"] <= 0:
        failures.append(f"{lane} lane drove no load")
gate = bench["gate"]
if gate["service_p50_ingest_us_per_batch"] <= 0:
    failures.append("no service ingest latency was measured")
overhead = bench["ingest_throughput_overhead_pct"]
bound = bench["overhead_bound_pct"]
if overhead > bound:
    failures.append(
        f"instrumentation costs {overhead:.3f}% of ingest throughput "
        f"(> {bound}%): {gate['instrumentation_delta_ns_per_batch']:.0f} ns/batch "
        f"against {gate['service_p50_ingest_us_per_batch']:.1f} us/batch"
    )
finish(
    "OBS",
    failures,
    f"obs gates ok: instrumentation delta "
    f"{gate['instrumentation_delta_ns_per_batch']:.0f} ns/batch = "
    f"{overhead:.3f}% of the {gate['service_p50_ingest_us_per_batch']:.1f} us "
    f"p50 ingest service time (bound {bound}%)",
)
