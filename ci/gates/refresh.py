"""Incremental-refresh regression guard over BENCH_refresh.json.

The delta-merge + warm-start pipeline must not be slower than the
full-rebuild + cold-EM pipeline at the 50k-answer point — neither the
whole refit nor the matrix refresh alone.
"""

from _common import finish, load

bench = load("BENCH_refresh.json")
point = next(p for p in bench["points"] if p["answers"] == 50_000)
failures = []
if point["speedup"] < 1.0:
    failures.append(
        f"delta-merge-warm refit slower than full-rebuild-cold at 50k: "
        f"speedup {point['speedup']:.3f}x"
    )
if point["matrix_merge_ns"] > point["matrix_build_ns"]:
    failures.append(
        f"merge_delta slower than a full rebuild at 50k: "
        f"{point['matrix_merge_ns']:.0f} ns vs {point['matrix_build_ns']:.0f} ns"
    )
gate = bench["converged_estimates_max_z_diff"]
if gate > bench["estimates_equal_within"]:
    failures.append(f"converged warm/cold estimates diverge: {gate:.3e}")
finish(
    "REFRESH",
    failures,
    f"refresh guard ok: {point['speedup']:.2f}x refit speedup at 50k, "
    f"converged agreement {gate:.2e}",
)
