"""Service-layer contract over BENCH_service.json.

The closed-loop run must drop nothing and its served truth must match an
offline TCrowd::infer on the served log within 1e-6 z-units (the
acceptance gates of the service layer).
"""

from _common import finish, load

bench = load("BENCH_service.json")
failures = []
if bench["dropped_answers"] != 0:
    failures.append(f"dropped answers: {bench['dropped_answers']}")
if bench["metrics_counter_drift"] != 0:
    failures.append(
        f"registry ingest counter drifted from the acked-answer count "
        f"by {bench['metrics_counter_drift']}"
    )
gate = bench["offline_estimates_equal_within"]
for t in bench["tables"]:
    if t["offline_z_divergence"] > gate:
        failures.append(
            f"table {t['id']}: served truth diverges from offline "
            f"inference by {t['offline_z_divergence']:.3e} (> {gate})"
        )
if bench["answers_total"] <= 0 or bench["throughput_answers_per_sec"] <= 0:
    failures.append("no load was driven through the service")
finish(
    "SERVICE",
    failures,
    f"service gates ok: {bench['answers_total']} answers at "
    f"{bench['throughput_answers_per_sec']:.0f}/s, "
    f"assignment p99 {bench['assignment_latency_us_p99']:.0f} us",
)
