"""Ingest-stall contract over BENCH_service.json (EM off the ingest path).

A refit window must not stall ingestion: the p99 ingest latency of
samples overlapping refit windows is bounded by bound_ratio (5x) times
the quiescent p99 (floored at p99_floor_us so loopback noise cannot fail
the gate). Before the out-of-lock refit pipeline the in-window p99
equalled the refit duration itself — hundreds of times over this bound.
"""

from _common import finish, load

bench = load("BENCH_service.json")
stall = bench["ingest_stall"]
failures = []
if stall["refit_windows"] < 2:
    failures.append(f"only {stall['refit_windows']} refit windows — vacuous measurement")
if stall["during_refit_samples"] < 20:
    failures.append(
        f"only {stall['during_refit_samples']} ingest samples overlapped refit windows"
    )
baseline = max(stall["quiescent_p99_us"], stall["p99_floor_us"])
bound = stall["bound_ratio"] * baseline
if stall["during_refit_p99_us"] > bound:
    failures.append(
        f"ingest p99 during refit windows is {stall['during_refit_p99_us']:.0f} us "
        f"(> {stall['bound_ratio']}x the {baseline:.0f} us quiescent baseline): "
        f"a refit is blocking the ingest path"
    )
finish(
    "INGEST-STALL",
    failures,
    f"ingest-stall gate ok: p99 {stall['during_refit_p99_us']:.0f} us during "
    f"{stall['refit_windows']} refit windows (mean {stall['refit_ms_mean']:.0f} ms) vs "
    f"{stall['quiescent_p99_us']:.0f} us quiescent "
    f"({stall['stall_ratio_p99']:.2f}x, bound {stall['bound_ratio']}x)",
)
