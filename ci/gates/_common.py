"""Shared helpers for the CI gate scripts in ci/gates/.

Every gate follows the same protocol: load a BENCH_*.json produced by the
bench run earlier in the job, re-check the recorded numbers independently
of the bench's own asserts, print failures prefixed with the gate name,
append a one-line verdict to $GITHUB_STEP_SUMMARY (when set), and exit
non-zero on any failure.
"""

import json
import os
import sys


def load(path):
    """Load a bench JSON document, failing the gate loudly if absent."""
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        print(f"GATE ERROR: cannot read {path}: {e}")
        sys.exit(1)


def summary_line(line):
    """Append one line to the GitHub Actions step summary (no-op locally)."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    with open(path, "a") as f:
        f.write(line.rstrip("\n") + "\n")


def finish(gate, failures, ok_line):
    """Print failures (or the ok line), mirror the verdict into the step
    summary, and exit accordingly."""
    if failures:
        for f_ in failures:
            print(f"{gate} GATE:", f_)
        summary_line(f"- ❌ **{gate.lower()}**: " + "; ".join(failures))
        sys.exit(1)
    print(ok_line)
    summary_line(f"- ✅ **{gate.lower()}**: {ok_line}")
