"""Adversarial-defense contract over BENCH_trust.json.

The attack must be real (>= 30% spammers), defense-on accuracy must
recover to >= 90% of the clean baseline and strictly beat defense-off,
detection must be sharp, and quarantine must never drop a logged answer.
"""

from _common import finish, load

bench = load("BENCH_trust.json")
failures = []
acc = bench["accuracy"]
det = bench["detection"]
log = bench["log_immutability"]
if bench["protocol"]["spammer_frac"] < 0.3:
    failures.append(f"attack too weak: {bench['protocol']['spammer_frac']:.2f} spammers")
clean, off, on = (acc[k]["score"] for k in ("clean", "defense_off", "defense_on"))
if on < 0.9 * clean:
    failures.append(f"defense-on score {on:.3f} < 90% of clean {clean:.3f}")
if on <= off:
    failures.append(f"defense-on score {on:.3f} does not beat defense-off {off:.3f}")
if det["precision"] < 0.75:
    failures.append(f"detection precision {det['precision']:.2f} < 0.75")
if det["recall"] < 0.75:
    failures.append(f"detection recall {det['recall']:.2f} < 0.75")
if det["quarantined"] <= 0:
    failures.append("the defended table quarantined nobody")
if log["answers_served"] != log["answers_posted"]:
    failures.append(
        f"quarantine dropped answers: {log['answers_served']} served "
        f"of {log['answers_posted']} posted"
    )
finish(
    "TRUST",
    failures,
    f"trust gates ok: on {on:.3f} vs clean {clean:.3f} / off {off:.3f}; "
    f"precision {det['precision']:.2f} recall {det['recall']:.2f}, "
    f"{det['quarantined']:.0f} quarantined",
)
