"""Durability contract over BENCH_persistence.json.

Zero acknowledged-answer loss (recovered log bit-identical to the
ingested one) and recovered-state agreement with offline inference at
1e-6 z-units, at every measured log length; snapshot recovery must not
regress to slower-than-replay. Two group-commit/segmentation gates ride
on top:

* `fsync=always` ingest throughput must land within the recorded bound
  (3x) of `flush` — the whole point of the commit thread coalescing
  concurrent batches into one fsync;
* recovery wall-clock must be independent of the WAL segment count (a
  multi-segment chain within the recorded bound, 1.5x, of a single
  segment), with the multi-segment run actually rotated (> 1 segment)
  and bit-identical.
"""

from _common import finish, load

bench = load("BENCH_persistence.json")
failures = []
gate = bench["recovered_state_equal_within"]
for p in bench["recovery"]:
    if not p["recovered_log_identical"]:
        failures.append(f"{p['answers']} answers: recovered log differs (acked loss)")
    if p["recovered_z_divergence"] > gate:
        failures.append(
            f"{p['answers']} answers: recovered truth diverges by "
            f"{p['recovered_z_divergence']:.3e} (> {gate})"
        )
    if p["replayed_tail_with_snapshot"] != 0:
        failures.append(f"{p['answers']} answers: snapshot recovery replayed a tail")
    if p["speedup"] < 1.0:
        failures.append(
            f"{p['answers']} answers: snapshot recovery slower than full replay "
            f"({p['speedup']:.2f}x)"
        )
modes = {i["mode"]: i for i in bench["ingest"]}
for required in ("memory-only", "wal-fsync-never", "wal-fsync-flush", "wal-fsync-always"):
    if required not in modes or modes[required]["answers_per_sec"] <= 0:
        failures.append(f"ingest mode {required} missing or drove no load")

# Group-commit gate: always within the bound of flush, with real coalescing.
ratio = bench["always_vs_flush_overhead"]
ratio_bound = bench["always_vs_flush_bound"]
if ratio > ratio_bound:
    failures.append(
        f"fsync=always is {ratio:.2f}x slower than flush (> {ratio_bound}x): "
        f"group commit is not closing the fsync gap"
    )
always = modes.get("wal-fsync-always", {})
if always.get("frames_per_fsync", 0) <= 1.0:
    failures.append(
        "fsync=always never coalesced (frames_per_fsync "
        f"{always.get('frames_per_fsync', 0):.2f} <= 1): the commit thread "
        "is serialising one fsync per batch"
    )

# Segment-rotation gate: recovery cost independent of the file layout.
seg = bench["recovery_segments"]
if seg["segments_multi"] <= 1:
    failures.append("segmented recovery measured a single segment — rotation never happened")
if not seg["recovered_identical"]:
    failures.append("segmented recovery lost or reordered answers")
if seg["ratio"] > seg["bound"]:
    failures.append(
        f"recovery at {seg['segments_multi']:.0f} segments costs {seg['ratio']:.2f}x "
        f"one segment (> {seg['bound']}x): replay is not bounded by the live tail"
    )

p = bench["recovery"][-1]
finish(
    "DURABILITY",
    failures,
    f"durability gates ok: {p['answers']} answers recover in "
    f"{p['snapshot_ms']:.0f} ms with snapshot vs {p['no_snapshot_ms']:.0f} ms replay "
    f"({p['speedup']:.1f}x), divergence {p['recovered_z_divergence']:.1e}; "
    f"always/flush {ratio:.2f}x (bound {ratio_bound}x, "
    f"{always.get('frames_per_fsync', 0):.1f} frames/fsync); "
    f"{seg['segments_multi']:.0f}-segment recovery {seg['ratio']:.2f}x of one segment",
)
