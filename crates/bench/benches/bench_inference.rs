//! Criterion bench behind Figure 12(b): EM truth-inference runtime as a
//! function of the answer-set size, plus the real-dataset fit, plus the
//! columnar-vs-naive throughput case backing the `AnswerMatrix` refactor and
//! the kernel-level breakdown (E-step / M-step / ELBO, serial vs pooled vs
//! SIMD path) backing the PR-6 batch-kernel work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tcrowd_core::{EmOptions, InferenceResult, TCrowd, TCrowdOptions};
use tcrowd_stat::batch::{kernels, BatchKernels, KernelPath};
use tcrowd_tabular::{generate_dataset, real_sim, CellId, GeneratorConfig, Value};

fn inference_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for &answers in &[1_000usize, 5_000, 20_000] {
        let rows = (answers / 50).max(2);
        let cfg = GeneratorConfig { rows, columns: 10, answers_per_task: 5, ..Default::default() };
        let d = generate_dataset(&cfg, 7);
        group.throughput(Throughput::Elements(d.answers.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(d.answers.len()), &d, |b, d| {
            b.iter(|| {
                let r = TCrowd::default_full().infer(&d.schema, &d.answers);
                std::hint::black_box(r.iterations)
            })
        });
    }
    group.finish();
}

fn inference_real_datasets(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_real");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for d in [real_sim::celebrity(1), real_sim::restaurant(1), real_sim::emotion(1)] {
        group.throughput(Throughput::Elements(d.answers.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(&d.schema.name), &d, |b, d| {
            b.iter(|| {
                let r = TCrowd::default_full().infer(&d.schema, &d.answers);
                std::hint::black_box(r.iterations)
            })
        });
    }
    group.finish();
}

/// Every estimate bit-identical between two fits (labels equal, continuous
/// means compared by `to_bits`), plus the fitted `φ` lane.
fn assert_bit_identical(a: &InferenceResult, b: &InferenceResult, rows: u32, cols: u32) -> bool {
    if a.iterations != b.iterations {
        return false;
    }
    if a.phi.len() != b.phi.len()
        || a.phi.iter().zip(&b.phi).any(|(x, y)| x.to_bits() != y.to_bits())
    {
        return false;
    }
    for i in 0..rows {
        for j in 0..cols {
            match (a.estimate(CellId::new(i, j)), b.estimate(CellId::new(i, j))) {
                (Value::Categorical(x), Value::Categorical(y)) if x == y => {}
                (Value::Continuous(x), Value::Continuous(y)) if x.to_bits() == y.to_bits() => {}
                _ => return false,
            }
        }
    }
    true
}

/// Differential sample check: the generic and AVX2 kernel paths produce
/// bit-equal sums and gradients on a sweep of the `ln v` clamp range.
/// Trivially true (and reported as such) on hosts without AVX2.
fn kernels_equal_sample() -> (bool, bool) {
    let Some(wide) = BatchKernels::with_path(KernelPath::Avx2) else {
        return (true, false);
    };
    let narrow = BatchKernels::with_path(KernelPath::Generic).unwrap();
    let n = 1003; // deliberately not a multiple of the 4-lane width
    let ln_v: Vec<f64> = (0..n).map(|i| -12.0 + 24.0 * i as f64 / (n - 1) as f64).collect();
    let k: Vec<f64> = (0..n).map(|i| 0.01 + 0.37 * (i % 29) as f64).collect();
    let p: Vec<f64> = (0..n).map(|i| 0.02 + 0.95 * (i as f64 / n as f64)).collect();
    let c: Vec<f64> = p.iter().map(|pi| (1.0 - pi) * 3.0f64.ln()).collect();
    let (mut ga, mut gb) = (vec![0.0; n], vec![0.0; n]);
    let sa = narrow.gaussian_terms(&ln_v, &k, &mut ga);
    let sb = wide.gaussian_terms(&ln_v, &k, &mut gb);
    let mut equal =
        sa.to_bits() == sb.to_bits() && ga.iter().zip(&gb).all(|(x, y)| x.to_bits() == y.to_bits());
    let qa = narrow.quality_terms(0.5, &ln_v, &p, &c, &mut ga);
    let qb = wide.quality_terms(0.5, &ln_v, &p, &c, &mut gb);
    equal = equal
        && qa.to_bits() == qb.to_bits()
        && ga.iter().zip(&gb).all(|(x, y)| x.to_bits() == y.to_bits());
    (equal, true)
}

/// EM throughput and kernel breakdown on the 1 000×10 mixed-type table
/// (50 000 answers): the columnar CSR engine fully serial, with the pooled
/// E-step + M-step, and the naive `HashMap`-indexed reference path. Verifies
/// estimate agreement with the reference (≤ 1e-9), serial-vs-parallel
/// bit-identity, generic-vs-AVX2 kernel bit-equality, and records the
/// per-phase nanosecond breakdown in `BENCH_inference.json`.
fn em_throughput(c: &mut Criterion) {
    let cfg =
        GeneratorConfig { rows: 1_000, columns: 10, answers_per_task: 5, ..Default::default() };
    let d = generate_dataset(&cfg, 7);
    let quick = std::env::args().any(|a| a == "--quick" || a == "--test")
        || std::env::var_os("CRITERION_QUICK").is_some();
    let reps = if quick { 1 } else { 3 };

    let seq = TCrowd::new(TCrowdOptions {
        em: EmOptions { parallel_estep: false, parallel_mstep: false, ..Default::default() },
        ..Default::default()
    });
    let par = TCrowd::new(TCrowdOptions {
        em: EmOptions { parallel_estep: true, parallel_mstep: true, ..Default::default() },
        ..Default::default()
    });

    // Correctness gates before timing.
    let fast = seq.infer(&d.schema, &d.answers);
    let naive = seq.infer_reference(&d.schema, &d.answers);
    assert_eq!(fast.iterations, naive.iterations, "EM trajectories diverged");
    for i in 0..d.rows() as u32 {
        for j in 0..d.cols() as u32 {
            match (fast.estimate(CellId::new(i, j)), naive.estimate(CellId::new(i, j))) {
                (Value::Categorical(a), Value::Categorical(b)) => assert_eq!(a, b),
                (Value::Continuous(a), Value::Continuous(b)) => {
                    assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()), "({i},{j}): {a} vs {b}")
                }
                _ => panic!("datatype mismatch"),
            }
        }
    }
    let par_fit = par.infer(&d.schema, &d.answers);
    let bit_identical = assert_bit_identical(&fast, &par_fit, d.rows() as u32, d.cols() as u32);
    assert!(bit_identical, "parallel EM diverged bitwise from serial");
    let (kernels_equal, avx2_checked) = kernels_equal_sample();
    assert!(kernels_equal, "generic and AVX2 kernels diverged bitwise");

    let time = |f: &dyn Fn() -> InferenceResult| -> (f64, InferenceResult) {
        let mut best = f64::INFINITY;
        let mut keep = None;
        for _ in 0..reps {
            let start = std::time::Instant::now();
            let r = std::hint::black_box(f());
            let ns = start.elapsed().as_nanos() as f64;
            if ns < best {
                best = ns;
                keep = Some(r);
            }
        }
        (best, keep.expect("reps >= 1"))
    };
    let (csr_seq, serial_fit) = time(&|| seq.infer(&d.schema, &d.answers));
    let (csr_par, par_fit) = time(&|| par.infer(&d.schema, &d.answers));
    let (hashmap_naive, _) = time(&|| seq.infer_reference(&d.schema, &d.answers));

    let st = serial_fit.timings;
    let pt = par_fit.timings;
    let speedup = hashmap_naive / csr_seq;
    let em_speedup = csr_seq / csr_par;
    let estep_speedup = st.estep_ns as f64 / (pt.estep_ns.max(1)) as f64;
    let mstep_speedup = st.mstep_ns as f64 / (pt.mstep_ns.max(1)) as f64;
    println!(
        "em_throughput (1000x10, {} answers): csr-serial {:.1} ms, csr-parallel {:.1} ms \
         ({} threads), hashmap-naive {:.1} ms  ->  csr speedup {speedup:.2}x, \
         parallel-over-serial {em_speedup:.2}x",
        d.answers.len(),
        csr_seq / 1e6,
        csr_par / 1e6,
        pt.threads,
        hashmap_naive / 1e6,
    );
    println!(
        "  kernel path {} (avx2 differential check: {}), serial breakdown: estep {:.1} ms, \
         mstep {:.1} ms ({} objective evals), elbo {:.1} ms; parallel: estep {:.1} ms \
         ({estep_speedup:.2}x), mstep {:.1} ms ({mstep_speedup:.2}x)",
        kernels().path().name(),
        if avx2_checked { "ran" } else { "no avx2 host" },
        st.estep_ns as f64 / 1e6,
        st.mstep_ns as f64 / 1e6,
        st.objective_evals,
        st.elbo_ns as f64 / 1e6,
        pt.estep_ns as f64 / 1e6,
        pt.mstep_ns as f64 / 1e6,
    );
    let phase_json = |t: &tcrowd_core::EmTimings| {
        format!(
            "{{\"estep_ns\": {}, \"mstep_ns\": {}, \"elbo_ns\": {}, \"objective_evals\": {}, \"threads\": {}}}",
            t.estep_ns, t.mstep_ns, t.elbo_ns, t.objective_evals, t.threads
        )
    };
    let json = format!(
        "{{\n  \"benchmark\": \"em_throughput\",\n  \"dataset\": {{\"rows\": 1000, \"columns\": 10, \"answers\": {}}},\n  \"results_ns_per_inference\": {{\n    \"csr_sequential\": {csr_seq:.0},\n    \"csr_parallel_estep\": {csr_par:.0},\n    \"csr_parallel\": {csr_par:.0},\n    \"hashmap_naive\": {hashmap_naive:.0}\n  }},\n  \"kernel_breakdown\": {{\n    \"serial\": {},\n    \"parallel\": {}\n  }},\n  \"kernel_path\": \"{}\",\n  \"kernels_equal\": {kernels_equal},\n  \"avx2_differential_checked\": {avx2_checked},\n  \"serial_parallel_bit_identical\": {bit_identical},\n  \"threads\": {},\n  \"csr_speedup_over_naive\": {speedup:.3},\n  \"em_speedup_parallel_over_serial\": {em_speedup:.3},\n  \"estep_speedup\": {estep_speedup:.3},\n  \"mstep_speedup\": {mstep_speedup:.3},\n  \"estimates_equal_within\": 1e-9\n}}\n",
        d.answers.len(),
        phase_json(&st),
        phase_json(&pt),
        kernels().path().name(),
        pt.threads,
    );
    // Land the record at the workspace root regardless of bench CWD.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_inference.json");
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("warning: could not write {out}: {e}");
    }

    // Also register the three cases with criterion for its own reporting.
    let mut group = c.benchmark_group("em_throughput");
    group.sample_size(reps.max(2));
    group.measurement_time(std::time::Duration::from_secs(20));
    group.throughput(Throughput::Elements(d.answers.len() as u64));
    group.bench_with_input(BenchmarkId::from_parameter("csr_sequential"), &d, |b, d| {
        b.iter(|| seq.infer(&d.schema, &d.answers).iterations)
    });
    group.bench_with_input(BenchmarkId::from_parameter("csr_parallel"), &d, |b, d| {
        b.iter(|| par.infer(&d.schema, &d.answers).iterations)
    });
    group.bench_with_input(BenchmarkId::from_parameter("hashmap_naive"), &d, |b, d| {
        b.iter(|| seq.infer_reference(&d.schema, &d.answers).iterations)
    });
    group.finish();
}

criterion_group!(benches, em_throughput, inference_scaling, inference_real_datasets);
criterion_main!(benches);
