//! Criterion bench behind Figure 12(b): EM truth-inference runtime as a
//! function of the answer-set size, plus the real-dataset fit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tcrowd_core::TCrowd;
use tcrowd_tabular::{generate_dataset, real_sim, GeneratorConfig};

fn inference_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for &answers in &[1_000usize, 5_000, 20_000] {
        let rows = (answers / 50).max(2);
        let cfg = GeneratorConfig { rows, columns: 10, answers_per_task: 5, ..Default::default() };
        let d = generate_dataset(&cfg, 7);
        group.throughput(Throughput::Elements(d.answers.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(d.answers.len()),
            &d,
            |b, d| {
                b.iter(|| {
                    let r = TCrowd::default_full().infer(&d.schema, &d.answers);
                    std::hint::black_box(r.iterations)
                })
            },
        );
    }
    group.finish();
}

fn inference_real_datasets(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_real");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for d in [real_sim::celebrity(1), real_sim::restaurant(1), real_sim::emotion(1)] {
        group.throughput(Throughput::Elements(d.answers.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(&d.schema.name), &d, |b, d| {
            b.iter(|| {
                let r = TCrowd::default_full().infer(&d.schema, &d.answers);
                std::hint::black_box(r.iterations)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, inference_scaling, inference_real_datasets);
criterion_main!(benches);
