//! Criterion bench behind Figure 12(b): EM truth-inference runtime as a
//! function of the answer-set size, plus the real-dataset fit, plus the
//! columnar-vs-naive throughput case backing the `AnswerMatrix` refactor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tcrowd_core::{EmOptions, TCrowd, TCrowdOptions};
use tcrowd_tabular::{generate_dataset, real_sim, CellId, GeneratorConfig, Value};

fn inference_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for &answers in &[1_000usize, 5_000, 20_000] {
        let rows = (answers / 50).max(2);
        let cfg = GeneratorConfig { rows, columns: 10, answers_per_task: 5, ..Default::default() };
        let d = generate_dataset(&cfg, 7);
        group.throughput(Throughput::Elements(d.answers.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(d.answers.len()), &d, |b, d| {
            b.iter(|| {
                let r = TCrowd::default_full().infer(&d.schema, &d.answers);
                std::hint::black_box(r.iterations)
            })
        });
    }
    group.finish();
}

fn inference_real_datasets(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_real");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for d in [real_sim::celebrity(1), real_sim::restaurant(1), real_sim::emotion(1)] {
        group.throughput(Throughput::Elements(d.answers.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(&d.schema.name), &d, |b, d| {
            b.iter(|| {
                let r = TCrowd::default_full().infer(&d.schema, &d.answers);
                std::hint::black_box(r.iterations)
            })
        });
    }
    group.finish();
}

/// EM-iteration throughput on the 1 000×10 mixed-type table: the columnar
/// CSR engine (sequential and threaded E-step) against the naive
/// `HashMap`-indexed reference path. Verifies estimate agreement (≤ 1e-9),
/// prints the speedup, and records everything in `BENCH_inference.json`.
fn em_throughput(c: &mut Criterion) {
    let cfg =
        GeneratorConfig { rows: 1_000, columns: 10, answers_per_task: 5, ..Default::default() };
    let d = generate_dataset(&cfg, 7);
    let quick = std::env::args().any(|a| a == "--quick" || a == "--test")
        || std::env::var_os("CRITERION_QUICK").is_some();
    let reps = if quick { 1 } else { 3 };

    let seq = TCrowd::default_full();
    let par = TCrowd::new(TCrowdOptions {
        em: EmOptions { parallel_estep: true, ..Default::default() },
        ..Default::default()
    });

    // Correctness gate before timing: columnar and naive paths must agree.
    let fast = seq.infer(&d.schema, &d.answers);
    let naive = seq.infer_reference(&d.schema, &d.answers);
    assert_eq!(fast.iterations, naive.iterations, "EM trajectories diverged");
    for i in 0..d.rows() as u32 {
        for j in 0..d.cols() as u32 {
            match (fast.estimate(CellId::new(i, j)), naive.estimate(CellId::new(i, j))) {
                (Value::Categorical(a), Value::Categorical(b)) => assert_eq!(a, b),
                (Value::Continuous(a), Value::Continuous(b)) => {
                    assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()), "({i},{j}): {a} vs {b}")
                }
                _ => panic!("datatype mismatch"),
            }
        }
    }

    let time_ns = |f: &dyn Fn() -> usize| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let start = std::time::Instant::now();
            std::hint::black_box(f());
            best = best.min(start.elapsed().as_nanos() as f64);
        }
        best
    };
    let csr_seq = time_ns(&|| seq.infer(&d.schema, &d.answers).iterations);
    let csr_par = time_ns(&|| par.infer(&d.schema, &d.answers).iterations);
    let hashmap_naive = time_ns(&|| seq.infer_reference(&d.schema, &d.answers).iterations);

    let speedup = hashmap_naive / csr_seq;
    println!(
        "em_throughput (1000x10, {} answers): csr {:.1} ms, csr+parallel {:.1} ms, \
         hashmap-naive {:.1} ms  ->  csr speedup {speedup:.2}x",
        d.answers.len(),
        csr_seq / 1e6,
        csr_par / 1e6,
        hashmap_naive / 1e6,
    );
    let json = format!(
        "{{\n  \"benchmark\": \"em_throughput\",\n  \"dataset\": {{\"rows\": 1000, \"columns\": 10, \"answers\": {}}},\n  \"results_ns_per_inference\": {{\n    \"csr_sequential\": {csr_seq:.0},\n    \"csr_parallel_estep\": {csr_par:.0},\n    \"hashmap_naive\": {hashmap_naive:.0}\n  }},\n  \"csr_speedup_over_naive\": {speedup:.3},\n  \"estimates_equal_within\": 1e-9\n}}\n",
        d.answers.len(),
    );
    // Land the record at the workspace root regardless of bench CWD.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_inference.json");
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("warning: could not write {out}: {e}");
    }

    // Also register the three cases with criterion for its own reporting.
    let mut group = c.benchmark_group("em_throughput");
    group.sample_size(reps.max(2));
    group.measurement_time(std::time::Duration::from_secs(20));
    group.throughput(Throughput::Elements(d.answers.len() as u64));
    group.bench_with_input(BenchmarkId::from_parameter("csr_sequential"), &d, |b, d| {
        b.iter(|| seq.infer(&d.schema, &d.answers).iterations)
    });
    group.bench_with_input(BenchmarkId::from_parameter("csr_parallel_estep"), &d, |b, d| {
        b.iter(|| par.infer(&d.schema, &d.answers).iterations)
    });
    group.bench_with_input(BenchmarkId::from_parameter("hashmap_naive"), &d, |b, d| {
        b.iter(|| seq.infer_reference(&d.schema, &d.answers).iterations)
    });
    group.finish();
}

criterion_group!(benches, em_throughput, inference_scaling, inference_real_datasets);
criterion_main!(benches);
