//! Criterion bench behind Figure 11: per-arrival assignment cost of the
//! inherent and structure-aware gain policies as the answer log grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tcrowd_core::{
    AssignmentContext, AssignmentPolicy, InherentGainPolicy, StructureAwarePolicy, TCrowd,
};
use tcrowd_tabular::{generate_dataset, GeneratorConfig, WorkerId};

fn assignment_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment_cost");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for &ans in &[2usize, 5] {
        let cfg = GeneratorConfig {
            rows: 174,
            columns: 7,
            num_workers: 109,
            answers_per_task: ans,
            ..Default::default()
        };
        let d = generate_dataset(&cfg, 42);
        let inference = TCrowd::default_full().infer(&d.schema, &d.answers);
        let matrix = d.answers.to_matrix();
        let ctx = AssignmentContext {
            schema: &d.schema,
            answers: &d.answers,
            freeze: matrix.freeze_view(),
            inference: Some(&inference),
            max_answers_per_cell: None,
            terminated: None,
            correlation: None,
        };
        group.bench_with_input(BenchmarkId::new("inherent", ans), &ctx, |b, ctx| {
            let mut policy = InherentGainPolicy::default();
            b.iter(|| std::hint::black_box(policy.select(WorkerId(9_999), 7, ctx)))
        });
        group.bench_with_input(BenchmarkId::new("structure_aware", ans), &ctx, |b, ctx| {
            let mut policy = StructureAwarePolicy::default();
            b.iter(|| std::hint::black_box(policy.select(WorkerId(9_999), 7, ctx)))
        });
    }
    group.finish();
}

criterion_group!(benches, assignment_cost);
criterion_main!(benches);
