//! Closed-loop load generator for `tcrowd-service`: simulated workers
//! replayed against a live in-process server over real HTTP keep-alive
//! connections. Records `BENCH_service.json`.
//!
//! ## Protocol
//!
//! The server hosts **two tables** with different shapes and assignment
//! policies. Per table, `CLIENTS` worker threads (16 total) each drive one
//! simulated worker through the paper's live loop until the table reaches
//! its answer budget:
//!
//! ```text
//! GET  /tables/:id/assignment?worker=u&k=cols     (latency sampled)
//! …answer each cell through the WorkerPool oracle…
//! POST /tables/:id/answers  {"answers": [...]}    (latency sampled)
//! ```
//!
//! Ingestion runs against the table's live `OnlineTCrowd`; the per-table
//! refresher thread delta-merges and re-fits in the background (cadence
//! 40 ms, threshold 32). At the end the harness forces a final refresh and
//! gates on the service's core contracts:
//!
//! * **zero dropped answers** — the served log length equals the number of
//!   accepted POSTs;
//! * **offline agreement** — the served z-space truth equals
//!   `TCrowd::infer` re-run offline on the served log within 1e-6 z-units
//!   (cold re-fits make the published state a pure function of the log).

use criterion::{criterion_group, criterion_main, Criterion};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tcrowd_core::TCrowd;
use tcrowd_service::Json;
use tcrowd_sim::{WorkerPool, WorkerPoolConfig};
use tcrowd_tabular::{
    generate_dataset, Answer, AnswerLog, CellId, ColumnType, Dataset, GeneratorConfig, Value,
    WorkerId,
};

/// Simulated workers (client threads) per table.
const CLIENTS: usize = 8;
/// Refresher cadence / pending threshold configured on every table.
const REFRESH_MS: usize = 40;
const REFIT_EVERY: usize = 32;

/// A keep-alive HTTP/JSON client over one `TcpStream`.
struct Client {
    addr: SocketAddr,
    stream: BufReader<TcpStream>,
}

/// Transient connection failures a client worker absorbs (reconnecting
/// with backoff) before it gives up and fails the bench.
const CLIENT_RETRIES: usize = 5;

impl Client {
    fn try_connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { addr, stream: BufReader::new(stream) })
    }

    fn connect(addr: SocketAddr) -> Client {
        Client::try_connect(addr).expect("connect")
    }

    /// One request with bounded retry: a transient connection error (the
    /// server timed out the keep-alive connection, a reset mid-handshake)
    /// reconnects with exponential backoff and resends, rather than
    /// aborting the whole closed-loop worker.
    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, Json) {
        let mut delay = Duration::from_millis(10);
        for attempt in 0..=CLIENT_RETRIES {
            match self.try_request(method, path, body) {
                Ok(reply) => return reply,
                Err(e) if attempt < CLIENT_RETRIES => {
                    eprintln!(
                        "bench_service: transient failure on {method} {path} \
                         (attempt {}): {e}; reconnecting",
                        attempt + 1
                    );
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(Duration::from_millis(500));
                    if let Ok(fresh) = Client::try_connect(self.addr) {
                        *self = fresh;
                    }
                }
                Err(e) => panic!("{method} {path} failed after {CLIENT_RETRIES} retries: {e}"),
            }
        }
        unreachable!("retry loop returns or panics")
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, Json)> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.get_ref().write_all(raw.as_bytes())?;
        let mut status_line = String::new();
        if self.stream.read_line(&mut status_line)? == 0 {
            return Err(bad("connection closed before status line"));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(&format!("bad status line {status_line:?}")))?;
        let mut len = 0usize;
        loop {
            let mut line = String::new();
            if self.stream.read_line(&mut line)? == 0 {
                return Err(bad("connection closed mid-headers"));
            }
            if line.trim_end().is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                len = v.trim().parse().map_err(|_| bad("bad content-length"))?;
            }
        }
        let mut body = vec![0u8; len];
        self.stream.read_exact(&mut body)?;
        let text = String::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?;
        let json = tcrowd_service::json::parse(&text).map_err(|e| bad(&e))?;
        Ok((status, json))
    }

    fn get(&mut self, path: &str) -> (u16, Json) {
        self.request("GET", path, "")
    }

    fn post(&mut self, path: &str, body: &str) -> (u16, Json) {
        self.request("POST", path, body)
    }

    /// One GET whose body comes back as raw text (the `/metrics` scrape —
    /// Prometheus exposition, not JSON).
    fn get_text(&mut self, path: &str) -> String {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let run = |client: &mut Client| -> std::io::Result<String> {
            let raw = format!("GET {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: 0\r\n\r\n");
            client.stream.get_ref().write_all(raw.as_bytes())?;
            let mut status_line = String::new();
            client.stream.read_line(&mut status_line)?;
            if status_line.split_whitespace().nth(1) != Some("200") {
                return Err(bad(&format!("bad status line {status_line:?}")));
            }
            let mut len = 0usize;
            loop {
                let mut line = String::new();
                if client.stream.read_line(&mut line)? == 0 {
                    return Err(bad("connection closed mid-headers"));
                }
                if line.trim_end().is_empty() {
                    break;
                }
                if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                    len = v.trim().parse().map_err(|_| bad("bad content-length"))?;
                }
            }
            let mut body = vec![0u8; len];
            client.stream.read_exact(&mut body)?;
            String::from_utf8(body).map_err(|_| bad("body is not UTF-8"))
        };
        run(self).unwrap_or_else(|e| panic!("GET {path} failed: {e}"))
    }
}

/// The value of `name{table="<table>"}` in a Prometheus exposition.
fn scrape_value(text: &str, name: &str, table: &str) -> f64 {
    let series = format!("{name}{{table=\"{table}\"}} ");
    text.lines()
        .find_map(|l| l.strip_prefix(&series))
        .unwrap_or_else(|| panic!("series {series}… missing from /metrics:\n{text}"))
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("unparsable sample for {series}: {e}"))
}

struct TableSpec {
    id: &'static str,
    policy: &'static str,
    dataset: Dataset,
    budget: usize,
}

fn create_body(spec: &TableSpec) -> String {
    let columns: Vec<Json> = spec
        .dataset
        .schema
        .columns
        .iter()
        .map(|c| match &c.ty {
            ColumnType::Categorical { labels } => Json::obj([
                ("name", Json::from(c.name.clone())),
                ("type", Json::from("categorical")),
                ("labels", Json::Arr(labels.iter().map(|l| Json::from(l.clone())).collect())),
            ]),
            ColumnType::Continuous { min, max } => Json::obj([
                ("name", Json::from(c.name.clone())),
                ("type", Json::from("continuous")),
                ("min", Json::from(*min)),
                ("max", Json::from(*max)),
            ]),
        })
        .collect();
    Json::obj([
        ("id", Json::from(spec.id)),
        ("rows", Json::from(spec.dataset.rows())),
        ("schema", Json::obj([("columns", Json::Arr(columns))])),
        ("policy", Json::from(spec.policy)),
        ("refit_every", Json::from(REFIT_EVERY)),
        ("refresh_interval_ms", Json::from(REFRESH_MS)),
    ])
    .to_string()
}

fn answer_to_json(a: &Answer) -> Json {
    Json::obj([
        ("worker", Json::from(a.worker.0)),
        ("row", Json::from(a.cell.row)),
        ("col", Json::from(a.cell.col)),
        (
            "value",
            match a.value {
                Value::Categorical(l) => Json::from(l),
                Value::Continuous(x) => Json::from(x),
            },
        ),
    ])
}

#[derive(Default)]
struct Samples {
    assign_us: Vec<f64>,
    post_us: Vec<f64>,
    answers_posted: usize,
    max_pending: usize,
}

/// One simulated worker's closed loop until the table budget is spent.
#[allow(clippy::too_many_arguments)]
fn run_client(addr: SocketAddr, table: &TableSpec, worker: u32, posted: &AtomicUsize) -> Samples {
    let mut out = Samples::default();
    let mut client = Client::connect(addr);
    // Every client of a table sees the same worker population (same seed):
    // worker `u`'s inherent quality is consistent no matter which thread
    // serves them.
    let mut pool = WorkerPool::new(
        &table.dataset.schema,
        &table.dataset.truth,
        WorkerPoolConfig { num_workers: CLIENTS, ..Default::default() },
        0xBEEF ^ table.budget as u64,
    );
    let cols = table.dataset.cols();
    let mut consecutive_empty = 0usize;
    while posted.load(Ordering::SeqCst) < table.budget {
        let t0 = Instant::now();
        let (status, reply) =
            client.get(&format!("/tables/{}/assignment?worker={worker}&k={cols}", table.id));
        out.assign_us.push(t0.elapsed().as_nanos() as f64 / 1e3);
        assert_eq!(status, 200, "assignment failed: {reply}");
        let cells = reply.get("cells").expect("cells").as_array().expect("array");
        if cells.is_empty() {
            // This worker answered everything the snapshot knows; wait for a
            // refresh to surface new candidates (or for others to finish the
            // budget).
            consecutive_empty += 1;
            if consecutive_empty > 200 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(REFRESH_MS as u64 / 4));
            continue;
        }
        consecutive_empty = 0;
        let answers: Vec<Json> = cells
            .iter()
            .map(|c| {
                let cell = CellId::new(
                    c.get("row").unwrap().as_u64().unwrap() as u32,
                    c.get("col").unwrap().as_u64().unwrap() as u32,
                );
                answer_to_json(&Answer {
                    worker: WorkerId(worker),
                    cell,
                    value: pool.answer(WorkerId(worker), cell),
                })
            })
            .collect();
        let n = answers.len();
        let body = Json::obj([("answers", Json::Arr(answers))]).to_string();
        // 429 (backpressure) and 503 (storage degraded) mean the batch was
        // NOT acknowledged: wait out the hint and resend verbatim instead
        // of aborting the worker.
        let mut backoff = Duration::from_millis(REFRESH_MS as u64 / 2);
        let (status, reply) = loop {
            let t0 = Instant::now();
            let (status, reply) = client.post(&format!("/tables/{}/answers", table.id), &body);
            out.post_us.push(t0.elapsed().as_nanos() as f64 / 1e3);
            if status == 429 || status == 503 {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(1_000));
                continue;
            }
            break (status, reply);
        };
        assert_eq!(status, 200, "ingest failed: {reply}");
        assert_eq!(reply.get("accepted").and_then(Json::as_u64), Some(n as u64));
        out.answers_posted += n;
        out.max_pending =
            out.max_pending.max(reply.get("pending").and_then(Json::as_u64).unwrap_or(0) as usize);
        posted.fetch_add(n, Ordering::SeqCst);
    }
    out
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() - 1) as f64 * p).round() as usize]
}

/// Re-run inference offline on the served log and return the max z-space
/// gap against the served `truth?z=1` document.
fn offline_divergence(client: &mut Client, spec: &TableSpec) -> f64 {
    let (_, served) = client.get(&format!("/tables/{}/answers", spec.id));
    let served = served.get("answers").unwrap().as_array().unwrap();
    let schema = &spec.dataset.schema;
    let mut log = AnswerLog::new(spec.dataset.rows(), spec.dataset.cols());
    for a in served {
        let col = a.get("col").unwrap().as_u64().unwrap() as usize;
        let value = match schema.column_type(col) {
            ColumnType::Categorical { labels } => {
                let name = a.get("value").unwrap().as_str().unwrap();
                Value::Categorical(labels.iter().position(|l| l == name).unwrap() as u32)
            }
            ColumnType::Continuous { .. } => {
                Value::Continuous(a.get("value").unwrap().as_f64().unwrap())
            }
        };
        log.push(Answer {
            worker: WorkerId(a.get("worker").unwrap().as_u64().unwrap() as u32),
            cell: CellId::new(a.get("row").unwrap().as_u64().unwrap() as u32, col as u32),
            value,
        });
    }
    let offline = TCrowd::default_full().infer(schema, &log);
    let (_, tz) = client.get(&format!("/tables/{}/truth?z=1", spec.id));
    let rows = tz.get("truth_z").unwrap().as_array().unwrap();
    let mut max_diff = 0.0f64;
    for (i, row) in rows.iter().enumerate() {
        for (j, cell) in row.as_array().unwrap().iter().enumerate() {
            match offline.truth_z(CellId::new(i as u32, j as u32)) {
                tcrowd_core::TruthDist::Categorical(p) => {
                    let probs = cell.get("probs").unwrap().as_array().unwrap();
                    for (a, b) in probs.iter().zip(p) {
                        max_diff = max_diff.max((a.as_f64().unwrap() - b).abs());
                    }
                }
                tcrowd_core::TruthDist::Continuous(n) => {
                    max_diff =
                        max_diff.max((cell.get("mean").unwrap().as_f64().unwrap() - n.mean).abs());
                }
            }
        }
    }
    max_diff
}

fn service_load(c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--quick" || a == "--test")
        || std::env::var_os("CRITERION_QUICK").is_some();
    // Budgets in average answers per cell; capacity is CLIENTS per cell.
    let avg_budget = if quick { 2.0 } else { 4.0 };

    let specs: Vec<TableSpec> =
        [("alpha", "structure-aware", 30usize, 4usize, 71u64), ("beta", "inherent", 24, 3, 72)]
            .into_iter()
            .map(|(id, policy, rows, columns, seed)| {
                let dataset = generate_dataset(
                    &GeneratorConfig {
                        rows,
                        columns,
                        num_workers: CLIENTS,
                        answers_per_task: 1,
                        ..Default::default()
                    },
                    seed,
                );
                let budget = (avg_budget * (rows * columns) as f64) as usize;
                TableSpec { id, policy, dataset, budget }
            })
            .collect();

    let (registry, server) = tcrowd_service::start("127.0.0.1:0", CLIENTS).expect("start server");
    let addr = server.addr();
    let mut admin = Client::connect(addr);
    for spec in &specs {
        let (status, reply) = admin.post("/tables", &create_body(spec));
        assert_eq!(status, 201, "create failed: {reply}");
    }

    // ---- Closed loop: CLIENTS simulated workers per table, all concurrent.
    let t0 = Instant::now();
    let samples = Arc::new(Mutex::new(Samples::default()));
    std::thread::scope(|scope| {
        for spec in &specs {
            let posted = Arc::new(AtomicUsize::new(0));
            for w in 0..CLIENTS as u32 {
                let samples = Arc::clone(&samples);
                let posted = Arc::clone(&posted);
                scope.spawn(move || {
                    let s = run_client(addr, spec, w, &posted);
                    let mut all = samples.lock().expect("samples");
                    all.assign_us.extend(s.assign_us);
                    all.post_us.extend(s.post_us);
                    all.answers_posted += s.answers_posted;
                    all.max_pending = all.max_pending.max(s.max_pending);
                });
            }
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let mut samples = Arc::try_unwrap(samples)
        .unwrap_or_else(|_| panic!("clients joined"))
        .into_inner()
        .expect("samples");
    samples.assign_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples.post_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    // ---- Measure the contract quantities (asserted AFTER the JSON is
    // written, so the CI guard always reads this run's numbers, not a stale
    // file from a previous run).
    let mut per_table = Vec::new();
    let mut total_served = 0usize;
    for spec in &specs {
        let (_, r) = admin.post(&format!("/tables/{}/refresh", spec.id), "");
        let stats = r.get("stats").expect("stats");
        let answers = stats.get("answers").unwrap().as_u64().unwrap() as usize;
        let epoch = stats.get("epoch").unwrap().as_u64().unwrap() as usize;
        let pending = stats.get("pending").unwrap().as_u64().unwrap();
        let refreshes = stats.get("refreshes").unwrap().as_u64().unwrap();
        total_served += answers;
        let divergence = offline_divergence(&mut admin, spec);
        println!(
            "bench_service table {} ({}): {} answers, {} refreshes, offline z-divergence \
             {divergence:.2e}",
            spec.id, spec.policy, answers, refreshes
        );
        per_table.push((spec, answers, epoch, pending, refreshes, divergence));
    }
    // Measured, not assumed: a nonzero value fails both the assert below and
    // the CI guard reading the JSON.
    let dropped = samples.answers_posted as i64 - total_served as i64;

    // ---- /metrics cross-check: the observability registry's ingest
    // counters, scraped over the wire, must agree with the bench's own
    // acked-answer count exactly — a drifting counter means instrumentation
    // missed (or double-counted) an acked batch.
    let exposition = admin.get_text("/metrics");
    tcrowd_obs::lint(&exposition).unwrap_or_else(|e| panic!("/metrics failed lint: {e}"));
    let counted: f64 =
        specs.iter().map(|s| scrape_value(&exposition, "tcrowd_ingest_answers_total", s.id)).sum();
    let counter_drift = counted as i64 - samples.answers_posted as i64;
    println!(
        "bench_service /metrics cross-check: registry counted {counted:.0} ingested answers \
         vs {} acked POSTs -> drift {counter_drift}",
        samples.answers_posted
    );

    let throughput = samples.answers_posted as f64 / wall_s;
    let assign_p50 = percentile(&samples.assign_us, 0.50);
    let assign_p99 = percentile(&samples.assign_us, 0.99);
    let post_p50 = percentile(&samples.post_us, 0.50);
    let post_p99 = percentile(&samples.post_us, 0.99);
    println!(
        "bench_service: {} answers over {} tables x {CLIENTS} workers in {wall_s:.2}s -> \
         {throughput:.0} answers/s; assignment p50 {assign_p50:.0} µs p99 {assign_p99:.0} µs; \
         ingest p50 {post_p50:.0} µs p99 {post_p99:.0} µs; max refresh lag {} answers",
        samples.answers_posted,
        specs.len(),
        samples.max_pending
    );

    // ---- Correlation-cache effect (in-process): the same structure-aware
    // `select` on the loaded table's final snapshot, with the snapshot's
    // cached CorrelationModel vs a per-request re-fit (the pre-cache
    // behaviour). The p99 gap is what caching bought the assignment
    // endpoint.
    let (cache_cmp_p50, cache_cmp_p99) = {
        use tcrowd_core::AssignmentContext;
        let table = registry.get("alpha").expect("alpha table");
        let snap = table.snapshot();
        let k = table.cols();
        let reps = if quick { 30 } else { 300 };
        let mut policy =
            tcrowd_service::make_policy("structure-aware", table.rows(), 1).expect("policy");
        let mut lanes = [Vec::with_capacity(reps), Vec::with_capacity(reps)];
        for i in 0..reps {
            // Alternate cached/uncached so drift hits both lanes equally.
            for (lane, cached) in lanes.iter_mut().zip([true, false]) {
                let ctx = AssignmentContext {
                    schema: &table.schema,
                    answers: snap.matrix.as_ref(),
                    freeze: snap.matrix.freeze_view(),
                    inference: Some(&snap.result),
                    max_answers_per_cell: None,
                    terminated: None,
                    correlation: if cached { Some(&snap.correlation) } else { None },
                };
                let t0 = Instant::now();
                let picks = policy.select(WorkerId((i % CLIENTS) as u32), k, &ctx);
                lane.push(t0.elapsed().as_nanos() as f64 / 1e3);
                assert!(picks.len() <= k);
            }
        }
        let [mut cached, mut uncached] = lanes;
        cached.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        uncached.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        (
            (percentile(&cached, 0.50), percentile(&uncached, 0.50)),
            (percentile(&cached, 0.99), percentile(&uncached, 0.99)),
        )
    };
    println!(
        "bench_service correlation cache: select p99 {:.0} µs cached vs {:.0} µs re-fit \
         ({:.1}x), p50 {:.0} vs {:.0} µs",
        cache_cmp_p99.0,
        cache_cmp_p99.1,
        cache_cmp_p99.1 / cache_cmp_p99.0.max(1e-9),
        cache_cmp_p50.0,
        cache_cmp_p50.1,
    );

    // ---- Ingest-stall measurement: does an EM refit block `POST /answers`?
    //
    // A dedicated table is pre-loaded until its refits take real wall-clock,
    // then the same HTTP ingest load runs twice: once quiescent (no refits
    // on the serving path — a *shadow fitter* runs the same EM on a
    // detached copy of the freeze, so both phases see identical CPU
    // pressure and the comparison isolates lock coupling from scheduler
    // contention) and once under a refit storm (synchronous refreshes back
    // to back, windows recorded). Every ingest sample overlapping a refit
    // window lands in the "during refit" lane; the gate bounds its p99
    // against the quiescent p99. Before the out-of-lock refit pipeline,
    // the in-window p99 was the refit duration itself (hundreds of
    // milliseconds — hundreds of times over the bound); now both lanes sit
    // within a small constant factor.
    let stall = {
        let spec_rows = 120usize;
        let spec_cols = 4usize;
        let preload_per_task = if quick { 4 } else { 10 };
        let gamma = generate_dataset(
            &GeneratorConfig {
                rows: spec_rows,
                columns: spec_cols,
                num_workers: 40,
                answers_per_task: preload_per_task,
                ..Default::default()
            },
            73,
        );
        let table = registry
            .create(
                Some("gamma".into()),
                gamma.schema.clone(),
                spec_rows,
                tcrowd_service::TableConfig {
                    // The storm thread owns refit timing; keep the background
                    // refresher out of the measurement.
                    refit_every: usize::MAX,
                    refresh_interval: Duration::from_secs(3600),
                    ..Default::default()
                },
            )
            .expect("create gamma table");
        table.submit(gamma.answers.all()).expect("preload gamma");
        assert!(table.refresh_now(), "preload refresh");
        let preloaded = table.snapshot().epoch;

        // One ingest probe lane: POST a 4-answer batch, stamp the sample,
        // sleep a beat. Throttled probes measure the *latency* a live
        // submitter sees (the quantity the gate bounds) without turning the
        // measurement into a saturation test that starves the refitter and
        // balloons the table mid-phase.
        let ingest_lane = |stop: &AtomicBool, t0: Instant, worker_base: u32| {
            let mut client = Client::connect(addr);
            let mut samples: Vec<(f64, f64)> = Vec::new();
            let mut i = 0u32;
            while !stop.load(Ordering::SeqCst) {
                let answers: Vec<Json> = (0..4u32)
                    .map(|j| {
                        let k = (i * 4 + j) as usize % gamma.answers.len();
                        let cell = gamma.answers.all()[k].cell;
                        answer_to_json(&Answer {
                            worker: WorkerId(worker_base + i % 1000),
                            cell,
                            value: gamma.truth_of(cell),
                        })
                    })
                    .collect();
                let body = Json::obj([("answers", Json::Arr(answers))]).to_string();
                let started = t0.elapsed().as_nanos() as f64 / 1e3;
                let s0 = Instant::now();
                let (status, reply) = client.post("/tables/gamma/answers", &body);
                let latency = s0.elapsed().as_nanos() as f64 / 1e3;
                assert_eq!(status, 200, "gamma ingest failed: {reply}");
                samples.push((started, latency));
                i += 1;
                std::thread::sleep(Duration::from_micros(600));
            }
            samples
        };
        const LANES: usize = 2;
        type Windows = Arc<Mutex<Vec<(f64, f64)>>>;
        let run_phase = |secs: f64, windows: Option<&Windows>| {
            let stop = AtomicBool::new(false);
            let t0 = Instant::now();
            std::thread::scope(|scope| {
                match windows {
                    // The storm: real service refreshes, windows recorded.
                    Some(windows) => {
                        let table = &table;
                        let windows = Arc::clone(windows);
                        let stop = &stop;
                        scope.spawn(move || {
                            while !stop.load(Ordering::SeqCst) {
                                let w0 = t0.elapsed().as_nanos() as f64 / 1e3;
                                if table.refresh_now() {
                                    let w1 = t0.elapsed().as_nanos() as f64 / 1e3;
                                    windows.lock().expect("windows").push((w0, w1));
                                } else {
                                    std::thread::sleep(Duration::from_micros(200));
                                }
                            }
                        });
                    }
                    // The CPU-matched baseline: the same EM, on a detached
                    // copy of the freeze — zero table locks touched, so any
                    // latency it induces is scheduler contention, not lock
                    // coupling.
                    None => {
                        let shadow = table.snapshot();
                        let schema = gamma.schema.clone();
                        let stop = &stop;
                        scope.spawn(move || {
                            let model = TCrowd::default_full();
                            while !stop.load(Ordering::SeqCst) {
                                let fit = model.infer_matrix(&schema, &shadow.matrix);
                                std::hint::black_box(fit);
                            }
                        });
                    }
                }
                let lanes: Vec<_> = (0..LANES)
                    .map(|l| {
                        let stop = &stop;
                        let ingest_lane = &ingest_lane;
                        scope.spawn(move || ingest_lane(stop, t0, 50_000 + l as u32 * 1000))
                    })
                    .collect();
                std::thread::sleep(Duration::from_secs_f64(secs));
                stop.store(true, Ordering::SeqCst);
                let mut samples = Vec::new();
                for lane in lanes {
                    samples.extend(lane.join().expect("ingest lane"));
                }
                let refits = windows.map(|w| w.lock().expect("windows").len()).unwrap_or(0);
                (samples, refits)
            })
        };

        // Phase A: quiescent baseline (no refits on the serving path; the
        // shadow fitter keeps the CPU exactly as busy).
        let (quiescent, _) = run_phase(if quick { 0.4 } else { 1.0 }, None);
        // Phase B: the same load under back-to-back refits.
        let windows = Arc::new(Mutex::new(Vec::new()));
        let (stormy, refits) = run_phase(if quick { 1.0 } else { 2.5 }, Some(&windows));
        let windows = windows.lock().expect("windows").clone();
        let refit_ms_mean = if windows.is_empty() {
            0.0
        } else {
            windows.iter().map(|(a, b)| (b - a) / 1e3).sum::<f64>() / windows.len() as f64
        };
        // A sample stalls with a refit if its [start, end] interval overlaps
        // any refit window.
        let in_window: Vec<f64> = stormy
            .iter()
            .filter(|&&(start, latency)| {
                windows.iter().any(|&(w0, w1)| start < w1 && start + latency > w0)
            })
            .map(|&(_, latency)| latency)
            .collect();
        let mut quiescent_lat: Vec<f64> = quiescent.iter().map(|&(_, l)| l).collect();
        quiescent_lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut in_window_sorted = in_window.clone();
        in_window_sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let q_p50 = percentile(&quiescent_lat, 0.50);
        let q_p99 = percentile(&quiescent_lat, 0.99);
        let r_p50 = percentile(&in_window_sorted, 0.50);
        let r_p99 = percentile(&in_window_sorted, 0.99);
        let r_max = in_window_sorted.last().copied().unwrap_or(0.0);
        // The ratio floors the quiescent p99 at a small constant: on a very
        // fast loopback a sub-100µs baseline would turn scheduler noise into
        // gate failures, and the point of the gate is "a refit must not add
        // more than a small constant bound" — not "loopback must be noise
        // free".
        let floor_us = 200.0;
        let ratio = r_p99 / q_p99.max(floor_us);
        println!(
            "bench_service ingest stall: {} preloaded answers, {refits} refits (mean {refit_ms_mean:.0} ms); \
             quiescent ingest p50 {q_p50:.0} µs p99 {q_p99:.0} µs ({} samples); during refit \
             p50 {r_p50:.0} µs p99 {r_p99:.0} µs max {r_max:.0} µs ({} samples) -> stall ratio {ratio:.2}x",
            preloaded,
            quiescent_lat.len(),
            in_window_sorted.len(),
        );
        Json::obj([
            ("preloaded_answers", Json::from(preloaded)),
            ("refit_windows", Json::from(refits)),
            ("refit_ms_mean", Json::from(refit_ms_mean)),
            ("quiescent_samples", Json::from(quiescent_lat.len())),
            ("quiescent_p50_us", Json::from(q_p50)),
            ("quiescent_p99_us", Json::from(q_p99)),
            ("during_refit_samples", Json::from(in_window_sorted.len())),
            ("during_refit_p50_us", Json::from(r_p50)),
            ("during_refit_p99_us", Json::from(r_p99)),
            ("during_refit_max_us", Json::from(r_max)),
            ("stall_ratio_p99", Json::from(ratio)),
            ("p99_floor_us", Json::from(floor_us)),
            ("bound_ratio", Json::from(5.0)),
        ])
    };

    // ---- BENCH_service.json
    let tables_json: Vec<Json> = per_table
        .iter()
        .map(|(spec, answers, _, _, refreshes, divergence)| {
            Json::obj([
                ("id", Json::from(spec.id)),
                ("policy", Json::from(spec.policy)),
                ("rows", Json::from(spec.dataset.rows())),
                ("cols", Json::from(spec.dataset.cols())),
                ("answers", Json::from(*answers)),
                ("refreshes", Json::from(*refreshes as f64)),
                ("offline_z_divergence", Json::from(*divergence)),
            ])
        })
        .collect();
    let doc = Json::obj([
        ("benchmark", Json::from("service_closed_loop")),
        (
            "protocol",
            Json::obj([
                ("tables", Json::from(specs.len())),
                ("concurrent_workers_per_table", Json::from(CLIENTS)),
                ("avg_answers_per_cell_budget", Json::from(avg_budget)),
                ("refresh_interval_ms", Json::from(REFRESH_MS)),
                ("refit_every", Json::from(REFIT_EVERY)),
                ("transport", Json::from("HTTP/1.1 keep-alive over loopback")),
            ]),
        ),
        ("answers_total", Json::from(samples.answers_posted)),
        ("dropped_answers", Json::from(dropped as f64)),
        ("metrics_counter_drift", Json::from(counter_drift as f64)),
        ("wall_seconds", Json::from(wall_s)),
        ("throughput_answers_per_sec", Json::from(throughput)),
        ("assignment_latency_us_p50", Json::from(assign_p50)),
        ("assignment_latency_us_p99", Json::from(assign_p99)),
        ("ingest_latency_us_p50", Json::from(post_p50)),
        ("ingest_latency_us_p99", Json::from(post_p99)),
        ("max_refresh_lag_answers", Json::from(samples.max_pending)),
        ("offline_estimates_equal_within", Json::from(1e-6)),
        (
            // The snapshot-cached CorrelationModel vs the pre-cache
            // fit-per-request behaviour, measured in-process on the loaded
            // table (ROADMAP open item: cut the assignment p99).
            "correlation_cache",
            Json::obj([
                ("select_us_p50_cached", Json::from(cache_cmp_p50.0)),
                ("select_us_p50_refit", Json::from(cache_cmp_p50.1)),
                ("select_us_p99_cached", Json::from(cache_cmp_p99.0)),
                ("select_us_p99_refit", Json::from(cache_cmp_p99.1)),
                ("p99_speedup", Json::from(cache_cmp_p99.1 / cache_cmp_p99.0.max(1e-9))),
            ]),
        ),
        // Ingest latency during EM refit windows vs quiescent: the
        // out-of-lock refit pipeline's acceptance gate (CI fails the build
        // when the in-window p99 exceeds bound_ratio × the floored
        // quiescent p99).
        ("ingest_stall", stall.clone()),
        ("tables", Json::Arr(tables_json)),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    if let Err(e) = std::fs::write(out, format!("{doc}\n")) {
        eprintln!("warning: could not write {out}: {e}");
    }

    // ---- Gates (after the JSON write): nothing dropped, refresher drained,
    // every table at budget, served truth replayable offline, and refits
    // must not stall ingestion.
    assert_eq!(
        dropped, 0,
        "dropped answers: posted {} vs served {total_served}",
        samples.answers_posted
    );
    assert_eq!(
        counter_drift, 0,
        "registry ingest counter drifted from the acked-answer count: \
         counted {counted:.0} vs acked {}",
        samples.answers_posted
    );
    {
        let windows = stall.get("refit_windows").and_then(Json::as_u64).unwrap_or(0);
        let in_window = stall.get("during_refit_samples").and_then(Json::as_u64).unwrap_or(0);
        let ratio = stall.get("stall_ratio_p99").and_then(Json::as_f64).unwrap_or(f64::INFINITY);
        let bound = stall.get("bound_ratio").and_then(Json::as_f64).unwrap_or(5.0);
        assert!(windows >= 2, "refit storm drove only {windows} refits — measurement is vacuous");
        assert!(
            in_window >= 20,
            "only {in_window} ingest samples overlapped refit windows — measurement is vacuous"
        );
        assert!(
            ratio <= bound,
            "EM refits stall ingestion: in-refit p99 is {ratio:.2}x the quiescent p99 (bound {bound}x)"
        );
    }
    for (spec, answers, epoch, pending, _, divergence) in &per_table {
        assert_eq!(*pending, 0, "table {}: refresh must drain pending answers", spec.id);
        assert_eq!(answers, epoch, "table {}: published epoch must cover every answer", spec.id);
        assert!(*answers >= spec.budget, "table {} under budget: {answers}", spec.id);
        assert!(
            *divergence < 1e-6,
            "table {}: served truth diverges from offline infer by {divergence:.3e}",
            spec.id
        );
    }

    // ---- Criterion case: single-request assignment latency on the loaded
    // table (steady state, keep-alive).
    let mut group = c.benchmark_group("service_assignment");
    group.sample_size(if quick { 2 } else { 10 });
    group.bench_function("structure_aware_http", |b| {
        b.iter(|| {
            let (status, reply) = admin.get("/tables/alpha/assignment?worker=3&k=4");
            assert_eq!(status, 200);
            reply.get("cells").unwrap().as_array().unwrap().len()
        })
    });
    group.finish();

    // Close the admin keep-alive connection before shutting down: shutdown
    // joins the workers, and a worker parked on an idle connection only
    // returns at its read timeout (30 s).
    drop(admin);
    registry.shutdown();
    server.shutdown();
}

criterion_group!(benches, service_load);
criterion_main!(benches);
