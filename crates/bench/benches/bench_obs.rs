//! Observability overhead bench: the same closed HTTP ingest+assignment
//! loop run with the metrics registry **enabled** vs **disabled** (the
//! runtime no-op arm), interleaved A/B so machine drift hits both lanes
//! equally. Records `BENCH_obs.json`; CI fails when instrumentation costs
//! more than 5% of ingest throughput.
//!
//! ## Protocol
//!
//! Each round creates a fresh table, drives `WORKERS` concurrent simulated
//! workers through the live loop (`GET assignment` → answer via the
//! `WorkerPool` oracle → `POST answers`) until every worker has covered
//! the grid, then deletes the table. An uncounted warmup round absorbs
//! cold-start costs; measured rounds interleave **ABBA** so neither lane
//! systematically goes first, and per-lane ingest throughput is the
//! **median** over that lane's rounds, so one noisy round cannot flip the
//! gate. Throughput divides acked answers by *busy* request time (the sum
//! of in-flight assignment+ingest latency per worker), not by wall time —
//! the empty-assignment backoff sleeps are scheduler noise, not service
//! cost. The first round of each lane is also cross-checked against
//! `/metrics`: the enabled round's ingest counter must equal the acked
//! answers, the disabled round's must stay zero — proving the two arms
//! measure what they claim.
//!
//! ## The gate
//!
//! Loopback HTTP jitter (~hundreds of µs per request) swamps the ~100 ns
//! per-batch instrumentation cost, so comparing the two HTTP lanes
//! directly cannot resolve the quantity the gate is about — it is
//! **reported, not gated**. Instead the gate combines two stable
//! measurements:
//!
//! * the **instrumentation delta** per ingest batch, measured in-process
//!   (`TableState::submit` with the registry on vs off, chunk-interleaved
//!   on one thread, median per-chunk time — nanosecond-precise);
//! * the service's **real per-batch ingest service time** (the enabled
//!   lane's p50 `POST /answers` latency from the closed loop).
//!
//! Overhead = delta / service time. CI fails above 5%: a regression that
//! pushes instrumentation from nanoseconds toward microseconds per batch
//! trips the gate long before it could dent real ingest throughput.
//!
//! A criterion group additionally pins the primitive costs: counter
//! increment and histogram observe, enabled vs disabled, on a bare
//! [`tcrowd_obs::Registry`].

use criterion::{criterion_group, criterion_main, Criterion};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;
use tcrowd_service::Json;
use tcrowd_sim::{WorkerPool, WorkerPoolConfig};
use tcrowd_tabular::{
    generate_dataset, Answer, CellId, ColumnType, Dataset, GeneratorConfig, Value, WorkerId,
};

/// Concurrent simulated workers per round.
const WORKERS: usize = 4;
/// Refresher cadence / pending threshold: matched to `bench_service` so
/// background refits (and their instrumentation) run during every round.
const REFRESH_MS: usize = 40;
const REFIT_EVERY: usize = 32;
/// Instrumentation may cost at most this fraction of ingest throughput.
const OVERHEAD_BOUND_PCT: f64 = 5.0;

/// A keep-alive HTTP/JSON client over one `TcpStream` (one per worker per
/// round — short-lived, so no retry machinery is needed).
struct Client {
    stream: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        Client { stream: BufReader::new(stream) }
    }

    fn request_text(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.get_ref().write_all(raw.as_bytes()).expect("write");
        let mut status_line = String::new();
        self.stream.read_line(&mut status_line).expect("status line");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut len = 0usize;
        loop {
            let mut line = String::new();
            assert_ne!(self.stream.read_line(&mut line).expect("header"), 0, "closed mid-headers");
            if line.trim_end().is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                len = v.trim().parse().expect("content-length");
            }
        }
        let mut buf = vec![0u8; len];
        self.stream.read_exact(&mut buf).expect("body");
        (status, String::from_utf8(buf).expect("utf-8 body"))
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, Json) {
        let (status, text) = self.request_text(method, path, body);
        (status, tcrowd_service::json::parse(&text).expect("json body"))
    }

    fn get(&mut self, path: &str) -> (u16, Json) {
        self.request("GET", path, "")
    }

    fn post(&mut self, path: &str, body: &str) -> (u16, Json) {
        self.request("POST", path, body)
    }
}

/// The value of `name{table="<table>"}` in a Prometheus exposition.
fn scrape_value(text: &str, name: &str, table: &str) -> f64 {
    let series = format!("{name}{{table=\"{table}\"}} ");
    text.lines()
        .find_map(|l| l.strip_prefix(&series))
        .unwrap_or_else(|| panic!("series {series}… missing from /metrics:\n{text}"))
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("unparsable sample for {series}: {e}"))
}

fn create_body(id: &str, dataset: &Dataset, refit_every: usize, refresh_ms: usize) -> String {
    let columns: Vec<Json> = dataset
        .schema
        .columns
        .iter()
        .map(|c| match &c.ty {
            ColumnType::Categorical { labels } => Json::obj([
                ("name", Json::from(c.name.clone())),
                ("type", Json::from("categorical")),
                ("labels", Json::Arr(labels.iter().map(|l| Json::from(l.clone())).collect())),
            ]),
            ColumnType::Continuous { min, max } => Json::obj([
                ("name", Json::from(c.name.clone())),
                ("type", Json::from("continuous")),
                ("min", Json::from(*min)),
                ("max", Json::from(*max)),
            ]),
        })
        .collect();
    Json::obj([
        ("id", Json::from(id)),
        ("rows", Json::from(dataset.rows())),
        ("schema", Json::obj([("columns", Json::Arr(columns))])),
        ("policy", Json::from("inherent")),
        ("refit_every", Json::from(refit_every)),
        ("refresh_interval_ms", Json::from(refresh_ms)),
    ])
    .to_string()
}

fn answer_to_json(a: &Answer) -> Json {
    Json::obj([
        ("worker", Json::from(a.worker.0)),
        ("row", Json::from(a.cell.row)),
        ("col", Json::from(a.cell.col)),
        (
            "value",
            match a.value {
                Value::Categorical(l) => Json::from(l),
                Value::Continuous(x) => Json::from(x),
            },
        ),
    ])
}

#[derive(Default)]
struct RoundSamples {
    assign_us: Vec<f64>,
    post_us: Vec<f64>,
    answers: usize,
}

/// One worker's closed loop for one round: answer until the policy has
/// nothing left for this worker (it has covered the grid) or the per-round
/// cap is hit.
fn run_worker(addr: SocketAddr, table: &str, dataset: &Dataset, worker: u32) -> RoundSamples {
    let mut out = RoundSamples::default();
    let mut client = Client::connect(addr);
    let mut pool = WorkerPool::new(
        &dataset.schema,
        &dataset.truth,
        WorkerPoolConfig { num_workers: WORKERS, ..Default::default() },
        0x0B5 ^ worker as u64,
    );
    let cols = dataset.cols();
    let cap = dataset.rows() * cols;
    let mut empty = 0usize;
    while out.answers < cap {
        let t0 = Instant::now();
        let (status, reply) =
            client.get(&format!("/tables/{table}/assignment?worker={worker}&k={cols}"));
        out.assign_us.push(t0.elapsed().as_nanos() as f64 / 1e3);
        assert_eq!(status, 200, "assignment failed: {reply}");
        let cells = reply.get("cells").expect("cells").as_array().expect("array");
        if cells.is_empty() {
            empty += 1;
            if empty > 50 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(REFRESH_MS as u64 / 4));
            continue;
        }
        empty = 0;
        let answers: Vec<Json> = cells
            .iter()
            .map(|c| {
                let cell = CellId::new(
                    c.get("row").unwrap().as_u64().unwrap() as u32,
                    c.get("col").unwrap().as_u64().unwrap() as u32,
                );
                answer_to_json(&Answer {
                    worker: WorkerId(worker),
                    cell,
                    value: pool.answer(WorkerId(worker), cell),
                })
            })
            .collect();
        let n = answers.len();
        let body = Json::obj([("answers", Json::Arr(answers))]).to_string();
        let t0 = Instant::now();
        let (status, reply) = client.post(&format!("/tables/{table}/answers"), &body);
        out.post_us.push(t0.elapsed().as_nanos() as f64 / 1e3);
        assert_eq!(status, 200, "ingest failed: {reply}");
        assert_eq!(reply.get("accepted").and_then(Json::as_u64), Some(n as u64));
        out.answers += n;
    }
    out
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() - 1) as f64 * p).round() as usize]
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    percentile(xs, 0.5)
}

/// Accumulated per-lane results across rounds.
#[derive(Default)]
struct Lane {
    assign_us: Vec<f64>,
    post_us: Vec<f64>,
    round_tput: Vec<f64>,
    answers: usize,
}

impl Lane {
    fn json(&mut self, name: &str) -> Json {
        self.assign_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        self.post_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Json::obj([
            ("registry", Json::from(name)),
            ("rounds", Json::from(self.round_tput.len())),
            ("answers_total", Json::from(self.answers)),
            ("ingest_throughput_answers_per_sec_median", Json::from(median(&mut self.round_tput))),
            ("assignment_latency_us_p50", Json::from(percentile(&self.assign_us, 0.50))),
            ("assignment_latency_us_p99", Json::from(percentile(&self.assign_us, 0.99))),
            ("ingest_latency_us_p50", Json::from(percentile(&self.post_us, 0.50))),
            ("ingest_latency_us_p99", Json::from(percentile(&self.post_us, 0.99))),
        ])
    }
}

fn obs_overhead(c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--quick" || a == "--test")
        || std::env::var_os("CRITERION_QUICK").is_some();
    let rounds_per_lane: usize = if quick { 3 } else { 6 };

    let dataset = generate_dataset(
        &GeneratorConfig {
            rows: 40,
            columns: 3,
            num_workers: WORKERS,
            answers_per_task: 1,
            ..Default::default()
        },
        0x0B5,
    );

    let (registry, server) = tcrowd_service::start("127.0.0.1:0", WORKERS).expect("start server");
    let addr = server.addr();
    let mut admin = Client::connect(addr);

    let mut lanes = [Lane::default(), Lane::default()]; // [enabled, disabled]
    let mut lane_checked = [false, false];
    // Round -1 is an uncounted warmup absorbing cold-start costs (thread
    // pool spin-up, allocator, page faults); measured rounds interleave
    // ABBA so neither lane systematically runs first within a pair.
    for round in -1i32..(rounds_per_lane as i32 * 2) {
        let warmup = round < 0;
        let lane = if warmup { 0 } else { usize::from(matches!(round % 4, 1 | 2)) };
        let enabled = lane == 0;
        registry.obs().set_enabled(enabled);
        let id = format!("obs{}", round + 1);
        let (status, reply) =
            admin.post("/tables", &create_body(&id, &dataset, REFIT_EVERY, REFRESH_MS));
        assert_eq!(status, 201, "create failed: {reply}");

        let round_samples: Vec<RoundSamples> = std::thread::scope(|scope| {
            (0..WORKERS as u32)
                .map(|w| {
                    let (id, dataset) = (&id, &dataset);
                    scope.spawn(move || run_worker(addr, id, dataset, w))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });

        let mut answers = 0usize;
        let mut busy_us = 0.0f64;
        for s in &round_samples {
            busy_us += s.assign_us.iter().sum::<f64>() + s.post_us.iter().sum::<f64>();
            answers += s.answers;
        }
        assert!(answers > 0, "round {round} posted nothing");
        if !warmup {
            for s in round_samples {
                lanes[lane].assign_us.extend(s.assign_us);
                lanes[lane].post_us.extend(s.post_us);
            }
            lanes[lane].answers += answers;
            // Busy (in-flight) time per worker, not wall time: the
            // empty-assignment backoff sleeps are scheduler noise.
            lanes[lane].round_tput.push(answers as f64 / (busy_us / 1e6 / WORKERS as f64));
        }

        // First measured round of each lane: prove the arm measures what
        // it claims. Enabled must have counted exactly the acked answers;
        // disabled must have counted nothing.
        if !warmup && !lane_checked[lane] {
            lane_checked[lane] = true;
            let (status, text) = admin.request_text("GET", "/metrics", "");
            assert_eq!(status, 200);
            tcrowd_obs::lint(&text).unwrap_or_else(|e| panic!("/metrics failed lint: {e}"));
            let counted = scrape_value(&text, "tcrowd_ingest_answers_total", &id);
            let want = if enabled { answers as f64 } else { 0.0 };
            assert_eq!(
                counted,
                want,
                "lane `{}` counter mismatch: counted {counted} vs acked {answers}",
                if enabled { "enabled" } else { "disabled" }
            );
        }
        assert_eq!(admin.request("DELETE", &format!("/tables/{id}"), "").0, 200);
    }
    registry.obs().set_enabled(true);

    let [mut on, mut off] = lanes;
    let tput_on = median(&mut on.round_tput.clone());
    let tput_off = median(&mut off.round_tput.clone());
    // Informative only — loopback HTTP jitter is far larger than the
    // instrumentation cost, so this ratio reports the end-to-end picture
    // but does not gate the build.
    let on_json = on.json("enabled");
    let off_json = off.json("disabled");
    let http_overhead_pct = (tput_off / tput_on - 1.0) * 100.0;
    println!(
        "bench_obs: HTTP closed-loop busy throughput enabled {tput_on:.0}/s vs disabled \
         {tput_off:.0}/s ({http_overhead_pct:+.2}%, informative)"
    );

    // ---- The gated measurement: in-process `submit` batch times with the
    // registry on vs off, interleaved per batch (pair order alternating)
    // so drift cancels. The table never refits during the loop (huge
    // refit_every / refresh interval), leaving exactly the instrumented
    // ingest hot path under the clock.
    let (status, reply) = admin.post("/tables", &create_body("gate", &dataset, 1_000_000, 60_000));
    assert_eq!(status, 201, "create failed: {reply}");
    let gate_table = registry.get("gate").expect("gate table");
    let proto: Vec<Value> = dataset
        .schema
        .columns
        .iter()
        .map(|c| match &c.ty {
            ColumnType::Categorical { .. } => Value::Categorical(0),
            ColumnType::Continuous { min, max } => Value::Continuous((min + max) / 2.0),
        })
        .collect();
    let batch_for = |i: usize| -> Vec<Answer> {
        let row = (i % dataset.rows()) as u32;
        proto
            .iter()
            .enumerate()
            .map(|(col, value)| Answer {
                worker: WorkerId(i as u32 % WORKERS as u32),
                cell: CellId::new(row, col as u32),
                value: *value,
            })
            .collect()
    };
    // Timing one ~0.4 µs submit is dominated by clock quantization, so the
    // clock runs over chunks of CHUNK submits and the lanes compare
    // **median** per-chunk time — outlier chunks (page faults, preemption)
    // fall out of the median instead of skewing a mean.
    const CHUNK: usize = 100;
    let chunk_pairs: usize = if quick { 40 } else { 160 };
    let batches: Vec<Vec<Answer>> = (0..CHUNK).map(batch_for).collect();
    for batch in &batches {
        gate_table.submit(batch).expect("warmup submit");
    }
    let mut lane_chunk_us: [Vec<f64>; 2] = [Vec::new(), Vec::new()]; // [enabled, disabled]
    for pair in 0..chunk_pairs {
        let order = if pair % 2 == 0 { [0usize, 1] } else { [1, 0] };
        for lane in order {
            registry.obs().set_enabled(lane == 0);
            let t0 = Instant::now();
            for batch in &batches {
                gate_table.submit(batch).expect("gate submit");
            }
            lane_chunk_us[lane].push(t0.elapsed().as_nanos() as f64 / 1e3);
        }
    }
    registry.obs().set_enabled(true);
    drop(gate_table);
    assert_eq!(admin.request("DELETE", "/tables/gate", "").0, 200);
    let [mut on_chunks, mut off_chunks] = lane_chunk_us;
    let gate_on_us = median(&mut on_chunks);
    let gate_off_us = median(&mut off_chunks);
    let gate_batch_us = |chunk_us: f64| chunk_us / CHUNK as f64;
    // The instrumentation delta per batch, relative to what the service
    // actually spends acking an ingest batch (the enabled lane's p50 POST
    // latency — `on.post_us` is already sorted by `Lane::json`).
    let delta_batch_us = gate_batch_us(gate_on_us) - gate_batch_us(gate_off_us);
    let service_batch_us = percentile(&on.post_us, 0.50);
    let overhead_pct = delta_batch_us / service_batch_us * 100.0;
    println!(
        "bench_obs: instrumentation delta {:.0} ns/batch (in-process submit {:.3} µs enabled \
         vs {:.3} µs disabled over {chunk_pairs} chunk pairs of {CHUNK}); service p50 ingest \
         {service_batch_us:.1} µs/batch -> ingest throughput overhead {overhead_pct:+.3}% \
         (bound {OVERHEAD_BOUND_PCT}%)",
        delta_batch_us * 1e3,
        gate_batch_us(gate_on_us),
        gate_batch_us(gate_off_us)
    );

    // ---- BENCH_obs.json (written before the gate, so CI always reads
    // this run's numbers).
    let doc = Json::obj([
        ("benchmark", Json::from("obs_overhead")),
        (
            "protocol",
            Json::obj([
                ("rounds_per_lane", Json::from(rounds_per_lane)),
                ("concurrent_workers", Json::from(WORKERS)),
                ("rows", Json::from(dataset.rows())),
                ("cols", Json::from(dataset.cols())),
                ("refresh_interval_ms", Json::from(REFRESH_MS)),
                ("refit_every", Json::from(REFIT_EVERY)),
                ("transport", Json::from("HTTP/1.1 keep-alive over loopback")),
                ("interleaving", Json::from("A/B alternating rounds, fresh table per round")),
            ]),
        ),
        (
            "http_closed_loop",
            Json::obj([
                ("enabled", on_json),
                ("disabled", off_json),
                ("busy_throughput_overhead_pct_informative", Json::from(http_overhead_pct)),
            ]),
        ),
        (
            "gate",
            Json::obj([
                (
                    "definition",
                    Json::from(
                        "in-process instrumentation delta per submit batch (A/B chunk-\
                         interleaved medians) over the service's p50 ingest service time",
                    ),
                ),
                ("chunk_pairs", Json::from(chunk_pairs)),
                ("batches_per_chunk", Json::from(CHUNK)),
                ("median_batch_us_enabled", Json::from(gate_batch_us(gate_on_us))),
                ("median_batch_us_disabled", Json::from(gate_batch_us(gate_off_us))),
                ("instrumentation_delta_ns_per_batch", Json::from(delta_batch_us * 1e3)),
                ("service_p50_ingest_us_per_batch", Json::from(service_batch_us)),
            ]),
        ),
        ("ingest_throughput_overhead_pct", Json::from(overhead_pct)),
        ("overhead_bound_pct", Json::from(OVERHEAD_BOUND_PCT)),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    if let Err(e) = std::fs::write(out, format!("{doc}\n")) {
        eprintln!("warning: could not write {out}: {e}");
    }

    // ---- Gate: instrumentation must not cost more than the bound.
    assert!(
        overhead_pct <= OVERHEAD_BOUND_PCT,
        "observability overhead {overhead_pct:.3}% of ingest throughput exceeds the \
         {OVERHEAD_BOUND_PCT}% bound: instrumentation delta {:.0} ns/batch against a \
         {service_batch_us:.1} µs/batch service time",
        delta_batch_us * 1e3
    );

    // ---- Criterion micro: primitive costs, enabled vs disabled.
    let reg = tcrowd_obs::Registry::new();
    let counter = reg.counter("bench_counter_total", &[("table", "micro")]);
    let histogram = reg.histogram("bench_seconds", &[("table", "micro")]);
    let mut group = c.benchmark_group("obs_primitives");
    group.sample_size(if quick { 10 } else { 100 });
    for (tag, enabled) in [("enabled", true), ("disabled", false)] {
        reg.set_enabled(enabled);
        let counter_id = format!("counter_inc_{tag}");
        let histogram_id = format!("histogram_observe_{tag}");
        group.bench_function(counter_id.as_str(), |b| b.iter(|| counter.inc()));
        group.bench_function(histogram_id.as_str(), |b| b.iter(|| histogram.observe_ns(1_234)));
    }
    group.finish();

    drop(admin);
    registry.shutdown();
    server.shutdown();
}

criterion_group!(benches, obs_overhead);
criterion_main!(benches);
