//! Criterion bench behind the incremental freeze pipeline: steady-state
//! refit cost — `AnswerMatrix::build` + cold EM versus
//! `AnswerMatrix::merge_delta` + warm-started EM — on the 1 000×10 synthetic
//! table at growing answer counts, with a correctness gate pinning the warm
//! path to the cold path's fixed point. Records `BENCH_refresh.json`.
//!
//! ## Protocol
//!
//! The answer stream is a shuffled copy of the generated answer set (the
//! simulator's steady state: answers land on random cells). At each measured
//! size the two pipelines replay the same refit chain — `CYCLES` refits of
//! `DELTA` answers each:
//!
//! * **full-rebuild-cold** — every refit rebuilds the matrix from the log
//!   and runs EM from scratch at the default (production) tolerance.
//! * **delta-merge-warm** — every refit splices the log tail into the
//!   previous freeze and runs a short warm-started EM polish (loose ELBO
//!   tolerance sized for refits — the next refit re-polishes anyway).
//!
//! Both chains' final fits are scored against a deeply-converged reference;
//! at 20k/50k answers the warm chain matches or beats the cold chain's
//! accuracy, so the speedup is not bought with quality. At the sparsest
//! point (5k ≈ 0.5 answers/cell) a weakly-pinned categorical cell can
//! settle in a different local attractor than the reference — the recorded
//! `dist_*` fields keep that visible rather than hiding it. The separate
//! convergence gate runs both paths under the deep configuration and
//! asserts estimate agreement within 1e-6 (z-score units, i.e. 1e-6 of a
//! column spread in the original scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tcrowd_core::diagnostics::max_z_discrepancy;
use tcrowd_core::{EmOptions, InferenceResult, TCrowd, TCrowdOptions};
use tcrowd_tabular::{generate_dataset, Answer, AnswerLog, AnswerMatrix, GeneratorConfig};

/// Refit cadence: answers collected between refits (matches the simulator's
/// default `inference_every = 5` HITs × 10-cell HITs).
const DELTA: usize = 50;
/// Refit cycles averaged per measurement.
const CYCLES: usize = 4;
/// EM budget of one steady-state warm refit: a loose ELBO tolerance sized
/// for refits (the next refit re-polishes anyway) with a small iteration
/// cap. Near the fixed point this stops after ~2 iterations; in sparse,
/// weakly-pinned regimes it keeps going until the fit settles. Tuned so the
/// warm chain's distance from the converged fixed point matches the cold
/// pipeline's; the recorded `dist_*` fields keep that claim honest.
const WARM_POLISH_TOL: f64 = 1e-5;
const WARM_POLISH_MAX_ITERS: usize = 12;

fn warm_refit_opts() -> EmOptions {
    EmOptions { max_iters: WARM_POLISH_MAX_ITERS, tol: WARM_POLISH_TOL, ..Default::default() }
}

fn log_of(stream: &[Answer], rows: usize, cols: usize, n: usize) -> AnswerLog {
    let mut log = AnswerLog::new(rows, cols);
    for a in &stream[..n] {
        log.push(*a);
    }
    log
}

struct Point {
    answers: usize,
    cold_ns: f64,
    warm_ns: f64,
    build_ns: f64,
    merge_ns: f64,
    dist_cold: f64,
    dist_warm: f64,
}

fn measure_point(
    schema: &tcrowd_tabular::Schema,
    stream: &[Answer],
    rows: usize,
    cols: usize,
    n: usize,
    reps: usize,
) -> Point {
    let cold_model = TCrowd::default_full();
    let warm_model = TCrowd::new(TCrowdOptions { em: warm_refit_opts(), ..Default::default() });
    let start = n - CYCLES * DELTA;
    let base_log = log_of(stream, rows, cols, start);
    let base_matrix = AnswerMatrix::build(&base_log);
    // Both chains start from the same fit of the pre-chain history.
    let chain_seed = cold_model.infer_matrix(schema, &base_matrix);
    let full_log = log_of(stream, rows, cols, n);

    // Deeply-converged reference on the final log (accuracy yardstick).
    let reference =
        TCrowd::new(TCrowdOptions { em: EmOptions::deep_convergence(), ..Default::default() })
            .infer_matrix(schema, &AnswerMatrix::build(&full_log));

    let best_of = |f: &mut dyn FnMut() -> (f64, InferenceResult)| -> (f64, InferenceResult) {
        let mut best = f64::INFINITY;
        let mut last = None;
        for _ in 0..reps {
            let (ns, fit) = f();
            best = best.min(ns);
            last = Some(fit);
        }
        (best, last.expect("reps >= 1"))
    };

    // Cold pipeline: rebuild + cold EM at every cycle.
    let (cold_ns, cold_fit) = best_of(&mut || {
        let t0 = std::time::Instant::now();
        let mut fit = None;
        for c in 1..=CYCLES {
            let log = log_of(stream, rows, cols, start + c * DELTA);
            let m = AnswerMatrix::build(&log);
            fit = Some(cold_model.infer_matrix(schema, &m));
        }
        (t0.elapsed().as_nanos() as f64 / CYCLES as f64, fit.expect("cycles >= 1"))
    });

    // Warm pipeline: delta-merge + warm polish at every cycle.
    let (warm_ns, warm_fit) = best_of(&mut || {
        let t0 = std::time::Instant::now();
        let mut matrix = base_matrix.clone();
        let mut fit = chain_seed.clone();
        for c in 1..=CYCLES {
            matrix = matrix.merge_delta(&stream[start + (c - 1) * DELTA..start + c * DELTA]);
            fit = warm_model.infer_matrix_warm(schema, &matrix, &fit);
        }
        (t0.elapsed().as_nanos() as f64 / CYCLES as f64, fit)
    });

    // Matrix-only refresh cost at this size (best of 5 — cheap).
    let prefix_matrix = AnswerMatrix::build(&log_of(stream, rows, cols, n - DELTA));
    let tail = &full_log.all()[n - DELTA..];
    let time_ns = |f: &mut dyn FnMut() -> usize| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = std::time::Instant::now();
            std::hint::black_box(f());
            best = best.min(t0.elapsed().as_nanos() as f64);
        }
        best
    };
    let build_ns = time_ns(&mut || AnswerMatrix::build(&full_log).len());
    let merge_ns = time_ns(&mut || prefix_matrix.merge_delta(tail).len());

    Point {
        answers: n,
        cold_ns,
        warm_ns,
        build_ns,
        merge_ns,
        dist_cold: max_z_discrepancy(&cold_fit, &reference),
        dist_warm: max_z_discrepancy(&warm_fit, &reference),
    }
}

fn refresh_refit(c: &mut Criterion) {
    let cfg =
        GeneratorConfig { rows: 1_000, columns: 10, answers_per_task: 5, ..Default::default() };
    let d = generate_dataset(&cfg, 7);
    let (rows, cols) = (d.rows(), d.cols());
    let mut stream = d.answers.all().to_vec();
    stream.shuffle(&mut StdRng::seed_from_u64(99));

    let quick = std::env::args().any(|a| a == "--quick" || a == "--test")
        || std::env::var_os("CRITERION_QUICK").is_some();
    let reps = if quick { 1 } else { 3 };

    // ---- Convergence gate: warm and cold, both driven to the fixed point,
    // must agree within 1e-6 (the `estimates_equal_within` contract).
    let deep_model =
        TCrowd::new(TCrowdOptions { em: EmOptions::deep_convergence(), ..Default::default() });
    let n = stream.len();
    let prev_matrix = AnswerMatrix::build(&log_of(&stream, rows, cols, n - DELTA));
    let deep_prev = deep_model.infer_matrix(&d.schema, &prev_matrix);
    let merged = prev_matrix.merge_delta(&stream[n - DELTA..]);
    let deep_warm = deep_model.infer_matrix_warm(&d.schema, &merged, &deep_prev);
    let deep_cold = deep_model.infer_matrix(&d.schema, &merged);
    let gate = max_z_discrepancy(&deep_warm, &deep_cold);
    assert!(gate < 1e-6, "warm path diverged from cold at convergence: {gate:.3e}");

    // ---- Steady-state refit cost at growing answer counts.
    let points: Vec<Point> = [5_000usize, 20_000, 50_000]
        .iter()
        .map(|&size| measure_point(&d.schema, &stream, rows, cols, size, reps))
        .collect();

    for p in &points {
        println!(
            "refresh_refit {} answers: cold {:.2} ms/refit (dist {:.2e}), warm {:.2} ms/refit \
             (dist {:.2e}) -> {:.2}x; matrix build {:.0} µs vs merge {:.0} µs",
            p.answers,
            p.cold_ns / 1e6,
            p.dist_cold,
            p.warm_ns / 1e6,
            p.dist_warm,
            p.cold_ns / p.warm_ns,
            p.build_ns / 1e3,
            p.merge_ns / 1e3,
        );
    }
    let last = points.last().expect("three points");
    println!(
        "steady-state 50k: {:.2}x refit speedup, converged estimates agree within {gate:.2e}",
        last.cold_ns / last.warm_ns
    );

    let point_json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"answers\": {}, \"full_rebuild_cold_ns_per_refit\": {:.0}, \
                 \"delta_merge_warm_ns_per_refit\": {:.0}, \"speedup\": {:.3}, \
                 \"matrix_build_ns\": {:.0}, \"matrix_merge_ns\": {:.0}, \
                 \"dist_from_converged_cold\": {:.3e}, \"dist_from_converged_warm\": {:.3e}}}",
                p.answers,
                p.cold_ns,
                p.warm_ns,
                p.cold_ns / p.warm_ns,
                p.build_ns,
                p.merge_ns,
                p.dist_cold,
                p.dist_warm,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"refresh_refit\",\n  \"dataset\": {{\"rows\": 1000, \"columns\": \
         10}},\n  \"protocol\": {{\"delta_answers_per_refit\": {DELTA}, \"refit_cycles\": \
         {CYCLES}, \"cold_em\": \"default options, cold start\", \"warm_em\": \
         \"warm start, ELBO tol {WARM_POLISH_TOL}, max {WARM_POLISH_MAX_ITERS} iters\", \
         \"dist_reference\": \
         \"deeply-converged cold fit; max z-space discrepancy\"}},\n  \"points\": [\n{}\n  ],\n  \
         \"steady_state_speedup_50k\": {:.3},\n  \"converged_estimates_max_z_diff\": \
         {gate:.3e},\n  \"estimates_equal_within\": 1e-6\n}}\n",
        point_json.join(",\n"),
        last.cold_ns / last.warm_ns,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_refresh.json");
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("warning: could not write {out}: {e}");
    }

    // Register the 50k single-refit cases with criterion for its reporting.
    let mut group = c.benchmark_group("refresh_refit_50k");
    group.sample_size(reps.max(2));
    group.measurement_time(std::time::Duration::from_secs(20));
    group.throughput(Throughput::Elements(DELTA as u64));
    let full_log = log_of(&stream, rows, cols, n);
    let cold_model = TCrowd::default_full();
    group.bench_with_input(
        BenchmarkId::from_parameter("full_rebuild_cold"),
        &full_log,
        |b, log| {
            b.iter(|| cold_model.infer_matrix(&d.schema, &AnswerMatrix::build(log)).iterations)
        },
    );
    let warm_model = TCrowd::new(TCrowdOptions { em: warm_refit_opts(), ..Default::default() });
    group.bench_with_input(
        BenchmarkId::from_parameter("delta_merge_warm"),
        &(&prev_matrix, &deep_prev),
        |b, (m, prev)| {
            b.iter(|| {
                let merged = m.merge_delta(&stream[n - DELTA..]);
                warm_model.infer_matrix_warm(&d.schema, &merged, prev).iterations
            })
        },
    );
    group.finish();
}

criterion_group!(benches, refresh_refit);
criterion_main!(benches);
