//! Runtime comparison of all Table 7 truth-inference methods on the
//! (simulated) Celebrity dataset — context for the efficiency discussion
//! in §6.6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tcrowd_bench::table7_methods;
use tcrowd_tabular::real_sim;

fn baseline_runtimes(c: &mut Criterion) {
    let d = real_sim::celebrity(1);
    let mut group = c.benchmark_group("truth_methods_celebrity");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for method in table7_methods() {
        group.bench_with_input(BenchmarkId::from_parameter(method.name()), &method, |b, m| {
            b.iter(|| std::hint::black_box(m.estimate(&d.schema, &d.answers)).len())
        });
    }
    group.finish();
}

criterion_group!(benches, baseline_runtimes);
criterion_main!(benches);
