//! Durability-layer benchmark: what the WAL costs on the ingest path and
//! what snapshots buy at recovery time. Records `BENCH_persistence.json`.
//!
//! ## Protocol
//!
//! **Ingest throughput** — the same answer stream is committed in
//! group-commit batches four ways: in-memory only (no WAL — the PR-3
//! service baseline), and through a [`tcrowd_store::Wal`] under each fsync
//! policy (`never` / `flush` / `always`). Reported as answers/s plus the
//! overhead factor against the memory-only baseline.
//!
//! **Recovery wall-clock** — for each log length, a data directory is
//! recovered through the real service path (`TableRegistry::recover`)
//! twice: first with the WAL alone (full replay + cold EM fit), then with
//! the snapshot the first recovery itself persisted (tail replay + the
//! posterior *evaluated* at the stored [`tcrowd_core::FitParams`] — one
//! E-step, zero EM iterations). The gap is the snapshot's value.
//!
//! ## Gates (asserted after the JSON is written; CI re-checks the file)
//!
//! * recovered log ≡ ingested log, **bit-identical**, at every size/path;
//! * snapshot-assisted recovery runs no EM and its served truth agrees
//!   with an offline `TCrowd::infer` on that log within 1e-6 z-units.

use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tcrowd_core::diagnostics::max_z_discrepancy;
use tcrowd_core::TCrowd;
use tcrowd_service::{Json, TableConfig, TableRegistry};
use tcrowd_store::{FsyncPolicy, Store, TableMeta};
use tcrowd_tabular::{generate_dataset, AnswerLog, Dataset, GeneratorConfig};

const BATCH: usize = 16;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick" || a == "--test")
        || std::env::var_os("CRITERION_QUICK").is_some()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("tcrowd_bench_persistence")
        .join(format!("{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A dataset whose answer log has ~`n` answers.
fn dataset(n: usize) -> Dataset {
    let (rows, cols) = if n <= 5_000 { (100, 5) } else { (1000, 10) };
    let per_task = (n / (rows * cols)).max(1);
    generate_dataset(
        &GeneratorConfig {
            rows,
            columns: cols,
            num_workers: 40,
            answers_per_task: per_task,
            ..Default::default()
        },
        33,
    )
}

fn meta_for(d: &Dataset) -> TableMeta {
    TableMeta {
        rows: d.rows(),
        schema: d.schema.clone(),
        config: TableConfig {
            refit_every: usize::MAX,
            refresh_interval: Duration::from_secs(3600),
            ..Default::default()
        }
        .to_kv(),
    }
}

/// Commit `d`'s answers through a WAL under `policy`; returns answers/s.
fn wal_ingest_rate(d: &Dataset, policy: FsyncPolicy, tag: &str) -> f64 {
    let dir = fresh_dir(tag);
    let store = Store::open(&dir, policy).expect("open store");
    let mut wal = store.create_table("t", &meta_for(d)).expect("create table");
    let answers = d.answers.all();
    let t0 = Instant::now();
    for batch in answers.chunks(BATCH) {
        wal.append_answers(batch).expect("append");
    }
    wal.sync().expect("final sync");
    let rate = answers.len() as f64 / t0.elapsed().as_secs_f64();
    drop(wal);
    std::fs::remove_dir_all(&dir).ok();
    rate
}

/// The no-WAL baseline: the same batches pushed into an in-memory log.
fn memory_ingest_rate(d: &Dataset) -> f64 {
    let answers = d.answers.all();
    let t0 = Instant::now();
    let mut log = AnswerLog::new(d.rows(), d.cols());
    for batch in answers.chunks(BATCH) {
        for &a in batch {
            log.push(a);
        }
    }
    assert_eq!(log.len(), answers.len());
    answers.len() as f64 / t0.elapsed().as_secs_f64()
}

struct RecoveryPoint {
    answers: usize,
    no_snapshot_ms: f64,
    snapshot_ms: f64,
    replayed_tail_with_snapshot: u64,
    log_identical: bool,
    z_divergence: f64,
}

/// Measure recovery at one log length, both paths, and gate-check the
/// recovered state.
fn recovery_point(n: usize) -> RecoveryPoint {
    let d = dataset(n);
    let dir = fresh_dir(&format!("recovery_{n}"));
    let store = Arc::new(Store::open(&dir, FsyncPolicy::Flush).expect("open store"));
    {
        let mut wal = store.create_table("t", &meta_for(&d)).expect("create table");
        for batch in d.answers.all().chunks(BATCH) {
            wal.append_answers(batch).expect("append");
        }
        wal.sync().expect("sync");
    }

    // Path 1: WAL only — full replay + cold EM fit. Recovering through the
    // real registry also persists a full-epoch snapshot with the fit, which
    // is exactly what path 2 consumes.
    let t0 = Instant::now();
    let reg = TableRegistry::with_store(Arc::clone(&store));
    let report = reg.recover().expect("recover (wal only)");
    let no_snapshot_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.with_snapshot, 0, "first recovery must be snapshot-less");
    let cold_log_ok = reg.get("t").expect("table").snapshot().log.to_vec() == d.answers.all();
    reg.shutdown();

    // Path 2: snapshot-assisted — tail replay (empty tail) + warm-seeded EM.
    let t0 = Instant::now();
    let reg = TableRegistry::with_store(Arc::clone(&store));
    let report = reg.recover().expect("recover (snapshot)");
    let snapshot_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.with_snapshot, 1, "second recovery must use the snapshot");
    let t = reg.get("t").expect("table");
    let snap = t.snapshot();
    let log_identical = cold_log_ok && snap.log.to_vec() == d.answers.all();
    assert_eq!(snap.result.iterations, 0, "snapshot recovery must evaluate, not re-fit");
    // Served truth vs offline inference: the snapshot carried the cold
    // fit's parameters, so the evaluated state agrees to float rounding.
    let offline = TCrowd::default_full().infer(&d.schema, &snap.log.to_log());
    let z_divergence = max_z_discrepancy(&snap.result, &offline);
    let replayed_tail_with_snapshot = report.replayed;
    reg.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    RecoveryPoint {
        answers: d.answers.len(),
        no_snapshot_ms,
        snapshot_ms,
        replayed_tail_with_snapshot,
        log_identical,
        z_divergence,
    }
}

fn persistence(_c: &mut Criterion) {
    let quick = quick_mode();

    // ---- Ingest throughput, WAL on/off at each fsync policy.
    let ingest_n = if quick { 2_000 } else { 20_000 };
    let d = dataset(ingest_n);
    let memory_rate = memory_ingest_rate(&d);
    let mut ingest_json = vec![Json::obj([
        ("mode", Json::from("memory-only")),
        ("answers", Json::from(d.answers.len())),
        ("answers_per_sec", Json::from(memory_rate)),
        ("overhead_vs_memory", Json::from(1.0)),
    ])];
    println!("bench_persistence ingest: memory-only {memory_rate:.0} answers/s");
    for policy in [FsyncPolicy::Never, FsyncPolicy::Flush, FsyncPolicy::Always] {
        let rate = wal_ingest_rate(&d, policy, &format!("ingest_{}", policy.name()));
        println!(
            "bench_persistence ingest: wal fsync={} {rate:.0} answers/s ({:.1}x overhead)",
            policy.name(),
            memory_rate / rate
        );
        ingest_json.push(Json::obj([
            ("mode", Json::from(format!("wal-fsync-{}", policy.name()))),
            ("answers", Json::from(d.answers.len())),
            ("answers_per_sec", Json::from(rate)),
            ("overhead_vs_memory", Json::from(memory_rate / rate)),
        ]));
    }

    // ---- Recovery wall-clock vs log length, with and without snapshots.
    let sizes: &[usize] = if quick { &[2_000] } else { &[5_000, 20_000, 50_000] };
    let points: Vec<RecoveryPoint> = sizes.iter().map(|&n| recovery_point(n)).collect();
    for p in &points {
        println!(
            "bench_persistence recovery at {} answers: wal-only {:.0} ms, snapshot {:.0} ms \
             ({:.2}x), z-divergence {:.2e}",
            p.answers,
            p.no_snapshot_ms,
            p.snapshot_ms,
            p.no_snapshot_ms / p.snapshot_ms,
            p.z_divergence
        );
    }

    // ---- BENCH_persistence.json (written before the asserts so the CI
    // guard always reads this run's numbers).
    let doc = Json::obj([
        ("benchmark", Json::from("persistence")),
        (
            "protocol",
            Json::obj([
                ("group_commit_batch", Json::from(BATCH)),
                ("ingest_answers", Json::from(d.answers.len())),
                (
                    "recovery",
                    Json::from(
                        "full WAL replay + cold EM vs snapshot tail replay + posterior \
                         evaluated at the stored fit params (no EM), through \
                         TableRegistry::recover",
                    ),
                ),
                ("quick", Json::from(quick)),
            ]),
        ),
        ("ingest", Json::Arr(ingest_json)),
        (
            "recovery",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("answers", Json::from(p.answers)),
                            ("no_snapshot_ms", Json::from(p.no_snapshot_ms)),
                            ("snapshot_ms", Json::from(p.snapshot_ms)),
                            ("speedup", Json::from(p.no_snapshot_ms / p.snapshot_ms)),
                            (
                                "replayed_tail_with_snapshot",
                                Json::from(p.replayed_tail_with_snapshot as f64),
                            ),
                            ("recovered_log_identical", Json::from(p.log_identical)),
                            ("recovered_z_divergence", Json::from(p.z_divergence)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("recovered_state_equal_within", Json::from(1e-6)),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_persistence.json");
    if let Err(e) = std::fs::write(out, format!("{doc}\n")) {
        eprintln!("warning: could not write {out}: {e}");
    }

    // ---- Gates.
    for p in &points {
        assert!(p.log_identical, "recovered log differs from ingested log at {}", p.answers);
        assert_eq!(p.replayed_tail_with_snapshot, 0, "snapshot recovery replayed a tail");
        assert!(
            p.z_divergence < 1e-6,
            "recovered served truth diverges from offline inference at {}: {:.3e}",
            p.answers,
            p.z_divergence
        );
    }
}

criterion_group!(benches, persistence);
criterion_main!(benches);
