//! Durability-layer benchmark: what the WAL costs on the ingest path and
//! what snapshots buy at recovery time. Records `BENCH_persistence.json`.
//!
//! ## Protocol
//!
//! **Ingest throughput** — the same answer stream is committed four ways:
//! in-memory only (no WAL — the PR-3 service baseline), and through a
//! [`tcrowd_store::GroupCommit`] commit thread under each fsync policy
//! (`never` / `flush` / `always`), with [`SUBMITTERS`] concurrent
//! submitter threads racing the queue exactly like concurrent HTTP ingest
//! handlers do. Reported as answers/s plus the overhead factor against
//! the memory-only baseline and the measured coalescing (frames per
//! fsync). The headline claim is `always_vs_flush_overhead`: group commit
//! amortises one fsync over many batches, so `fsync=always` lands within
//! 3x of `flush` instead of orders of magnitude behind.
//!
//! **Recovery wall-clock** — for each log length, a data directory is
//! recovered through the real service path (`TableRegistry::recover`)
//! twice: first with the WAL alone (full replay + cold EM fit), then with
//! the snapshot the first recovery itself persisted (tail replay + the
//! posterior *evaluated* at the stored [`tcrowd_core::FitParams`] — one
//! E-step, zero EM iterations). The gap is the snapshot's value.
//!
//! **Segmented recovery** — the same log written as one segment and as a
//! rotated multi-segment chain, recovered cold both times: replay walks
//! the header-chained segments with the same sequential read pattern, so
//! recovery wall-clock must be independent of the segment count (gated at
//! 1.5x).
//!
//! ## Gates (asserted after the JSON is written; CI re-checks the file)
//!
//! * recovered log ≡ ingested log, **bit-identical**, at every size/path;
//! * snapshot-assisted recovery runs no EM and its served truth agrees
//!   with an offline `TCrowd::infer` on that log within 1e-6 z-units;
//! * `fsync=always` throughput within 3x of `flush` (group commit);
//! * multi-segment recovery within 1.5x of single-segment recovery.

use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tcrowd_core::diagnostics::max_z_discrepancy;
use tcrowd_core::TCrowd;
use tcrowd_service::{Json, TableConfig, TableRegistry};
use tcrowd_store::{
    count_segments, CommitStatsView, DurableMark, FsyncPolicy, GroupCommit, MarkSink, Store,
    TableMeta,
};
use tcrowd_tabular::{generate_dataset, AnswerLog, Dataset, GeneratorConfig};

const BATCH: usize = 16;
/// Concurrent submitter threads racing the commit queue — the coalescing
/// window: under full contention one fsync covers up to this many frames.
const SUBMITTERS: usize = 32;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick" || a == "--test")
        || std::env::var_os("CRITERION_QUICK").is_some()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("tcrowd_bench_persistence")
        .join(format!("{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A dataset whose answer log has ~`n` answers.
fn dataset(n: usize) -> Dataset {
    let (rows, cols) = if n <= 5_000 { (100, 5) } else { (1000, 10) };
    let per_task = (n / (rows * cols)).max(1);
    generate_dataset(
        &GeneratorConfig {
            rows,
            columns: cols,
            num_workers: 40,
            answers_per_task: per_task,
            ..Default::default()
        },
        33,
    )
}

fn meta_for(d: &Dataset) -> TableMeta {
    TableMeta {
        rows: d.rows(),
        schema: d.schema.clone(),
        config: TableConfig {
            refit_every: usize::MAX,
            refresh_interval: Duration::from_secs(3600),
            ..Default::default()
        }
        .to_kv(),
    }
}

/// Commit `d`'s answers through the group-commit thread under `policy`,
/// with [`SUBMITTERS`] threads racing the queue; returns answers/s and
/// the coalescing counters.
fn wal_ingest_rate(d: &Dataset, policy: FsyncPolicy, tag: &str) -> (f64, CommitStatsView) {
    let dir = fresh_dir(tag);
    let store = Store::open(&dir, policy).expect("open store");
    let wal = store.create_table("t", &meta_for(d)).expect("create table");
    let mark = DurableMark::starting_at(wal.position());
    let wal = Arc::new(Mutex::new(wal));
    let committer =
        Arc::new(GroupCommit::spawn_plain(Arc::clone(&wal), Arc::new(MarkSink(mark.clone()))));
    let answers = d.answers.all();
    let shard = answers.len().div_ceil(SUBMITTERS).max(1);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for chunk in answers.chunks(shard) {
            let committer = Arc::clone(&committer);
            s.spawn(move || {
                for batch in chunk.chunks(BATCH) {
                    let ticket = committer.submit(batch.to_vec()).expect("submit");
                    ticket.wait().expect("commit ack");
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = committer.stats();
    assert_eq!(stats.answers as usize, answers.len(), "every answer must be committed");
    assert_eq!(mark.get().answers as usize, answers.len(), "mark must cover the acked prefix");
    committer.shutdown();
    drop(committer);
    drop(wal);
    std::fs::remove_dir_all(&dir).ok();
    (answers.len() as f64 / elapsed, stats)
}

/// The no-WAL baseline: the same batches pushed into an in-memory log.
fn memory_ingest_rate(d: &Dataset) -> f64 {
    let answers = d.answers.all();
    let t0 = Instant::now();
    let mut log = AnswerLog::new(d.rows(), d.cols());
    for batch in answers.chunks(BATCH) {
        for &a in batch {
            log.push(a);
        }
    }
    assert_eq!(log.len(), answers.len());
    answers.len() as f64 / t0.elapsed().as_secs_f64()
}

struct RecoveryPoint {
    answers: usize,
    no_snapshot_ms: f64,
    snapshot_ms: f64,
    replayed_tail_with_snapshot: u64,
    log_identical: bool,
    z_divergence: f64,
}

/// Measure recovery at one log length, both paths, and gate-check the
/// recovered state.
fn recovery_point(n: usize) -> RecoveryPoint {
    let d = dataset(n);
    let dir = fresh_dir(&format!("recovery_{n}"));
    let store = Arc::new(Store::open(&dir, FsyncPolicy::Flush).expect("open store"));
    {
        let mut wal = store.create_table("t", &meta_for(&d)).expect("create table");
        for batch in d.answers.all().chunks(BATCH) {
            wal.append_answers(batch).expect("append");
        }
        wal.sync().expect("sync");
    }

    // Path 1: WAL only — full replay + cold EM fit. Recovering through the
    // real registry also persists a full-epoch snapshot with the fit, which
    // is exactly what path 2 consumes.
    let t0 = Instant::now();
    let reg = TableRegistry::with_store(Arc::clone(&store));
    let report = reg.recover().expect("recover (wal only)");
    let no_snapshot_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.with_snapshot, 0, "first recovery must be snapshot-less");
    let cold_log_ok = reg.get("t").expect("table").snapshot().log.to_vec() == d.answers.all();
    reg.shutdown();

    // Path 2: snapshot-assisted — tail replay (empty tail) + warm-seeded EM.
    let t0 = Instant::now();
    let reg = TableRegistry::with_store(Arc::clone(&store));
    let report = reg.recover().expect("recover (snapshot)");
    let snapshot_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.with_snapshot, 1, "second recovery must use the snapshot");
    let t = reg.get("t").expect("table");
    let snap = t.snapshot();
    let log_identical = cold_log_ok && snap.log.to_vec() == d.answers.all();
    assert_eq!(snap.result.iterations, 0, "snapshot recovery must evaluate, not re-fit");
    // Served truth vs offline inference: the snapshot carried the cold
    // fit's parameters, so the evaluated state agrees to float rounding.
    let offline = TCrowd::default_full().infer(&d.schema, &snap.log.to_log());
    let z_divergence = max_z_discrepancy(&snap.result, &offline);
    let replayed_tail_with_snapshot = report.replayed;
    reg.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    RecoveryPoint {
        answers: d.answers.len(),
        no_snapshot_ms,
        snapshot_ms,
        replayed_tail_with_snapshot,
        log_identical,
        z_divergence,
    }
}

struct SegmentedRecovery {
    answers: usize,
    segments_multi: u64,
    single_segment_ms: f64,
    multi_segment_ms: f64,
    ratio: f64,
    recovered_identical: bool,
}

/// Write the same log once as a single WAL segment and once rotated into
/// many, then cold-recover each through the real registry path. Returns
/// the wall-clock pair — the multi/single ratio is the "recovery is
/// bounded by the live tail, not the file layout" claim.
fn segmented_recovery(n: usize) -> SegmentedRecovery {
    let d = dataset(n);
    let mut recovered_identical = true;
    let mut run = |tag: &str, segment_max: Option<u64>| -> (f64, u64) {
        let dir = fresh_dir(&format!("segrec_{n}_{tag}"));
        let store = Arc::new(Store::open(&dir, FsyncPolicy::Flush).expect("open store"));
        {
            let mut wal = store.create_table("t", &meta_for(&d)).expect("create table");
            if let Some(max) = segment_max {
                wal.set_segment_max(max);
            }
            for batch in d.answers.all().chunks(BATCH) {
                wal.append_answers(batch).expect("append");
            }
            wal.sync().expect("sync");
        }
        let segments = count_segments(&store.table_dir("t"));
        let t0 = Instant::now();
        let reg = TableRegistry::with_store(Arc::clone(&store));
        let report = reg.recover().expect("recover");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(report.with_snapshot, 0, "segmented recovery must be snapshot-less");
        recovered_identical &=
            reg.get("t").expect("table").snapshot().log.to_vec() == d.answers.all();
        reg.shutdown();
        std::fs::remove_dir_all(&dir).ok();
        (ms, segments)
    };
    let (single_segment_ms, single_segments) = run("one", None);
    assert_eq!(single_segments, 1, "default segment size must keep one segment here");
    // Size the rotation threshold off the single-segment byte count so the
    // chain lands at ~8 segments regardless of the answer encoding.
    let wal_bytes = {
        let dir = fresh_dir(&format!("segrec_{n}_probe"));
        let store = Store::open(&dir, FsyncPolicy::Flush).expect("open store");
        let mut wal = store.create_table("t", &meta_for(&d)).expect("create table");
        for batch in d.answers.all().chunks(BATCH) {
            wal.append_answers(batch).expect("append");
        }
        let bytes = wal.position().offset;
        drop(wal);
        std::fs::remove_dir_all(&dir).ok();
        bytes
    };
    let (multi_segment_ms, segments_multi) = run("multi", Some((wal_bytes / 8).max(512)));
    assert!(segments_multi > 1, "rotation threshold produced a single segment");
    SegmentedRecovery {
        answers: d.answers.len(),
        segments_multi,
        single_segment_ms,
        multi_segment_ms,
        ratio: multi_segment_ms / single_segment_ms,
        recovered_identical,
    }
}

fn persistence(_c: &mut Criterion) {
    let quick = quick_mode();

    // ---- Ingest throughput, WAL on/off at each fsync policy.
    let ingest_n = if quick { 2_000 } else { 20_000 };
    let d = dataset(ingest_n);
    let memory_rate = memory_ingest_rate(&d);
    let mut ingest_json = vec![Json::obj([
        ("mode", Json::from("memory-only")),
        ("answers", Json::from(d.answers.len())),
        ("answers_per_sec", Json::from(memory_rate)),
        ("overhead_vs_memory", Json::from(1.0)),
    ])];
    println!("bench_persistence ingest: memory-only {memory_rate:.0} answers/s");
    let mut policy_rates = Vec::new();
    for policy in [FsyncPolicy::Never, FsyncPolicy::Flush, FsyncPolicy::Always] {
        let (rate, stats) = wal_ingest_rate(&d, policy, &format!("ingest_{}", policy.name()));
        let coalescing = stats.frames as f64 / (stats.groups.max(1)) as f64;
        println!(
            "bench_persistence ingest: wal fsync={} {rate:.0} answers/s ({:.1}x overhead, \
             {:.1} frames/fsync over {} groups)",
            policy.name(),
            memory_rate / rate,
            coalescing,
            stats.groups
        );
        ingest_json.push(Json::obj([
            ("mode", Json::from(format!("wal-fsync-{}", policy.name()))),
            ("answers", Json::from(d.answers.len())),
            ("answers_per_sec", Json::from(rate)),
            ("overhead_vs_memory", Json::from(memory_rate / rate)),
            ("commit_groups", Json::from(stats.groups as f64)),
            ("commit_frames", Json::from(stats.frames as f64)),
            ("frames_per_fsync", Json::from(coalescing)),
        ]));
        policy_rates.push((policy.name(), rate));
    }
    let flush_rate = policy_rates.iter().find(|(n, _)| *n == "flush").expect("flush rate").1;
    let always_rate = policy_rates.iter().find(|(n, _)| *n == "always").expect("always rate").1;
    let always_vs_flush = flush_rate / always_rate;
    println!(
        "bench_persistence ingest: fsync=always is {always_vs_flush:.2}x slower than flush \
         (group commit bound: 3x)"
    );

    // ---- Recovery wall-clock vs log length, with and without snapshots.
    let sizes: &[usize] = if quick { &[2_000] } else { &[5_000, 20_000, 50_000] };
    let points: Vec<RecoveryPoint> = sizes.iter().map(|&n| recovery_point(n)).collect();
    for p in &points {
        println!(
            "bench_persistence recovery at {} answers: wal-only {:.0} ms, snapshot {:.0} ms \
             ({:.2}x), z-divergence {:.2e}",
            p.answers,
            p.no_snapshot_ms,
            p.snapshot_ms,
            p.no_snapshot_ms / p.snapshot_ms,
            p.z_divergence
        );
    }

    // ---- Recovery wall-clock vs segment count (same log, same replay).
    let seg = segmented_recovery(if quick { 2_000 } else { 20_000 });
    println!(
        "bench_persistence segmented recovery at {} answers: 1 segment {:.0} ms vs {} segments \
         {:.0} ms ({:.2}x, bound 1.5x)",
        seg.answers, seg.single_segment_ms, seg.segments_multi, seg.multi_segment_ms, seg.ratio
    );

    // ---- BENCH_persistence.json (written before the asserts so the CI
    // guard always reads this run's numbers).
    let doc = Json::obj([
        ("benchmark", Json::from("persistence")),
        (
            "protocol",
            Json::obj([
                ("group_commit_batch", Json::from(BATCH)),
                ("submitters", Json::from(SUBMITTERS)),
                ("ingest_answers", Json::from(d.answers.len())),
                (
                    "recovery",
                    Json::from(
                        "full WAL replay + cold EM vs snapshot tail replay + posterior \
                         evaluated at the stored fit params (no EM), through \
                         TableRegistry::recover",
                    ),
                ),
                ("quick", Json::from(quick)),
            ]),
        ),
        ("ingest", Json::Arr(ingest_json)),
        ("always_vs_flush_overhead", Json::from(always_vs_flush)),
        ("always_vs_flush_bound", Json::from(3.0)),
        (
            "recovery",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("answers", Json::from(p.answers)),
                            ("no_snapshot_ms", Json::from(p.no_snapshot_ms)),
                            ("snapshot_ms", Json::from(p.snapshot_ms)),
                            ("speedup", Json::from(p.no_snapshot_ms / p.snapshot_ms)),
                            (
                                "replayed_tail_with_snapshot",
                                Json::from(p.replayed_tail_with_snapshot as f64),
                            ),
                            ("recovered_log_identical", Json::from(p.log_identical)),
                            ("recovered_z_divergence", Json::from(p.z_divergence)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "recovery_segments",
            Json::obj([
                ("answers", Json::from(seg.answers)),
                ("segments_multi", Json::from(seg.segments_multi as f64)),
                ("single_segment_ms", Json::from(seg.single_segment_ms)),
                ("multi_segment_ms", Json::from(seg.multi_segment_ms)),
                ("ratio", Json::from(seg.ratio)),
                ("bound", Json::from(1.5)),
                ("recovered_identical", Json::from(seg.recovered_identical)),
            ]),
        ),
        ("recovered_state_equal_within", Json::from(1e-6)),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_persistence.json");
    if let Err(e) = std::fs::write(out, format!("{doc}\n")) {
        eprintln!("warning: could not write {out}: {e}");
    }

    // ---- Gates.
    for p in &points {
        assert!(p.log_identical, "recovered log differs from ingested log at {}", p.answers);
        assert_eq!(p.replayed_tail_with_snapshot, 0, "snapshot recovery replayed a tail");
        assert!(
            p.z_divergence < 1e-6,
            "recovered served truth diverges from offline inference at {}: {:.3e}",
            p.answers,
            p.z_divergence
        );
    }
    assert!(
        always_vs_flush <= 3.0,
        "group commit failed to close the fsync gap: always is {always_vs_flush:.2}x \
         slower than flush (bound 3x)"
    );
    assert!(seg.recovered_identical, "segmented recovery lost or reordered answers");
    assert!(
        seg.ratio <= 1.5,
        "recovery wall-clock depends on segment count: {} segments cost {:.2}x \
         one segment (bound 1.5x)",
        seg.segments_multi,
        seg.ratio
    );
}

criterion_group!(benches, persistence);
criterion_main!(benches);
