//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * exact vs sampled expected-entropy for continuous gains,
//! * learning vs freezing the row/column difficulties,
//! * top-K vs sequential-greedy batching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tcrowd_core::em::EmOptions;
use tcrowd_core::gain::{gain_with_params, GainEstimator};
use tcrowd_core::{
    AssignmentContext, AssignmentPolicy, BatchMode, InherentGainPolicy, TCrowd, TCrowdOptions,
    TruthDist,
};
use tcrowd_stat::Normal;
use tcrowd_tabular::{generate_dataset, GeneratorConfig, WorkerId};

fn gain_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_gain_estimator");
    let truth = TruthDist::Continuous(Normal::new(0.2, 1.7));
    group.bench_function("exact", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            std::hint::black_box(gain_with_params(&truth, 0.4, 0.8, GainEstimator::Exact, &mut rng))
        })
    });
    for &samples in &[10usize, 100] {
        group.bench_with_input(BenchmarkId::new("sampling", samples), &samples, |b, &s| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                std::hint::black_box(gain_with_params(
                    &truth,
                    0.4,
                    0.8,
                    GainEstimator::Sampling { samples: s },
                    &mut rng,
                ))
            })
        });
    }
    group.finish();
}

fn difficulty_ablation(c: &mut Criterion) {
    let d = generate_dataset(
        &GeneratorConfig {
            rows: 60,
            columns: 6,
            num_workers: 30,
            answers_per_task: 4,
            ..Default::default()
        },
        3,
    );
    let mut group = c.benchmark_group("ablation_difficulty");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for (label, learn_row, learn_col) in
        [("full", true, true), ("no_row", false, true), ("flat", false, false)]
    {
        let opts = TCrowdOptions {
            em: EmOptions {
                learn_row_difficulty: learn_row,
                learn_col_difficulty: learn_col,
                ..Default::default()
            },
            ..Default::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let r = TCrowd::new(opts).infer(&d.schema, &d.answers);
                std::hint::black_box(r.iterations)
            })
        });
    }
    group.finish();
}

fn batch_modes(c: &mut Criterion) {
    let d = generate_dataset(
        &GeneratorConfig {
            rows: 100,
            columns: 6,
            num_workers: 40,
            answers_per_task: 3,
            ..Default::default()
        },
        4,
    );
    let inference = TCrowd::default_full().infer(&d.schema, &d.answers);
    let matrix = d.answers.to_matrix();
    let ctx = AssignmentContext {
        schema: &d.schema,
        answers: &d.answers,
        freeze: matrix.freeze_view(),
        inference: Some(&inference),
        max_answers_per_cell: None,
        terminated: None,
        correlation: None,
    };
    let mut group = c.benchmark_group("ablation_batch_mode");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for (label, mode) in [("top_k", BatchMode::TopK), ("sequential", BatchMode::SequentialGreedy)] {
        group.bench_function(label, |b| {
            let mut policy = InherentGainPolicy::default().with_batch(mode);
            b.iter(|| std::hint::black_box(policy.select(WorkerId(9_999), 6, &ctx)))
        });
    }
    group.finish();
}

/// Cost of the policy variants an assignment round can use: the paper's two
/// gain policies against the extension policies (entity-aware fit included —
/// the fit happens inside `select`, mirroring how the runner invokes it).
fn policy_cost(c: &mut Criterion) {
    use tcrowd_core::{EntityAwarePolicy, RowGrouping, StructureAwarePolicy};
    let d = generate_dataset(
        &GeneratorConfig {
            rows: 100,
            columns: 6,
            num_workers: 40,
            answers_per_task: 3,
            ..Default::default()
        },
        9,
    );
    let inference = TCrowd::default_full().infer(&d.schema, &d.answers);
    let matrix = d.answers.to_matrix();
    let ctx = AssignmentContext {
        schema: &d.schema,
        answers: &d.answers,
        freeze: matrix.freeze_view(),
        inference: Some(&inference),
        max_answers_per_cell: None,
        terminated: None,
        correlation: None,
    };
    let mut group = c.benchmark_group("ablation_policy_cost");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    group.bench_function("inherent", |b| {
        let mut policy = InherentGainPolicy::default();
        b.iter(|| std::hint::black_box(policy.select(WorkerId(9_999), 6, &ctx)))
    });
    group.bench_function("structure_aware", |b| {
        let mut policy = StructureAwarePolicy::default();
        b.iter(|| std::hint::black_box(policy.select(WorkerId(9_999), 6, &ctx)))
    });
    group.bench_function("entity_known", |b| {
        let groups: Vec<usize> = (0..100).map(|i| i % 4).collect();
        let mut policy = EntityAwarePolicy::new(RowGrouping::Known(groups));
        b.iter(|| std::hint::black_box(policy.select(WorkerId(9_999), 6, &ctx)))
    });
    group.bench_function("entity_learned", |b| {
        let mut policy = EntityAwarePolicy::new(RowGrouping::Learned { groups: 4, seed: 1 });
        b.iter(|| std::hint::black_box(policy.select(WorkerId(9_999), 6, &ctx)))
    });
    group.finish();
}

criterion_group!(benches, gain_estimators, difficulty_ablation, batch_modes, policy_cost);
criterion_main!(benches);
