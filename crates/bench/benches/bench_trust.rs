//! Adversarial-worker defense benchmark: an adversarial crowd (spammers,
//! a collusion ring, sleeper agents) replayed against the live service over
//! HTTP, three ways. Records `BENCH_trust.json`.
//!
//! ## Protocol
//!
//! One simulated [`WorkerPool`] with an adversarial mix generates a single
//! deterministic answer trace (every worker answers every cell, in rounds).
//! The trace is posted to three tables on one live server:
//!
//! * **clean** — only the honest workers' answers (the no-attack baseline);
//! * **off** — the full trace, trust subsystem disabled (`trust_auto: false`);
//! * **on** — the full trace, automatic quarantine enabled.
//!
//! The honest answer streams are byte-identical across the three tables by
//! construction (one trace, filtered — not re-drawn). After every round the
//! harness forces a refresh on each table and reads `GET …/workers` on the
//! defended table, recording *when* each adversary is quarantined.
//!
//! ## Gates (asserted after the JSON is written)
//!
//! * ≥ 30% of the pool are spammers — the attack is real;
//! * defense-on accuracy ≥ 90% of the clean baseline, and strictly above
//!   defense-off — quarantine recovers the paper's accuracy under attack;
//! * detection precision and recall over the archetype ground truth, where
//!   "detected" means flagged Suspect or Quarantined — Suspect is the state
//!   machine's verdict for uniform spam the EM partly absorbs, quarantine is
//!   for definitive spam and the collusion ring;
//! * the defended table's served log still contains **every** posted answer
//!   — quarantine filters the fit, never the data.

use criterion::{criterion_group, criterion_main, Criterion};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use tcrowd_service::Json;
use tcrowd_sim::{AdversaryConfig, WorkerPool, WorkerPoolConfig};
use tcrowd_tabular::{
    generate_dataset, CellId, ColumnType, Dataset, GeneratorConfig, Value, WorkerId,
};

/// Pool composition: 30 workers, 40% spammers (the gate requires ≥ 30%),
/// one 6-member collusion ring, 2 sleeper agents. Uniform spam alone barely
/// moves T-Crowd's estimates (the paper's robustness result) — the ring is
/// the attack that actually damages the undefended fit, because coordinated
/// identical answers masquerade as high-quality consensus.
const POOL: usize = 30;
const SPAMMER_FRAC: f64 = 0.4;
const COLLUDER_FRAC: f64 = 0.2;
const SLEEPER_FRAC: f64 = 0.067;
/// Rounds of collection; every worker covers every cell once over a run.
const ROUNDS: usize = 6;

/// A keep-alive HTTP/JSON client over one `TcpStream` (reconnects once on a
/// transient error).
struct Client {
    addr: SocketAddr,
    stream: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        Client { addr, stream: BufReader::new(stream) }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, Json) {
        match self.try_request(method, path, body) {
            Ok(reply) => reply,
            Err(_) => {
                *self = Client::connect(self.addr);
                self.try_request(method, path, body).expect("request after reconnect")
            }
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, Json)> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.get_ref().write_all(raw.as_bytes())?;
        let mut status_line = String::new();
        if self.stream.read_line(&mut status_line)? == 0 {
            return Err(bad("connection closed before status line"));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(&format!("bad status line {status_line:?}")))?;
        let mut len = 0usize;
        loop {
            let mut line = String::new();
            if self.stream.read_line(&mut line)? == 0 {
                return Err(bad("connection closed mid-headers"));
            }
            if line.trim_end().is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                len = v.trim().parse().map_err(|_| bad("bad content-length"))?;
            }
        }
        let mut body = vec![0u8; len];
        self.stream.read_exact(&mut body)?;
        let text = String::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?;
        Ok((status, tcrowd_service::json::parse(&text).map_err(|e| bad(&e))?))
    }

    fn get(&mut self, path: &str) -> (u16, Json) {
        self.request("GET", path, "")
    }

    fn post(&mut self, path: &str, body: &str) -> (u16, Json) {
        self.request("POST", path, body)
    }
}

fn create_body(id: &str, dataset: &Dataset, trust_auto: bool) -> String {
    let columns: Vec<Json> = dataset
        .schema
        .columns
        .iter()
        .map(|c| match &c.ty {
            ColumnType::Categorical { labels } => Json::obj([
                ("name", Json::from(c.name.clone())),
                ("type", Json::from("categorical")),
                ("labels", Json::Arr(labels.iter().map(|l| Json::from(l.clone())).collect())),
            ]),
            ColumnType::Continuous { min, max } => Json::obj([
                ("name", Json::from(c.name.clone())),
                ("type", Json::from("continuous")),
                ("min", Json::from(*min)),
                ("max", Json::from(*max)),
            ]),
        })
        .collect();
    Json::obj([
        ("id", Json::from(id)),
        ("rows", Json::from(dataset.rows())),
        ("schema", Json::obj([("columns", Json::Arr(columns))])),
        ("refit_every", Json::from(1_000_000usize)),
        ("refresh_interval_ms", Json::from(600_000usize)),
        ("trust_auto", Json::Bool(trust_auto)),
        // Uniform spam against T-Crowd lands in the 0.40–0.55 quality band
        // (the EM's difficulty terms absorb part of the noise) and the
        // early fits are polluted by the not-yet-quarantined ring, which
        // depresses *everyone's* quality. So outright quarantine stays
        // conservative (hard floor + the collusion signal) and the Suspect
        // band holds the ambiguous middle: honest workers recover above
        // `suspect_exit` once the ring is gone, spammers do not.
        ("trust_suspect_enter", Json::from(0.58)),
        ("trust_suspect_exit", Json::from(0.66)),
        ("trust_quarantine_enter", Json::from(0.42)),
        ("trust_quarantine_exit", Json::from(0.60)),
    ])
    .to_string()
}

/// Post one round's slice of the trace to a table, in bounded batches.
fn post_round(client: &mut Client, id: &str, round: &[(WorkerId, CellId, Value)]) {
    for chunk in round.chunks(128) {
        let answers: Vec<Json> = chunk
            .iter()
            .map(|(w, cell, v)| {
                Json::obj([
                    ("worker", Json::from(w.0)),
                    ("row", Json::from(cell.row)),
                    ("col", Json::from(cell.col)),
                    (
                        "value",
                        match v {
                            Value::Categorical(l) => Json::from(*l),
                            Value::Continuous(x) => Json::from(*x),
                        },
                    ),
                ])
            })
            .collect();
        let body = Json::obj([("answers", Json::Arr(answers))]).to_string();
        let (status, reply) = client.post(&format!("/tables/{id}/answers"), &body);
        assert_eq!(status, 200, "ingest into {id} failed: {reply}");
    }
}

/// Categorical accuracy + continuous MNAD of a table's served truth against
/// the simulation ground truth, and the combined score the gates compare
/// (continuous-valued, so "strictly beats" never ties by accident).
fn measure_accuracy(client: &mut Client, id: &str, dataset: &Dataset) -> (f64, f64, f64) {
    let (status, truth) = client.get(&format!("/tables/{id}/truth"));
    assert_eq!(status, 200, "{truth}");
    let rows = truth.get("estimates").unwrap().as_array().unwrap();
    let (mut cat_n, mut cat_hits) = (0usize, 0usize);
    let (mut cont_n, mut nad_sum) = (0usize, 0.0f64);
    for (i, row) in rows.iter().enumerate() {
        for (j, est) in row.as_array().unwrap().iter().enumerate() {
            match (dataset.schema.column_type(j), &dataset.truth[i][j]) {
                (ColumnType::Categorical { labels }, Value::Categorical(t)) => {
                    cat_n += 1;
                    let name = est.as_str().expect("categorical estimates are label strings");
                    if labels.iter().position(|l| l == name) == Some(*t as usize) {
                        cat_hits += 1;
                    }
                }
                (ColumnType::Continuous { min, max }, Value::Continuous(t)) => {
                    cont_n += 1;
                    nad_sum += (est.as_f64().expect("number") - t).abs() / (max - min);
                }
                _ => unreachable!("truth shape matches schema"),
            }
        }
    }
    let cat_accuracy = cat_hits as f64 / cat_n.max(1) as f64;
    let mnad = nad_sum / cont_n.max(1) as f64;
    // Equal-weight combination on the accuracy scale.
    let score = 0.5 * cat_accuracy + 0.5 * (1.0 - mnad);
    (cat_accuracy, mnad, score)
}

/// Every worker's current trust state from `GET …/workers`.
fn worker_states(client: &mut Client, id: &str) -> Vec<(u32, String)> {
    let (status, report) = client.get(&format!("/tables/{id}/workers"));
    assert_eq!(status, 200, "{report}");
    report
        .get("workers")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|w| {
            (
                w.get("worker").unwrap().as_u64().unwrap() as u32,
                w.get("state").unwrap().as_str().unwrap().to_string(),
            )
        })
        .collect()
}

fn trust_defense(c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--quick" || a == "--test")
        || std::env::var_os("CRITERION_QUICK").is_some();
    let rows = if quick { 12 } else { 24 };
    let cols = 4usize;

    let dataset = generate_dataset(
        &GeneratorConfig {
            rows,
            columns: cols,
            num_workers: POOL,
            answers_per_task: 1,
            ..Default::default()
        },
        83,
    );
    let cells = rows * cols;
    let mut pool = WorkerPool::new(
        &dataset.schema,
        &dataset.truth,
        WorkerPoolConfig {
            num_workers: POOL,
            // Honest means honest here: adversaries are modelled explicitly
            // through archetypes, so the background population carries no
            // generator-level spammers and a tighter quality spread (the
            // archetype ground truth is what detection is scored against).
            quality: tcrowd_tabular::generator::WorkerQualityConfig {
                spammer_fraction: 0.0,
                sigma_ln_phi: 0.45,
                ..Default::default()
            },
            // No per-row familiarity degradation: honest answers reflect the
            // worker's own variance, so the honest and spammer fitted-quality
            // bands separate and detection is scored against a real signal.
            familiarity: None,
            adversaries: AdversaryConfig {
                spammer_frac: SPAMMER_FRAC,
                colluder_frac: COLLUDER_FRAC,
                colluder_groups: 1,
                sleeper_frac: SLEEPER_FRAC,
                // Sleepers build a reputation for a third of the run, then turn.
                sleeper_wake_after: (cells / 3) as u32,
            },
            ..Default::default()
        },
        83,
    );
    let adversaries: Vec<u32> =
        (0..POOL as u32).filter(|w| pool.archetype(WorkerId(*w)).adversarial()).collect();
    let spammers = (0..POOL as u32)
        .filter(|w| pool.archetype(WorkerId(*w)) == tcrowd_sim::Archetype::Spammer)
        .count();
    let spammer_share = spammers as f64 / POOL as f64;

    // ---- One deterministic trace, in rounds: round r covers the cells with
    // `index % ROUNDS == r`, every worker answering each of them once.
    let trace: Vec<Vec<(WorkerId, CellId, Value)>> = (0..ROUNDS)
        .map(|r| {
            let mut round = Vec::new();
            for idx in (r..cells).step_by(ROUNDS) {
                let cell = CellId::new((idx / cols) as u32, (idx % cols) as u32);
                for w in 0..POOL as u32 {
                    let w = WorkerId(w);
                    round.push((w, cell, pool.answer(w, cell)));
                }
            }
            round
        })
        .collect();
    let total_posted: usize = trace.iter().map(Vec::len).sum();

    // ---- Three tables on one live server.
    let (registry, server) = tcrowd_service::start("127.0.0.1:0", 4).expect("start server");
    let mut client = Client::connect(server.addr());
    for (id, auto) in [("clean", false), ("off", false), ("on", true)] {
        let (status, reply) = client.post("/tables", &create_body(id, &dataset, auto));
        assert_eq!(status, 201, "create {id} failed: {reply}");
    }

    // ---- Replay round by round; refresh after each; record when the
    // defended table first flags (Suspect) and first quarantines each worker.
    let mut first_flagged: std::collections::BTreeMap<u32, usize> =
        std::collections::BTreeMap::new();
    let mut first_quarantined: std::collections::BTreeMap<u32, usize> =
        std::collections::BTreeMap::new();
    for (r, round) in trace.iter().enumerate() {
        let honest_only: Vec<(WorkerId, CellId, Value)> =
            round.iter().filter(|(w, _, _)| !pool.archetype(*w).adversarial()).copied().collect();
        post_round(&mut client, "clean", &honest_only);
        post_round(&mut client, "off", round);
        post_round(&mut client, "on", round);
        for id in ["clean", "off", "on"] {
            let (status, reply) = client.post(&format!("/tables/{id}/refresh"), "");
            assert_eq!(status, 200, "refresh {id} failed: {reply}");
        }
        for (w, state) in worker_states(&mut client, "on") {
            if state != "trusted" {
                first_flagged.entry(w).or_insert(r + 1);
            }
            if state == "quarantined" {
                first_quarantined.entry(w).or_insert(r + 1);
            }
        }
    }

    // ---- Measure: accuracy on all three tables, detection on the defended
    // one, log immutability despite quarantine.
    let (clean_cat, clean_mnad, clean_score) = measure_accuracy(&mut client, "clean", &dataset);
    let (off_cat, off_mnad, off_score) = measure_accuracy(&mut client, "off", &dataset);
    let (on_cat, on_mnad, on_score) = measure_accuracy(&mut client, "on", &dataset);

    // Detection is scored over *flagged* workers — Suspect or Quarantined in
    // the final state. Suspect is the state machine's designed verdict for
    // uniform spammers (their fitted quality hovers in the ambiguous band the
    // EM partly absorbs); outright quarantine is reserved for definitive spam
    // and the collusion ring, which is what actually damages accuracy.
    let final_states = worker_states(&mut client, "on");
    let detected: Vec<u32> =
        final_states.iter().filter(|(_, state)| state != "trusted").map(|(w, _)| *w).collect();
    let tp = detected.iter().filter(|w| adversaries.contains(w)).count();
    let precision = if detected.is_empty() { 0.0 } else { tp as f64 / detected.len() as f64 };
    let recall = tp as f64 / adversaries.len().max(1) as f64;
    let ttq: Vec<usize> =
        adversaries.iter().filter_map(|w| first_quarantined.get(w).copied()).collect();
    let ttq_mean =
        if ttq.is_empty() { 0.0 } else { ttq.iter().sum::<usize>() as f64 / ttq.len() as f64 };
    let ttf: Vec<usize> =
        adversaries.iter().filter_map(|w| first_flagged.get(w).copied()).collect();
    let ttf_mean =
        if ttf.is_empty() { 0.0 } else { ttf.iter().sum::<usize>() as f64 / ttf.len() as f64 };

    let (_, served) = client.get("/tables/on/answers");
    let served_answers = served.get("answers").unwrap().as_array().unwrap().len();
    let (_, stats) = client.get("/tables/on/stats");
    let quarantined_workers = stats.get("quarantined_workers").unwrap().as_u64().unwrap();

    println!(
        "bench_trust: {POOL} workers ({} adversarial, {spammers} spammers = {:.0}%), \
         {total_posted} answers over {ROUNDS} rounds",
        adversaries.len(),
        spammer_share * 100.0
    );
    println!(
        "bench_trust accuracy (cat | mnad | score): clean {clean_cat:.3} | {clean_mnad:.3} | \
         {clean_score:.3}; off {off_cat:.3} | {off_mnad:.3} | {off_score:.3}; \
         on {on_cat:.3} | {on_mnad:.3} | {on_score:.3}"
    );
    println!(
        "bench_trust detection: {} flagged ({} quarantined), {tp} true positives -> \
         precision {precision:.2} recall {recall:.2}; mean time-to-flag {ttf_mean:.1} rounds, \
         mean time-to-quarantine {ttq_mean:.1} rounds",
        detected.len(),
        quarantined_workers
    );
    // Per-worker diagnostic table — what a CI failure needs to be triaged.
    let (_, report) = client.get("/tables/on/workers");
    for w in report.get("workers").unwrap().as_array().unwrap() {
        let id = w.get("worker").unwrap().as_u64().unwrap() as u32;
        println!(
            "bench_trust   worker {id:>2} [{:?}]: state {} score {:.3} agreement {:.2}",
            pool.archetype(WorkerId(id)),
            w.get("state").unwrap().as_str().unwrap(),
            w.get("trust_score").unwrap().as_f64().unwrap(),
            w.get("max_agreement").unwrap().as_f64().unwrap(),
        );
    }

    // ---- BENCH_trust.json (written before the gates, so CI always reads
    // this run's numbers).
    let accuracy_of = |cat: f64, mnad: f64, score: f64| {
        Json::obj([
            ("categorical_accuracy", Json::from(cat)),
            ("continuous_mnad", Json::from(mnad)),
            ("score", Json::from(score)),
        ])
    };
    let doc = Json::obj([
        ("benchmark", Json::from("trust_adversarial_defense")),
        (
            "protocol",
            Json::obj([
                ("workers", Json::from(POOL)),
                ("adversaries", Json::from(adversaries.len())),
                ("spammer_frac", Json::from(spammer_share)),
                ("colluder_frac", Json::from(COLLUDER_FRAC)),
                ("sleeper_frac", Json::from(SLEEPER_FRAC)),
                ("rows", Json::from(rows)),
                ("cols", Json::from(cols)),
                ("rounds", Json::from(ROUNDS)),
                ("answers_posted", Json::from(total_posted)),
                ("quick", Json::Bool(quick)),
                ("transport", Json::from("HTTP/1.1 keep-alive over loopback")),
            ]),
        ),
        (
            "accuracy",
            Json::obj([
                ("clean", accuracy_of(clean_cat, clean_mnad, clean_score)),
                ("defense_off", accuracy_of(off_cat, off_mnad, off_score)),
                ("defense_on", accuracy_of(on_cat, on_mnad, on_score)),
                ("on_over_clean", Json::from(on_score / clean_score.max(1e-9))),
            ]),
        ),
        (
            "detection",
            Json::obj([
                ("true_adversaries", Json::from(adversaries.len())),
                ("flagged", Json::from(detected.len())),
                ("quarantined", Json::from(quarantined_workers as f64)),
                ("true_positives", Json::from(tp)),
                ("precision", Json::from(precision)),
                ("recall", Json::from(recall)),
                ("time_to_flag_rounds_mean", Json::from(ttf_mean)),
                ("time_to_quarantine_rounds_mean", Json::from(ttq_mean)),
                (
                    "time_to_quarantine_rounds",
                    Json::Arr(ttq.iter().map(|r| Json::from(*r)).collect()),
                ),
            ]),
        ),
        (
            "log_immutability",
            Json::obj([
                ("answers_posted", Json::from(total_posted)),
                ("answers_served", Json::from(served_answers)),
                ("quarantined_workers", Json::from(quarantined_workers as f64)),
            ]),
        ),
        (
            "gates",
            Json::obj([
                ("min_spammer_frac", Json::from(0.3)),
                ("accuracy_recovery_min", Json::from(0.9)),
                ("precision_min", Json::from(0.75)),
                ("recall_min", Json::from(0.75)),
            ]),
        ),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trust.json");
    if let Err(e) = std::fs::write(out, format!("{doc}\n")) {
        eprintln!("warning: could not write {out}: {e}");
    }

    // ---- Gates.
    assert!(spammer_share >= 0.3, "attack too weak: {spammer_share:.2} spammers");
    assert!(
        on_score >= 0.9 * clean_score,
        "defense-on score {on_score:.3} is below 90% of the clean baseline {clean_score:.3}"
    );
    assert!(
        on_score > off_score,
        "defense-on score {on_score:.3} must strictly beat defense-off {off_score:.3}"
    );
    assert!(precision >= 0.75, "detection precision {precision:.2} below 0.75");
    assert!(recall >= 0.75, "detection recall {recall:.2} below 0.75");
    assert_eq!(
        served_answers, total_posted,
        "quarantine must never drop answers from the served log"
    );
    assert!(quarantined_workers > 0, "the defended table quarantined nobody");

    // ---- Criterion case: the trust-report endpoint on the loaded table.
    let mut group = c.benchmark_group("trust");
    group.sample_size(if quick { 2 } else { 10 });
    group.bench_function("workers_report_http", |b| {
        b.iter(|| {
            let (status, reply) = client.get("/tables/on/workers");
            assert_eq!(status, 200);
            reply.get("workers").unwrap().as_array().unwrap().len()
        })
    });
    group.finish();

    drop(client);
    registry.shutdown();
    server.shutdown();
}

criterion_group!(benches, trust_defense);
criterion_main!(benches);
