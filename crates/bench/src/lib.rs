//! # tcrowd-bench
//!
//! The reproduction harness: shared plumbing for the per-table/per-figure
//! binaries (`src/bin/*.rs`) and the Criterion benches (`benches/*.rs`).
//!
//! Every binary regenerates one table or figure of the paper, prints the
//! same rows/series the paper reports, and writes a TSV under `results/`
//! (override with `TCROWD_RESULTS_DIR`). Repetition counts are tuned for a
//! laptop; raise `TCROWD_REPS` for tighter error bars.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use tcrowd_baselines::{
    Accu, Catd, Crh, DawidSkene, Glad, Gtm, MajorityVoting, MedianBaseline, MinimaxEntropy,
    PerColumnTCrowd, TCrowdMethod, TruthMethod, ZenCrowd,
};
use tcrowd_tabular::tsv::TsvTable;
use tcrowd_tabular::{real_sim, Dataset, QualityReport};

/// Where result TSVs go (`TCROWD_RESULTS_DIR`, default `results/`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("TCROWD_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Repetitions per configuration (`TCROWD_REPS`, default 3; the paper uses
/// 100 — raise it when error bars matter more than wall-clock).
pub fn reps() -> usize {
    std::env::var("TCROWD_REPS").ok().and_then(|v| v.parse().ok()).filter(|&r| r > 0).unwrap_or(3)
}

/// The three simulated real-world datasets (paper Table 6), in paper order.
pub fn real_datasets(seed: u64) -> Vec<Dataset> {
    vec![real_sim::celebrity(seed), real_sim::restaurant(seed), real_sim::emotion(seed)]
}

/// All Table 7 truth-inference rows, in the paper's order.
pub fn table7_methods() -> Vec<Box<dyn TruthMethod>> {
    vec![
        Box::new(TCrowdMethod::full()),
        Box::new(Crh::default()),
        Box::new(Catd::default()),
        Box::new(MajorityVoting),
        Box::new(DawidSkene::default()), // the paper's "EM" row
        Box::new(Glad::default()),
        Box::new(ZenCrowd::default()),
        Box::new(TCrowdMethod::only_categorical()),
        Box::new(PerColumnTCrowd::default()), // §1's central-claim ablation, extra row
        Box::new(MinimaxEntropy::default()),  // §2 ref [40], extra row
        Box::new(Accu::default()),            // §2 ref [12] (AccuSim), extra row
        Box::new(MedianBaseline),
        Box::new(Gtm::default()),
        Box::new(TCrowdMethod::only_continuous()),
    ]
}

/// Per-cell 0/1 losses over the categorical cells of a table, in row-major
/// cell order — the paired unit for the bootstrap significance test.
pub fn categorical_losses(
    schema: &tcrowd_tabular::Schema,
    truth: &[Vec<tcrowd_tabular::Value>],
    estimates: &[Vec<tcrowd_tabular::Value>],
) -> Vec<f64> {
    let mut losses = Vec::new();
    for (t_row, e_row) in truth.iter().zip(estimates) {
        for (j, (t, e)) in t_row.iter().zip(e_row).enumerate() {
            if schema.column_type(j).is_categorical() {
                losses.push((t != e) as i32 as f64);
            }
        }
    }
    losses
}

/// Render an optional metric (Table 7 leaves blanks for methods that do not
/// apply to a datatype).
pub fn fmt_opt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.4}")).unwrap_or_else(|| "/".into())
}

/// Average the error rate and MNAD of several repetition reports.
pub fn average_reports(reports: &[QualityReport]) -> (Option<f64>, Option<f64>) {
    let avg = |pick: fn(&QualityReport) -> Option<f64>| -> Option<f64> {
        let vals: Vec<f64> = reports.iter().filter_map(pick).collect();
        (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
    };
    (avg(|r| r.error_rate), avg(|r| r.mnad))
}

/// Run the synthetic truth-inference sweep shared by Figs. 7–9: for every
/// parameter value, generate `reps` datasets, fit T-Crowd / CRH / GLAD / GTM
/// (the paper compares T-Crowd against CRH plus the per-datatype specialist)
/// and emit one row per (value, method) with the averaged metrics.
pub fn synthetic_sweep<F>(param: &str, values: &[f64], make_cfg: F, reps: usize) -> TsvTable
where
    F: Fn(f64) -> tcrowd_tabular::GeneratorConfig,
{
    use tcrowd_tabular::evaluate_with_answers;
    let methods: Vec<Box<dyn TruthMethod>> = vec![
        Box::new(TCrowdMethod::full()),
        Box::new(Crh::default()),
        Box::new(Glad::default()),
        Box::new(Gtm::default()),
    ];
    let mut table = TsvTable::new(&[param, "method", "error_rate", "mnad"]);
    for &v in values {
        let cfg = make_cfg(v);
        let mut reports: Vec<Vec<QualityReport>> = vec![Vec::new(); methods.len()];
        for seed in 0..reps as u64 {
            let d = tcrowd_tabular::generate_dataset(&cfg, seed * 101 + 7);
            for (mi, m) in methods.iter().enumerate() {
                let est = m.estimate(&d.schema, &d.answers);
                reports[mi].push(evaluate_with_answers(&d.schema, &d.truth, &est, &d.answers));
            }
        }
        for (mi, m) in methods.iter().enumerate() {
            let (er, mnad) = average_reports(&reports[mi]);
            table.push_row(vec![format!("{v}"), m.name().to_string(), fmt_opt(er), fmt_opt(mnad)]);
        }
        eprintln!("{param} = {v} done");
    }
    table
}

/// Print a table to stdout and persist it under [`results_dir`].
pub fn emit(table: &TsvTable, file: &str, caption: &str) {
    println!("\n== {caption} ==");
    print!("{}", table.to_pretty_string());
    let path = results_dir().join(file);
    match table.write(&path) {
        Ok(()) => println!("(written to {})", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_list_matches_table7_rows() {
        let names: Vec<&str> = table7_methods().iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "T-Crowd",
                "CRH",
                "CATD",
                "Majority Voting",
                "D&S",
                "GLAD",
                "ZenCrowd",
                "TC-onlyCate",
                "TC-perColumn",
                "Minimax-Entropy",
                "AccuSim",
                "Median",
                "GTM",
                "TC-onlyCont"
            ]
        );
    }

    #[test]
    fn fmt_opt_renders_blanks() {
        assert_eq!(fmt_opt(None), "/");
        assert_eq!(fmt_opt(Some(0.12345)), "0.1235");
    }

    #[test]
    fn average_reports_skips_missing() {
        let a = QualityReport { error_rate: Some(0.1), mnad: None, columns: vec![] };
        let b = QualityReport { error_rate: Some(0.3), mnad: Some(0.5), columns: vec![] };
        let (er, mnad) = average_reports(&[a, b]);
        assert!((er.unwrap() - 0.2).abs() < 1e-12);
        assert!((mnad.unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn datasets_come_in_paper_order() {
        let names: Vec<String> = real_datasets(1).into_iter().map(|d| d.schema.name).collect();
        assert_eq!(names, vec!["Celebrity", "Restaurant", "Emotion"]);
    }
}
