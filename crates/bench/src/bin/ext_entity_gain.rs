//! Extension experiment: the §7 entity-correlation policy on data with a
//! planted entity-group familiarity effect.
//!
//! Not a figure from the paper — it evaluates the future-work direction the
//! paper sketches in §7 ("a worker may be more familiar to celebrities
//! starring in a certain category of films"). Worlds are generated with
//! per-(worker, group) familiarity coins; the experiment compares four
//! policies at equal budget:
//!
//! * structure-aware information gain (the paper's best, group-blind),
//! * entity-aware with **known** groups (requester metadata),
//! * entity-aware with **learned** groups (clustered from the history),
//! * entity-aware with known groups but *without* the attribute-correlation
//!   component (isolates the entity effect).

use tcrowd_bench::{emit, reps};
use tcrowd_core::{AssignmentPolicy, EntityAwarePolicy, RowGrouping, StructureAwarePolicy, TCrowd};
use tcrowd_sim::{ExperimentConfig, InferenceBackend, Runner, WorkerPool, WorkerPoolConfig};
use tcrowd_tabular::generator::EntityGroups;
use tcrowd_tabular::tsv::TsvTable;
use tcrowd_tabular::{generate_dataset, GeneratorConfig};

const ROWS: usize = 60;
const GROUPS: usize = 4;

fn world(seed: u64) -> (tcrowd_tabular::Dataset, WorkerPool) {
    let eg = EntityGroups { groups: GROUPS, p_unfamiliar: 0.3, difficulty_factor: 30.0 };
    let cfg = GeneratorConfig {
        rows: ROWS,
        columns: 6,
        categorical_ratio: 0.5,
        num_workers: 30,
        answers_per_task: 1,
        entity_groups: Some(eg),
        ..Default::default()
    };
    let d = generate_dataset(&cfg, seed);
    let pool = WorkerPool::new(
        &d.schema,
        &d.truth,
        WorkerPoolConfig { num_workers: 30, entity_groups: Some(eg), ..Default::default() },
        seed * 23 + 11,
    );
    (d, pool)
}

fn main() {
    let reps = reps();
    let known: Vec<usize> = (0..ROWS).map(|i| i % GROUPS).collect();
    let labels = [
        "Structure-Aware",
        "Entity-Aware (known groups)",
        "Entity-Aware (learned groups)",
        "Entity-only (no attr corr)",
    ];
    let mut acc: Vec<std::collections::BTreeMap<i64, (f64, f64, usize)>> =
        vec![Default::default(); labels.len()];

    for seed in 0..reps as u64 {
        for (li, label) in labels.iter().enumerate() {
            let (_, mut pool) = world(seed);
            let mut sa = StructureAwarePolicy::default();
            let mut known_p = EntityAwarePolicy::new(RowGrouping::Known(known.clone()));
            let mut learned_p =
                EntityAwarePolicy::new(RowGrouping::Learned { groups: GROUPS, seed: seed + 3 });
            let mut entity_only = EntityAwarePolicy::new(RowGrouping::Known(known.clone()))
                .without_attribute_correlation();
            let policy: &mut dyn AssignmentPolicy = match li {
                0 => &mut sa,
                1 => &mut known_p,
                2 => &mut learned_p,
                _ => &mut entity_only,
            };
            let runner = Runner::new(ExperimentConfig {
                budget_avg_answers: 5.0,
                checkpoint_step: 0.5,
                ..Default::default()
            });
            let backend = InferenceBackend::TCrowd(TCrowd::default_full());
            let result = runner.run(label, &mut pool, policy, &backend);
            for p in &result.points {
                let key = (p.avg_answers * 100.0).round() as i64;
                let e = acc[li].entry(key).or_insert((0.0, 0.0, 0));
                e.0 += p.error_rate.unwrap_or(f64::NAN);
                e.1 += p.mnad.unwrap_or(f64::NAN);
                e.2 += 1;
            }
            eprintln!("seed {seed} {label} done");
        }
    }

    let mut table = TsvTable::new(&["policy", "avg_answers", "error_rate", "mnad"]);
    for (li, label) in labels.iter().enumerate() {
        for (key, (er, mnad, n)) in &acc[li] {
            table.push_row(vec![
                label.to_string(),
                format!("{:.2}", *key as f64 / 100.0),
                format!("{:.6}", er / *n as f64),
                format!("{:.6}", mnad / *n as f64),
            ]);
        }
    }
    emit(
        &table,
        "ext_entity_gain.tsv",
        &format!("Extension: entity-aware assignment on grouped data ({reps} seed(s))"),
    );
    println!("\nShape to check: with a planted group effect the entity-aware series should");
    println!("converge at least as fast as structure-aware; known groups should be at");
    println!("least as good as learned ones (learning pays a discovery cost early on).");
}
