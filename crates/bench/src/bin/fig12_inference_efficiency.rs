//! Figure 12: efficiency of truth inference.
//!
//! (a) The EM objective (ELBO) per iteration on Celebrity — the paper shows
//! convergence within a handful of iterations.
//! (b) Inference runtime as the number of answers grows — the paper shows
//! linear scaling (O(wvl·|A|)) and reports ~100 answers/second in Python;
//! the Rust figure is the throughput to compare against.

use std::time::Instant;
use tcrowd_bench::emit;
use tcrowd_core::TCrowd;
use tcrowd_tabular::tsv::TsvTable;
use tcrowd_tabular::{generate_dataset, real_sim, GeneratorConfig};

fn main() {
    // ---- (a) Objective trace.
    let d = real_sim::celebrity(1);
    let r = TCrowd::default_full().infer(&d.schema, &d.answers);
    let mut trace = TsvTable::new(&["iteration", "objective"]);
    for (i, v) in r.objective_trace.iter().enumerate() {
        trace.push_row(vec![i.to_string(), format!("{v:.4}")]);
    }
    emit(&trace, "fig12a_objective.tsv", "Figure 12(a): EM objective per iteration");
    println!("\nConverged = {} after {} iterations (paper: < 20).", r.converged, r.iterations);

    // ---- (b) Runtime vs number of answers.
    let mut table = TsvTable::new(&["answers", "seconds", "answers_per_second"]);
    for &target in &[1_000usize, 3_000, 10_000, 30_000, 100_000] {
        // Scale rows to hit the target answer count with 5 answers/task on a
        // 10-column table.
        let rows = (target / (10 * 5)).max(2);
        let cfg = GeneratorConfig { rows, columns: 10, answers_per_task: 5, ..Default::default() };
        let data = generate_dataset(&cfg, 7);
        let n = data.answers.len();
        let start = Instant::now();
        let result = TCrowd::default_full().infer(&data.schema, &data.answers);
        let secs = start.elapsed().as_secs_f64();
        assert!(result.iterations > 0);
        table.push_row(vec![
            n.to_string(),
            format!("{secs:.4}"),
            format!("{:.0}", n as f64 / secs),
        ]);
        eprintln!("answers = {n} done in {secs:.2}s");
    }
    emit(&table, "fig12b_runtime.tsv", "Figure 12(b): inference runtime vs answers");
    println!("\nPaper shape to check: runtime roughly linear in |A| (log-log slope ≈ 1);");
    println!("throughput far above the paper's ~100 answers/s Python prototype.");
}
