//! Figure 6: correlation among attributes on Restaurant.
//!
//! Left: the Aspect × Sentiment correct/wrong contingency table with the
//! conditional accuracies the paper quotes (86% vs 73%). Right: the
//! (StartTarget, EndTarget) error pairs and the fitted conditional Gaussians
//! `P(e_end | e_start = x)` at two probe points.

use tcrowd_bench::emit;
use tcrowd_core::{CorrelationModel, ErrorObservation, PredictedError, TCrowd};
use tcrowd_tabular::tsv::TsvTable;
use tcrowd_tabular::{real_sim, Answer};

fn main() {
    let d = real_sim::restaurant(1);
    let r = TCrowd::default_full().infer(&d.schema, &d.answers);

    // ---- Left: Aspect (col 0) × Sentiment (col 2) contingency vs ground truth.
    let (mut cc, mut cw, mut wc, mut ww) = (0usize, 0usize, 0usize, 0usize);
    for w in d.answers.workers().collect::<Vec<_>>() {
        for i in 0..d.rows() as u32 {
            let row: Vec<&Answer> = d.answers.for_worker_row(w, i).collect();
            let correct = |col: u32| {
                row.iter().find(|a| a.cell.col == col).map(|a| {
                    a.value.expect_categorical() == d.truth_of(a.cell).expect_categorical()
                })
            };
            if let (Some(a_ok), Some(s_ok)) = (correct(0), correct(2)) {
                match (a_ok, s_ok) {
                    (true, true) => cc += 1,
                    (true, false) => cw += 1,
                    (false, true) => wc += 1,
                    (false, false) => ww += 1,
                }
            }
        }
    }
    let mut left = TsvTable::new(&["aspect", "sentiment_correct", "sentiment_wrong"]);
    left.push_row(vec!["correct".into(), cc.to_string(), cw.to_string()]);
    left.push_row(vec!["wrong".into(), wc.to_string(), ww.to_string()]);
    emit(&left, "fig6_contingency.tsv", "Figure 6 (left): Aspect × Sentiment contingency");
    let p_s_given_a_ok = cc as f64 / (cc + cw).max(1) as f64;
    let p_s_given_a_wrong = wc as f64 / (wc + ww).max(1) as f64;
    println!("\nP(Sentiment correct | Aspect correct) = {p_s_given_a_ok:.3}");
    println!("P(Sentiment correct | Aspect wrong)   = {p_s_given_a_wrong:.3}");
    println!("Paper shape to check: the first clearly exceeds the second (0.86 vs 0.73).");

    // ---- Right: StartTarget (3) / EndTarget (4) error scatter + conditionals.
    let mut scatter = TsvTable::new(&["e_start", "e_end"]);
    for w in d.answers.workers().collect::<Vec<_>>() {
        for i in 0..d.rows() as u32 {
            let row: Vec<&Answer> = d.answers.for_worker_row(w, i).collect();
            let err = |col: u32| {
                row.iter()
                    .find(|a| a.cell.col == col)
                    .map(|a| a.value.expect_continuous() - d.truth_of(a.cell).expect_continuous())
            };
            if let (Some(es), Some(ee)) = (err(3), err(4)) {
                scatter.push_row(vec![format!("{es:.4}"), format!("{ee:.4}")]);
            }
        }
    }
    emit(&scatter, "fig6_error_scatter.tsv", "Figure 6 (right): Start/End error pairs");

    let model = CorrelationModel::fit(&d.schema, &d.answers, &r);
    println!("\nW(EndTarget, StartTarget) = {:.3}", model.wjk(4, 3));
    for probe in [0.0, 2.0] {
        if let Some(p @ PredictedError::ContinuousMixture(_)) =
            model.conditional_error(4, &[(3, ErrorObservation::Continuous(probe))])
        {
            let (mean, var) = p.mixture_moments().expect("moments");
            println!("P(e_end | e_start = {probe}) ≈ N({mean:.3}, {var:.3})  (z-scored units)");
        }
    }
    println!("Paper shape to check: conditional mean tracks the observed error upward");
    println!("with roughly unchanged variance (N(0.28, 0.76) -> N(3.75, 0.76) in raw units).");
}
