//! Table 7: effectiveness of truth inference — Error Rate and MNAD of the
//! paper's eleven methods on the three (simulated) real datasets, plus three
//! extra rows (TC-perColumn, Minimax-Entropy, AccuSim) and a paired-bootstrap
//! significance block.
//!
//! Averages over `TCROWD_REPS` dataset seeds. Single-datatype methods are
//! scored only on their datatype ("/" elsewhere), matching the paper's
//! blanks.

use tcrowd_bench::{
    average_reports, categorical_losses, emit, fmt_opt, real_datasets, reps, table7_methods,
};
use tcrowd_stat::bootstrap::paired_bootstrap;
use tcrowd_tabular::tsv::TsvTable;
use tcrowd_tabular::{evaluate_with_answers, QualityReport};

fn main() {
    let reps = reps();
    let methods = table7_methods();
    let mut table = TsvTable::new(&[
        "Method",
        "Celebrity ErrorRate",
        "Celebrity MNAD",
        "Restaurant ErrorRate",
        "Restaurant MNAD",
        "Emotion MNAD",
    ]);

    // Collect reports per (method, dataset) over seeds, plus paired per-cell
    // categorical losses for the bootstrap significance test (same (seed,
    // cell) order for every method, so the pairing is exact).
    let mut all: Vec<Vec<Vec<QualityReport>>> = vec![vec![Vec::new(); 3]; methods.len()];
    let mut losses: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    for seed in 0..reps as u64 {
        for (di, d) in real_datasets(seed).into_iter().enumerate() {
            for (mi, m) in methods.iter().enumerate() {
                let est = m.estimate(&d.schema, &d.answers);
                losses[mi].extend(categorical_losses(&d.schema, &d.truth, &est));
                all[mi][di].push(evaluate_with_answers(&d.schema, &d.truth, &est, &d.answers));
            }
        }
    }

    // Which metric applies to which method (mirrors the paper's blanks).
    let cat_only = ["Majority Voting", "D&S", "GLAD", "ZenCrowd", "TC-onlyCate", "Minimax-Entropy"];
    let cont_only = ["Median", "GTM", "TC-onlyCont"];
    for (mi, m) in methods.iter().enumerate() {
        let name = m.name();
        let (cel_er, cel_mn) = average_reports(&all[mi][0]);
        let (res_er, res_mn) = average_reports(&all[mi][1]);
        let (_, emo_mn) = average_reports(&all[mi][2]);
        let show_er = !cont_only.contains(&name);
        let show_mn = !cat_only.contains(&name);
        table.push_row(vec![
            name.to_string(),
            fmt_opt(cel_er.filter(|_| show_er)),
            fmt_opt(cel_mn.filter(|_| show_mn)),
            fmt_opt(res_er.filter(|_| show_er)),
            fmt_opt(res_mn.filter(|_| show_mn)),
            fmt_opt(emo_mn.filter(|_| show_mn)),
        ]);
    }
    emit(
        &table,
        "table7_truth_inference.tsv",
        &format!("Table 7: truth-inference effectiveness ({reps} seeds)"),
    );
    println!("\nPaper shape to check: T-Crowd best on every column; constrained");
    println!("variants competitive within their class but worse than full T-Crowd.");

    // Paired bootstrap on the pooled categorical losses: is each method's
    // error rate significantly different from T-Crowd's (beyond the paper,
    // which reports point estimates only)?
    println!("\nPaired bootstrap vs T-Crowd (pooled categorical cells, 95% CI):");
    for (mi, m) in methods.iter().enumerate() {
        if mi == 0 || losses[mi].is_empty() || cont_only.contains(&m.name()) {
            continue;
        }
        let r = paired_bootstrap(&losses[mi], &losses[0], 1_000, 0.05, 42 + mi as u64);
        println!(
            "  {:<16} Δerror = {:+.4}  CI [{:+.4}, {:+.4}]  p = {:.3}{}",
            m.name(),
            r.mean_diff,
            r.ci.0,
            r.ci.1,
            r.p_value,
            if r.significant() { "  *" } else { "" },
        );
    }
}
