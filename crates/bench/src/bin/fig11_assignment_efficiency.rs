//! Figure 11: efficiency of task assignment — wall-clock seconds to compute
//! the structure-aware information gain for all candidate tasks, as the
//! answer log grows from 2 to 5 answers per task (Celebrity-shaped data).
//! The paper's claims: cost linear in |A|, and real-time per arrival.

use std::time::Instant;
use tcrowd_bench::{emit, reps};
use tcrowd_core::{
    AssignmentContext, AssignmentPolicy, InherentGainPolicy, StructureAwarePolicy, TCrowd,
};
use tcrowd_tabular::tsv::TsvTable;
use tcrowd_tabular::{generate_dataset, GeneratorConfig, WorkerId};

fn main() {
    let reps = reps().max(3);
    let mut table =
        TsvTable::new(&["answers_per_task", "inherent_seconds", "structure_aware_seconds"]);
    for ans in [2usize, 3, 4, 5] {
        let cfg = GeneratorConfig {
            rows: 174,
            columns: 7,
            num_workers: 109,
            answers_per_task: ans,
            ..Default::default()
        };
        let d = generate_dataset(&cfg, 42);
        let inference = TCrowd::default_full().infer(&d.schema, &d.answers);
        let matrix = d.answers.to_matrix();
        let ctx = AssignmentContext {
            schema: &d.schema,
            answers: &d.answers,
            freeze: matrix.freeze_view(),
            inference: Some(&inference),
            max_answers_per_cell: None,
            terminated: None,
            correlation: None,
        };
        let mut t_inherent = 0.0;
        let mut t_sa = 0.0;
        for rep in 0..reps {
            let worker = WorkerId(1000 + rep as u32); // fresh incoming worker
            let mut inherent = InherentGainPolicy::default();
            let start = Instant::now();
            let picks = inherent.select(worker, 7, &ctx);
            t_inherent += start.elapsed().as_secs_f64();
            assert_eq!(picks.len(), 7);

            let mut sa = StructureAwarePolicy::default();
            let start = Instant::now();
            let picks = sa.select(worker, 7, &ctx);
            t_sa += start.elapsed().as_secs_f64();
            assert_eq!(picks.len(), 7);
        }
        table.push_row(vec![
            ans.to_string(),
            format!("{:.6}", t_inherent / reps as f64),
            format!("{:.6}", t_sa / reps as f64),
        ]);
        eprintln!("answers/task = {ans} done");
    }
    emit(&table, "fig11_assignment_efficiency.tsv", "Figure 11: assignment cost");
    println!("\nPaper shape to check: cost grows roughly linearly with the answers");
    println!("collected so far and stays well inside real-time per arrival.");
    println!("(The Criterion bench `bench_assignment` measures the same quantity rigorously.)");
}
