//! Figure 7: effect of the number of columns (5 → 50) on truth-inference
//! effectiveness. More columns mean more answers per worker, so T-Crowd's
//! unified worker quality gets sharper and both metrics should drift down.

use tcrowd_bench::{emit, reps, synthetic_sweep};
use tcrowd_tabular::GeneratorConfig;

fn main() {
    let table = synthetic_sweep(
        "columns",
        &[5.0, 10.0, 20.0, 30.0, 40.0, 50.0],
        |m| GeneratorConfig { columns: m as usize, ..Default::default() },
        reps(),
    );
    emit(&table, "fig7_columns.tsv", "Figure 7: effect of the number of columns");
    println!("\nPaper shape to check: T-Crowd's Error Rate and MNAD decline as columns");
    println!("grow and dominate CRH and the per-datatype specialists (GLAD/GTM).");
}
