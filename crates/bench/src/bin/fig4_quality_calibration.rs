//! Figure 4: estimated vs actual worker quality on Restaurant, with a linear
//! regression per datatype. The paper reports correlation coefficients of
//! 0.844 (categorical) and 0.841 (continuous).

use tcrowd_bench::emit;
use tcrowd_core::TCrowd;
use tcrowd_stat::describe::std_dev;
use tcrowd_stat::linreg;
use tcrowd_tabular::tsv::TsvTable;
use tcrowd_tabular::{real_sim, Value};

fn main() {
    let d = real_sim::restaurant(1);
    let r = TCrowd::default_full().infer(&d.schema, &d.answers);
    let cats = d.schema.categorical_columns();
    let conts = d.schema.continuous_columns();

    let mut cat_pts: Vec<(f64, f64)> = Vec::new(); // (estimated err prob, actual err rate)
    let mut cont_pts: Vec<(f64, f64)> = Vec::new(); // (estimated std, actual residual std)
    for w in d.answers.workers().collect::<Vec<_>>() {
        let answers: Vec<_> = d.answers.for_worker(w).collect();
        if answers.len() < 10 {
            continue; // too few answers for a stable "actual" quality
        }
        // Actual categorical quality: observed error rate vs ground truth.
        let cat_answers: Vec<_> =
            answers.iter().filter(|a| cats.contains(&(a.cell.col as usize))).collect();
        // Actual continuous quality: std of z-scored residuals.
        let mut residuals = Vec::new();
        for a in answers.iter().filter(|a| conts.contains(&(a.cell.col as usize))) {
            if let (Value::Continuous(x), Value::Continuous(t)) = (a.value, d.truth_of(a.cell)) {
                let (_, sd) = r.scaler(a.cell.col as usize).expect("scaler");
                residuals.push((x - t) / sd);
            }
        }
        let phi = match r.phi_of(w) {
            Some(p) => p,
            None => continue,
        };
        if !cat_answers.is_empty() {
            let wrong = cat_answers
                .iter()
                .filter(|a| a.value.expect_categorical() != d.truth_of(a.cell).expect_categorical())
                .count();
            let actual = wrong as f64 / cat_answers.len() as f64;
            let estimated = 1.0 - r.quality_of(w).expect("fitted worker");
            cat_pts.push((estimated, actual));
        }
        if residuals.len() >= 4 {
            cont_pts.push((phi.sqrt(), std_dev(&residuals)));
        }
    }

    let (cx, cy): (Vec<f64>, Vec<f64>) = cat_pts.iter().copied().unzip();
    let (nx, ny): (Vec<f64>, Vec<f64>) = cont_pts.iter().copied().unzip();
    let cat_fit = linreg::fit(&cx, &cy);
    let cont_fit = linreg::fit(&nx, &ny);

    let mut table = TsvTable::new(&["datatype", "estimated", "actual"]);
    for (e, a) in &cat_pts {
        table.push_row(vec!["categorical".into(), format!("{e:.5}"), format!("{a:.5}")]);
    }
    for (e, a) in &cont_pts {
        table.push_row(vec!["continuous".into(), format!("{e:.5}"), format!("{a:.5}")]);
    }
    emit(&table, "fig4_quality_calibration.tsv", "Figure 4: estimated vs actual quality");

    println!(
        "\ncategorical: r = {:.3}, slope = {:.3} ({} workers)",
        cat_fit.r,
        cat_fit.slope,
        cat_pts.len()
    );
    println!(
        "continuous:  r = {:.3}, slope = {:.3} ({} workers)",
        cont_fit.r,
        cont_fit.slope,
        cont_pts.len()
    );
    println!("Paper shape to check: strong positive correlation, ~0.84 on both.");
}
