//! Figure 2: end-to-end system comparison — Error Rate / MNAD as a function
//! of the average number of answers per task, for AskIt!, CDAS, CRH, CATD
//! and T-Crowd on the three datasets.
//!
//! Budgets follow the paper: 5 answers/task on Celebrity, 4 on Restaurant,
//! 10 on Emotion. Every system sees the same worker pool and arrival
//! sequence per seed.

use tcrowd_baselines::{Catd, CdasPolicy, Crh, EntropyPolicy, MajorityVoting, RandomPolicy};
use tcrowd_bench::{emit, reps};
use tcrowd_core::{AssignmentPolicy, StructureAwarePolicy, TCrowd};
use tcrowd_sim::{ExperimentConfig, InferenceBackend, Runner, WorkerPool, WorkerPoolConfig};
use tcrowd_tabular::generator::WorkerQualityConfig;
use tcrowd_tabular::tsv::TsvTable;
use tcrowd_tabular::{real_sim, Dataset};

struct SystemSpec {
    label: &'static str,
}

fn dataset_pool_cfg(d: &Dataset) -> WorkerPoolConfig {
    let workers = d.worker_truth.len().max(10);
    let quality = if d.schema.name == "Emotion" {
        WorkerQualityConfig {
            median_phi: 0.35,
            sigma_ln_phi: 0.6,
            spammer_fraction: 0.08,
            spammer_factor: 12.0,
        }
    } else {
        WorkerQualityConfig::default()
    };
    WorkerPoolConfig { num_workers: workers, quality, ..Default::default() }
}

fn budget_for(d: &Dataset) -> f64 {
    match d.schema.name.as_str() {
        "Celebrity" => 5.0,
        "Restaurant" => 4.0,
        "Emotion" => 10.0,
        _ => 5.0,
    }
}

fn main() {
    let reps = reps();
    let systems = [
        SystemSpec { label: "AskIt!" },
        SystemSpec { label: "CDAS" },
        SystemSpec { label: "CRH" },
        SystemSpec { label: "CATD" },
        SystemSpec { label: "T-Crowd" },
    ];

    for make in [real_sim::celebrity, real_sim::restaurant, real_sim::emotion] {
        let name = make(0).schema.name.clone();
        // label -> checkpoint -> (sum_er, sum_mnad, count)
        let mut acc: Vec<std::collections::BTreeMap<i64, (f64, f64, usize)>> =
            vec![Default::default(); systems.len()];
        for seed in 0..reps as u64 {
            let d = make(seed);
            let budget = budget_for(&d);
            let runner = Runner::new(ExperimentConfig {
                budget_avg_answers: budget,
                checkpoint_step: 0.25,
                ..Default::default()
            });
            for (si, sys) in systems.iter().enumerate() {
                let mut pool =
                    WorkerPool::new(&d.schema, &d.truth, dataset_pool_cfg(&d), seed * 31 + 5);
                // Policy and backend per system.
                let mv = MajorityVoting;
                let crh = Crh::default();
                let catd = Catd::default();
                let mut entropy = EntropyPolicy;
                let mut cdas = CdasPolicy::seeded(seed * 7 + 1);
                let mut random_crh = RandomPolicy::seeded(seed * 7 + 2);
                let mut random_catd = RandomPolicy::seeded(seed * 7 + 3);
                let mut sa = StructureAwarePolicy::default();
                let (policy, backend): (&mut dyn AssignmentPolicy, InferenceBackend<'_>) =
                    match sys.label {
                        "AskIt!" => (&mut entropy, InferenceBackend::Baseline(&mv)),
                        "CDAS" => (&mut cdas, InferenceBackend::Baseline(&mv)),
                        "CRH" => (&mut random_crh, InferenceBackend::Baseline(&crh)),
                        "CATD" => (&mut random_catd, InferenceBackend::Baseline(&catd)),
                        "T-Crowd" => (&mut sa, InferenceBackend::TCrowd(TCrowd::default_full())),
                        _ => unreachable!(),
                    };
                let result = runner.run(sys.label, &mut pool, policy, &backend);
                for p in &result.points {
                    let key = (p.avg_answers * 100.0).round() as i64;
                    let e = acc[si].entry(key).or_insert((0.0, 0.0, 0));
                    e.0 += p.error_rate.unwrap_or(f64::NAN);
                    e.1 += p.mnad.unwrap_or(f64::NAN);
                    e.2 += 1;
                }
                eprintln!("[{name}] seed {seed} {} done", sys.label);
            }
        }

        let mut table = TsvTable::new(&["system", "avg_answers", "error_rate", "mnad"]);
        for (si, sys) in systems.iter().enumerate() {
            for (key, (er, mnad, n)) in &acc[si] {
                table.push_row(vec![
                    sys.label.to_string(),
                    format!("{:.2}", *key as f64 / 100.0),
                    format!("{:.6}", er / *n as f64),
                    format!("{:.6}", mnad / *n as f64),
                ]);
            }
        }
        emit(
            &table,
            &format!("fig2_{}.tsv", name.to_lowercase()),
            &format!("Figure 2 ({name}): end-to-end comparison, {reps} seed(s)"),
        );
    }
    println!("\nPaper shape to check: T-Crowd converges to low Error Rate/MNAD by ~3");
    println!("answers/task (6 on Emotion); AskIt! drops MNAD early but error rate late;");
    println!("CDAS converges slowly; CRH/CATD sit between.");
}
