//! Figure 3: uniform worker quality — per-worker per-attribute error matrix
//! on Restaurant (top 25 workers by answer count).
//!
//! Categorical entries are error rates; continuous entries are the standard
//! deviation of answer−truth differences normalised by the column's truth
//! std, so both datatypes share one colour scale. The paper's claim: rows
//! look "flat" — a worker good on one attribute is good on the others.

use tcrowd_bench::emit;
use tcrowd_stat::describe::pearson;
use tcrowd_tabular::metrics::worker_attribute_errors;
use tcrowd_tabular::real_sim;
use tcrowd_tabular::tsv::TsvTable;

fn main() {
    let d = real_sim::restaurant(1);
    let (workers, matrix) = worker_attribute_errors(&d, 25, true);

    let mut headers: Vec<String> = vec!["worker".into()];
    headers.extend(d.schema.columns.iter().map(|c| c.name.clone()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = TsvTable::new(&header_refs);
    for (w, row) in workers.iter().zip(&matrix) {
        let mut cells = vec![w.to_string()];
        cells.extend(row.iter().map(|v| format!("{v:.4}")));
        table.push_row(cells);
    }
    emit(&table, "fig3_worker_heatmap.tsv", "Figure 3: worker × attribute error matrix");

    // Quantify the "consistent quality" claim: correlation between each
    // worker's mean categorical error and mean continuous error.
    let cats = d.schema.categorical_columns();
    let conts = d.schema.continuous_columns();
    let mut cat_err = Vec::new();
    let mut cont_err = Vec::new();
    for row in &matrix {
        let c: Vec<f64> = cats.iter().map(|&j| row[j]).filter(|v| v.is_finite()).collect();
        let x: Vec<f64> = conts.iter().map(|&j| row[j]).filter(|v| v.is_finite()).collect();
        if !c.is_empty() && !x.is_empty() {
            cat_err.push(c.iter().sum::<f64>() / c.len() as f64);
            cont_err.push(x.iter().sum::<f64>() / x.len() as f64);
        }
    }
    let r = pearson(&cat_err, &cont_err);
    println!("\nCross-datatype worker-error correlation: r = {r:.3}");
    println!("Paper shape to check: clearly positive (same workers are good/bad on both).");
}
