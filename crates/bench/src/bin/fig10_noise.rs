//! Figure 10: robustness to answer noise on Celebrity — Error Rate
//! (T-Crowd / CRH / ZenCrowd / GLAD / MV) and MNAD (T-Crowd / GTM / CRH /
//! Median) as the perturbed-answer fraction γ grows from 10% to 40%.

use tcrowd_baselines::{
    Crh, Glad, Gtm, MajorityVoting, MedianBaseline, TCrowdMethod, TruthMethod, ZenCrowd,
};
use tcrowd_bench::{average_reports, emit, fmt_opt, reps};
use tcrowd_tabular::noise::add_noise;
use tcrowd_tabular::tsv::TsvTable;
use tcrowd_tabular::{evaluate_with_answers, real_sim, QualityReport};

fn main() {
    let reps = reps();
    let methods: Vec<Box<dyn TruthMethod>> = vec![
        Box::new(TCrowdMethod::full()),
        Box::new(Crh::default()),
        Box::new(ZenCrowd::default()),
        Box::new(Glad::default()),
        Box::new(MajorityVoting),
        Box::new(Gtm::default()),
        Box::new(MedianBaseline),
    ];
    let mut table = TsvTable::new(&["gamma", "method", "error_rate", "mnad"]);
    for gamma in [0.1, 0.2, 0.3, 0.4] {
        let mut reports: Vec<Vec<QualityReport>> = vec![Vec::new(); methods.len()];
        for seed in 0..reps as u64 {
            let clean = real_sim::celebrity(seed);
            let noisy = add_noise(&clean, gamma, seed * 997 + 13);
            for (mi, m) in methods.iter().enumerate() {
                let est = m.estimate(&noisy.schema, &noisy.answers);
                reports[mi].push(evaluate_with_answers(
                    &noisy.schema,
                    &noisy.truth,
                    &est,
                    &noisy.answers,
                ));
            }
        }
        for (mi, m) in methods.iter().enumerate() {
            let (er, mnad) = average_reports(&reports[mi]);
            table.push_row(vec![
                format!("{gamma}"),
                m.name().to_string(),
                fmt_opt(er),
                fmt_opt(mnad),
            ]);
        }
        eprintln!("gamma = {gamma} done");
    }
    emit(&table, "fig10_noise.tsv", &format!("Figure 10: noise robustness ({reps} seed(s))"));
    println!("\nPaper shape to check: Error Rate rises with γ; MNAD *declines* (the answer-std");
    println!("denominator grows faster than RMSE); T-Crowd stays at or ahead of the field.");
}
