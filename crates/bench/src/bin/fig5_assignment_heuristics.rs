//! Figure 5: assignment heuristics on Restaurant — Random, Looping, Entropy,
//! Inherent Information Gain and Structure-Aware Information Gain, all backed
//! by T-Crowd truth inference (the paper fixes the inference method and
//! varies only the heuristic).
//!
//! Two extension series beyond the paper's five: a QASCA-style
//! expected-accuracy policy (§2 ref \[39\]) and the §7 entity-aware policy
//! with learned row groups.

use tcrowd_baselines::{EntropyPolicy, LoopingPolicy, QascaPolicy, RandomPolicy};
use tcrowd_bench::{emit, reps};
use tcrowd_core::{
    AssignmentPolicy, EntityAwarePolicy, InherentGainPolicy, RowGrouping, StructureAwarePolicy,
    TCrowd,
};
use tcrowd_sim::{ExperimentConfig, InferenceBackend, Runner, WorkerPool, WorkerPoolConfig};
use tcrowd_tabular::real_sim;
use tcrowd_tabular::tsv::TsvTable;

fn main() {
    let reps = reps();
    let labels = [
        "Random",
        "Looping",
        "Entropy",
        "Inherent Information Gain",
        "Structure-Aware Information Gain",
        "QASCA (ext)",
        "Entity-Aware (ext)",
    ];
    let mut acc: Vec<std::collections::BTreeMap<i64, (f64, f64, usize)>> =
        vec![Default::default(); labels.len()];

    for seed in 0..reps as u64 {
        let d = real_sim::restaurant(seed);
        let runner = Runner::new(ExperimentConfig {
            budget_avg_answers: 4.0,
            checkpoint_step: 0.25,
            ..Default::default()
        });
        for (li, label) in labels.iter().enumerate() {
            let mut pool = WorkerPool::new(
                &d.schema,
                &d.truth,
                WorkerPoolConfig { num_workers: 96, ..Default::default() },
                seed * 13 + 3,
            );
            let mut random = RandomPolicy::seeded(seed + 11);
            let mut looping = LoopingPolicy::default();
            let mut entropy = EntropyPolicy;
            let mut inherent = InherentGainPolicy::default();
            let mut sa = StructureAwarePolicy::default();
            let mut qasca = QascaPolicy;
            let mut entity =
                EntityAwarePolicy::new(RowGrouping::Learned { groups: 5, seed: seed + 1 });
            let policy: &mut dyn AssignmentPolicy = match *label {
                "Random" => &mut random,
                "Looping" => &mut looping,
                "Entropy" => &mut entropy,
                "Inherent Information Gain" => &mut inherent,
                "QASCA (ext)" => &mut qasca,
                "Entity-Aware (ext)" => &mut entity,
                _ => &mut sa,
            };
            let backend = InferenceBackend::TCrowd(TCrowd::default_full());
            let result = runner.run(label, &mut pool, policy, &backend);
            for p in &result.points {
                let key = (p.avg_answers * 100.0).round() as i64;
                let e = acc[li].entry(key).or_insert((0.0, 0.0, 0));
                e.0 += p.error_rate.unwrap_or(f64::NAN);
                e.1 += p.mnad.unwrap_or(f64::NAN);
                e.2 += 1;
            }
            eprintln!("seed {seed} {label} done");
        }
    }

    let mut table = TsvTable::new(&["heuristic", "avg_answers", "error_rate", "mnad"]);
    for (li, label) in labels.iter().enumerate() {
        for (key, (er, mnad, n)) in &acc[li] {
            table.push_row(vec![
                label.to_string(),
                format!("{:.2}", *key as f64 / 100.0),
                format!("{:.6}", er / *n as f64),
                format!("{:.6}", mnad / *n as f64),
            ]);
        }
    }
    emit(
        &table,
        "fig5_assignment_heuristics.tsv",
        &format!("Figure 5: assignment heuristics on Restaurant ({reps} seed(s))"),
    );
    println!("\nPaper shape to check: Random/Looping slowest; Entropy drops MNAD fast but");
    println!("not Error Rate; both gain heuristics drop both; Structure-Aware fastest on MNAD.");
}
