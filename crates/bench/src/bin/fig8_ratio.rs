//! Figure 8: effect of the categorical-to-total column ratio (0% → 100%).
//! The paper's claim: T-Crowd's metrics barely move across the mix — the
//! unified model is insensitive to the datatype composition.

use tcrowd_bench::{emit, reps, synthetic_sweep};
use tcrowd_tabular::GeneratorConfig;

fn main() {
    let table = synthetic_sweep(
        "categorical_ratio",
        &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        |r| GeneratorConfig { categorical_ratio: r, ..Default::default() },
        reps(),
    );
    emit(&table, "fig8_ratio.tsv", "Figure 8: effect of the categorical-column ratio");
    println!("\nPaper shape to check: T-Crowd stays flat-ish across the ratio and beats");
    println!("CRH/GLAD on Error Rate and CRH/GTM on MNAD at every mix.");
}
