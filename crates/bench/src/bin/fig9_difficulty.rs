//! Figure 9: effect of the average cell difficulty `µ{α_i β_j}` (0.5 → 3).
//! Harder cells mean less credible answers for everyone; all methods degrade
//! but T-Crowd should degrade the most gracefully on the easy-to-moderate
//! range.

use tcrowd_bench::{emit, reps, synthetic_sweep};
use tcrowd_tabular::GeneratorConfig;

fn main() {
    let table = synthetic_sweep(
        "avg_difficulty",
        &[0.5, 1.0, 1.5, 2.0, 2.5, 3.0],
        |d| GeneratorConfig { avg_difficulty: d, ..Default::default() },
        reps(),
    );
    emit(&table, "fig9_difficulty.tsv", "Figure 9: effect of the average difficulty");
    println!("\nPaper shape to check: Error Rate and MNAD rise with difficulty for every");
    println!("method; T-Crowd clearly ahead on easy tasks, gaps narrowing when hard.");
}
