//! Extension experiment: confidence-based adaptive stopping versus the
//! paper's fixed-budget collection.
//!
//! Not a figure from the paper — it traces the cost/quality frontier of the
//! stopping rule (a CDAS-style idea rebuilt on T-Crowd posteriors, see
//! `tcrowd_sim::stopping`). The budget is fixed high enough to never bind;
//! sweeping the rule's strictness from lenient to strict shows how many
//! answers confidence-based termination spends to reach which quality,
//! against the paper's fixed-redundancy collection at the same budget.

use tcrowd_bench::{emit, reps};
use tcrowd_core::{StructureAwarePolicy, TCrowd};
use tcrowd_sim::{
    ExperimentConfig, InferenceBackend, Runner, StoppingRule, WorkerPool, WorkerPoolConfig,
};
use tcrowd_tabular::tsv::TsvTable;
use tcrowd_tabular::{generate_dataset, GeneratorConfig, RowFamiliarity};

fn world(seed: u64) -> (tcrowd_tabular::Dataset, WorkerPool) {
    let cfg = GeneratorConfig {
        rows: 60,
        columns: 6,
        categorical_ratio: 0.5,
        num_workers: 40,
        answers_per_task: 1,
        row_familiarity: Some(RowFamiliarity::default()),
        ..Default::default()
    };
    let d = generate_dataset(&cfg, seed);
    let pool = WorkerPool::new(
        &d.schema,
        &d.truth,
        WorkerPoolConfig { num_workers: 40, ..Default::default() },
        seed * 19 + 2,
    );
    (d, pool)
}

const BUDGET: f64 = 8.0;

fn main() {
    let reps = reps();
    // Lenient → strict; None = the paper's fixed-budget collection.
    let rules: [(&str, Option<StoppingRule>); 6] = [
        ("fixed (no stopping)", None),
        ("p=0.70 σ=0.50", Some(StoppingRule { p_stop: 0.70, max_std: 0.50, min_answers: 2 })),
        ("p=0.80 σ=0.35", Some(StoppingRule { p_stop: 0.80, max_std: 0.35, min_answers: 2 })),
        ("p=0.90 σ=0.25", Some(StoppingRule { p_stop: 0.90, max_std: 0.25, min_answers: 2 })),
        ("p=0.95 σ=0.18", Some(StoppingRule { p_stop: 0.95, max_std: 0.18, min_answers: 3 })),
        ("p=0.99 σ=0.10", Some(StoppingRule { p_stop: 0.99, max_std: 0.10, min_answers: 3 })),
    ];
    let mut table =
        TsvTable::new(&["rule", "answers_per_task", "error_rate", "mnad", "settled_cells"]);

    for (name, stopping) in rules {
        let mut spent = 0.0;
        let mut err = 0.0;
        let mut mnad = 0.0;
        let mut settled = 0usize;
        for seed in 0..reps as u64 {
            let (d, mut pool) = world(seed);
            let runner = Runner::new(ExperimentConfig {
                budget_avg_answers: BUDGET,
                checkpoint_step: 1.0,
                stopping,
                ..Default::default()
            });
            let mut policy = StructureAwarePolicy::default();
            let backend = InferenceBackend::TCrowd(TCrowd::default_full());
            let r = runner.run(name, &mut pool, &mut policy, &backend);
            spent += r.total_answers as f64 / (d.rows() * d.cols()) as f64;
            err += r.final_report.error_rate.unwrap();
            mnad += r.final_report.mnad.unwrap();
            settled += r.terminated_cells;
        }
        let n = reps as f64;
        table.push_row(vec![
            name.to_string(),
            format!("{:.2}", spent / n),
            format!("{:.4}", err / n),
            format!("{:.4}", mnad / n),
            format!("{:.1}", settled as f64 / n),
        ]);
        eprintln!("{name} done");
    }

    emit(
        &table,
        "ext_adaptive_stopping.tsv",
        &format!(
            "Extension: stopping-rule cost/quality frontier at budget {BUDGET} ({reps} seed(s))"
        ),
    );
    println!("\nShape to check: stricter rules spend more answers and reach lower error;");
    println!("the strictest rules approach the fixed-budget row's quality at a fraction");
    println!("of its cost (the cells that stay open longest are the hard ones).");
}
