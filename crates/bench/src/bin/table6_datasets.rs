//! Table 6: statistics of the (simulated) real-world datasets.

use tcrowd_bench::{emit, real_datasets};
use tcrowd_tabular::tsv::TsvTable;

fn main() {
    let mut table = TsvTable::new(&[
        "Dataset",
        "#Rows",
        "#Columns",
        "#Cells",
        "#Ans. per Task",
        "#Workers",
        "#Categorical",
        "#Continuous",
    ]);
    for d in real_datasets(1) {
        let s = d.statistics();
        table.push_row(vec![
            s.name,
            s.rows.to_string(),
            s.columns.to_string(),
            s.cells.to_string(),
            format!("{:.0}", s.answers_per_task),
            s.workers.to_string(),
            s.categorical_columns.to_string(),
            s.continuous_columns.to_string(),
        ]);
    }
    emit(&table, "table6_datasets.tsv", "Table 6: dataset statistics");
    println!("\nPaper reference: Celebrity 174x7 (1218 cells, 5 ans/task),");
    println!("Restaurant 203x5 (1015 cells, 4 ans/task), Emotion 100x7 (700 cells, 10 ans/task).");
}
