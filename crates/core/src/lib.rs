//! # tcrowd-core
//!
//! The T-Crowd core (ICDE 2018): unified EM truth inference over mixed
//! categorical/continuous tables, and information-gain task assignment.
//!
//! ## Truth inference (paper §4)
//!
//! Worker `u` answers cell `c_ij` with an effective variance
//! `φ^u_ij = α_i · β_j · φ_u` — the product of the row difficulty, the column
//! difficulty and the worker's inherent variance. A continuous answer is
//! drawn `a ~ N(T̂_ij, φ^u_ij)` (Eq. 1); a categorical answer is correct with
//! probability `q^u_ij = erf(ε / √(2 φ^u_ij))` and otherwise uniform over the
//! wrong labels (Eq. 2–3). The same `φ_u` appears in both datatypes — that is
//! the "unified quality" contribution. Inference maximises the likelihood of
//! the observed answers by EM (Algorithm 1): the E-step computes posterior
//! truth distributions per cell (Eq. 4), the M-step fits `α, β, φ` by
//! gradient ascent on the expected complete-data log-likelihood (Eq. 5).
//!
//! ## Incremental refits (the online loop)
//!
//! An assign → collect → re-infer loop refits with only a handful of new
//! answers each time. [`TCrowd::infer_matrix_warm`] seeds EM from a previous
//! fit — parameters are restored in the raw (pre-renormalisation) gauge so
//! the restart begins exactly where the previous optimiser stopped — and the
//! steady-state refit converges in a few iterations instead of replaying the
//! cold trajectory; paired with `AnswerMatrix::merge_delta` on the storage
//! side this is the `BENCH_refresh.json` speedup. Both paths share the EM
//! map, so at convergence the warm and cold fits agree (regression-tested to
//! 1e-6); [`EmOptions::param_tol`](em::EmOptions) adds a parameter-change
//! stopping rule for runs that need fixed-point-accurate parameters rather
//! than a flat ELBO.
//!
//! ## Task assignment (paper §5)
//!
//! Tasks are ranked by *information gain*: the expected drop in the truth
//! distribution's entropy if the incoming worker answers the task (Eq. 6) —
//! Shannon entropy for categorical cells, differential entropy for continuous
//! cells; the *delta* form makes the two comparable. The *structure-aware*
//! variant (Eq. 7–8) additionally conditions the worker's predicted error on
//! the errors they already made on other attributes of the same row, through
//! a pairwise correlation model (Tables 4–5).
//!
//! Entry points: [`TCrowd`] for inference, [`InherentGainPolicy`] /
//! [`StructureAwarePolicy`] for assignment, and [`EntityAwarePolicy`] for the
//! §7 entity-correlation extension.

// `deny` rather than `forbid`: the worker pool (`pool`) is the one
// sanctioned island of `unsafe` in this crate — it publishes a borrowed job
// closure to its helper threads as a lifetime-erased pointer behind a strict
// completion barrier (see `pool`'s module docs), opted in with a
// module-level `allow`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod assign;
pub mod correlation;
pub mod diagnostics;
pub mod em;
pub mod entity;
pub mod gain;
pub mod inference;
pub mod model;
pub mod online;
pub(crate) mod pool;
pub mod truth;

pub use assign::{
    apply_answer_incrementally, expected_posterior, AssignmentContext, AssignmentPolicy, BatchMode,
    InherentGainPolicy, StructureAwarePolicy,
};
pub use correlation::{CorrelationModel, ErrorObservation, PredictedError};
pub use em::{EmOptions, EmTimings};
pub use entity::{EntityAwarePolicy, EntityModel, EntityModelOptions, RowGrouping};
pub use gain::GainEstimator;
pub use inference::{ColumnFilter, EpsilonSpec, FitParams, InferenceResult, TCrowd, TCrowdOptions};
pub use online::{FitState, OnlineTCrowd};
pub use truth::TruthDist;
