//! Online task assignment (paper §5, Algorithm 2).
//!
//! A policy receives the incoming worker and the current state (answer log +
//! inference result) and returns the cell(s) to assign. T-Crowd's two
//! policies rank candidates by information gain:
//!
//! * [`InherentGainPolicy`] — Eq. 6, using the worker's fitted quality and
//!   the cell's fitted difficulty.
//! * [`StructureAwarePolicy`] — additionally conditions the worker's
//!   predicted error on the errors they already made on other attributes of
//!   the same row (Eq. 7), through a [`CorrelationModel`].
//!
//! Batched assignment (§5.3) greedily takes the top-K candidates; because
//! distinct cells have independent posteriors, the sum in Eq. 9 decomposes
//! and top-K is exactly the greedy optimum. A sequential mode that refreshes
//! the picked cell's posterior between picks is provided for completeness.

use crate::correlation::{observe_error, CorrelationModel, ErrorObservation, PredictedError};
use crate::gain::{gain_with_params, GainEstimator};
use crate::inference::InferenceResult;
use crate::model::quality_from_variance;
use crate::truth::TruthDist;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tcrowd_stat::clamp_prob;
use tcrowd_tabular::{AnswerMatrix, AnswerQueries, CellId, FrozenView, Schema, Value, WorkerId};

/// Everything a policy may consult when selecting tasks.
pub struct AssignmentContext<'a> {
    /// The table schema.
    pub schema: &'a Schema,
    /// The answer history so far, behind the representation-agnostic
    /// [`AnswerQueries`] trait: library callers pass the live
    /// [`tcrowd_tabular::AnswerLog`]; snapshot-serving callers (the service
    /// layer) pass the frozen [`AnswerMatrix`] itself, so a published
    /// snapshot needs no indexed log at all.
    pub answers: &'a dyn AnswerQueries,
    /// The caller's frozen columnar view of [`Self::answers`]. Matrix-side
    /// policies (structure-aware, entity-aware) fit their models from this
    /// freeze instead of each `select` call rebuilding one — the runner
    /// keeps a single evolving freeze and delta-merges the log tail into it,
    /// so per-HIT assignment no longer pays the `O(cells + W·R)` rebuild.
    pub freeze: FrozenView<'a>,
    /// The most recent truth-inference result. T-Crowd's gain policies
    /// require it; baseline policies (random, round-robin, raw-entropy,
    /// CDAS) work from the answer log alone and ignore it.
    pub inference: Option<&'a InferenceResult>,
    /// Optional per-cell redundancy cap: cells that already have this many
    /// answers are not assigned again.
    pub max_answers_per_cell: Option<usize>,
    /// Cells terminated by an adaptive stopping rule (confidence reached);
    /// they are excluded from assignment. `None` means nothing terminated.
    pub terminated: Option<&'a std::collections::HashSet<CellId>>,
    /// A pre-fitted correlation model of [`Self::freeze`] +
    /// [`Self::inference`]. The model is a pure function of the two, so
    /// callers serving many `select` calls per published state (the service
    /// layer caches one on each snapshot) fit it once here instead of
    /// [`StructureAwarePolicy`] re-fitting per request. `None` keeps the
    /// fit-per-select behaviour.
    pub correlation: Option<&'a CorrelationModel>,
}

impl<'a> AssignmentContext<'a> {
    /// The frozen matrix, checked (in debug builds) to actually cover the
    /// answer history: a stale freeze means the caller forgot to
    /// delta-merge the log tail before assignment, and the fitted
    /// correlation/entity models would silently ignore the newest answers.
    pub fn matrix(&self) -> &'a AnswerMatrix {
        debug_assert_eq!(
            self.freeze.epoch(),
            self.answers.len(),
            "assignment context holds a stale freeze — refresh the matrix \
             (AnswerMatrix::refresh / merge_delta) before selecting",
        );
        self.freeze.matrix()
    }

    /// The freeze epoch (number of log answers the matrix covers).
    pub fn epoch(&self) -> usize {
        self.freeze.epoch()
    }

    /// Cells the worker may be assigned: not yet answered by this worker and
    /// under the redundancy cap. Enumerates the table in row-major order.
    pub fn candidates(&self, worker: WorkerId) -> Vec<CellId> {
        let (rows, cols) = (self.answers.rows(), self.answers.cols());
        let mut out = Vec::new();
        for slot in 0..rows * cols {
            let c = CellId::new((slot / cols) as u32, (slot % cols) as u32);
            if let Some(cap) = self.max_answers_per_cell {
                if self.answers.count_for_cell(c) >= cap {
                    continue;
                }
            }
            if let Some(stopped) = self.terminated {
                if stopped.contains(&c) {
                    continue;
                }
            }
            if !self.answers.has_answered(worker, c) {
                out.push(c);
            }
        }
        out
    }
}

/// An online task-assignment policy (Definition 4).
pub trait AssignmentPolicy {
    /// Human-readable policy name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Select up to `k` cells for the incoming worker. Fewer than `k` cells
    /// are returned only when the candidate pool is smaller than `k`.
    fn select(&mut self, worker: WorkerId, k: usize, ctx: &AssignmentContext<'_>) -> Vec<CellId>;
}

/// Batch-selection strategy for multi-task HITs (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchMode {
    /// Take the K candidates with the largest individual gain (the paper's
    /// greedy; exact here because per-cell gains are independent).
    #[default]
    TopK,
    /// After each pick, replace the picked cell's posterior with its expected
    /// post-answer posterior and re-rank. Differs from `TopK` only through
    /// the removal of the picked cell, so results coincide; kept as an
    /// extension point for policies with inter-cell coupling.
    SequentialGreedy,
}

/// Rank `candidates` by `gain` and return the top `k` (stable for ties).
fn top_k_by_gain(candidates: Vec<CellId>, gains: Vec<f64>, k: usize) -> Vec<CellId> {
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&a, &b| {
        gains[b].partial_cmp(&gains[a]).expect("NaN gain").then(candidates[a].cmp(&candidates[b]))
    });
    order.into_iter().take(k).map(|i| candidates[i]).collect()
}

/// T-Crowd's inherent information-gain policy (§5.1).
#[derive(Debug)]
pub struct InherentGainPolicy {
    /// Expected-entropy estimator for continuous cells.
    pub estimator: GainEstimator,
    /// Batch strategy.
    pub batch: BatchMode,
    rng: StdRng,
}

impl InherentGainPolicy {
    /// Create with the given estimator (RNG only used by the sampling
    /// estimator; seeded for reproducibility).
    pub fn new(estimator: GainEstimator) -> Self {
        InherentGainPolicy {
            estimator,
            batch: BatchMode::default(),
            rng: StdRng::seed_from_u64(0xC0FFEE),
        }
    }

    /// Builder: set the batch-selection strategy.
    pub fn with_batch(mut self, batch: BatchMode) -> Self {
        self.batch = batch;
        self
    }
}

impl Default for InherentGainPolicy {
    fn default() -> Self {
        Self::new(GainEstimator::default())
    }
}

impl AssignmentPolicy for InherentGainPolicy {
    fn name(&self) -> &'static str {
        "inherent-gain"
    }

    fn select(&mut self, worker: WorkerId, k: usize, ctx: &AssignmentContext<'_>) -> Vec<CellId> {
        let inference =
            ctx.inference.expect("InherentGainPolicy requires an inference result in the context");
        let candidates = ctx.candidates(worker);
        let gains: Vec<f64> = if self.estimator == GainEstimator::Exact {
            // The exact estimator is RNG-free, so large candidate sets can be
            // scored across threads (the paper's §5.1 parallelisation note).
            crate::gain::compute_gains(&candidates, |c| {
                let v = inference.effective_variance(worker, c);
                let q = inference.cell_quality(worker, c);
                let mut rng = StdRng::seed_from_u64(0); // unused by Exact
                gain_with_params(inference.truth_z(c), v, q, GainEstimator::Exact, &mut rng)
            })
        } else {
            candidates
                .iter()
                .map(|&c| {
                    let v = inference.effective_variance(worker, c);
                    let q = inference.cell_quality(worker, c);
                    gain_with_params(inference.truth_z(c), v, q, self.estimator, &mut self.rng)
                })
                .collect()
        };
        match self.batch {
            BatchMode::TopK => top_k_by_gain(candidates, gains, k),
            BatchMode::SequentialGreedy => sequential_greedy(
                candidates,
                gains,
                k,
                |cell, rng| {
                    let v = inference.effective_variance(worker, cell);
                    let q = inference.cell_quality(worker, cell);
                    gain_with_params(inference.truth_z(cell), v, q, self.estimator, rng)
                },
                &mut self.rng,
            ),
        }
    }
}

/// Generic sequential greedy: pick the max-gain candidate, drop it, repeat.
/// `rescore` recomputes a candidate's gain (posterior-coupled policies would
/// hook their updates here).
fn sequential_greedy<F>(
    mut candidates: Vec<CellId>,
    mut gains: Vec<f64>,
    k: usize,
    rescore: F,
    rng: &mut StdRng,
) -> Vec<CellId>
where
    F: Fn(CellId, &mut StdRng) -> f64,
{
    let mut picked = Vec::with_capacity(k.min(candidates.len()));
    for _ in 0..k {
        if candidates.is_empty() {
            break;
        }
        let best = gains
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN gain"))
            .map(|(i, _)| i)
            .expect("non-empty");
        picked.push(candidates.swap_remove(best));
        gains.swap_remove(best);
        // Re-score survivors (no-op for independent posteriors, but keeps the
        // hook honest for coupled policies).
        for (i, &c) in candidates.iter().enumerate() {
            gains[i] = rescore(c, rng);
        }
    }
    picked
}

/// T-Crowd's structure-aware information-gain policy (§5.2).
///
/// Fits a [`CorrelationModel`] from the current state, then for each
/// candidate cell conditions the incoming worker's predicted error on the
/// errors the worker already made on the same row. Falls back to the
/// inherent gain when no conditioning information exists (new worker, empty
/// row, or unsupported pair).
#[derive(Debug)]
pub struct StructureAwarePolicy {
    /// Expected-entropy estimator for continuous cells.
    pub estimator: GainEstimator,
    /// Batch strategy.
    pub batch: BatchMode,
    rng: StdRng,
}

impl StructureAwarePolicy {
    /// Create with the given estimator.
    pub fn new(estimator: GainEstimator) -> Self {
        StructureAwarePolicy {
            estimator,
            batch: BatchMode::default(),
            rng: StdRng::seed_from_u64(0x5EED),
        }
    }

    /// Gain of `cell` for `worker` under the correlation-conditioned error
    /// model; `observed` holds the worker's errors on the cell's row.
    fn structure_gain(
        &mut self,
        inference: &InferenceResult,
        model: &CorrelationModel,
        worker: WorkerId,
        cell: CellId,
        observed: &[(usize, ErrorObservation)],
    ) -> f64 {
        let truth = inference.truth_z(cell);
        let v_inherent = inference.effective_variance(worker, cell);
        let q_inherent = inference.cell_quality(worker, cell);
        let (v, q) = match model.conditional_error(cell.col as usize, observed) {
            Some(PredictedError::Categorical(p_wrong)) => {
                // Blend the structural prediction with the inherent quality:
                // both carry information about this worker on this cell.
                let q_struct = clamp_prob(1.0 - p_wrong);
                (v_inherent, 0.5 * (q_struct + q_inherent))
            }
            Some(mix @ PredictedError::ContinuousMixture(_)) => {
                let (_, var) = mix.mixture_moments().expect("continuous mixture");
                // Same blend on the variance scale.
                let v_struct = var.max(tcrowd_stat::EPS);
                let v = (v_struct * v_inherent).sqrt(); // geometric mean
                (v, quality_from_variance(inference.epsilon, v))
            }
            None => (v_inherent, q_inherent),
        };
        gain_with_params(truth, v, q, self.estimator, &mut self.rng)
    }
}

impl Default for StructureAwarePolicy {
    fn default() -> Self {
        Self::new(GainEstimator::default())
    }
}

impl AssignmentPolicy for StructureAwarePolicy {
    fn name(&self) -> &'static str {
        "structure-aware-gain"
    }

    fn select(&mut self, worker: WorkerId, k: usize, ctx: &AssignmentContext<'_>) -> Vec<CellId> {
        let inference = ctx
            .inference
            .expect("StructureAwarePolicy requires an inference result in the context");
        // The caller's shared freeze serves the correlation fit and the
        // row-error scan (by-(worker, row) CSR view) — no per-HIT rebuild.
        let matrix = ctx.matrix();
        let fitted_here;
        let model = match ctx.correlation {
            Some(cached) => cached,
            None => {
                fitted_here = CorrelationModel::fit_matrix(ctx.schema, matrix, inference);
                &fitted_here
            }
        };
        let candidates = ctx.candidates(worker);
        // Pre-compute the worker's observed errors per row (L^u_i of Eq. 7).
        let mut row_errors: std::collections::HashMap<u32, Vec<(usize, ErrorObservation)>> =
            std::collections::HashMap::new();
        if let Some(w) = matrix.worker_index(worker) {
            for a in matrix.worker_answers(w) {
                let answer =
                    tcrowd_tabular::Answer { worker: a.worker, cell: a.cell, value: a.value };
                row_errors
                    .entry(a.cell.row)
                    .or_default()
                    .push((a.cell.col as usize, observe_error(inference, &answer)));
            }
        }
        let empty: Vec<(usize, ErrorObservation)> = Vec::new();
        let gains: Vec<f64> = candidates
            .iter()
            .map(|&c| {
                let observed = row_errors.get(&c.row).unwrap_or(&empty);
                self.structure_gain(inference, model, worker, c, observed)
            })
            .collect();
        top_k_by_gain(candidates, gains, k)
    }
}

/// Expected posterior after an answer whose value is not yet known — used by
/// simulators that refresh cell posteriors between full inference runs.
///
/// Continuous: the variance shrinks deterministically, the mean is the prior
/// mean in expectation. Categorical: `P'(z) = Σ_a P(a) P(z|a)` which equals
/// the prior (posterior expectation is the prior), so the prior is returned —
/// the entropy *reduction* is only realised once an actual answer arrives.
pub fn expected_posterior(truth: &TruthDist, obs_var: f64, _q: f64) -> TruthDist {
    match truth {
        TruthDist::Continuous(n) => {
            TruthDist::Continuous(n.posterior_with_observation(n.mean, obs_var))
        }
        TruthDist::Categorical(p) => TruthDist::Categorical(p.clone()),
    }
}

/// Apply one real answer incrementally to an inference result's stored
/// posterior (the §5.1 acceleration: between full EM runs, only the answered
/// cell's posterior is refreshed).
pub fn apply_answer_incrementally(
    result: &mut InferenceResult,
    worker: WorkerId,
    cell: CellId,
    value: &Value,
) {
    let v = result.effective_variance(worker, cell);
    let q = result.cell_quality(worker, cell);
    let z_value = match value {
        Value::Continuous(x) => {
            let (m, s) = result.scaler(cell.col as usize).expect("scaler");
            Value::Continuous((x - m) / s)
        }
        Value::Categorical(l) => Value::Categorical(*l),
    };
    let updated = result.truth_z(cell).updated_with_answer(&z_value, v, q);
    result.set_truth_z(cell, updated);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::TCrowd;
    use tcrowd_tabular::{generate_dataset, GeneratorConfig, RowFamiliarity};

    fn setup(seed: u64) -> (tcrowd_tabular::Dataset, InferenceResult) {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 25,
                columns: 4,
                num_workers: 15,
                answers_per_task: 3,
                row_familiarity: Some(RowFamiliarity::default()),
                ..Default::default()
            },
            seed,
        );
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        (d, r)
    }

    #[test]
    fn candidates_exclude_answered_and_capped_cells() {
        let (d, r) = setup(1);
        let m = d.answers.to_matrix();
        let ctx = AssignmentContext {
            schema: &d.schema,
            answers: &d.answers,
            freeze: m.freeze_view(),
            inference: Some(&r),
            max_answers_per_cell: None,
            terminated: None,
            correlation: None,
        };
        let w = d.answers.workers().next().unwrap();
        let cands = ctx.candidates(w);
        for c in &cands {
            assert!(!d.answers.has_answered(w, *c));
        }
        // Cap at the current redundancy: every cell has exactly 3 answers,
        // so a cap of 3 empties the pool.
        let capped = AssignmentContext { max_answers_per_cell: Some(3), ..ctx };
        assert!(capped.candidates(w).is_empty());
    }

    #[test]
    fn select_returns_k_distinct_cells() {
        let (d, r) = setup(2);
        let m = d.answers.to_matrix();
        let ctx = AssignmentContext {
            schema: &d.schema,
            answers: &d.answers,
            freeze: m.freeze_view(),
            inference: Some(&r),
            max_answers_per_cell: None,
            terminated: None,
            correlation: None,
        };
        let w = WorkerId(9_999); // fresh worker
        for policy in [
            &mut InherentGainPolicy::default() as &mut dyn AssignmentPolicy,
            &mut StructureAwarePolicy::default() as &mut dyn AssignmentPolicy,
        ] {
            let picks = policy.select(w, 7, &ctx);
            assert_eq!(picks.len(), 7, "{}", policy.name());
            let mut dedup = picks.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), 7, "{} returned duplicates", policy.name());
        }
    }

    #[test]
    fn topk_and_sequential_agree_for_inherent() {
        let (d, r) = setup(3);
        let m = d.answers.to_matrix();
        let ctx = AssignmentContext {
            schema: &d.schema,
            answers: &d.answers,
            freeze: m.freeze_view(),
            inference: Some(&r),
            max_answers_per_cell: None,
            terminated: None,
            correlation: None,
        };
        let w = WorkerId(9_999);
        let mut a = InherentGainPolicy::default();
        let mut b = InherentGainPolicy { batch: BatchMode::SequentialGreedy, ..Default::default() };
        let pa: std::collections::BTreeSet<_> = a.select(w, 5, &ctx).into_iter().collect();
        let pb: std::collections::BTreeSet<_> = b.select(w, 5, &ctx).into_iter().collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn gain_policy_prefers_undersampled_cells() {
        // Give one cell extra answers; a fresh worker should be steered to
        // cells with fewer answers (higher remaining uncertainty), all else
        // equal.
        let (mut d, _) = setup(4);
        let target = CellId::new(0, 0);
        let heavy_worker_base = 500u32;
        for extra in 0..6 {
            let w = WorkerId(heavy_worker_base + extra);
            let truth = d.truth_of(target);
            d.answers.push(tcrowd_tabular::Answer { worker: w, cell: target, value: truth });
        }
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        let m = d.answers.to_matrix();
        let ctx = AssignmentContext {
            schema: &d.schema,
            answers: &d.answers,
            freeze: m.freeze_view(),
            inference: Some(&r),
            max_answers_per_cell: None,
            terminated: None,
            correlation: None,
        };
        let mut policy = InherentGainPolicy::default();
        let picks = policy.select(WorkerId(9_999), 10, &ctx);
        assert!(!picks.contains(&target), "the heavily-answered cell should not be a top pick");
    }

    #[test]
    fn structure_aware_falls_back_for_unseen_worker() {
        // A worker with no history has no row errors; structure-aware must
        // still return a full selection (inherent fallback).
        let (d, r) = setup(5);
        let m = d.answers.to_matrix();
        let ctx = AssignmentContext {
            schema: &d.schema,
            answers: &d.answers,
            freeze: m.freeze_view(),
            inference: Some(&r),
            max_answers_per_cell: None,
            terminated: None,
            correlation: None,
        };
        let mut policy = StructureAwarePolicy::default();
        let picks = policy.select(WorkerId(77_777), 4, &ctx);
        assert_eq!(picks.len(), 4);
    }

    #[test]
    fn incremental_update_moves_posterior() {
        let (d, mut r) = setup(6);
        let cell = CellId::new(2, 0); // categorical column in this layout
        let before = r.truth_z(cell).clone();
        let label = match d.truth_of(cell) {
            Value::Categorical(l) => l,
            _ => panic!("expected categorical column 0"),
        };
        apply_answer_incrementally(&mut r, WorkerId(9_999), cell, &Value::Categorical(label));
        let after = r.truth_z(cell);
        assert_ne!(&before, after);
        assert!(
            after.confidence_in(&Value::Categorical(label))
                >= before.confidence_in(&Value::Categorical(label))
        );
    }

    #[test]
    fn expected_posterior_shrinks_continuous_variance_only() {
        let t = TruthDist::Continuous(tcrowd_stat::Normal::new(1.0, 2.0));
        if let TruthDist::Continuous(n) = expected_posterior(&t, 1.0, 0.8) {
            assert!((n.mean - 1.0).abs() < 1e-12);
            assert!(n.var < 2.0);
        } else {
            panic!("variant");
        }
        let c = TruthDist::Categorical(vec![0.6, 0.4]);
        assert_eq!(expected_posterior(&c, 1.0, 0.8), c);
    }
}
