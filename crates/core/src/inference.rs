//! Public truth-inference API: [`TCrowd`] and [`InferenceResult`].
//!
//! Wraps the EM engine with the practical plumbing the paper leaves implicit:
//! per-column z-scoring of continuous answers (so one quality window `ε`
//! spans heterogeneous domains), resolution of `ε` itself, the
//! categorical-only / continuous-only constrained variants of Table 7, and
//! mapping the fitted z-space posteriors back to the original scales.

#![allow(clippy::needless_range_loop)] // index loops here walk several parallel arrays
use crate::em::{
    initial_phi, run_em_from, ColKind, EmOptions, EmTimings, IntAnswer, WarmStart, Workspace,
};
use crate::model::quality_from_variance;
use crate::truth::TruthDist;
use std::collections::HashMap;
use tcrowd_stat::describe::{median, std_dev, zscore_params};
use tcrowd_stat::normal::Normal;
use tcrowd_tabular::{AnswerLog, AnswerMatrix, CellId, ColumnType, Schema, Value, WorkerId};

/// How the quality window `ε` (Eq. 2) is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EpsilonSpec {
    /// Use this exact value (in z-score units).
    Fixed(f64),
    /// `ε = scale × median per-cell standard deviation` of the z-scored
    /// continuous answers — an automatic calibration that keeps the erf link
    /// in its informative range regardless of the data's noise-to-spread
    /// ratio. Falls back to `0.5` when the table has no continuous cells
    /// with ≥ 2 answers (where `ε` is a pure reparameterisation of `φ`).
    AutoScale(f64),
}

impl Default for EpsilonSpec {
    fn default() -> Self {
        EpsilonSpec::AutoScale(1.0)
    }
}

/// Which columns participate in inference — the constrained variants
/// `TC-onlyCate` / `TC-onlyCont` of the paper's Table 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColumnFilter {
    /// All columns (full T-Crowd).
    #[default]
    All,
    /// Only categorical columns.
    CategoricalOnly,
    /// Only continuous columns.
    ContinuousOnly,
}

impl ColumnFilter {
    /// Whether column type `ty` participates under this filter.
    pub fn includes(&self, ty: &ColumnType) -> bool {
        match self {
            ColumnFilter::All => true,
            ColumnFilter::CategoricalOnly => ty.is_categorical(),
            ColumnFilter::ContinuousOnly => !ty.is_categorical(),
        }
    }
}

/// Options for [`TCrowd`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TCrowdOptions {
    /// Quality-window resolution.
    pub epsilon: EpsilonSpec,
    /// Column participation.
    pub filter: ColumnFilter,
    /// EM engine options.
    pub em: EmOptions,
}

pub mod reference;

/// The T-Crowd truth-inference model (paper §4).
#[derive(Debug, Clone, Default)]
pub struct TCrowd {
    opts: TCrowdOptions,
}

impl TCrowd {
    /// Create a model with the given options.
    pub fn new(opts: TCrowdOptions) -> Self {
        TCrowd { opts }
    }

    /// Full T-Crowd with default options.
    pub fn default_full() -> Self {
        TCrowd::new(TCrowdOptions::default())
    }

    /// The `TC-onlyCate` constrained variant.
    pub fn only_categorical() -> Self {
        TCrowd::new(TCrowdOptions { filter: ColumnFilter::CategoricalOnly, ..Default::default() })
    }

    /// The `TC-onlyCont` constrained variant.
    pub fn only_continuous() -> Self {
        TCrowd::new(TCrowdOptions { filter: ColumnFilter::ContinuousOnly, ..Default::default() })
    }

    /// Run truth inference on an answer set (Definition 3 / Algorithm 1).
    ///
    /// Freezes the log into an [`AnswerMatrix`] and delegates to
    /// [`Self::infer_matrix`]; callers that already hold a matrix (the
    /// simulator between refits, batch harnesses) should call that directly.
    pub fn infer(&self, schema: &Schema, answers: &AnswerLog) -> InferenceResult {
        assert_eq!(schema.num_columns(), answers.cols(), "schema/answer-log column mismatch");
        self.infer_matrix(schema, &AnswerMatrix::build(answers))
    }

    /// Run truth inference on a frozen columnar answer set, cold-started
    /// (uniform priors, calibrated initial worker quality).
    pub fn infer_matrix(&self, schema: &Schema, matrix: &AnswerMatrix) -> InferenceResult {
        self.fit_matrix(schema, matrix, None)
    }

    /// Run truth inference on a frozen columnar answer set, **warm-started**
    /// from a previous fit of a slightly-stale freeze of the same table.
    ///
    /// EM's parameters (`α, β, φ`) are seeded from `prev` — rows and columns
    /// positionally, workers by id (workers unseen by `prev` start at the
    /// calibrated `φ₀`) — so the steady-state refit of an online loop
    /// converges in a handful of iterations instead of replaying the cold
    /// trajectory. The EM *map* is unchanged: given the same answers, the
    /// warm and cold paths converge to the same estimates (the sim
    /// regression suite asserts agreement within 1e-6), so warm-starting is
    /// a pure latency optimisation.
    ///
    /// Falls back to the cold start when `prev` has a different table shape
    /// (it cannot be a fit of this table's history).
    pub fn infer_matrix_warm(
        &self,
        schema: &Schema,
        matrix: &AnswerMatrix,
        prev: &InferenceResult,
    ) -> InferenceResult {
        self.fit_matrix(schema, matrix, Some(&FitParams::of(prev)))
    }

    /// Run truth inference warm-started from **detached fit parameters** —
    /// the persistence-friendly form of [`Self::infer_matrix_warm`].
    ///
    /// A [`FitParams`] carries exactly the state a warm restart consumes
    /// (raw-gauge `α, β, φ` plus the renormalisation shift), so a seed can be
    /// serialized with a snapshot and replayed after a crash without keeping
    /// the full [`InferenceResult`] (posteriors, traces) alive. Seeds with a
    /// mismatched table shape or inconsistent lane lengths fall back to the
    /// cold start, same as [`Self::infer_matrix_warm`].
    pub fn infer_matrix_seeded(
        &self,
        schema: &Schema,
        matrix: &AnswerMatrix,
        seed: &FitParams,
    ) -> InferenceResult {
        self.fit_matrix(schema, matrix, Some(seed))
    }

    /// Evaluate the model at **fixed parameters**: one E-step at `seed`'s
    /// `α, β, φ` (mapped through the stored gauge shift), no EM iterations.
    ///
    /// Because the posteriors are a pure function of `(answers, parameters)`
    /// and the gauge round-trip perturbs the parameters only at float
    /// rounding, evaluating a converged fit's own [`FitParams`] on the same
    /// answers reproduces that fit's posteriors to ~1e-12 — this is how
    /// crash recovery republishes the exact pre-crash served state from a
    /// snapshot without re-running EM. The result is marked `converged`
    /// (the parameters are held fixed by construction); `iterations` is 0.
    ///
    /// A `seed` whose shape does not match the matrix falls back to a plain
    /// cold *fit* (the evaluation would be meaningless), same as the other
    /// seeded entry points.
    pub fn evaluate_seeded(
        &self,
        schema: &Schema,
        matrix: &AnswerMatrix,
        seed: &FitParams,
    ) -> InferenceResult {
        if !seed.shape_matches(matrix.rows(), matrix.cols()) {
            return self.infer_matrix(schema, matrix);
        }
        let eval = TCrowd::new(TCrowdOptions {
            em: EmOptions { max_iters: 0, ..self.opts.em },
            ..self.opts
        });
        let mut result = eval.fit_matrix(schema, matrix, Some(seed));
        result.converged = true;
        result
    }

    fn fit_matrix(
        &self,
        schema: &Schema,
        matrix: &AnswerMatrix,
        prev: Option<&FitParams>,
    ) -> InferenceResult {
        assert_eq!(schema.num_columns(), matrix.cols(), "schema/answer-matrix column mismatch");
        let n_rows = matrix.rows();
        let n_cols = matrix.cols();

        // Per-column z-scaling from the answers themselves (one payload pass).
        let mut col_values: Vec<Vec<f64>> = vec![Vec::new(); n_cols];
        for k in 0..matrix.len() {
            if !matrix.is_categorical(k) {
                col_values[matrix.answer_cols()[k] as usize].push(matrix.answer_values()[k]);
            }
        }
        let scalers: Vec<Option<(f64, f64)>> = (0..n_cols)
            .map(|j| match schema.column_type(j) {
                ColumnType::Continuous { .. } => Some(zscore_params(&col_values[j])),
                ColumnType::Categorical { .. } => None,
            })
            .collect();

        // Workers participating under the column filter, densely re-indexed
        // in sorted-id order (the matrix's worker table is already sorted).
        let included: Vec<bool> =
            (0..n_cols).map(|j| self.opts.filter.includes(schema.column_type(j))).collect();
        let mut participates = vec![false; matrix.num_workers()];
        for k in 0..matrix.len() {
            if included[matrix.answer_cols()[k] as usize] {
                participates[matrix.answer_workers()[k] as usize] = true;
            }
        }
        let mut remap = vec![u32::MAX; matrix.num_workers()];
        let mut workers: Vec<WorkerId> = Vec::new();
        for (w, &active) in participates.iter().enumerate() {
            if active {
                remap[w] = workers.len() as u32;
                workers.push(matrix.worker_id(w));
            }
        }

        // Flatten the active columns' answers; the payload is cell-major, so
        // the workspace assembly below keeps that order.
        let mut flat: Vec<IntAnswer> = Vec::with_capacity(matrix.len());
        for k in 0..matrix.len() {
            let j = matrix.answer_cols()[k] as usize;
            if !included[j] {
                continue;
            }
            let (label, value) = if matrix.is_categorical(k) {
                (matrix.answer_labels()[k], 0.0)
            } else {
                let (m, s) = scalers[j].expect("continuous column has scaler");
                (0, (matrix.answer_values()[k] - m) / s)
            };
            flat.push(IntAnswer {
                worker: remap[matrix.answer_workers()[k] as usize],
                row: matrix.answer_rows()[k],
                col: j as u32,
                label,
                value,
            });
        }

        let col_kind: Vec<ColKind> = (0..n_cols)
            .map(|j| match schema.column_type(j) {
                ColumnType::Categorical { labels } => ColKind::Cat(labels.len() as u32),
                ColumnType::Continuous { .. } => ColKind::Cont,
            })
            .collect();

        let ws = Workspace::assemble(
            n_rows,
            n_cols,
            workers.len(),
            col_kind,
            flat,
            1.0, // placeholder; resolved below against the assembled CSR
        );

        // Resolve ε.
        let epsilon = match self.opts.epsilon {
            EpsilonSpec::Fixed(e) => {
                assert!(e > 0.0, "epsilon must be positive");
                e
            }
            EpsilonSpec::AutoScale(scale) => {
                assert!(scale > 0.0, "epsilon scale must be positive");
                let mut cell_stds = Vec::new();
                for slot in 0..n_rows * n_cols {
                    let j = slot % n_cols;
                    let cell = ws.cell_answers(slot);
                    if ws.col_kind[j] != ColKind::Cont || cell.len() < 2 {
                        continue;
                    }
                    let vals: Vec<f64> = cell.iter().map(|a| a.value).collect();
                    cell_stds.push(std_dev(&vals));
                }
                if cell_stds.is_empty() {
                    0.5
                } else {
                    (scale * median(&cell_stds)).max(1e-3)
                }
            }
        };
        let ws = Workspace { epsilon, ..ws };

        // Warm-start seed: previous parameters mapped onto this workspace's
        // dense indices (see `infer_matrix_warm`). `ε` is re-resolved from
        // the current answers either way, so the quality link stays
        // calibrated to the data actually being fitted.
        let warm = prev.and_then(|p| {
            if !p.shape_matches(n_rows, n_cols) {
                return None;
            }
            // Seed in the *raw* gauge the M-step rests in: undo the
            // identifiability polish (`renorm_shift`), so the restart starts
            // exactly where the previous fit's optimiser stopped instead of
            // one gauge-shift away from it. Unseen workers get the calibrated
            // initial variance, expressed in the same gauge.
            let (ma, mb) = p.renorm_shift;
            let phi0 = initial_phi(epsilon, self.opts.em.init_quality).ln() - ma - mb;
            let safe_ln = |v: f64| v.max(tcrowd_stat::EPS).ln();
            Some(WarmStart {
                ln_alpha: p.alpha.iter().map(|&v| safe_ln(v) + ma).collect(),
                ln_beta: p.beta.iter().map(|&v| safe_ln(v) + mb).collect(),
                ln_phi: workers
                    .iter()
                    .map(|&w| p.phi_of(w).map(|v| safe_ln(v) - ma - mb).unwrap_or(phi0))
                    .collect(),
            })
        });
        let state = run_em_from(&ws, &self.opts.em, warm.as_ref());

        InferenceResult {
            n_rows,
            n_cols,
            truths_z: state.truths.clone(),
            scalers,
            alpha: state.ln_alpha.iter().map(|v| v.exp()).collect(),
            beta: state.ln_beta.iter().map(|v| v.exp()).collect(),
            worker_index: workers.iter().enumerate().map(|(i, &w)| (w, i)).collect(),
            workers,
            phi: state.ln_phi.iter().map(|v| v.exp()).collect(),
            epsilon,
            objective_trace: state.trace,
            iterations: state.iterations,
            converged: state.converged,
            renorm_shift: state.renorm_shift,
            timings: state.timings,
        }
    }
}

/// The detached warm-start seed of an EM fit: exactly the parameters
/// [`TCrowd::infer_matrix_seeded`] consumes, nothing else.
///
/// This is the piece of an [`InferenceResult`] worth persisting: posteriors
/// and traces are pure functions of `(answers, parameters)` and are
/// recomputed by the restarted EM anyway, while `α, β, φ` and the gauge
/// shift let the restart begin at the previous optimum. The `tcrowd-store`
/// snapshot format serializes this struct field-for-field.
///
/// Invariants (checked by [`FitParams::shape_matches`] / the seeding path,
/// which falls back to a cold start when violated): `alpha.len() == rows`,
/// `beta.len() == cols`, `workers.len() == phi.len()`. `workers` is in
/// fitting order — ascending id for every fit this crate produces.
#[derive(Debug, Clone, PartialEq)]
pub struct FitParams {
    /// Table height the fit was produced on.
    pub rows: usize,
    /// Table width the fit was produced on.
    pub cols: usize,
    /// Fitted row difficulties `α_i` (renormalised gauge, geometric mean 1).
    pub alpha: Vec<f64>,
    /// Fitted column difficulties `β_j` (renormalised gauge).
    pub beta: Vec<f64>,
    /// Workers in fitting order (parallel to [`Self::phi`]).
    pub workers: Vec<WorkerId>,
    /// Fitted worker variances `φ_u` (z-space).
    pub phi: Vec<f64>,
    /// The gauge shift the identifiability polish applied (mean `ln α`,
    /// mean `ln β`) — lets the restart seed in the raw gauge.
    pub renorm_shift: (f64, f64),
}

impl FitParams {
    /// Extract the warm-start seed of a fit.
    pub fn of(result: &InferenceResult) -> FitParams {
        FitParams {
            rows: result.n_rows,
            cols: result.n_cols,
            alpha: result.alpha.clone(),
            beta: result.beta.clone(),
            workers: result.workers.clone(),
            phi: result.phi.clone(),
            renorm_shift: result.renorm_shift,
        }
    }

    /// Whether this seed can warm-start a fit of a `rows × cols` table —
    /// shape match plus internally consistent lane lengths.
    pub fn shape_matches(&self, rows: usize, cols: usize) -> bool {
        self.rows == rows
            && self.cols == cols
            && self.alpha.len() == rows
            && self.beta.len() == cols
            && self.workers.len() == self.phi.len()
    }

    /// `φ_u` of a worker, if present in the seed. Binary search when the
    /// worker lane is in ascending id order (always, for seeds produced by
    /// this crate); a linear scan covers hand-built seeds.
    pub fn phi_of(&self, worker: WorkerId) -> Option<f64> {
        if let Ok(i) = self.workers.binary_search(&worker) {
            return Some(self.phi[i]);
        }
        self.workers.iter().position(|&w| w == worker).map(|i| self.phi[i])
    }
}

/// The output of truth inference: per-cell posteriors, per-worker qualities,
/// per-row/column difficulties, and diagnostics.
#[derive(Debug, Clone)]
pub struct InferenceResult {
    n_rows: usize,
    n_cols: usize,
    /// Posterior truth distributions in z-space, dense row-major.
    truths_z: Vec<TruthDist>,
    /// Per-column `(mean, std)` for continuous columns.
    scalers: Vec<Option<(f64, f64)>>,
    /// Fitted row difficulties `α_i` (geometric mean 1).
    pub alpha: Vec<f64>,
    /// Fitted column difficulties `β_j` (geometric mean 1).
    pub beta: Vec<f64>,
    /// Workers in fitting order (parallel to [`Self::phi`]).
    pub workers: Vec<WorkerId>,
    worker_index: HashMap<WorkerId, usize>,
    /// Fitted worker variances `φ_u` (z-space).
    pub phi: Vec<f64>,
    /// The resolved quality window `ε`.
    pub epsilon: f64,
    /// ELBO after each EM iteration (Fig. 12a).
    pub objective_trace: Vec<f64>,
    /// EM iterations performed.
    pub iterations: usize,
    /// Whether EM met its tolerance before the iteration cap.
    pub converged: bool,
    /// The gauge shift the post-EM identifiability polish applied (mean
    /// `ln α`, mean `ln β`); lets a warm restart seed in the raw gauge.
    renorm_shift: (f64, f64),
    /// Wall-clock breakdown of the EM run by kernel phase.
    pub timings: EmTimings,
}

impl InferenceResult {
    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.n_cols
    }

    #[inline]
    fn slot(&self, cell: CellId) -> usize {
        cell.row as usize * self.n_cols + cell.col as usize
    }

    /// The posterior truth distribution of a cell *in z-space* (the space the
    /// assignment machinery works in).
    #[inline]
    pub fn truth_z(&self, cell: CellId) -> &TruthDist {
        &self.truths_z[self.slot(cell)]
    }

    /// Replace the stored z-space posterior of a cell (used by the simulator
    /// between full inference runs for cheap incremental refreshes).
    pub fn set_truth_z(&mut self, cell: CellId, dist: TruthDist) {
        let s = self.slot(cell);
        self.truths_z[s] = dist;
    }

    /// The z-scaling `(mean, std)` of a continuous column.
    #[inline]
    pub fn scaler(&self, col: usize) -> Option<(f64, f64)> {
        self.scalers[col]
    }

    /// The posterior truth distribution of a cell in the original scale.
    pub fn truth(&self, cell: CellId) -> TruthDist {
        match self.truth_z(cell) {
            TruthDist::Categorical(p) => TruthDist::Categorical(p.clone()),
            TruthDist::Continuous(n) => {
                let (m, s) = self.scalers[cell.col as usize].expect("continuous scaler");
                TruthDist::Continuous(Normal::new(m + s * n.mean, s * s * n.var))
            }
        }
    }

    /// Point estimate `T̂_ij` in the original scale.
    pub fn estimate(&self, cell: CellId) -> Value {
        self.truth(cell).estimate()
    }

    /// Point estimates for the whole table.
    pub fn estimates(&self) -> Vec<Vec<Value>> {
        (0..self.n_rows as u32)
            .map(|i| (0..self.n_cols as u32).map(|j| self.estimate(CellId::new(i, j))).collect())
            .collect()
    }

    /// Fitted variance `φ_u` of a worker, if the worker contributed answers.
    pub fn phi_of(&self, worker: WorkerId) -> Option<f64> {
        self.worker_index.get(&worker).map(|&i| self.phi[i])
    }

    /// Population-median `φ` — the prior used for workers not seen before.
    pub fn median_phi(&self) -> f64 {
        if self.phi.is_empty() {
            0.3
        } else {
            median(&self.phi)
        }
    }

    /// `φ_u`, falling back to the population median for unseen workers.
    pub fn phi_or_prior(&self, worker: WorkerId) -> f64 {
        self.phi_of(worker).unwrap_or_else(|| self.median_phi())
    }

    /// Unified quality `q_u = erf(ε/√(2φ_u))` (Eq. 2) of a worker.
    pub fn quality_of(&self, worker: WorkerId) -> Option<f64> {
        self.phi_of(worker).map(|phi| quality_from_variance(self.epsilon, phi))
    }

    /// Effective answer variance `α_i β_j φ_u` for a worker on a cell
    /// (z-space), using the prior `φ` for unseen workers.
    pub fn effective_variance(&self, worker: WorkerId, cell: CellId) -> f64 {
        self.alpha[cell.row as usize] * self.beta[cell.col as usize] * self.phi_or_prior(worker)
    }

    /// Quality `q^u_ij` of a worker on a specific cell (§4.2).
    pub fn cell_quality(&self, worker: WorkerId, cell: CellId) -> f64 {
        quality_from_variance(self.epsilon, self.effective_variance(worker, cell))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrowd_tabular::{evaluate, generate_dataset, GeneratorConfig};

    fn small_dataset(seed: u64) -> tcrowd_tabular::Dataset {
        generate_dataset(
            &GeneratorConfig {
                rows: 40,
                columns: 6,
                num_workers: 25,
                answers_per_task: 5,
                ..Default::default()
            },
            seed,
        )
    }

    #[test]
    fn infer_produces_full_estimates() {
        let d = small_dataset(1);
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        let est = r.estimates();
        assert_eq!(est.len(), 40);
        assert_eq!(est[0].len(), 6);
        for (i, row) in est.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                assert!(d.schema.column_type(j).accepts(v), "estimate at ({i},{j}) has wrong type");
            }
        }
        assert!(r.converged);
    }

    #[test]
    fn inference_beats_first_answer_baseline() {
        let d = small_dataset(2);
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        let report = evaluate(&d.schema, &d.truth, &r.estimates());

        // Naive baseline: take the first answer of each cell.
        let naive: Vec<Vec<Value>> = (0..d.rows() as u32)
            .map(|i| {
                (0..d.cols() as u32)
                    .map(|j| d.answers.for_cell(CellId::new(i, j)).next().expect("answered").value)
                    .collect()
            })
            .collect();
        let naive_report = evaluate(&d.schema, &d.truth, &naive);
        assert!(report.error_rate.unwrap() < naive_report.error_rate.unwrap());
        assert!(report.mnad.unwrap() < naive_report.mnad.unwrap());
    }

    #[test]
    fn estimated_quality_correlates_with_true_quality() {
        let d = small_dataset(3);
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        let mut est = Vec::new();
        let mut truth = Vec::new();
        for (&w, profile) in &d.worker_truth {
            if let Some(phi) = r.phi_of(w) {
                est.push(phi.ln());
                truth.push(profile.phi.ln());
            }
        }
        let rho = tcrowd_stat::describe::pearson(&est, &truth);
        assert!(rho > 0.6, "phi correlation = {rho}");
    }

    #[test]
    fn constrained_variants_only_touch_their_columns() {
        let d = small_dataset(4);
        let cat = TCrowd::only_categorical().infer(&d.schema, &d.answers);
        // Continuous cells keep the z-space prior N(0,1) under onlyCate.
        for j in d.schema.continuous_columns() {
            let t = cat.truth_z(CellId::new(0, j as u32));
            if let TruthDist::Continuous(n) = t {
                assert_eq!((n.mean, n.var), (0.0, 1.0));
            } else {
                panic!("wrong variant");
            }
        }
        // And categorical cells must have moved off the uniform prior.
        let j0 = d.schema.categorical_columns()[0] as u32;
        let t = cat.truth_z(CellId::new(0, j0));
        if let TruthDist::Categorical(p) = t {
            let max = p.iter().cloned().fold(0.0, f64::max);
            assert!(max > 1.5 / p.len() as f64);
        }
    }

    #[test]
    fn epsilon_autoscale_is_positive_and_fixed_respected() {
        let d = small_dataset(5);
        let auto = TCrowd::default_full().infer(&d.schema, &d.answers);
        assert!(auto.epsilon > 0.0);
        let fixed =
            TCrowd::new(TCrowdOptions { epsilon: EpsilonSpec::Fixed(0.77), ..Default::default() })
                .infer(&d.schema, &d.answers);
        assert_eq!(fixed.epsilon, 0.77);
    }

    #[test]
    fn unseen_worker_gets_prior_phi() {
        let d = small_dataset(6);
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        let unseen = WorkerId(9_999);
        assert_eq!(r.phi_of(unseen), None);
        assert!((r.phi_or_prior(unseen) - r.median_phi()).abs() < 1e-12);
        assert!(r.quality_of(unseen).is_none());
    }

    #[test]
    fn truth_rescaling_roundtrip() {
        let d = small_dataset(7);
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        for j in d.schema.continuous_columns() {
            let cell = CellId::new(0, j as u32);
            let (m, s) = r.scaler(j).unwrap();
            if let (TruthDist::Continuous(z), TruthDist::Continuous(o)) =
                (r.truth_z(cell).clone(), r.truth(cell))
            {
                assert!((o.mean - (m + s * z.mean)).abs() < 1e-9);
                assert!((o.var - s * s * z.var).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn cell_quality_uses_difficulty() {
        let d = small_dataset(8);
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        let w = r.workers[0];
        // Quality must decrease as the row difficulty multiplies up.
        let (easy_row, hard_row) = {
            let mut idx: Vec<usize> = (0..r.alpha.len()).collect();
            idx.sort_by(|&a, &b| r.alpha[a].partial_cmp(&r.alpha[b]).unwrap());
            (idx[0] as u32, *idx.last().unwrap() as u32)
        };
        let col = 0u32;
        if r.alpha[easy_row as usize] < r.alpha[hard_row as usize] {
            assert!(
                r.cell_quality(w, CellId::new(easy_row, col))
                    >= r.cell_quality(w, CellId::new(hard_row, col))
            );
        }
    }

    #[test]
    fn easy_tasks_do_not_trigger_posterior_flips() {
        // Regression: a small auto-scaled ε once made the *initial* worker
        // quality fall below 1/|L|, so the first E-step anti-weighted every
        // answer and flipped the posteriors of small-cardinality columns —
        // EM then locked the inversion in. With the erf-calibrated
        // initialisation T-Crowd must beat simple voting on easy tables.
        for seed in [7u64, 108, 209] {
            let d = generate_dataset(
                &GeneratorConfig { avg_difficulty: 0.5, ..Default::default() },
                seed,
            );
            let r = TCrowd::default_full().infer(&d.schema, &d.answers);
            let rep = evaluate(&d.schema, &d.truth, &r.estimates());
            assert!(
                rep.error_rate.unwrap() < 0.05,
                "seed {seed}: easy-task error rate {} suggests flipped posteriors",
                rep.error_rate.unwrap()
            );
        }
    }

    #[test]
    fn empty_answer_log_yields_priors() {
        let d = small_dataset(9);
        let empty = AnswerLog::new(d.rows(), d.cols());
        let r = TCrowd::default_full().infer(&d.schema, &empty);
        assert!(r.converged);
        assert_eq!(r.workers.len(), 0);
        let est = r.estimates();
        assert_eq!(est.len(), d.rows());
    }

    #[test]
    fn seeded_restart_equals_warm_restart_exactly() {
        // `infer_matrix_seeded(FitParams::of(prev))` and
        // `infer_matrix_warm(prev)` must be the *same computation* — the
        // detached seed carries everything the warm path reads. Differential
        // check over the full z-space posterior plus every parameter lane.
        let d = small_dataset(6);
        let model = TCrowd::default_full();
        let half = {
            let mut log = AnswerLog::new(d.rows(), d.cols());
            for a in &d.answers.all()[..d.answers.len() / 2] {
                log.push(*a);
            }
            log
        };
        let prev = model.infer(&d.schema, &half);
        let matrix = d.answers.to_matrix();
        let warm = model.infer_matrix_warm(&d.schema, &matrix, &prev);
        let seeded = model.infer_matrix_seeded(&d.schema, &matrix, &FitParams::of(&prev));
        assert_eq!(warm.alpha, seeded.alpha);
        assert_eq!(warm.beta, seeded.beta);
        assert_eq!(warm.phi, seeded.phi);
        assert_eq!(warm.iterations, seeded.iterations);
        assert_eq!(warm.estimates(), seeded.estimates());
        assert_eq!(crate::diagnostics::max_z_discrepancy(&warm, &seeded), 0.0);
        // Round-tripping the seed through itself is lossless.
        assert_eq!(FitParams::of(&warm), FitParams::of(&seeded));
        // A shape-mismatched seed falls back to the cold start.
        let bad = FitParams { rows: 1, ..FitParams::of(&prev) };
        let cold = model.infer_matrix(&d.schema, &matrix);
        let fallback = model.infer_matrix_seeded(&d.schema, &matrix, &bad);
        assert_eq!(cold.estimates(), fallback.estimates());
        assert_eq!(cold.iterations, fallback.iterations);
    }

    #[test]
    fn evaluating_a_fits_own_params_reproduces_it() {
        // The crash-recovery identity: E-step at a converged fit's stored
        // parameters ≡ that fit's published posteriors (up to the float
        // rounding of the gauge round-trip) — no EM iterations needed.
        let d = small_dataset(8);
        let model = TCrowd::default_full();
        let fit = model.infer(&d.schema, &d.answers);
        let matrix = d.answers.to_matrix();
        let eval = model.evaluate_seeded(&d.schema, &matrix, &FitParams::of(&fit));
        assert_eq!(eval.iterations, 0, "evaluation must not iterate EM");
        assert!(eval.converged);
        let gap = crate::diagnostics::max_z_discrepancy(&eval, &fit);
        assert!(gap < 1e-9, "evaluated posteriors drifted from the fit: {gap:.3e}");
        // Categorical estimates match exactly; continuous ones to float
        // rounding (the gauge round-trip perturbs the last ulp).
        for (er, fr) in eval.estimates().iter().zip(&fit.estimates()) {
            for (e, f) in er.iter().zip(fr) {
                match (e, f) {
                    (Value::Categorical(a), Value::Categorical(b)) => assert_eq!(a, b),
                    (Value::Continuous(a), Value::Continuous(b)) => {
                        assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()), "{a} vs {b}")
                    }
                    _ => panic!("estimate variant flipped"),
                }
            }
        }
        // Parameters survive the gauge round-trip to near-bit precision.
        for (a, b) in eval.phi.iter().zip(&fit.phi) {
            assert!((a - b).abs() <= 1e-12 * b.abs(), "{a} vs {b}");
        }
        // Shape mismatch falls back to a cold fit, not a bogus evaluation.
        let bad = FitParams { rows: 1, ..FitParams::of(&fit) };
        let fallback = model.evaluate_seeded(&d.schema, &matrix, &bad);
        assert!(fallback.iterations > 0);
    }

    #[test]
    fn fit_params_phi_lookup_handles_sorted_and_unsorted_lanes() {
        let d = small_dataset(7);
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        let p = FitParams::of(&r);
        for &w in &p.workers {
            assert_eq!(p.phi_of(w), r.phi_of(w));
        }
        assert_eq!(p.phi_of(WorkerId(u32::MAX)), None);
        // Reverse the lanes: the linear fallback must still find everyone.
        let mut rev = p.clone();
        rev.workers.reverse();
        rev.phi.reverse();
        for &w in &rev.workers {
            assert_eq!(rev.phi_of(w), r.phi_of(w));
        }
    }
}
