//! Truth distributions `T_ij` (paper Eq. 4) and their uniform entropy (§5.1).

use crate::model::cat_answer_likelihood;
use tcrowd_stat::entropy::shannon;
use tcrowd_stat::normal::Normal;
use tcrowd_stat::EPS;
use tcrowd_tabular::Value;

/// The estimated distribution of one cell's truth.
#[derive(Debug, Clone, PartialEq)]
pub enum TruthDist {
    /// Continuous cell: `T ~ N(T^µ, T^φ)`.
    Continuous(Normal),
    /// Categorical cell: `P(T = z)` over the label set.
    Categorical(Vec<f64>),
}

impl TruthDist {
    /// Uniform prior over `cardinality` labels.
    pub fn uniform(cardinality: u32) -> Self {
        let k = cardinality.max(1) as usize;
        TruthDist::Categorical(vec![1.0 / k as f64; k])
    }

    /// The uniform entropy `H(T)` of §5.1 — Shannon for categorical,
    /// differential for continuous. The two are only comparable through
    /// *differences*, which is all the information-gain machinery uses.
    pub fn entropy(&self) -> f64 {
        match self {
            TruthDist::Continuous(n) => n.differential_entropy(),
            TruthDist::Categorical(p) => shannon(p),
        }
    }

    /// Point estimate `T̂` (paper, end of §4.3): the posterior mean for
    /// continuous cells, the argmax label for categorical cells.
    pub fn estimate(&self) -> Value {
        match self {
            TruthDist::Continuous(n) => Value::Continuous(n.mean),
            TruthDist::Categorical(p) => {
                let best = p
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN probability"))
                    .map(|(i, _)| i as u32)
                    .unwrap_or(0);
                Value::Categorical(best)
            }
        }
    }

    /// Posterior after one additional answer from a worker with effective
    /// variance `variance` and (for categorical cells) quality `q`.
    ///
    /// This is the *incremental* update of §5.1: rather than re-running full
    /// EM for every hypothetical answer, only the candidate cell's posterior
    /// is refreshed with the new likelihood factor.
    pub fn updated_with_answer(&self, answer: &Value, variance: f64, q: f64) -> TruthDist {
        match (self, answer) {
            (TruthDist::Continuous(n), Value::Continuous(a)) => {
                TruthDist::Continuous(n.posterior_with_observation(*a, variance))
            }
            (TruthDist::Categorical(p), Value::Categorical(a)) => {
                let l = p.len() as u32;
                let mut out: Vec<f64> = p
                    .iter()
                    .enumerate()
                    .map(|(z, pz)| pz * cat_answer_likelihood(q, l, z as u32 == *a))
                    .collect();
                let total: f64 = out.iter().sum();
                if total > EPS {
                    for v in &mut out {
                        *v /= total;
                    }
                } else {
                    out = vec![1.0 / p.len() as f64; p.len()];
                }
                TruthDist::Categorical(out)
            }
            _ => panic!("answer datatype does not match truth distribution"),
        }
    }

    /// The probability the posterior assigns to `value` being the truth:
    /// the posterior probability of the label, or the posterior density at
    /// the point for continuous cells.
    pub fn confidence_in(&self, value: &Value) -> f64 {
        match (self, value) {
            (TruthDist::Categorical(p), Value::Categorical(a)) => {
                p.get(*a as usize).copied().unwrap_or(0.0)
            }
            (TruthDist::Continuous(n), Value::Continuous(x)) => n.pdf(*x),
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_prior_is_uniform() {
        let t = TruthDist::uniform(4);
        if let TruthDist::Categorical(p) = &t {
            assert_eq!(p.len(), 4);
            assert!(p.iter().all(|x| (x - 0.25).abs() < 1e-12));
        } else {
            panic!("wrong variant");
        }
        assert!((t.entropy() - 4f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn estimate_picks_argmax_and_mean() {
        let cat = TruthDist::Categorical(vec![0.2, 0.5, 0.3]);
        assert_eq!(cat.estimate(), Value::Categorical(1));
        let cont = TruthDist::Continuous(Normal::new(3.3, 1.0));
        assert_eq!(cont.estimate(), Value::Continuous(3.3));
    }

    #[test]
    fn categorical_update_shifts_mass_toward_answer() {
        let prior = TruthDist::uniform(3);
        let post = prior.updated_with_answer(&Value::Categorical(2), 0.1, 0.8);
        if let TruthDist::Categorical(p) = &post {
            assert!(p[2] > p[0] && p[2] > p[1]);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            // Exact posterior: 0.8 vs 0.1 vs 0.1.
            assert!((p[2] - 0.8).abs() < 1e-9);
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn low_quality_answer_barely_moves_posterior() {
        let prior = TruthDist::Categorical(vec![0.6, 0.4]);
        // q = 0.5 on a binary domain is an uninformative worker.
        let post = prior.updated_with_answer(&Value::Categorical(1), 1.0, 0.5);
        if let TruthDist::Categorical(p) = post {
            assert!((p[0] - 0.6).abs() < 1e-9);
        }
    }

    #[test]
    fn continuous_update_reduces_entropy() {
        let prior = TruthDist::Continuous(Normal::new(0.0, 4.0));
        let post = prior.updated_with_answer(&Value::Continuous(1.0), 1.0, 0.9);
        assert!(post.entropy() < prior.entropy());
    }

    #[test]
    fn repeated_consistent_answers_converge_categorical() {
        let mut t = TruthDist::uniform(5);
        for _ in 0..20 {
            t = t.updated_with_answer(&Value::Categorical(3), 0.2, 0.7);
        }
        if let TruthDist::Categorical(p) = &t {
            assert!(p[3] > 0.999);
        }
        assert_eq!(t.estimate(), Value::Categorical(3));
    }

    #[test]
    fn confidence_reads_the_right_entry() {
        let cat = TruthDist::Categorical(vec![0.1, 0.9]);
        assert!((cat.confidence_in(&Value::Categorical(1)) - 0.9).abs() < 1e-12);
        assert_eq!(cat.confidence_in(&Value::Categorical(7)), 0.0);
        let cont = TruthDist::Continuous(Normal::STANDARD);
        assert!(cont.confidence_in(&Value::Continuous(0.0)) > 0.39);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_update_panics() {
        TruthDist::uniform(2).updated_with_answer(&Value::Continuous(0.0), 1.0, 0.5);
    }
}
