//! The EM truth-inference engine (paper §4.3, Algorithm 1).
//!
//! Internal representation: answers are flattened into index-based records
//! (worker index, row, column, z-scored value), truth posteriors live in a
//! dense per-cell vector, and the parameters are optimised in log space
//! (`ln α, ln β, ln φ`) so positivity is structural rather than enforced by
//! projection.
//!
//! **Identifiability.** The likelihood only sees the product
//! `α_i β_j φ_u`, which leaves a two-dimensional scale ambiguity. After every
//! M-step the geometric means of `α` and `β` are renormalised to 1 and the
//! scale is pushed into `φ`, so reported difficulties are relative and
//! `φ_u` is the absolute per-worker variance.

#![allow(clippy::needless_range_loop)] // index loops here walk several parallel arrays
use crate::model::{cat_answer_ln_likelihood, quality_from_ln_variance_fast};
use crate::pool::WorkerPool;
use crate::truth::TruthDist;
use std::sync::Mutex;
use std::time::Instant;
use tcrowd_stat::batch::{kernels, BatchKernels};
use tcrowd_stat::normal::Normal;
use tcrowd_stat::optimize::{gradient_ascent_with, AscentOptions};
use tcrowd_stat::{clamp_prob, EPS};

/// Options controlling the EM loop.
#[derive(Debug, Clone, Copy)]
pub struct EmOptions {
    /// Maximum number of EM iterations (the paper observes convergence in
    /// fewer than 20).
    pub max_iters: usize,
    /// Relative ELBO-improvement threshold for convergence (the paper uses
    /// 1e-5 on parameter changes; an ELBO criterion is equivalent in practice
    /// and cheaper to evaluate).
    pub tol: f64,
    /// Optional parameter-change convergence criterion: also stop once the
    /// largest absolute change of any log-parameter across one EM iteration
    /// drops below this threshold (`0` disables it, the default).
    ///
    /// Near the optimum the ELBO flattens quadratically while the parameters
    /// still drift linearly, so an ELBO threshold leaves `√tol`-sized slack
    /// in the parameters. Refit loops that need *estimate agreement* between
    /// a warm-started and a cold-started run (the `bench_refresh` contract:
    /// within 1e-6) converge on the parameters instead — a warm restart that
    /// begins at the fixed point then stops after a single polish iteration
    /// rather than random-walking at the M-step noise floor.
    pub param_tol: f64,
    /// Learn per-row difficulties `α_i` (disable for the ablation study).
    pub learn_row_difficulty: bool,
    /// Learn per-column difficulties `β_j` (disable for the ablation study).
    pub learn_col_difficulty: bool,
    /// Initial worker *quality* `q₀` (probability of a correct categorical
    /// answer) before the first M-step. The corresponding variance is derived
    /// through the inverse erf link, `φ₀ = (ε / (√2·erf⁻¹(q₀)))²`, so the
    /// starting point is calibrated to whatever `ε` resolves to.
    ///
    /// This matters: a *fixed* starting `φ` can imply `q < 1/|L|` under a
    /// small `ε`, which makes the first E-step treat every worker as
    /// adversarial and flip the posterior of small-cardinality columns — a
    /// local optimum EM never escapes. Must lie in `(0, 1)`.
    pub init_quality: f64,
    /// Strength (inverse variance) of the Gaussian prior on `ln φ`.
    ///
    /// Pure maximum-likelihood EM on categorical answers exhibits the
    /// classic confidence spiral: a worker whose answers currently agree
    /// with the posterior gets `q → 1`, which lets that single worker pin
    /// cell posteriors, which further inflates their quality. A weak MAP
    /// prior (`ln φ ~ N(ln φ₀, 1/strength)`, with `φ₀` from
    /// [`EmOptions::init_quality`]) bounds the spiral without
    /// noticeably biasing well-observed workers.
    pub phi_prior_strength: f64,
    /// Strength of the Gaussian priors on `ln α` and `ln β` (centred at 0 —
    /// difficulties are multiplicative corrections, so the prior says
    /// "average difficulty" until the data insists otherwise).
    pub difficulty_prior_strength: f64,
    /// Bounds on `ln φ` (and `ln α`, `ln β`) keeping the optimiser inside a
    /// numerically sane box.
    pub ln_param_bound: f64,
    /// Split the E-step across threads (cells are independent). Results are
    /// identical to the serial path; worthwhile for tables with many cells.
    /// Defaults to on exactly when the `parallel` cargo feature is on, so the
    /// threaded path is what the simulator and benches actually exercise.
    pub parallel_estep: bool,
    /// Split every M-step objective/gradient evaluation across threads
    /// (fixed chunk boundaries + in-order reduction, so the result is
    /// **bit-identical** to the serial path at any thread count — tested).
    /// Defaults to on exactly when the `parallel` cargo feature is on.
    pub parallel_mstep: bool,
    /// Thread count for the parallel phases; `0` (the default) means one
    /// thread per available core. Thread count never affects the fitted
    /// numbers, only wall-clock.
    pub threads: usize,
    /// Inner gradient-ascent configuration for the M-step.
    pub mstep: AscentOptions,
}

impl Default for EmOptions {
    fn default() -> Self {
        EmOptions {
            max_iters: 50,
            tol: 1e-6,
            param_tol: 0.0,
            learn_row_difficulty: true,
            learn_col_difficulty: true,
            init_quality: 0.7,
            phi_prior_strength: 1.0,
            difficulty_prior_strength: 4.0,
            ln_param_bound: 12.0,
            parallel_estep: cfg!(feature = "parallel"),
            parallel_mstep: cfg!(feature = "parallel"),
            threads: 0,
            mstep: AscentOptions {
                initial_step: 0.25,
                max_iters: 25,
                tol: 1e-8,
                max_backtracks: 25,
                growth: 1.4,
            },
        }
    }
}

impl EmOptions {
    /// Preset for fixed-point-accurate fits: tight parameter-change
    /// criterion, tight inner ascent, generous iteration caps. Far slower
    /// than the default and unnecessary for production estimates — use it
    /// when two runs must land on the *same* optimum to high precision
    /// (the warm-vs-cold 1e-6 agreement contract shared by the sim
    /// regression suite and `bench_refresh`).
    pub fn deep_convergence() -> Self {
        EmOptions {
            tol: 1e-14,
            param_tol: 3e-8,
            max_iters: 600,
            mstep: AscentOptions {
                tol: 1e-13,
                max_iters: 80,
                max_backtracks: 30,
                ..EmOptions::default().mstep
            },
            ..Default::default()
        }
    }
}

/// Column datatype as seen by the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ColKind {
    /// Categorical with the given cardinality.
    Cat(u32),
    /// Continuous (values are z-scored).
    Cont,
}

/// One flattened answer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IntAnswer {
    pub worker: u32,
    pub row: u32,
    pub col: u32,
    /// Label for categorical columns (unused otherwise).
    pub label: u32,
    /// Z-scored value for continuous columns (unused otherwise).
    pub value: f64,
}

/// The flattened problem instance the EM engine operates on.
///
/// Columnar/CSR layout: `answers` is sorted cell-major (row-major slots,
/// insertion order within a cell) and `cell_offsets` delimits each cell's
/// contiguous slice — every sweep walks dense memory, no per-cell
/// indirection. Built from an [`tcrowd_tabular::AnswerMatrix`] by
/// [`crate::inference::TCrowd::infer`]; workers are indexed densely in
/// sorted-id order, which makes the whole EM pipeline deterministic.
#[derive(Debug, Clone)]
pub(crate) struct Workspace {
    pub n_rows: usize,
    pub n_cols: usize,
    pub n_workers: usize,
    pub col_kind: Vec<ColKind>,
    /// Cell-major flattened answers.
    pub answers: Vec<IntAnswer>,
    /// CSR offsets into [`Self::answers`], `n_rows * n_cols + 1` entries.
    pub cell_offsets: Vec<u32>,
    /// Column-kind–segregated SoA runs of the same answers, for the batch
    /// M-step/ELBO kernels (built once here, reused every iteration).
    pub runs: MStepRuns,
    /// Quality window ε (Eq. 2), in z-score units.
    pub epsilon: f64,
}

/// The answers of a [`Workspace`] segregated by column kind into contiguous
/// structure-of-arrays runs: one continuous run, one categorical run, each
/// preserving the workspace's cell-major order. The M-step objective over
/// this layout is two branchless batch loops (see [`BatchKernels`]) instead
/// of one per-answer `ColKind` match, and the fixed-size chunks the runs are
/// cut into are the unit of (deterministic) parallelism.
#[derive(Debug, Clone, Default)]
pub(crate) struct MStepRuns {
    pub cont_row: Vec<u32>,
    pub cont_col: Vec<u32>,
    pub cont_worker: Vec<u32>,
    pub cont_value: Vec<f64>,
    pub cat_row: Vec<u32>,
    pub cat_col: Vec<u32>,
    pub cat_worker: Vec<u32>,
    pub cat_label: Vec<u32>,
    /// `ln(max(L,2) - 1)` per categorical answer — the miss-likelihood
    /// normaliser, constant across iterations so hoisted out of the kernels.
    pub cat_ln_card1: Vec<f64>,
}

impl MStepRuns {
    fn build(col_kind: &[ColKind], answers: &[IntAnswer]) -> MStepRuns {
        let mut r = MStepRuns::default();
        for a in answers {
            match col_kind[a.col as usize] {
                ColKind::Cont => {
                    r.cont_row.push(a.row);
                    r.cont_col.push(a.col);
                    r.cont_worker.push(a.worker);
                    r.cont_value.push(a.value);
                }
                ColKind::Cat(l) => {
                    r.cat_row.push(a.row);
                    r.cat_col.push(a.col);
                    r.cat_worker.push(a.worker);
                    r.cat_label.push(a.label);
                    r.cat_ln_card1.push(((l.max(2) - 1) as f64).ln());
                }
            }
        }
        r
    }
}

impl Workspace {
    /// Assemble a workspace from answers in any order: stable-sorts them
    /// cell-major and builds the CSR offsets.
    pub fn assemble(
        n_rows: usize,
        n_cols: usize,
        n_workers: usize,
        col_kind: Vec<ColKind>,
        mut answers: Vec<IntAnswer>,
        epsilon: f64,
    ) -> Workspace {
        answers.sort_by_key(|a| (a.row, a.col));
        let mut cell_offsets = vec![0u32; n_rows * n_cols + 1];
        for a in &answers {
            cell_offsets[a.row as usize * n_cols + a.col as usize + 1] += 1;
        }
        for s in 0..n_rows * n_cols {
            cell_offsets[s + 1] += cell_offsets[s];
        }
        let runs = MStepRuns::build(&col_kind, &answers);
        Workspace { n_rows, n_cols, n_workers, col_kind, answers, cell_offsets, runs, epsilon }
    }

    /// Row-major slot of a cell (test helper; the hot paths inline this).
    #[inline]
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn cell_slot(&self, row: u32, col: u32) -> usize {
        row as usize * self.n_cols + col as usize
    }

    /// The contiguous answer slice of one cell slot.
    #[inline]
    pub fn cell_answers(&self, slot: usize) -> &[IntAnswer] {
        &self.answers[self.cell_offsets[slot] as usize..self.cell_offsets[slot + 1] as usize]
    }
}

/// Fitted EM state.
#[derive(Debug, Clone)]
pub(crate) struct EmState {
    pub ln_alpha: Vec<f64>,
    pub ln_beta: Vec<f64>,
    pub ln_phi: Vec<f64>,
    /// Posterior truth distribution per cell (z-space), dense row-major.
    pub truths: Vec<TruthDist>,
    /// ELBO after every EM iteration (Fig. 12a's "objective value").
    pub trace: Vec<f64>,
    pub iterations: usize,
    pub converged: bool,
    /// The `(mean ln α, mean ln β)` the identifiability polish subtracted
    /// after convergence. A warm restart adds them back so its seed sits in
    /// the *raw* gauge the M-step priors actually rest in — seeding with the
    /// renormalised parameters would make the first M-step jump back by
    /// exactly this shift and waste the restart's head start.
    pub renorm_shift: (f64, f64),
    /// Where the wall-clock of this run went, by EM phase.
    pub timings: EmTimings,
}

/// Per-phase wall-clock breakdown of one EM run. Totals across the whole
/// run (an EM run performs `iterations + 1` E-steps/ELBO evaluations and
/// `iterations` M-steps). Surfaced through
/// [`crate::InferenceResult::timings`], the service `/stats` endpoint and
/// the inference bench, so refit-lag regressions are attributable to a
/// phase rather than a single opaque number.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmTimings {
    /// Total E-step time, nanoseconds.
    pub estep_ns: u64,
    /// Total M-step (gradient ascent) time, nanoseconds.
    pub mstep_ns: u64,
    /// Total ELBO-evaluation time, nanoseconds.
    pub elbo_ns: u64,
    /// Number of M-step objective/gradient evaluations across the run — the
    /// multiplier that makes the batch-kernel evaluation the hot loop.
    pub objective_evals: u64,
    /// Threads the parallel phases were split across (1 = serial).
    pub threads: usize,
}

const LN_2PI: f64 = 1.8378770664093453;

/// The variance `φ₀` implied by the initial quality under window `epsilon`:
/// inverts `q = erf(ε/√(2φ))`.
pub(crate) fn initial_phi(epsilon: f64, init_quality: f64) -> f64 {
    let q0 = init_quality.clamp(0.05, 0.99);
    let x = tcrowd_stat::special::erf_inv(q0).max(EPS);
    let phi = epsilon / (std::f64::consts::SQRT_2 * x);
    (phi * phi).max(EPS)
}

/// A warm-start seed for [`run_em_from`]: the fitted log-parameters of a
/// previous, slightly-stale EM run, already aligned to the new workspace's
/// dense indices (rows/columns are positional; workers are mapped by id by
/// the caller, unseen workers get the calibrated initial `φ₀`).
///
/// Only the *parameters* are seeded — the E-step recomputes every posterior
/// from the parameters exactly, so seeding truths would be redundant. EM
/// started near the previous optimum converges in a handful of iterations
/// instead of the full cold trajectory, and — because the EM map and its
/// fixed points are unchanged — lands on the same estimates (the sim
/// regression suite asserts agreement within 1e-6 against the cold path).
#[derive(Debug, Clone)]
pub(crate) struct WarmStart {
    pub ln_alpha: Vec<f64>,
    pub ln_beta: Vec<f64>,
    pub ln_phi: Vec<f64>,
}

/// Run the full EM loop (Algorithm 1) on a workspace, cold-started.
#[cfg_attr(not(test), allow(dead_code))] // production callers go through `run_em_from`
pub(crate) fn run_em(ws: &Workspace, opts: &EmOptions) -> EmState {
    run_em_from(ws, opts, None)
}

/// Run the full EM loop, optionally seeding the parameters from a previous
/// fit (see [`WarmStart`]).
pub(crate) fn run_em_from(ws: &Workspace, opts: &EmOptions, warm: Option<&WarmStart>) -> EmState {
    let bound = opts.ln_param_bound;
    let (ln_alpha, ln_beta, ln_phi) = match warm {
        Some(w) => {
            assert_eq!(w.ln_alpha.len(), ws.n_rows, "warm-start row count mismatch");
            assert_eq!(w.ln_beta.len(), ws.n_cols, "warm-start column count mismatch");
            assert_eq!(w.ln_phi.len(), ws.n_workers, "warm-start worker count mismatch");
            let clamp = |v: &[f64]| v.iter().map(|x| x.clamp(-bound, bound)).collect();
            (clamp(&w.ln_alpha), clamp(&w.ln_beta), clamp(&w.ln_phi))
        }
        None => (
            vec![0.0; ws.n_rows],
            vec![0.0; ws.n_cols],
            vec![initial_phi(ws.epsilon, opts.init_quality).ln(); ws.n_workers],
        ),
    };
    let mut state = EmState {
        ln_alpha,
        ln_beta,
        ln_phi,
        truths: initial_truths(ws),
        trace: Vec::new(),
        iterations: 0,
        converged: false,
        renorm_shift: (0.0, 0.0),
        timings: EmTimings { threads: 1, ..EmTimings::default() },
    };
    if ws.answers.is_empty() {
        // Nothing to learn; posteriors are the priors.
        state.converged = true;
        return state;
    }

    // Resolve the batch-kernel path once and spawn the worker pool once —
    // both are reused across every iteration of this run (pre-PR-6 the
    // E-step spawned OS threads every call, which ate its own speedup).
    let kern = kernels();
    let estep_threads = thread_count(opts.parallel_estep, opts.threads);
    let mstep_threads = thread_count(opts.parallel_mstep, opts.threads);
    let pool_threads = estep_threads.max(mstep_threads);
    let pool = (pool_threads > 1).then(|| WorkerPool::new(pool_threads));
    let epool = pool.as_ref().filter(|_| estep_threads > 1);
    let mpool = pool.as_ref().filter(|_| mstep_threads > 1);
    let mut scratch = EmScratch::new(ws);
    state.timings.threads = pool_threads;

    let t = Instant::now();
    e_step_with(ws, &mut state, epool);
    state.timings.estep_ns += t.elapsed().as_nanos() as u64;
    let t = Instant::now();
    let mut elbo = compute_elbo(ws, &state, opts, kern, &mut scratch, mpool);
    state.timings.elbo_ns += t.elapsed().as_nanos() as u64;
    state.trace.push(elbo);

    let mut prev_params: Vec<f64> = Vec::new();
    for iter in 1..=opts.max_iters {
        if opts.param_tol > 0.0 {
            prev_params.clear();
            prev_params.extend_from_slice(&state.ln_alpha);
            prev_params.extend_from_slice(&state.ln_beta);
            prev_params.extend_from_slice(&state.ln_phi);
        }
        let t = Instant::now();
        let evals = m_step(ws, &mut state, opts, kern, &mut scratch, mpool);
        state.timings.mstep_ns += t.elapsed().as_nanos() as u64;
        state.timings.objective_evals += evals as u64;
        let t = Instant::now();
        e_step_with(ws, &mut state, epool);
        state.timings.estep_ns += t.elapsed().as_nanos() as u64;
        let t = Instant::now();
        let next = compute_elbo(ws, &state, opts, kern, &mut scratch, mpool);
        state.timings.elbo_ns += t.elapsed().as_nanos() as u64;
        state.trace.push(next);
        state.iterations = iter;
        if (next - elbo).abs() < opts.tol * (1.0 + elbo.abs()) {
            state.converged = true;
            elbo = next;
            break;
        }
        if opts.param_tol > 0.0 {
            let moved = state
                .ln_alpha
                .iter()
                .chain(&state.ln_beta)
                .chain(&state.ln_phi)
                .zip(&prev_params)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            if moved < opts.param_tol {
                state.converged = true;
                elbo = next;
                break;
            }
        }
        elbo = next;
    }
    let _ = elbo;
    state.renorm_shift = renormalize(&mut state, opts);
    state
}

/// Prior truth distributions: `N(0, 1)` in z-space for continuous cells,
/// uniform for categorical cells.
fn initial_truths(ws: &Workspace) -> Vec<TruthDist> {
    let mut out = Vec::with_capacity(ws.n_rows * ws.n_cols);
    for slot in 0..ws.n_rows * ws.n_cols {
        let col = slot % ws.n_cols;
        out.push(match ws.col_kind[col] {
            ColKind::Cat(l) => TruthDist::uniform(l),
            ColKind::Cont => TruthDist::Continuous(Normal::STANDARD),
        });
    }
    out
}

/// Threads to split a parallel phase across: the option override, else one
/// per available core; always `1` when the phase (or the `parallel`
/// feature) is off.
fn thread_count(phase_enabled: bool, requested: usize) -> usize {
    if !cfg!(feature = "parallel") || !phase_enabled {
        return 1;
    }
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Posterior of one cell under the current parameters (Eq. 4).
fn cell_posterior(
    ws: &Workspace,
    la: &[f64],
    lb: &[f64],
    lp: &[f64],
    slot: usize,
) -> Option<TruthDist> {
    let cell = ws.cell_answers(slot);
    if cell.is_empty() {
        return None; // posterior stays at the prior
    }
    let row = (slot / ws.n_cols) as u32;
    let col = (slot % ws.n_cols) as u32;
    let ln_v_of = |a: &IntAnswer| la[row as usize] + lb[col as usize] + lp[a.worker as usize];
    Some(match ws.col_kind[col as usize] {
        ColKind::Cont => {
            // Streamed precision-weighted update — same accumulation order as
            // `Normal::posterior_with_observations`, without the obs buffer.
            let mut prec = 1.0; // standard-normal prior: 1/var
            let mut weighted = 0.0; // prior mean / var
            for a in cell {
                let v = tcrowd_stat::clamp_var(ln_v_of(a).exp());
                prec += 1.0 / v;
                weighted += a.value / v;
            }
            let var = 1.0 / prec;
            TruthDist::Continuous(Normal::new(weighted * var, var))
        }
        ColKind::Cat(l) => {
            let l_us = l.max(1) as usize;
            let mut ln_p = vec![0.0f64; l_us]; // uniform prior cancels
            for a in cell {
                let q = quality_from_ln_variance_fast(ws.epsilon, ln_v_of(a));
                // Only two distinct likelihood values exist per answer.
                let ln_hit = cat_answer_ln_likelihood(q, l, true);
                let ln_miss = cat_answer_ln_likelihood(q, l, false);
                for (z, lp) in ln_p.iter_mut().enumerate() {
                    *lp += if z as u32 == a.label { ln_hit } else { ln_miss };
                }
            }
            let max = ln_p.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut p: Vec<f64> = ln_p.iter().map(|lp| (lp - max).exp()).collect();
            let total: f64 = p.iter().sum();
            for v in &mut p {
                *v /= total;
            }
            TruthDist::Categorical(p)
        }
    })
}

/// Cell slots per E-step chunk. With the persistent pool a chunk claim is
/// one atomic increment plus an uncontended mutex lock, so the batch no
/// longer has to amortise a thread spawn; 64 keeps the claim traffic
/// negligible against the per-cell math while still load-balancing a
/// skewed answer distribution (chunks are *claimed* dynamically — only the
/// chunk *boundaries* are fixed, and each cell's posterior is independent,
/// so scheduling never affects the result).
const ESTEP_CHUNK: usize = 64;

/// Below this many cells a parallel E-step costs more in dispatch than it
/// saves in compute; run serial regardless of the pool.
const ESTEP_PARALLEL_MIN: usize = 256;

/// E-step (Eq. 4), serial entry point (tests and tiny tables).
#[cfg(test)]
pub(crate) fn e_step(ws: &Workspace, state: &mut EmState, _opts: &EmOptions) {
    e_step_with(ws, state, None);
}

/// E-step (Eq. 4): recompute every cell's posterior from the current
/// parameters. Cells are independent, so with a pool the slots are split
/// into fixed 64-slot chunks claimed off the pool's cursor (the paper's §7
/// notes this acceleration). Each chunk writes its posteriors directly into
/// its disjoint slice of `state.truths`, so there is no merge step and the
/// result is bit-identical to the serial path regardless of scheduling —
/// which is tested.
pub(crate) fn e_step_with(ws: &Workspace, state: &mut EmState, pool: Option<&WorkerPool>) {
    let n_slots = ws.n_rows * ws.n_cols;
    let EmState { ln_alpha, ln_beta, ln_phi, truths, .. } = state;
    let (la, lb, lp) = (&ln_alpha[..], &ln_beta[..], &ln_phi[..]);
    match pool.filter(|p| p.threads() > 1 && n_slots >= ESTEP_PARALLEL_MIN) {
        None => {
            for slot in 0..n_slots {
                if let Some(t) = cell_posterior(ws, la, lb, lp, slot) {
                    truths[slot] = t;
                }
            }
        }
        Some(p) => {
            let tasks: Vec<Mutex<(usize, &mut [TruthDist])>> = truths
                .chunks_mut(ESTEP_CHUNK)
                .enumerate()
                .map(|(i, c)| Mutex::new((i * ESTEP_CHUNK, c)))
                .collect();
            p.run(tasks.len(), &|ci| {
                let mut guard = tasks[ci].lock().expect("estep chunk mutex");
                let (base, chunk) = &mut *guard;
                for (off, out) in chunk.iter_mut().enumerate() {
                    if let Some(t) = cell_posterior(ws, la, lb, lp, *base + off) {
                        *out = t;
                    }
                }
            });
        }
    }
}

/// Answers per M-step chunk: the unit of parallelism for the batch-kernel
/// evaluation. Boundaries are **fixed** by this constant (never by thread
/// count), each chunk writes only its own disjoint slices, and the chunk
/// partial sums are reduced serially in chunk order — which is what makes
/// the parallel objective bit-identical to the serial one. 4096 answers is
/// ~100 µs of kernel work, comfortably above the per-chunk claim cost.
const MSTEP_CHUNK: usize = 4096;

/// Reusable buffer set for one EM run: the per-answer caches, the staging
/// arrays the batch kernels read/write, and the parameter pack buffer.
/// Allocated once per `run_em_from` (sized by the workspace's SoA runs) —
/// pre-PR-6 the M-step allocated two full-length cache `Vec`s per call and
/// a gradient `Vec` per objective evaluation.
pub(crate) struct EmScratch {
    /// Continuous answers: `K = (a − T^µ)² + T^φ` (rebuilt per posterior).
    cont_k: Vec<f64>,
    /// Categorical answers: posterior probability the answer is correct.
    cat_p: Vec<f64>,
    /// Categorical answers: `(1 − p)·ln(L−1)`, the constant miss term.
    cat_c: Vec<f64>,
    /// Staging: per-answer effective `ln v` under the evaluated parameters.
    cont_ln_v: Vec<f64>,
    cat_ln_v: Vec<f64>,
    /// Staging: per-answer `∂term/∂ln v` written by the kernels.
    cont_g: Vec<f64>,
    cat_g: Vec<f64>,
    /// Packed-parameter buffer for the gradient-ascent start point.
    x: Vec<f64>,
}

impl EmScratch {
    pub(crate) fn new(ws: &Workspace) -> EmScratch {
        let nc = ws.runs.cont_row.len();
        let nk = ws.runs.cat_row.len();
        EmScratch {
            cont_k: vec![0.0; nc],
            cat_p: vec![0.0; nk],
            cat_c: vec![0.0; nk],
            cont_ln_v: vec![0.0; nc],
            cat_ln_v: vec![0.0; nk],
            cont_g: vec![0.0; nc],
            cat_g: vec![0.0; nk],
            x: Vec::new(),
        }
    }
}

/// Refresh the per-answer sufficient statistics from the current posteriors
/// (used by both the M-step objective and the ELBO, which see different
/// posteriors within one iteration).
fn build_cache(ws: &Workspace, truths: &[TruthDist], scratch: &mut EmScratch) {
    let r = &ws.runs;
    for j in 0..r.cont_row.len() {
        let slot = r.cont_row[j] as usize * ws.n_cols + r.cont_col[j] as usize;
        let TruthDist::Continuous(n) = &truths[slot] else {
            unreachable!("continuous answer on non-continuous posterior")
        };
        let d = r.cont_value[j] - n.mean;
        scratch.cont_k[j] = d * d + n.var;
    }
    for j in 0..r.cat_row.len() {
        let slot = r.cat_row[j] as usize * ws.n_cols + r.cat_col[j] as usize;
        let TruthDist::Categorical(p) = &truths[slot] else {
            unreachable!("categorical answer on non-categorical posterior")
        };
        let pc = clamp_prob(p.get(r.cat_label[j] as usize).copied().unwrap_or(0.0));
        scratch.cat_p[j] = pc;
        scratch.cat_c[j] = (1.0 - pc) * r.cat_ln_card1[j];
    }
}

/// One fixed chunk of a run: the slices a single kernel invocation reads
/// and writes. Chunks are disjoint, so the `Mutex` is uncontended — it
/// exists to hand the `&mut` slices across the pool's shared-closure
/// boundary, not to serialize anything.
struct ChunkTask<'a> {
    cat: bool,
    rows: &'a [u32],
    cols: &'a [u32],
    workers: &'a [u32],
    /// Cont: the `K` cache. Cat: the hit-probability cache `p`.
    aux: &'a [f64],
    /// Cat only: the miss-constant cache `c`.
    aux2: &'a [f64],
    ln_v: &'a mut [f64],
    g: &'a mut [f64],
    /// The chunk's objective partial sum, written by the job.
    q: f64,
}

/// Gather the effective log-variances `ln(α_i β_j φ_u)` of one chunk.
/// `None` parameter slices contribute zero (difficulties frozen by the
/// ablation flags); the clamp is the M-step's optimiser box (the ELBO
/// evaluates unclamped, exactly like the pre-batch code).
#[allow(clippy::too_many_arguments)] // three param lanes + three index runs
fn fill_ln_v(
    la: Option<&[f64]>,
    lb: Option<&[f64]>,
    lp: &[f64],
    clamp: Option<f64>,
    rows: &[u32],
    cols: &[u32],
    workers: &[u32],
    out: &mut [f64],
) {
    for j in 0..out.len() {
        let va = la.map_or(0.0, |v| v[rows[j] as usize]);
        let vb = lb.map_or(0.0, |v| v[cols[j] as usize]);
        out[j] = va + vb + lp[workers[j] as usize];
    }
    if let Some(b) = clamp {
        for v in out.iter_mut() {
            *v = v.clamp(-b, b);
        }
    }
}

/// The Σ-over-answers part of both the M-step objective and the ELBO:
/// per-answer Gaussian terms over the continuous run plus categorical
/// quality terms over the categorical run, evaluated by the batch kernels
/// chunk by chunk (optionally across the pool). Returns the summed
/// objective contribution; per-answer `∂/∂ln v` lands in
/// `scratch.cont_g` / `scratch.cat_g`.
///
/// **Determinism:** chunk boundaries come from [`MSTEP_CHUNK`], each chunk
/// writes only its own slices, and the partial sums are folded serially in
/// chunk order after the barrier — so the result is bit-identical at any
/// thread count, including one.
#[allow(clippy::too_many_arguments)] // the two param groups are documented above
fn eval_answers(
    ws: &Workspace,
    la: Option<&[f64]>,
    lb: Option<&[f64]>,
    lp: &[f64],
    clamp: Option<f64>,
    kern: BatchKernels,
    scratch: &mut EmScratch,
    pool: Option<&WorkerPool>,
) -> f64 {
    let r = &ws.runs;
    let EmScratch { cont_k, cat_p, cat_c, cont_ln_v, cat_ln_v, cont_g, cat_g, .. } = scratch;
    let mut tasks: Vec<Mutex<ChunkTask>> = Vec::new();
    for (i, (ln_v, g)) in
        cont_ln_v.chunks_mut(MSTEP_CHUNK).zip(cont_g.chunks_mut(MSTEP_CHUNK)).enumerate()
    {
        let s = i * MSTEP_CHUNK;
        let e = s + ln_v.len();
        tasks.push(Mutex::new(ChunkTask {
            cat: false,
            rows: &r.cont_row[s..e],
            cols: &r.cont_col[s..e],
            workers: &r.cont_worker[s..e],
            aux: &cont_k[s..e],
            aux2: &[],
            ln_v,
            g,
            q: 0.0,
        }));
    }
    for (i, (ln_v, g)) in
        cat_ln_v.chunks_mut(MSTEP_CHUNK).zip(cat_g.chunks_mut(MSTEP_CHUNK)).enumerate()
    {
        let s = i * MSTEP_CHUNK;
        let e = s + ln_v.len();
        tasks.push(Mutex::new(ChunkTask {
            cat: true,
            rows: &r.cat_row[s..e],
            cols: &r.cat_col[s..e],
            workers: &r.cat_worker[s..e],
            aux: &cat_p[s..e],
            aux2: &cat_c[s..e],
            ln_v,
            g,
            q: 0.0,
        }));
    }
    let job = |ci: usize| {
        let mut guard = tasks[ci].lock().expect("mstep chunk mutex");
        let t = &mut *guard;
        fill_ln_v(la, lb, lp, clamp, t.rows, t.cols, t.workers, t.ln_v);
        t.q = if t.cat {
            kern.quality_terms(ws.epsilon, t.ln_v, t.aux, t.aux2, t.g)
        } else {
            kern.gaussian_terms(t.ln_v, t.aux, t.g)
        };
    };
    match pool.filter(|p| p.threads() > 1 && tasks.len() > 1) {
        Some(p) => p.run(tasks.len(), &job),
        None => {
            for ci in 0..tasks.len() {
                job(ci);
            }
        }
    }
    // In-order reduction: cont chunks first, then cat chunks.
    tasks.iter().map(|t| t.lock().expect("mstep chunk mutex").q).sum()
}

/// M-step (Eq. 5): gradient ascent on the expected complete-data
/// log-likelihood over the active log-parameters, the objective evaluated
/// by the batch kernels (optionally across the pool). Returns the number
/// of objective evaluations the inner ascent performed.
fn m_step(
    ws: &Workspace,
    state: &mut EmState,
    opts: &EmOptions,
    kern: BatchKernels,
    scratch: &mut EmScratch,
    pool: Option<&WorkerPool>,
) -> usize {
    build_cache(ws, &state.truths, scratch);
    let learn_a = opts.learn_row_difficulty;
    let learn_b = opts.learn_col_difficulty;
    let na = if learn_a { ws.n_rows } else { 0 };
    let nb = if learn_b { ws.n_cols } else { 0 };

    // Pack the active parameters into the reused buffer.
    let mut x0 = std::mem::take(&mut scratch.x);
    x0.clear();
    if learn_a {
        x0.extend_from_slice(&state.ln_alpha);
    }
    if learn_b {
        x0.extend_from_slice(&state.ln_beta);
    }
    x0.extend_from_slice(&state.ln_phi);

    let bound = opts.ln_param_bound;
    let phi_center = initial_phi(ws.epsilon, opts.init_quality).ln();
    let lam_phi = opts.phi_prior_strength;
    let lam_diff = opts.difficulty_prior_strength;
    let objective = |x: &[f64], grad: &mut [f64]| -> f64 {
        let (la, rest) = x.split_at(na);
        let (lb, lp) = rest.split_at(nb);
        let mut q_val = eval_answers(
            ws,
            learn_a.then_some(la),
            learn_b.then_some(lb),
            lp,
            Some(bound),
            kern,
            scratch,
            pool,
        );
        // Serial scatter of the per-answer ∂/∂ln v into the parameter
        // gradient, in fixed run order — `g` is identical for α, β and φ,
        // and the three scatter targets are disjoint parameter ranges.
        grad.fill(0.0);
        let r = &ws.runs;
        if learn_a {
            for (j, &row) in r.cont_row.iter().enumerate() {
                grad[row as usize] += scratch.cont_g[j];
            }
            for (j, &row) in r.cat_row.iter().enumerate() {
                grad[row as usize] += scratch.cat_g[j];
            }
        }
        if learn_b {
            for (j, &col) in r.cont_col.iter().enumerate() {
                grad[na + col as usize] += scratch.cont_g[j];
            }
            for (j, &col) in r.cat_col.iter().enumerate() {
                grad[na + col as usize] += scratch.cat_g[j];
            }
        }
        for (j, &w) in r.cont_worker.iter().enumerate() {
            grad[na + nb + w as usize] += scratch.cont_g[j];
        }
        for (j, &w) in r.cat_worker.iter().enumerate() {
            grad[na + nb + w as usize] += scratch.cat_g[j];
        }
        // MAP priors (see field docs on EmOptions).
        for (i, &v) in la.iter().enumerate() {
            q_val -= 0.5 * lam_diff * v * v;
            grad[i] -= lam_diff * v;
        }
        for (i, &v) in lb.iter().enumerate() {
            q_val -= 0.5 * lam_diff * v * v;
            grad[na + i] -= lam_diff * v;
        }
        for (i, &v) in lp.iter().enumerate() {
            let d = v - phi_center;
            q_val -= 0.5 * lam_phi * d * d;
            grad[na + nb + i] -= lam_phi * d;
        }
        q_val
    };

    let result = gradient_ascent_with(objective, &x0, &opts.mstep);
    scratch.x = x0; // hand the pack buffer back for the next iteration
    let x = result.params;
    let (la, rest) = x.split_at(na);
    let (lb, lp) = rest.split_at(nb);
    if learn_a {
        state.ln_alpha.copy_from_slice(la);
    }
    if learn_b {
        state.ln_beta.copy_from_slice(lb);
    }
    state.ln_phi.copy_from_slice(lp);
    for v in
        state.ln_alpha.iter_mut().chain(state.ln_beta.iter_mut()).chain(state.ln_phi.iter_mut())
    {
        *v = v.clamp(-bound, bound);
    }
    result.evaluations
}

/// Identifiability polish applied once after EM converges: set the geometric
/// means of `α` and `β` to 1 and push the scale into `φ`. The likelihood only
/// sees the product `αβφ`, so posteriors are unaffected; doing this *inside*
/// the loop would fight the MAP priors and void the ELBO monotonicity
/// guarantee, so it runs exactly once at the end.
fn renormalize(state: &mut EmState, opts: &EmOptions) -> (f64, f64) {
    let mut shift = (0.0, 0.0);
    if opts.learn_row_difficulty {
        let m = state.ln_alpha.iter().sum::<f64>() / state.ln_alpha.len().max(1) as f64;
        for v in &mut state.ln_alpha {
            *v -= m;
        }
        for v in &mut state.ln_phi {
            *v += m;
        }
        shift.0 = m;
    }
    if opts.learn_col_difficulty {
        let m = state.ln_beta.iter().sum::<f64>() / state.ln_beta.len().max(1) as f64;
        for v in &mut state.ln_beta {
            *v -= m;
        }
        for v in &mut state.ln_phi {
            *v += m;
        }
        shift.1 = m;
    }
    shift
}

/// The evidence lower bound of the MAP objective: expected complete-data
/// log-likelihood plus posterior entropy plus the log-priors on the
/// parameters. Monotone non-decreasing across EM iterations (each M-step
/// only accepts improving steps, each E-step sets the posterior to the exact
/// conditional), which is property-tested.
///
/// The per-answer expectation is exactly the [`eval_answers`] sum the
/// M-step maximises — same kernels, same chunk order — evaluated at the
/// *state* parameters, unclamped (the optimiser box only applies inside
/// the ascent). What remains here is the per-cell part: prior expectation
/// and posterior entropy.
pub(crate) fn compute_elbo(
    ws: &Workspace,
    state: &EmState,
    opts: &EmOptions,
    kern: BatchKernels,
    scratch: &mut EmScratch,
    pool: Option<&WorkerPool>,
) -> f64 {
    let phi_center = initial_phi(ws.epsilon, opts.init_quality).ln();
    let mut elbo = 0.0;
    if opts.learn_row_difficulty {
        elbo -= 0.5
            * opts.difficulty_prior_strength
            * state.ln_alpha.iter().map(|v| v * v).sum::<f64>();
    }
    if opts.learn_col_difficulty {
        elbo -=
            0.5 * opts.difficulty_prior_strength * state.ln_beta.iter().map(|v| v * v).sum::<f64>();
    }
    elbo -= 0.5
        * opts.phi_prior_strength
        * state.ln_phi.iter().map(|v| (v - phi_center) * (v - phi_center)).sum::<f64>();
    build_cache(ws, &state.truths, scratch);
    elbo += eval_answers(
        ws,
        Some(&state.ln_alpha),
        Some(&state.ln_beta),
        &state.ln_phi,
        None,
        kern,
        scratch,
        pool,
    );
    for slot in 0..ws.n_rows * ws.n_cols {
        if ws.cell_answers(slot).is_empty() {
            continue;
        }
        match &state.truths[slot] {
            TruthDist::Continuous(n) => {
                // Prior N(0,1) expectation + posterior entropy.
                elbo += -0.5 * LN_2PI - (n.mean * n.mean + n.var) / 2.0;
                elbo += n.differential_entropy();
            }
            TruthDist::Categorical(p) => {
                let l = match ws.col_kind[slot % ws.n_cols] {
                    ColKind::Cat(l) => l,
                    ColKind::Cont => unreachable!(),
                };
                // Uniform prior expectation + Shannon entropy.
                elbo += -(l.max(1) as f64).ln();
                elbo += tcrowd_stat::entropy::shannon(p);
            }
        }
    }
    elbo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{quality_dlnv, quality_from_variance};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tcrowd_stat::optimize::numerical_gradient;
    use tcrowd_stat::sample::{sample_std_normal, sample_weighted};

    /// Build a small synthetic workspace directly (bypassing the public API)
    /// with known worker variances.
    fn synth_workspace(
        n_rows: usize,
        cat_cols: usize,
        cont_cols: usize,
        phis: &[f64],
        seed: u64,
    ) -> (Workspace, Vec<Vec<f64>>, Vec<Vec<u32>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_cols = cat_cols + cont_cols;
        let epsilon = 0.5;
        let mut col_kind = vec![ColKind::Cat(4); cat_cols];
        col_kind.extend(vec![ColKind::Cont; cont_cols]);
        // Truths: cat labels and z-space continuous values.
        let cat_truth: Vec<Vec<u32>> =
            (0..n_rows).map(|_| (0..cat_cols).map(|_| rng.gen_range(0..4)).collect()).collect();
        let cont_truth: Vec<Vec<f64>> = (0..n_rows)
            .map(|_| (0..cont_cols).map(|_| sample_std_normal(&mut rng)).collect())
            .collect();
        let mut answers = Vec::new();
        for i in 0..n_rows {
            for (w, &phi) in phis.iter().enumerate() {
                for j in 0..n_cols {
                    let (label, value) = if j < cat_cols {
                        let q = quality_from_variance(epsilon, phi);
                        let t = cat_truth[i][j];
                        let lab = if rng.gen_range(0.0..1.0) < q {
                            t
                        } else {
                            let w: Vec<f64> =
                                (0..4).map(|z| if z == t { 0.0 } else { 1.0 }).collect();
                            sample_weighted(&mut rng, &w) as u32
                        };
                        (lab, 0.0)
                    } else {
                        let t = cont_truth[i][j - cat_cols];
                        (0, t + phi.sqrt() * sample_std_normal(&mut rng))
                    };
                    answers.push(IntAnswer {
                        worker: w as u32,
                        row: i as u32,
                        col: j as u32,
                        label,
                        value,
                    });
                }
            }
        }
        (
            Workspace::assemble(n_rows, n_cols, phis.len(), col_kind, answers, epsilon),
            cont_truth,
            cat_truth,
        )
    }

    #[test]
    fn elbo_is_monotone_nondecreasing() {
        let phis = [0.05, 0.2, 0.6, 2.0, 0.1];
        let (ws, _, _) = synth_workspace(25, 2, 2, &phis, 3);
        let state = run_em(&ws, &EmOptions::default());
        for w in state.trace.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-6 * (1.0 + w[0].abs()),
                "ELBO decreased: {} -> {}",
                w[0],
                w[1]
            );
        }
        assert!(state.iterations >= 1);
    }

    #[test]
    fn em_recovers_worker_ranking() {
        // Workers with small true φ must come out with small fitted φ.
        let phis = [0.05, 0.15, 0.4, 1.2, 3.0];
        let (ws, _, _) = synth_workspace(60, 2, 2, &phis, 7);
        let state = run_em(&ws, &EmOptions::default());
        let fitted: Vec<f64> = state.ln_phi.iter().map(|l| l.exp()).collect();
        // Spearman-ish check: order preserved pairwise for well-separated φ.
        for i in 0..phis.len() {
            for j in 0..phis.len() {
                if phis[j] >= 4.0 * phis[i] {
                    assert!(
                        fitted[i] < fitted[j],
                        "fitted φ ordering broken: true {} vs {} but fitted {} vs {}",
                        phis[i],
                        phis[j],
                        fitted[i],
                        fitted[j]
                    );
                }
            }
        }
    }

    #[test]
    fn em_recovers_continuous_truth_better_than_single_worker() {
        let phis = [0.1, 0.3, 1.0, 2.5];
        let (ws, cont_truth, _) = synth_workspace(50, 0, 3, &phis, 11);
        let state = run_em(&ws, &EmOptions::default());
        let mut se_est = 0.0;
        let mut se_first = 0.0;
        let mut n = 0.0;
        for i in 0..ws.n_rows {
            for j in 0..ws.n_cols {
                let slot = i * ws.n_cols + j;
                if let TruthDist::Continuous(post) = &state.truths[slot] {
                    let t = cont_truth[i][j];
                    se_est += (post.mean - t) * (post.mean - t);
                    // First answer on the cell as the naive single-source estimate.
                    let first = ws.cell_answers(slot)[0].value;
                    se_first += (first - t) * (first - t);
                    n += 1.0;
                }
            }
        }
        assert!(se_est / n < se_first / n, "EM should beat a single answer");
    }

    #[test]
    fn em_recovers_categorical_truth() {
        let phis = [0.08, 0.2, 0.5, 1.5];
        let (ws, _, cat_truth) = synth_workspace(60, 3, 0, &phis, 13);
        let state = run_em(&ws, &EmOptions::default());
        let mut correct = 0;
        let mut total = 0;
        for i in 0..ws.n_rows {
            for j in 0..ws.n_cols {
                if let TruthDist::Categorical(p) = &state.truths[i * ws.n_cols + j] {
                    let est = p
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                        .unwrap()
                        .0 as u32;
                    total += 1;
                    if est == cat_truth[i][j] {
                        correct += 1;
                    }
                }
            }
        }
        let acc = correct as f64 / total as f64;
        // Worker qualities here are (0.92, 0.74, 0.52, 0.32) on |L| = 4 with
        // only 4 answers per cell; the Bayes-optimal accuracy with *known*
        // parameters is itself below 0.95, so 0.85 is a tight bar.
        assert!(acc > 0.85, "EM accuracy {acc}");
    }

    #[test]
    fn mstep_gradient_matches_numeric() {
        let phis = [0.1, 0.8];
        let (ws, _, _) = synth_workspace(6, 1, 1, &phis, 5);
        let mut state = EmState {
            ln_alpha: vec![0.0; ws.n_rows],
            ln_beta: vec![0.0; ws.n_cols],
            ln_phi: vec![0.3f64.ln(); ws.n_workers],
            truths: initial_truths(&ws),
            trace: vec![],
            iterations: 0,
            converged: false,
            renorm_shift: (0.0, 0.0),
            timings: EmTimings::default(),
        };
        e_step(&ws, &mut state, &EmOptions::default());
        // Dense per-answer caches, independent of the SoA scratch layout.
        let mut cache_cont_k = vec![0.0; ws.answers.len()];
        let mut cache_cat_p = vec![0.0; ws.answers.len()];
        for (i, a) in ws.answers.iter().enumerate() {
            match &state.truths[ws.cell_slot(a.row, a.col)] {
                TruthDist::Continuous(n) => {
                    let d = a.value - n.mean;
                    cache_cont_k[i] = d * d + n.var;
                }
                TruthDist::Categorical(p) => {
                    cache_cat_p[i] = clamp_prob(p.get(a.label as usize).copied().unwrap_or(0.0));
                }
            }
        }
        // Re-create the m-step objective inline (full parameter set).
        let (na, nb) = (ws.n_rows, ws.n_cols);
        let f = |x: &[f64]| -> f64 {
            let (la, rest) = x.split_at(na);
            let (lb, lp) = rest.split_at(nb);
            let mut q_val = 0.0;
            for (i, a) in ws.answers.iter().enumerate() {
                let v = (la[a.row as usize] + lb[a.col as usize] + lp[a.worker as usize]).exp();
                match ws.col_kind[a.col as usize] {
                    ColKind::Cont => {
                        q_val += -0.5 * (LN_2PI + v.ln()) - cache_cont_k[i] / (2.0 * v);
                    }
                    ColKind::Cat(l) => {
                        let p = cache_cat_p[i];
                        let q = quality_from_variance(ws.epsilon, v);
                        q_val += p * q.ln() + (1.0 - p) * ((1.0 - q) / (l - 1) as f64).ln();
                    }
                }
            }
            q_val
        };
        // Analytic gradient via the same scatter logic as m_step.
        let x: Vec<f64> = state
            .ln_alpha
            .iter()
            .chain(state.ln_beta.iter())
            .chain(state.ln_phi.iter())
            .copied()
            .collect();
        let mut grad = vec![0.0; x.len()];
        for (i, a) in ws.answers.iter().enumerate() {
            let v =
                (x[a.row as usize] + x[na + a.col as usize] + x[na + nb + a.worker as usize]).exp();
            let g = match ws.col_kind[a.col as usize] {
                ColKind::Cont => -0.5 + cache_cont_k[i] / (2.0 * v),
                ColKind::Cat(_) => {
                    let p = cache_cat_p[i];
                    let q = quality_from_variance(ws.epsilon, v);
                    (p / q - (1.0 - p) / (1.0 - q)) * quality_dlnv(ws.epsilon, v)
                }
            };
            grad[a.row as usize] += g;
            grad[na + a.col as usize] += g;
            grad[na + nb + a.worker as usize] += g;
        }
        let numeric = numerical_gradient(f, &x, 1e-6);
        for (k, (a, n)) in grad.iter().zip(&numeric).enumerate() {
            assert!(
                (a - n).abs() < 1e-4 * (1.0 + n.abs()),
                "param {k}: analytic {a} vs numeric {n}"
            );
        }
    }

    #[test]
    fn empty_workspace_converges_to_priors() {
        let ws = Workspace::assemble(3, 2, 0, vec![ColKind::Cat(3), ColKind::Cont], vec![], 0.5);
        let state = run_em(&ws, &EmOptions::default());
        assert!(state.converged);
        assert_eq!(state.truths.len(), 6);
        assert_eq!(state.truths[0], TruthDist::uniform(3));
    }

    #[test]
    fn difficulty_normalisation_holds() {
        let phis = [0.1, 0.5, 1.0];
        let (ws, _, _) = synth_workspace(20, 1, 1, &phis, 19);
        let state = run_em(&ws, &EmOptions::default());
        let ma: f64 = state.ln_alpha.iter().sum::<f64>() / state.ln_alpha.len() as f64;
        let mb: f64 = state.ln_beta.iter().sum::<f64>() / state.ln_beta.len() as f64;
        assert!(ma.abs() < 1e-9, "mean ln α = {ma}");
        assert!(mb.abs() < 1e-9, "mean ln β = {mb}");
    }

    #[test]
    fn ablation_flags_freeze_difficulties() {
        let phis = [0.1, 0.5, 1.0];
        let (ws, _, _) = synth_workspace(20, 1, 1, &phis, 23);
        let opts = EmOptions {
            learn_row_difficulty: false,
            learn_col_difficulty: false,
            ..Default::default()
        };
        let state = run_em(&ws, &opts);
        assert!(state.ln_alpha.iter().all(|v| *v == 0.0));
        assert!(state.ln_beta.iter().all(|v| *v == 0.0));
        // φ must still have been learned (moved off the calibrated init).
        let phi0 = initial_phi(ws.epsilon, opts.init_quality).ln();
        assert!(state.ln_phi.iter().any(|v| (*v - phi0).abs() > 1e-6));
    }

    #[test]
    fn parallel_estep_matches_serial_exactly() {
        let phis = [0.05, 0.2, 0.6, 2.0, 0.1, 0.4, 0.9, 1.5];
        // 60×6 = 360 slots: above the threading threshold, so the
        // work-stealing path genuinely runs (the default is feature-driven,
        // so both sides pin the flag explicitly).
        let (ws, _, _) = synth_workspace(60, 3, 3, &phis, 31);
        let serial = run_em(&ws, &EmOptions { parallel_estep: false, ..Default::default() });
        let parallel = run_em(&ws, &EmOptions { parallel_estep: true, ..Default::default() });
        assert_eq!(serial.iterations, parallel.iterations);
        assert_eq!(serial.truths, parallel.truths, "posteriors must be bit-identical");
        assert_eq!(serial.ln_phi, parallel.ln_phi);
        assert_eq!(serial.trace, parallel.trace);
    }

    #[test]
    fn default_parallel_estep_matches_the_parallel_feature() {
        assert_eq!(EmOptions::default().parallel_estep, cfg!(feature = "parallel"));
    }

    #[test]
    fn default_parallel_mstep_matches_the_parallel_feature() {
        assert_eq!(EmOptions::default().parallel_mstep, cfg!(feature = "parallel"));
    }

    #[test]
    fn parallel_mstep_matches_serial_exactly() {
        let phis = [0.05, 0.2, 0.6, 2.0, 0.1, 0.4, 0.9, 1.5];
        // 50 rows × 6 cols × 8 workers = 2400 answers — several M-step
        // chunks of each kind once split, and big enough that the pooled
        // path genuinely runs chunks on more than one thread.
        let (ws, _, _) = synth_workspace(50, 3, 3, &phis, 37);
        let serial = run_em(
            &ws,
            &EmOptions { parallel_estep: false, parallel_mstep: false, ..Default::default() },
        );
        for threads in [1usize, 2, 4, 8] {
            let parallel = run_em(
                &ws,
                &EmOptions {
                    parallel_estep: false,
                    parallel_mstep: true,
                    threads,
                    ..Default::default()
                },
            );
            assert_eq!(serial.iterations, parallel.iterations, "threads = {threads}");
            for (a, b) in serial.ln_phi.iter().zip(&parallel.ln_phi) {
                assert_eq!(a.to_bits(), b.to_bits(), "ln φ not bit-identical ({threads} threads)");
            }
            for (a, b) in serial.ln_alpha.iter().zip(&parallel.ln_alpha) {
                assert_eq!(a.to_bits(), b.to_bits(), "ln α not bit-identical ({threads} threads)");
            }
            assert_eq!(serial.truths, parallel.truths, "threads = {threads}");
            assert_eq!(serial.trace, parallel.trace, "threads = {threads}");
        }
    }

    #[test]
    fn fully_parallel_em_matches_serial_exactly() {
        // Both phases pooled at once — the pool is shared across E and M.
        let phis = [0.05, 0.2, 0.6, 2.0, 0.1, 0.4, 0.9, 1.5];
        let (ws, _, _) = synth_workspace(60, 3, 3, &phis, 41);
        let serial = run_em(
            &ws,
            &EmOptions { parallel_estep: false, parallel_mstep: false, ..Default::default() },
        );
        let parallel = run_em(
            &ws,
            &EmOptions {
                parallel_estep: true,
                parallel_mstep: true,
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(serial.iterations, parallel.iterations);
        assert_eq!(serial.truths, parallel.truths);
        assert_eq!(serial.ln_phi, parallel.ln_phi);
        assert_eq!(serial.trace, parallel.trace);
    }

    #[test]
    fn warm_start_from_fitted_params_converges_fast_to_the_same_fit() {
        let phis = [0.05, 0.2, 0.6, 2.0, 0.1];
        let (ws, _, _) = synth_workspace(30, 2, 2, &phis, 17);
        // The parameter criterion pins both runs to the shared fixed point;
        // the drift a warm restart may add shrinks with `param_tol` (the
        // ELBO-only default keeps ~1e-3 slack in ln φ).
        let opts = EmOptions { tol: 1e-12, param_tol: 1e-6, max_iters: 4000, ..Default::default() };
        let cold = run_em(&ws, &opts);
        let warm = WarmStart {
            ln_alpha: cold.ln_alpha.clone(),
            ln_beta: cold.ln_beta.clone(),
            ln_phi: cold.ln_phi.clone(),
        };
        let rerun = run_em_from(&ws, &opts, Some(&warm));
        assert!(rerun.converged);
        let drift = cold
            .ln_phi
            .iter()
            .zip(&rerun.ln_phi)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        println!(
            "cold iters {}, warm iters {}, max ln_phi drift {drift:.3e}",
            cold.iterations, rerun.iterations
        );
        assert!(drift < 1e-5, "phi drifted across a warm restart by {drift:.3e}");
    }

    #[test]
    fn converges_within_paper_iteration_budget() {
        let phis = [0.05, 0.2, 0.6, 2.0, 0.1];
        let (ws, _, _) = synth_workspace(40, 2, 2, &phis, 29);
        let state = run_em(&ws, &EmOptions::default());
        assert!(state.converged, "EM did not converge");
        assert!(state.iterations <= 30, "took {} iterations (paper: < 20)", state.iterations);
    }
}
