//! Entity-correlation model and assignment policy (paper §7, last
//! future-work direction).
//!
//! §7: *"we will explore the possible improvement of our approach by
//! exploiting the possible correlations between entities (not only
//! attributes), e.g., a worker may be more familiar to celebrities starring
//! in a certain category of films or shows."*
//!
//! The attribute-correlation model of §5.2 conditions a worker's predicted
//! error on their errors *within the same row*. This module adds the row
//! dimension: rows (entities) belong to *groups* (film categories, cuisines,
//! …), and a worker's competence is allowed to vary by group. For each
//! (worker, group) pair we fit a **familiarity multiplier** `λ_{u,g}` on the
//! worker's answer variance — `λ < 1` means the worker is *better* than their
//! global quality inside this group, `λ > 1` worse — by maximising the
//! likelihood of the worker's answers on the group's rows under the fitted
//! T-Crowd model, with an inverse-gamma-style prior whose mode is 1 so that
//! sparse evidence shrinks to "no effect".
//!
//! Groups may be supplied by the requester ([`RowGrouping::Known`] — e.g. a
//! genre column that is part of the schema metadata) or *learned* from the
//! answer history ([`RowGrouping::Learned`]): rows are clustered on their
//! per-worker standardized-surprise profiles with missing-aware k-means.
//!
//! [`EntityAwarePolicy`] plugs `λ_{u,g}` into the information-gain machinery
//! of §5.1–5.2: the effective variance of a candidate answer becomes
//! `λ_{u,g(i)} · α_i β_j φ_u`, optionally combined with the attribute-level
//! conditioning of the structure-aware policy.

use crate::correlation::{observe_error, CorrelationModel, ErrorObservation, PredictedError};
use crate::gain::{gain_with_params, GainEstimator};
use crate::inference::InferenceResult;
use crate::model::{cat_answer_ln_likelihood, quality_from_variance};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use tcrowd_stat::cluster::kmeans;
use tcrowd_stat::{clamp_prob, EPS};
use tcrowd_tabular::{AnswerLog, AnswerMatrix, CellId, Schema, Value, WorkerId};

/// How rows are partitioned into entity groups.
#[derive(Debug, Clone)]
pub enum RowGrouping {
    /// Group label per row, supplied by the requester (e.g. film genre).
    Known(Vec<usize>),
    /// Learn the partition from the answer history: cluster rows on their
    /// per-worker standardized-surprise profiles.
    Learned {
        /// Number of groups to learn.
        groups: usize,
        /// Clustering seed (k-means++ initialisation).
        seed: u64,
    },
}

/// Tuning knobs for [`EntityModel::fit`].
#[derive(Debug, Clone, Copy)]
pub struct EntityModelOptions {
    /// Prior pseudo-observations pulling each `λ_{u,g}` toward 1. Larger
    /// values demand more evidence before a familiarity effect is trusted.
    pub prior_strength: f64,
    /// `λ` search interval (multiplier on the worker's global variance).
    pub lambda_range: (f64, f64),
    /// Minimum answers by a worker inside a group before a `λ` is fitted at
    /// all (below this the multiplier stays exactly 1).
    pub min_support: usize,
}

impl Default for EntityModelOptions {
    fn default() -> Self {
        EntityModelOptions { prior_strength: 4.0, lambda_range: (0.05, 50.0), min_support: 3 }
    }
}

/// The fitted entity-correlation model: a row partition plus per-(worker,
/// group) familiarity multipliers.
#[derive(Debug, Clone)]
pub struct EntityModel {
    groups: Vec<usize>,
    n_groups: usize,
    lambda: HashMap<(WorkerId, usize), f64>,
}

/// One answer reduced to the sufficient statistics `λ` fitting needs.
enum LikelihoodTerm {
    /// Continuous: squared z-residual and the model variance `α β φ`.
    Continuous { e2: f64, base_var: f64 },
    /// Categorical: correctness, the model variance, and `|L_j|`.
    Categorical { correct: bool, base_var: f64, cardinality: u32 },
}

impl EntityModel {
    /// Fit from the answer history and the current inference result.
    pub fn fit(
        schema: &Schema,
        answers: &AnswerLog,
        result: &InferenceResult,
        grouping: &RowGrouping,
        opts: &EntityModelOptions,
    ) -> Self {
        Self::fit_matrix(schema, &AnswerMatrix::build(answers), result, grouping, opts)
    }

    /// Fit from a frozen columnar answer set. The by-worker CSR view groups
    /// each worker's answers by ascending row, so the (worker, group) term
    /// buckets fill in one deterministic pass.
    pub fn fit_matrix(
        schema: &Schema,
        matrix: &AnswerMatrix,
        result: &InferenceResult,
        grouping: &RowGrouping,
        opts: &EntityModelOptions,
    ) -> Self {
        let n_rows = matrix.rows();
        let groups = match grouping {
            RowGrouping::Known(g) => {
                assert_eq!(g.len(), n_rows, "one group label per row");
                g.clone()
            }
            RowGrouping::Learned { groups, seed } => {
                learn_groups(matrix, result, n_rows, *groups, *seed)
            }
        };
        let n_groups = groups.iter().max().map(|&g| g + 1).unwrap_or(1);

        // Bucket likelihood terms by (worker, group): the worker view visits
        // workers in sorted-id order and rows ascending, so each worker's
        // buckets are contiguous and the fit order is deterministic.
        let mut lambda = HashMap::new();
        let mut buckets: Vec<Vec<LikelihoodTerm>> = (0..n_groups).map(|_| Vec::new()).collect();
        for w in 0..matrix.num_workers() {
            for b in &mut buckets {
                b.clear();
            }
            for a in matrix.worker_answers(w) {
                let g = groups[a.cell.row as usize];
                let base_var = result.effective_variance(a.worker, a.cell);
                let answer =
                    tcrowd_tabular::Answer { worker: a.worker, cell: a.cell, value: a.value };
                let term = match &a.value {
                    Value::Continuous(_) => {
                        let e = match observe_error(result, &answer) {
                            ErrorObservation::Continuous(e) => e,
                            ErrorObservation::Categorical(_) => unreachable!("type mismatch"),
                        };
                        LikelihoodTerm::Continuous { e2: e * e, base_var }
                    }
                    Value::Categorical(_) => {
                        let wrong = match observe_error(result, &answer) {
                            ErrorObservation::Categorical(w) => w,
                            ErrorObservation::Continuous(_) => unreachable!("type mismatch"),
                        };
                        let cardinality = schema
                            .column_type(a.cell.col as usize)
                            .cardinality()
                            .expect("categorical column");
                        LikelihoodTerm::Categorical { correct: !wrong, base_var, cardinality }
                    }
                };
                buckets[g].push(term);
            }
            for (g, ts) in buckets.iter().enumerate() {
                if ts.len() < opts.min_support {
                    continue;
                }
                let fitted = fit_lambda(ts, result.epsilon, opts);
                if (fitted - 1.0).abs() > 1e-3 {
                    lambda.insert((matrix.worker_id(w), g), fitted);
                }
            }
        }
        EntityModel { groups, n_groups, lambda }
    }

    /// The group of a row.
    pub fn group_of(&self, row: u32) -> usize {
        self.groups[row as usize]
    }

    /// Number of groups in the partition.
    pub fn num_groups(&self) -> usize {
        self.n_groups
    }

    /// The learned/assigned row partition.
    pub fn groups(&self) -> &[usize] {
        &self.groups
    }

    /// Familiarity multiplier `λ_{u,g(row)}` — 1 when no effect was fitted.
    pub fn lambda(&self, worker: WorkerId, row: u32) -> f64 {
        self.lambda.get(&(worker, self.groups[row as usize])).copied().unwrap_or(1.0)
    }

    /// Number of (worker, group) pairs with a fitted (non-unit) multiplier.
    pub fn fitted_pairs(&self) -> usize {
        self.lambda.len()
    }

    /// Iterate over the fitted (worker, group) → `λ` multipliers.
    pub fn multipliers(&self) -> impl Iterator<Item = ((WorkerId, usize), f64)> + '_ {
        self.lambda.iter().map(|(&k, &v)| (k, v))
    }
}

/// Penalised log-likelihood of a (worker, group) answer set under variance
/// multiplier `λ` (constants dropped).
fn lambda_objective(terms: &[LikelihoodTerm], epsilon: f64, lambda: f64, n0: f64) -> f64 {
    let mut ll = 0.0;
    for t in terms {
        match t {
            LikelihoodTerm::Continuous { e2, base_var } => {
                let v = (lambda * base_var).max(EPS);
                ll += -0.5 * v.ln() - e2 / (2.0 * v);
            }
            LikelihoodTerm::Categorical { correct, base_var, cardinality } => {
                let q = quality_from_variance(epsilon, lambda * base_var);
                ll += cat_answer_ln_likelihood(q, *cardinality, *correct);
            }
        }
    }
    // Inverse-gamma-style prior with mode at λ = 1: −n0/2 (ln λ + 1/λ).
    ll - 0.5 * n0 * (lambda.ln() + 1.0 / lambda)
}

/// 1-D golden-section maximisation of the penalised likelihood on `ln λ`.
fn fit_lambda(terms: &[LikelihoodTerm], epsilon: f64, opts: &EntityModelOptions) -> f64 {
    let (lo, hi) = opts.lambda_range;
    let (mut a, mut b) = (lo.max(EPS).ln(), hi.max(lo * 2.0).ln());
    let phi = (5f64.sqrt() - 1.0) / 2.0;
    let f = |x: f64| lambda_objective(terms, epsilon, x.exp(), opts.prior_strength);
    let mut c = b - phi * (b - a);
    let mut d = a + phi * (b - a);
    let (mut fc, mut fd) = (f(c), f(d));
    for _ in 0..60 {
        if (b - a).abs() < 1e-6 {
            break;
        }
        if fc > fd {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = f(d);
        }
    }
    (0.5 * (a + b)).exp()
}

/// Cluster rows on per-worker *badness* profiles.
///
/// Feature `(i, u)` is worker `u`'s mean *centred* badness over their answers
/// on row `i`. One answer's badness is a bounded score minus its expectation
/// under the fitted model: `min(|e|/√v, CAP)/CAP − E[min(|z|, CAP)]/CAP` for
/// continuous answers (capped standardised residual, `z ~ N(0,1)`), and
/// `wrong − (1 − q^u_ij)` for categorical ones. Centring matters: without it
/// a hard row scores high for *every* worker and k-means would split rows by
/// difficulty (which `α_i` already models) rather than by the worker-specific
/// deviation pattern a shared entity group induces. Missing entries (worker
/// never answered the row) are `NaN` and handled by the missing-aware
/// k-means. Lloyd's algorithm is restarted from several seeds and the
/// lowest-inertia partition wins.
fn learn_groups(
    matrix: &AnswerMatrix,
    result: &InferenceResult,
    n_rows: usize,
    k: usize,
    seed: u64,
) -> Vec<usize> {
    /// Standardised-residual cap: 3σ is already "very wrong".
    const CAP: f64 = 3.0;
    /// `E[min(|z|, 3)]` for `z ~ N(0,1)` (the capped folded-normal mean).
    const EXPECTED_CAPPED_ABS: f64 = 0.791_23;
    const RESTARTS: u64 = 8;
    let n_workers = matrix.num_workers();
    let mut sums = vec![vec![0.0f64; n_workers]; n_rows];
    let mut counts = vec![vec![0usize; n_workers]; n_rows];
    for a in matrix.iter() {
        let u = a.worker_index as usize;
        let i = a.cell.row as usize;
        let v = result.effective_variance(a.worker, a.cell).max(EPS);
        let answer = tcrowd_tabular::Answer { worker: a.worker, cell: a.cell, value: a.value };
        let badness = match observe_error(result, &answer) {
            ErrorObservation::Continuous(e) => {
                ((e.abs() / v.sqrt()).min(CAP) - EXPECTED_CAPPED_ABS) / CAP
            }
            ErrorObservation::Categorical(wrong) => {
                let q = clamp_prob(result.cell_quality(a.worker, a.cell));
                wrong as i32 as f64 - (1.0 - q)
            }
        };
        sums[i][u] += badness;
        counts[i][u] += 1;
    }
    let features: Vec<Vec<f64>> = sums
        .into_iter()
        .zip(counts)
        .map(|(s, c)| {
            s.into_iter()
                .zip(c)
                .map(|(sum, n)| if n == 0 { f64::NAN } else { sum / n as f64 })
                .collect()
        })
        .collect();
    if features.is_empty() {
        return Vec::new();
    }
    (0..RESTARTS)
        .map(|r| kmeans(&features, k.max(1), seed.wrapping_add(r), 100))
        .min_by(|a, b| a.inertia.partial_cmp(&b.inertia).expect("NaN inertia"))
        .expect("at least one restart")
        .assignment
}

/// Entity-aware information-gain assignment policy: the §5.2 structure-aware
/// gain extended with per-(worker, group) familiarity multipliers.
#[derive(Debug)]
pub struct EntityAwarePolicy {
    /// Expected-entropy estimator for continuous cells.
    pub estimator: GainEstimator,
    /// Row partition source.
    pub grouping: RowGrouping,
    /// Model-fitting knobs.
    pub options: EntityModelOptions,
    /// Also apply the §5.2 attribute-correlation conditioning (the two
    /// effects compose: `λ` rescales the inherent variance, the row
    /// conditional then blends in the same-row evidence).
    pub use_attribute_correlation: bool,
    rng: StdRng,
}

impl EntityAwarePolicy {
    /// Create a policy with the given grouping; attribute-correlation
    /// conditioning defaults to on.
    pub fn new(grouping: RowGrouping) -> Self {
        EntityAwarePolicy {
            estimator: GainEstimator::default(),
            grouping,
            options: EntityModelOptions::default(),
            use_attribute_correlation: true,
            rng: StdRng::seed_from_u64(0xE7717),
        }
    }

    /// Builder: disable the attribute-correlation component (pure entity
    /// effect, used by the ablation bench).
    pub fn without_attribute_correlation(mut self) -> Self {
        self.use_attribute_correlation = false;
        self
    }
}

impl crate::assign::AssignmentPolicy for EntityAwarePolicy {
    fn name(&self) -> &'static str {
        "entity-aware-gain"
    }

    fn select(
        &mut self,
        worker: WorkerId,
        k: usize,
        ctx: &crate::assign::AssignmentContext<'_>,
    ) -> Vec<CellId> {
        let inference =
            ctx.inference.expect("EntityAwarePolicy requires an inference result in the context");
        // The caller's shared freeze serves both model fits and the
        // row-error scan — no per-HIT rebuild.
        let matrix = ctx.matrix();
        let entity =
            EntityModel::fit_matrix(ctx.schema, matrix, inference, &self.grouping, &self.options);
        let corr = if self.use_attribute_correlation {
            Some(CorrelationModel::fit_matrix(ctx.schema, matrix, inference))
        } else {
            None
        };
        let mut row_errors: HashMap<u32, Vec<(usize, ErrorObservation)>> = HashMap::new();
        if corr.is_some() {
            if let Some(w) = matrix.worker_index(worker) {
                for a in matrix.worker_answers(w) {
                    let answer =
                        tcrowd_tabular::Answer { worker: a.worker, cell: a.cell, value: a.value };
                    row_errors
                        .entry(a.cell.row)
                        .or_default()
                        .push((a.cell.col as usize, observe_error(inference, &answer)));
                }
            }
        }
        let empty: Vec<(usize, ErrorObservation)> = Vec::new();
        let candidates = ctx.candidates(worker);
        let gains: Vec<f64> = candidates
            .iter()
            .map(|&c| {
                let lambda = entity.lambda(worker, c.row);
                let v_inherent = lambda * inference.effective_variance(worker, c);
                let q_inherent = quality_from_variance(inference.epsilon, v_inherent);
                let (v, q) = match corr.as_ref().and_then(|m| {
                    let observed = row_errors.get(&c.row).unwrap_or(&empty);
                    m.conditional_error(c.col as usize, observed)
                }) {
                    Some(PredictedError::Categorical(p_wrong)) => {
                        let q_struct = clamp_prob(1.0 - p_wrong);
                        (v_inherent, 0.5 * (q_struct + q_inherent))
                    }
                    Some(mix @ PredictedError::ContinuousMixture(_)) => {
                        let (_, var) = mix.mixture_moments().expect("continuous mixture");
                        let v = (var.max(EPS) * v_inherent).sqrt();
                        (v, quality_from_variance(inference.epsilon, v))
                    }
                    None => (v_inherent, q_inherent),
                };
                gain_with_params(inference.truth_z(c), v, q, self.estimator, &mut self.rng)
            })
            .collect();
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by(|&a, &b| {
            gains[b]
                .partial_cmp(&gains[a])
                .expect("NaN gain")
                .then(candidates[a].cmp(&candidates[b]))
        });
        order.into_iter().take(k).map(|i| candidates[i]).collect()
    }
}

/// Ground-truth-free diagnostic: mean absolute log-multiplier per group — how
/// much entity structure the model found. 0 means "no effect anywhere".
pub fn familiarity_strength(model: &EntityModel) -> f64 {
    if model.lambda.is_empty() {
        return 0.0;
    }
    model.lambda.values().map(|l| l.ln().abs()).sum::<f64>() / model.lambda.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{AssignmentContext, AssignmentPolicy};
    use crate::inference::TCrowd;
    use tcrowd_stat::cluster::adjusted_rand_index;
    use tcrowd_tabular::{generate_dataset, Dataset, EntityGroups, GeneratorConfig};

    /// A dataset with a strong entity-group familiarity effect.
    fn grouped_dataset(seed: u64, groups: usize) -> Dataset {
        generate_dataset(
            &GeneratorConfig {
                rows: 60,
                columns: 5,
                categorical_ratio: 0.4,
                num_workers: 25,
                answers_per_task: 4,
                entity_groups: Some(EntityGroups {
                    groups,
                    p_unfamiliar: 0.35,
                    difficulty_factor: 40.0,
                }),
                ..Default::default()
            },
            seed,
        )
    }

    fn infer(d: &Dataset) -> InferenceResult {
        TCrowd::default_full().infer(&d.schema, &d.answers)
    }

    #[test]
    fn known_grouping_is_used_verbatim() {
        let d = grouped_dataset(1, 3);
        let r = infer(&d);
        let labels: Vec<usize> = (0..60).map(|i| i % 3).collect();
        let m = EntityModel::fit(
            &d.schema,
            &d.answers,
            &r,
            &RowGrouping::Known(labels.clone()),
            &EntityModelOptions::default(),
        );
        assert_eq!(m.groups(), labels.as_slice());
        assert_eq!(m.num_groups(), 3);
    }

    #[test]
    fn lambda_detects_unfamiliar_groups() {
        // With the generator's round-robin groups and a strong difficulty
        // factor, fitted multipliers must spread: some (worker, group) pairs
        // well above 1.
        let d = grouped_dataset(2, 3);
        let r = infer(&d);
        let labels: Vec<usize> = (0..60).map(|i| i % 3).collect();
        let m = EntityModel::fit(
            &d.schema,
            &d.answers,
            &r,
            &RowGrouping::Known(labels),
            &EntityModelOptions::default(),
        );
        assert!(m.fitted_pairs() > 0, "some multipliers must be fitted");
        let max = m.lambda.values().cloned().fold(0.0, f64::max);
        assert!(max > 2.0, "unfamiliar pairs should fit λ ≫ 1, max = {max}");
        assert!(familiarity_strength(&m) > 0.1);
    }

    #[test]
    fn no_group_effect_yields_near_unit_lambdas() {
        // Without entity groups in the generator the multipliers stay close
        // to 1 (the prior holds them there).
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 40,
                columns: 5,
                num_workers: 20,
                answers_per_task: 4,
                ..Default::default()
            },
            3,
        );
        let r = infer(&d);
        let labels: Vec<usize> = (0..40).map(|i| i % 4).collect();
        let m = EntityModel::fit(
            &d.schema,
            &d.answers,
            &r,
            &RowGrouping::Known(labels),
            &EntityModelOptions::default(),
        );
        for (&(w, g), &l) in &m.lambda {
            assert!(
                (0.2..=5.0).contains(&l),
                "λ[{w:?},{g}] = {l} drifted far from 1 without a group effect"
            );
        }
    }

    #[test]
    fn learned_grouping_recovers_planted_partition() {
        // A denser answer matrix than the default experiments: recovery of
        // the planted partition needs several answers per (row, worker) pair.
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 60,
                columns: 6,
                categorical_ratio: 0.5,
                num_workers: 15,
                answers_per_task: 6,
                entity_groups: Some(EntityGroups {
                    groups: 3,
                    p_unfamiliar: 0.4,
                    difficulty_factor: 60.0,
                }),
                ..Default::default()
            },
            4,
        );
        let r = infer(&d);
        let m = EntityModel::fit(
            &d.schema,
            &d.answers,
            &r,
            &RowGrouping::Learned { groups: 3, seed: 42 },
            &EntityModelOptions::default(),
        );
        let truth: Vec<usize> = (0..60).map(|i| i % 3).collect();
        let ari = adjusted_rand_index(m.groups(), &truth);
        assert!(ari > 0.3, "learned partition should correlate with the planted one, ARI = {ari}");
    }

    #[test]
    fn lambda_defaults_to_one_for_unseen_worker() {
        let d = grouped_dataset(5, 2);
        let r = infer(&d);
        let m = EntityModel::fit(
            &d.schema,
            &d.answers,
            &r,
            &RowGrouping::Known((0..60).map(|i| i % 2).collect()),
            &EntityModelOptions::default(),
        );
        assert_eq!(m.lambda(WorkerId(55_555), 0), 1.0);
    }

    #[test]
    fn policy_returns_k_distinct_cells_and_prefers_unfamiliar_rows_less() {
        let d = grouped_dataset(6, 3);
        let r = infer(&d);
        let m = d.answers.to_matrix();
        let ctx = AssignmentContext {
            schema: &d.schema,
            answers: &d.answers,
            freeze: m.freeze_view(),
            inference: Some(&r),
            max_answers_per_cell: None,
            terminated: None,
            correlation: None,
        };
        let labels: Vec<usize> = (0..60).map(|i| i % 3).collect();
        let mut policy = EntityAwarePolicy::new(RowGrouping::Known(labels));
        let w = d.answers.workers().next().unwrap();
        let picks = policy.select(w, 8, &ctx);
        assert_eq!(picks.len(), 8);
        let mut dedup = picks.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 8, "duplicates returned");
    }

    #[test]
    fn policy_without_attribute_correlation_also_works() {
        let d = grouped_dataset(7, 2);
        let r = infer(&d);
        let m = d.answers.to_matrix();
        let ctx = AssignmentContext {
            schema: &d.schema,
            answers: &d.answers,
            freeze: m.freeze_view(),
            inference: Some(&r),
            max_answers_per_cell: None,
            terminated: None,
            correlation: None,
        };
        let mut policy = EntityAwarePolicy::new(RowGrouping::Learned { groups: 2, seed: 1 })
            .without_attribute_correlation();
        let picks = policy.select(WorkerId(99_999), 5, &ctx);
        assert_eq!(picks.len(), 5);
    }

    #[test]
    fn golden_section_finds_continuous_mle() {
        // Pure continuous terms: the penalised optimum has a closed form
        // dL/dλ = 0 → λ = (Σ e²/v + n0) / (n + n0).
        let terms: Vec<LikelihoodTerm> = (0..20)
            .map(|i| LikelihoodTerm::Continuous { e2: 4.0 + 0.1 * i as f64, base_var: 1.0 })
            .collect();
        let opts = EntityModelOptions::default();
        let fitted = fit_lambda(&terms, 0.5, &opts);
        let sum_e2: f64 = (0..20).map(|i| 4.0 + 0.1 * i as f64).sum();
        let expected = (sum_e2 + opts.prior_strength) / (20.0 + opts.prior_strength);
        assert!((fitted - expected).abs() < 1e-3, "fitted {fitted} vs closed form {expected}");
    }

    #[test]
    fn prior_pulls_sparse_evidence_to_one() {
        // One big residual should not blow λ up when the prior is strong.
        let terms = vec![LikelihoodTerm::Continuous { e2: 100.0, base_var: 1.0 }];
        let strong = EntityModelOptions { prior_strength: 50.0, ..Default::default() };
        let weak = EntityModelOptions { prior_strength: 0.5, ..Default::default() };
        let l_strong = fit_lambda(&terms, 0.5, &strong);
        let l_weak = fit_lambda(&terms, 0.5, &weak);
        assert!(l_strong < l_weak, "{l_strong} !< {l_weak}");
        assert!(l_strong < 5.0);
    }
}
