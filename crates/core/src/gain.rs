//! Inherent information gain (paper §5.1, Eq. 6).
//!
//! The utility of assigning cell `c_ij` to worker `u` is the expected drop in
//! the truth distribution's entropy after observing one more answer from `u`:
//! `IG(c_ij) = H(T) − E_a[H(T | a)]`. Entropy is Shannon for categorical
//! cells and differential for continuous cells; because only *differences*
//! enter, the measure is comparable across datatypes (the paper's Δ-binning
//! argument, verified in `tcrowd_stat::entropy` tests).
//!
//! For a Gaussian posterior the expected posterior entropy is exact — the
//! updated variance `(1/T^φ + 1/v)⁻¹` does not depend on the answer's value —
//! so the default estimator needs no sampling. A sampling estimator
//! mirroring the paper's Monte-Carlo description is provided for the
//! ablation study.

use crate::inference::InferenceResult;
use crate::model::cat_answer_likelihood;
use crate::truth::TruthDist;
use rand::rngs::StdRng;
use tcrowd_stat::clamp_var;
use tcrowd_tabular::{CellId, Value, WorkerId};

/// How the expected posterior entropy of a *continuous* cell is estimated.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum GainEstimator {
    /// Closed form (default): for Gaussians the post-update variance is
    /// answer-independent, so `E_a[H_d]` is exact.
    #[default]
    Exact,
    /// Monte-Carlo over sampled hypothetical answers (`s_cont` in the
    /// paper's complexity analysis). Agreement with `Exact` is tested; kept
    /// for the ablation bench.
    Sampling {
        /// Number of hypothetical answers drawn.
        samples: usize,
    },
}

/// Information gain of one more answer on a cell whose z-space posterior is
/// `truth`, answered with effective variance `obs_var` (continuous) or
/// quality `q` (categorical).
///
/// This is the primitive both the inherent and the structure-aware policies
/// reduce to; they differ only in how `obs_var`/`q` are predicted.
pub fn gain_with_params(
    truth: &TruthDist,
    obs_var: f64,
    q: f64,
    estimator: GainEstimator,
    rng: &mut StdRng,
) -> f64 {
    match truth {
        TruthDist::Continuous(n) => {
            let v = clamp_var(obs_var);
            match estimator {
                GainEstimator::Exact => {
                    // H − H' = ½ ln(T^φ / T^φ') = ½ ln(1 + T^φ / v).
                    0.5 * (1.0 + n.var / v).ln()
                }
                GainEstimator::Sampling { samples } => {
                    let predictive = n.predictive(v);
                    let h0 = n.differential_entropy();
                    let mut total = 0.0;
                    for _ in 0..samples.max(1) {
                        let a = predictive.sample(rng);
                        let post = n.posterior_with_observation(a, v);
                        total += post.differential_entropy();
                    }
                    h0 - total / samples.max(1) as f64
                }
            }
        }
        TruthDist::Categorical(p) => {
            let l = p.len() as u32;
            if l <= 1 {
                return 0.0;
            }
            let h0 = truth.entropy();
            // Predictive answer distribution: P(a) = Σ_z P(z)·P(a|z).
            let mut expected_h = 0.0;
            for a in 0..l {
                let p_a: f64 = p
                    .iter()
                    .enumerate()
                    .map(|(z, pz)| pz * cat_answer_likelihood(q, l, z as u32 == a))
                    .sum();
                if p_a <= 0.0 {
                    continue;
                }
                let post = truth.updated_with_answer(&Value::Categorical(a), obs_var, q);
                expected_h += p_a * post.entropy();
            }
            h0 - expected_h
        }
    }
}

/// Inherent information gain `IG_q(c_ij)` (Eq. 6): the gain of assigning
/// `cell` to `worker`, using the worker's fitted quality and the cell's
/// fitted difficulty.
pub fn inherent_gain(
    result: &InferenceResult,
    worker: WorkerId,
    cell: CellId,
    estimator: GainEstimator,
    rng: &mut StdRng,
) -> f64 {
    let v = result.effective_variance(worker, cell);
    let q = result.cell_quality(worker, cell);
    gain_with_params(result.truth_z(cell), v, q, estimator, rng)
}

/// Compute gains for many candidate cells, splitting across threads when the
/// candidate set is large (the paper's §5.1 notes assignment parallelises
/// trivially because cells are independent).
pub fn compute_gains<F>(candidates: &[CellId], per_cell: F) -> Vec<f64>
where
    F: Fn(CellId) -> f64 + Sync,
{
    const PARALLEL_THRESHOLD: usize = 8192;
    if !cfg!(feature = "parallel") || candidates.len() < PARALLEL_THRESHOLD {
        return candidates.iter().map(|&c| per_cell(c)).collect();
    }
    let threads =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(candidates.len());
    let chunk = candidates.len().div_ceil(threads);
    let mut out = vec![0.0; candidates.len()];
    std::thread::scope(|scope| {
        for (cells, slot) in candidates.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let per_cell = &per_cell;
            scope.spawn(move || {
                for (c, o) in cells.iter().zip(slot.iter_mut()) {
                    *o = per_cell(*c);
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tcrowd_stat::normal::Normal;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn continuous_gain_exact_matches_sampling() {
        let t = TruthDist::Continuous(Normal::new(0.3, 2.0));
        let mut r = rng();
        let exact = gain_with_params(&t, 0.5, 0.8, GainEstimator::Exact, &mut r);
        let sampled =
            gain_with_params(&t, 0.5, 0.8, GainEstimator::Sampling { samples: 50 }, &mut r);
        // For Gaussians the sampled entropy is answer-independent, so even a
        // small sample agrees to machine precision.
        assert!((exact - sampled).abs() < 1e-9, "{exact} vs {sampled}");
        assert!(exact > 0.0);
    }

    #[test]
    fn better_worker_means_larger_gain() {
        let t = TruthDist::Continuous(Normal::new(0.0, 1.0));
        let mut r = rng();
        let good = gain_with_params(&t, 0.1, 0.9, GainEstimator::Exact, &mut r);
        let bad = gain_with_params(&t, 5.0, 0.3, GainEstimator::Exact, &mut r);
        assert!(good > bad);
        let tc = TruthDist::uniform(4);
        let good_c = gain_with_params(&tc, 0.1, 0.9, GainEstimator::Exact, &mut r);
        let bad_c = gain_with_params(&tc, 5.0, 0.3, GainEstimator::Exact, &mut r);
        assert!(good_c > bad_c);
    }

    #[test]
    fn uncertain_cell_gains_more_than_settled_cell() {
        let mut r = rng();
        let uncertain = TruthDist::uniform(3);
        let settled = TruthDist::Categorical(vec![0.98, 0.01, 0.01]);
        let g_unc = gain_with_params(&uncertain, 0.3, 0.8, GainEstimator::Exact, &mut r);
        let g_set = gain_with_params(&settled, 0.3, 0.8, GainEstimator::Exact, &mut r);
        assert!(g_unc > g_set);

        let wide = TruthDist::Continuous(Normal::new(0.0, 4.0));
        let tight = TruthDist::Continuous(Normal::new(0.0, 0.01));
        let g_wide = gain_with_params(&wide, 0.5, 0.8, GainEstimator::Exact, &mut r);
        let g_tight = gain_with_params(&tight, 0.5, 0.8, GainEstimator::Exact, &mut r);
        assert!(g_wide > g_tight);
    }

    #[test]
    fn categorical_gain_is_nonnegative_and_bounded_by_entropy() {
        let mut r = rng();
        for probs in [vec![0.25; 4], vec![0.7, 0.2, 0.05, 0.05], vec![0.5, 0.5]] {
            let t = TruthDist::Categorical(probs);
            let h = t.entropy();
            for q in [0.3, 0.6, 0.95] {
                let g = gain_with_params(&t, 0.3, q, GainEstimator::Exact, &mut r);
                assert!(g >= -1e-12, "gain must be non-negative, got {g}");
                assert!(g <= h + 1e-12, "gain cannot exceed prior entropy");
            }
        }
    }

    #[test]
    fn uninformative_worker_gains_nothing_categorical() {
        // q = 1/|L| makes every answer equally likely under all hypotheses.
        let t = TruthDist::Categorical(vec![0.4, 0.3, 0.3]);
        let mut r = rng();
        let g = gain_with_params(&t, 1.0, 1.0 / 3.0, GainEstimator::Exact, &mut r);
        assert!(g.abs() < 1e-9, "gain = {g}");
    }

    #[test]
    fn single_label_domain_gains_zero() {
        let t = TruthDist::Categorical(vec![1.0]);
        let mut r = rng();
        assert_eq!(gain_with_params(&t, 0.5, 0.9, GainEstimator::Exact, &mut r), 0.0);
    }

    #[test]
    fn continuous_gain_formula() {
        // IG = ½ ln(1 + T^φ/v) exactly.
        let t = TruthDist::Continuous(Normal::new(1.0, 3.0));
        let mut r = rng();
        let g = gain_with_params(&t, 1.5, 0.5, GainEstimator::Exact, &mut r);
        assert!((g - 0.5 * (1.0f64 + 3.0 / 1.5).ln()).abs() < 1e-12);
    }

    #[test]
    fn parallel_gains_match_serial() {
        let cells: Vec<CellId> =
            (0..10_000).map(|i| CellId::new(i as u32 / 100, i as u32 % 100)).collect();
        let f = |c: CellId| (c.row * 100 + c.col) as f64 * 0.5;
        let par = compute_gains(&cells, f);
        let ser: Vec<f64> = cells.iter().map(|&c| f(c)).collect();
        assert_eq!(par, ser);
    }
}
