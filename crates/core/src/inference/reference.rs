//! The **reference** (naive) inference path: identical model math to the
//! CSR engine, but every sweep routed through `HashMap`-backed side indexes
//! built next to a flat `Vec` of answers — the layout the columnar
//! [`tcrowd_tabular::AnswerMatrix`] replaced.
//!
//! Kept for two purposes:
//!
//! * **Differential testing** — `infer_reference` must produce the same
//!   estimates as [`TCrowd::infer`] (property-tested to `1e-9`; the two
//!   paths perform the same arithmetic in the same order, only the data
//!   access differs).
//! * **Benchmarking** — `benches/bench_inference.rs` measures the CSR
//!   speedup against this path on the 1 000×10 mixed-type table.
//!
//! Access pattern per EM iteration: the E-step and ELBO look up each cell's
//! answer list in a `HashMap<(row, col), Vec<u32>>`, and every per-answer
//! parameter read resolves the worker through a `HashMap<WorkerId, u32>` —
//! exactly the per-sweep hashing + pointer-chasing the columnar store
//! eliminates.

use super::{EpsilonSpec, InferenceResult, TCrowd};
use crate::em::{initial_phi, ColKind, EmOptions, EmTimings};
use crate::model::{cat_answer_ln_likelihood, quality_dlnv, quality_from_variance};
use crate::truth::TruthDist;
use std::collections::HashMap;
use tcrowd_stat::clamp_prob;
use tcrowd_stat::describe::{median, std_dev, zscore_params};
use tcrowd_stat::normal::Normal;
use tcrowd_stat::optimize::gradient_ascent;
use tcrowd_tabular::{AnswerLog, ColumnType, Schema, Value, WorkerId};

const LN_2PI: f64 = 1.8378770664093453;

/// One flattened answer, keyed by the *external* worker id so every
/// parameter access pays the hash lookup the naive layout implies.
struct RefAnswer {
    worker: WorkerId,
    row: u32,
    col: u32,
    label: u32,
    value: f64,
}

struct RefWorkspace {
    n_rows: usize,
    n_cols: usize,
    col_kind: Vec<ColKind>,
    answers: Vec<RefAnswer>,
    by_cell: HashMap<(u32, u32), Vec<u32>>,
    worker_index: HashMap<WorkerId, u32>,
    workers: Vec<WorkerId>,
    epsilon: f64,
}

impl TCrowd {
    /// Truth inference through the naive `HashMap`-indexed path. Same model,
    /// same options, same estimates (within float-reassociation noise) as
    /// [`TCrowd::infer`] — kept as the differential-testing and benchmarking
    /// baseline for the columnar engine.
    pub fn infer_reference(&self, schema: &Schema, answers: &AnswerLog) -> InferenceResult {
        assert_eq!(schema.num_columns(), answers.cols(), "schema/answer-log column mismatch");
        let n_rows = answers.rows();
        let n_cols = answers.cols();

        // Per-column z-scaling, one filtered scan per column.
        let scalers: Vec<Option<(f64, f64)>> = (0..n_cols)
            .map(|j| match schema.column_type(j) {
                ColumnType::Continuous { .. } => {
                    let col: Vec<f64> = answers
                        .all()
                        .iter()
                        .filter(|a| a.cell.col as usize == j)
                        .map(|a| a.value.expect_continuous())
                        .collect();
                    Some(zscore_params(&col))
                }
                ColumnType::Categorical { .. } => None,
            })
            .collect();

        // Flatten the active columns, indexing workers in sorted-id order
        // (determinism matches the columnar path; the *access* differs).
        let included = |j: usize| self.opts.filter.includes(schema.column_type(j));
        let mut workers: Vec<WorkerId> = answers
            .workers()
            .filter(|&w| answers.for_worker(w).any(|a| included(a.cell.col as usize)))
            .collect();
        workers.sort_unstable();
        let worker_index: HashMap<WorkerId, u32> =
            workers.iter().enumerate().map(|(i, &w)| (w, i as u32)).collect();
        let mut flat: Vec<RefAnswer> = Vec::new();
        let mut by_cell: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
        for a in answers.all() {
            let j = a.cell.col as usize;
            if !included(j) {
                continue;
            }
            let (label, value) = match a.value {
                Value::Categorical(l) => (l, 0.0),
                Value::Continuous(x) => {
                    let (m, s) = scalers[j].expect("continuous column has scaler");
                    (0, (x - m) / s)
                }
            };
            by_cell.entry((a.cell.row, a.cell.col)).or_default().push(flat.len() as u32);
            flat.push(RefAnswer {
                worker: a.worker,
                row: a.cell.row,
                col: a.cell.col,
                label,
                value,
            });
        }

        let col_kind: Vec<ColKind> = (0..n_cols)
            .map(|j| match schema.column_type(j) {
                ColumnType::Categorical { labels } => ColKind::Cat(labels.len() as u32),
                ColumnType::Continuous { .. } => ColKind::Cont,
            })
            .collect();

        let epsilon = match self.opts.epsilon {
            EpsilonSpec::Fixed(e) => {
                assert!(e > 0.0, "epsilon must be positive");
                e
            }
            EpsilonSpec::AutoScale(scale) => {
                assert!(scale > 0.0, "epsilon scale must be positive");
                let mut cell_stds = Vec::new();
                for row in 0..n_rows as u32 {
                    for col in 0..n_cols as u32 {
                        if col_kind[col as usize] != ColKind::Cont {
                            continue;
                        }
                        let Some(idx) = by_cell.get(&(row, col)) else { continue };
                        if idx.len() < 2 {
                            continue;
                        }
                        let vals: Vec<f64> = idx.iter().map(|&i| flat[i as usize].value).collect();
                        cell_stds.push(std_dev(&vals));
                    }
                }
                if cell_stds.is_empty() {
                    0.5
                } else {
                    (scale * median(&cell_stds)).max(1e-3)
                }
            }
        };

        let ws = RefWorkspace {
            n_rows,
            n_cols,
            col_kind,
            answers: flat,
            by_cell,
            worker_index,
            workers,
            epsilon,
        };
        let (truths, alpha_ln, beta_ln, phi_ln, trace, iterations, converged, renorm_shift) =
            run_em_reference(&ws, &self.opts.em);

        InferenceResult {
            n_rows,
            n_cols,
            truths_z: truths,
            scalers,
            alpha: alpha_ln.iter().map(|v| v.exp()).collect(),
            beta: beta_ln.iter().map(|v| v.exp()).collect(),
            worker_index: ws.workers.iter().enumerate().map(|(i, &w)| (w, i)).collect(),
            workers: ws.workers.clone(),
            phi: phi_ln.iter().map(|v| v.exp()).collect(),
            epsilon,
            objective_trace: trace,
            iterations,
            converged,
            renorm_shift,
            timings: EmTimings::default(),
        }
    }
}

#[allow(clippy::type_complexity)]
fn run_em_reference(
    ws: &RefWorkspace,
    opts: &EmOptions,
) -> (Vec<TruthDist>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, usize, bool, (f64, f64)) {
    let n_workers = ws.workers.len();
    let mut ln_alpha = vec![0.0; ws.n_rows];
    let mut ln_beta = vec![0.0; ws.n_cols];
    let mut ln_phi = vec![initial_phi(ws.epsilon, opts.init_quality).ln(); n_workers];
    let mut truths: Vec<TruthDist> = (0..ws.n_rows * ws.n_cols)
        .map(|slot| match ws.col_kind[slot % ws.n_cols] {
            ColKind::Cat(l) => TruthDist::uniform(l),
            ColKind::Cont => TruthDist::Continuous(Normal::STANDARD),
        })
        .collect();
    let mut trace = Vec::new();
    if ws.answers.is_empty() {
        return (truths, ln_alpha, ln_beta, ln_phi, trace, 0, true, (0.0, 0.0));
    }

    let effective_variance = |ln_alpha: &[f64], ln_beta: &[f64], ln_phi: &[f64], a: &RefAnswer| {
        // The per-answer hash resolution the columnar path avoids.
        let u = ws.worker_index[&a.worker] as usize;
        (ln_alpha[a.row as usize] + ln_beta[a.col as usize] + ln_phi[u]).exp()
    };

    let e_step = |truths: &mut Vec<TruthDist>, la: &[f64], lb: &[f64], lp: &[f64]| {
        for row in 0..ws.n_rows as u32 {
            for col in 0..ws.n_cols as u32 {
                let Some(idx) = ws.by_cell.get(&(row, col)) else { continue };
                if idx.is_empty() {
                    continue;
                }
                let slot = row as usize * ws.n_cols + col as usize;
                truths[slot] = match ws.col_kind[col as usize] {
                    ColKind::Cont => {
                        let obs: Vec<(f64, f64)> = idx
                            .iter()
                            .map(|&i| {
                                let a = &ws.answers[i as usize];
                                (a.value, effective_variance(la, lb, lp, a))
                            })
                            .collect();
                        TruthDist::Continuous(Normal::STANDARD.posterior_with_observations(&obs))
                    }
                    ColKind::Cat(l) => {
                        let mut ln_p = vec![0.0f64; l.max(1) as usize];
                        for &i in idx {
                            let a = &ws.answers[i as usize];
                            let v = effective_variance(la, lb, lp, a);
                            let q = quality_from_variance(ws.epsilon, v);
                            for (z, lpv) in ln_p.iter_mut().enumerate() {
                                *lpv += cat_answer_ln_likelihood(q, l, z as u32 == a.label);
                            }
                        }
                        let max = ln_p.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                        let mut p: Vec<f64> = ln_p.iter().map(|lp| (lp - max).exp()).collect();
                        let total: f64 = p.iter().sum();
                        for v in &mut p {
                            *v /= total;
                        }
                        TruthDist::Categorical(p)
                    }
                };
            }
        }
    };

    let elbo_of = |truths: &[TruthDist], la: &[f64], lb: &[f64], lp: &[f64]| -> f64 {
        let phi_center = initial_phi(ws.epsilon, opts.init_quality).ln();
        let mut elbo = 0.0;
        if opts.learn_row_difficulty {
            elbo -= 0.5 * opts.difficulty_prior_strength * la.iter().map(|v| v * v).sum::<f64>();
        }
        if opts.learn_col_difficulty {
            elbo -= 0.5 * opts.difficulty_prior_strength * lb.iter().map(|v| v * v).sum::<f64>();
        }
        elbo -= 0.5
            * opts.phi_prior_strength
            * lp.iter().map(|v| (v - phi_center) * (v - phi_center)).sum::<f64>();
        for row in 0..ws.n_rows as u32 {
            for col in 0..ws.n_cols as u32 {
                let Some(idx) = ws.by_cell.get(&(row, col)) else { continue };
                if idx.is_empty() {
                    continue;
                }
                let slot = row as usize * ws.n_cols + col as usize;
                match &truths[slot] {
                    TruthDist::Continuous(n) => {
                        for &i in idx {
                            let a = &ws.answers[i as usize];
                            let v = effective_variance(la, lb, lp, a);
                            let d = a.value - n.mean;
                            elbo += -0.5 * (LN_2PI + v.ln()) - (d * d + n.var) / (2.0 * v);
                        }
                        elbo += -0.5 * LN_2PI - (n.mean * n.mean + n.var) / 2.0;
                        elbo += n.differential_entropy();
                    }
                    TruthDist::Categorical(p) => {
                        let l = match ws.col_kind[col as usize] {
                            ColKind::Cat(l) => l,
                            ColKind::Cont => unreachable!(),
                        };
                        for &i in idx {
                            let a = &ws.answers[i as usize];
                            let v = effective_variance(la, lb, lp, a);
                            let q = quality_from_variance(ws.epsilon, v);
                            let pc = clamp_prob(p.get(a.label as usize).copied().unwrap_or(0.0));
                            elbo += pc * cat_answer_ln_likelihood(q, l, true)
                                + (1.0 - pc) * cat_answer_ln_likelihood(q, l, false);
                        }
                        elbo += -(l.max(1) as f64).ln();
                        elbo += tcrowd_stat::entropy::shannon(p);
                    }
                }
            }
        }
        elbo
    };

    let m_step = |truths: &[TruthDist], la: &mut Vec<f64>, lb: &mut Vec<f64>, lp: &mut Vec<f64>| {
        // Per-answer sufficient statistics (dense, like the seed's cache).
        let mut cont_k = vec![0.0; ws.answers.len()];
        let mut cat_p = vec![0.0; ws.answers.len()];
        for (i, a) in ws.answers.iter().enumerate() {
            let slot = a.row as usize * ws.n_cols + a.col as usize;
            match &truths[slot] {
                TruthDist::Continuous(n) => {
                    let d = a.value - n.mean;
                    cont_k[i] = d * d + n.var;
                }
                TruthDist::Categorical(p) => {
                    cat_p[i] = clamp_prob(p.get(a.label as usize).copied().unwrap_or(0.0));
                }
            }
        }

        let learn_a = opts.learn_row_difficulty;
        let learn_b = opts.learn_col_difficulty;
        let na = if learn_a { ws.n_rows } else { 0 };
        let nb = if learn_b { ws.n_cols } else { 0 };
        let mut x0 = Vec::with_capacity(na + nb + n_workers);
        if learn_a {
            x0.extend_from_slice(la);
        }
        if learn_b {
            x0.extend_from_slice(lb);
        }
        x0.extend_from_slice(lp);

        let bound = opts.ln_param_bound;
        let phi_center = initial_phi(ws.epsilon, opts.init_quality).ln();
        let lam_phi = opts.phi_prior_strength;
        let lam_diff = opts.difficulty_prior_strength;
        let objective = |x: &[f64]| -> (f64, Vec<f64>) {
            let (xa, rest) = x.split_at(na);
            let (xb, xp) = rest.split_at(nb);
            let mut q_val = 0.0;
            let mut grad = vec![0.0; x.len()];
            for row in 0..ws.n_rows as u32 {
                for col in 0..ws.n_cols as u32 {
                    let Some(idx) = ws.by_cell.get(&(row, col)) else { continue };
                    for &i in idx {
                        let a = &ws.answers[i as usize];
                        let u = ws.worker_index[&a.worker] as usize;
                        let va = if learn_a { xa[a.row as usize] } else { 0.0 };
                        let vb = if learn_b { xb[a.col as usize] } else { 0.0 };
                        let ln_v = (va + vb + xp[u]).clamp(-bound, bound);
                        let v = ln_v.exp();
                        let g = match ws.col_kind[a.col as usize] {
                            ColKind::Cont => {
                                let k = cont_k[i as usize];
                                q_val += -0.5 * (LN_2PI + ln_v) - k / (2.0 * v);
                                -0.5 + k / (2.0 * v)
                            }
                            ColKind::Cat(l) => {
                                let p = cat_p[i as usize];
                                let q = quality_from_variance(ws.epsilon, v);
                                q_val += p * q.ln()
                                    + (1.0 - p) * ((1.0 - q) / (l.max(2) - 1) as f64).ln();
                                let dq = quality_dlnv(ws.epsilon, v);
                                (p / q - (1.0 - p) / (1.0 - q)) * dq
                            }
                        };
                        if learn_a {
                            grad[a.row as usize] += g;
                        }
                        if learn_b {
                            grad[na + a.col as usize] += g;
                        }
                        grad[na + nb + u] += g;
                    }
                }
            }
            for (i, &v) in xa.iter().enumerate() {
                q_val -= 0.5 * lam_diff * v * v;
                grad[i] -= lam_diff * v;
            }
            for (i, &v) in xb.iter().enumerate() {
                q_val -= 0.5 * lam_diff * v * v;
                grad[na + i] -= lam_diff * v;
            }
            for (i, &v) in xp.iter().enumerate() {
                let d = v - phi_center;
                q_val -= 0.5 * lam_phi * d * d;
                grad[na + nb + i] -= lam_phi * d;
            }
            (q_val, grad)
        };

        let result = gradient_ascent(objective, &x0, &opts.mstep);
        let x = result.params;
        let (xa, rest) = x.split_at(na);
        let (xb, xp) = rest.split_at(nb);
        if learn_a {
            la.copy_from_slice(xa);
        }
        if learn_b {
            lb.copy_from_slice(xb);
        }
        lp.copy_from_slice(xp);
        for v in la.iter_mut().chain(lb.iter_mut()).chain(lp.iter_mut()) {
            *v = v.clamp(-bound, bound);
        }
    };

    e_step(&mut truths, &ln_alpha, &ln_beta, &ln_phi);
    let mut elbo = elbo_of(&truths, &ln_alpha, &ln_beta, &ln_phi);
    trace.push(elbo);
    let mut iterations = 0;
    let mut converged = false;
    for iter in 1..=opts.max_iters {
        m_step(&truths, &mut ln_alpha, &mut ln_beta, &mut ln_phi);
        e_step(&mut truths, &ln_alpha, &ln_beta, &ln_phi);
        let next = elbo_of(&truths, &ln_alpha, &ln_beta, &ln_phi);
        trace.push(next);
        iterations = iter;
        if (next - elbo).abs() < opts.tol * (1.0 + elbo.abs()) {
            converged = true;
            break;
        }
        elbo = next;
    }

    // Identifiability polish, mirroring `em::renormalize`.
    let mut shift = (0.0, 0.0);
    if opts.learn_row_difficulty {
        let m = ln_alpha.iter().sum::<f64>() / ln_alpha.len().max(1) as f64;
        for v in &mut ln_alpha {
            *v -= m;
        }
        for v in &mut ln_phi {
            *v += m;
        }
        shift.0 = m;
    }
    if opts.learn_col_difficulty {
        let m = ln_beta.iter().sum::<f64>() / ln_beta.len().max(1) as f64;
        for v in &mut ln_beta {
            *v -= m;
        }
        for v in &mut ln_phi {
            *v += m;
        }
        shift.1 = m;
    }

    (truths, ln_alpha, ln_beta, ln_phi, trace, iterations, converged, shift)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrowd_tabular::{generate_dataset, CellId, GeneratorConfig};

    #[test]
    fn reference_path_matches_columnar_estimates() {
        for seed in [1u64, 4, 9] {
            let d = generate_dataset(
                &GeneratorConfig {
                    rows: 30,
                    columns: 5,
                    num_workers: 14,
                    answers_per_task: 4,
                    ..Default::default()
                },
                seed,
            );
            let model = TCrowd::default_full();
            let fast = model.infer(&d.schema, &d.answers);
            let naive = model.infer_reference(&d.schema, &d.answers);
            assert_eq!(fast.iterations, naive.iterations, "seed {seed}");
            assert_eq!(fast.workers, naive.workers);
            for (a, b) in fast.phi.iter().zip(&naive.phi) {
                assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()), "phi {a} vs {b}");
            }
            for i in 0..d.rows() as u32 {
                for j in 0..d.cols() as u32 {
                    let (x, y) =
                        (fast.estimate(CellId::new(i, j)), naive.estimate(CellId::new(i, j)));
                    match (x, y) {
                        (Value::Categorical(a), Value::Categorical(b)) => {
                            assert_eq!(a, b, "cell ({i},{j}) seed {seed}")
                        }
                        (Value::Continuous(a), Value::Continuous(b)) => assert!(
                            (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
                            "cell ({i},{j}) seed {seed}: {a} vs {b}"
                        ),
                        _ => panic!("datatype mismatch at ({i},{j})"),
                    }
                }
            }
        }
    }

    #[test]
    fn reference_path_handles_empty_and_filtered_logs() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 8,
                columns: 3,
                num_workers: 6,
                answers_per_task: 2,
                ..Default::default()
            },
            3,
        );
        let empty = AnswerLog::new(8, 3);
        let r = TCrowd::default_full().infer_reference(&d.schema, &empty);
        assert!(r.converged);
        assert!(r.workers.is_empty());
        let cat = TCrowd::only_categorical();
        let a = cat.infer(&d.schema, &d.answers);
        let b = cat.infer_reference(&d.schema, &d.answers);
        assert_eq!(a.workers, b.workers);
        assert_eq!(a.iterations, b.iterations);
    }
}
