//! The unified worker model (paper §4.1–4.2).
//!
//! Everything here works in the *normalised* answer space: continuous answers
//! are z-scored per column before inference, so one global quality window `ε`
//! is meaningful across heterogeneous domains.

use std::f64::consts::FRAC_2_SQRT_PI;
use tcrowd_stat::special::{erf, erf_derivative};
use tcrowd_stat::{clamp_prob, clamp_var};

/// Convert an effective answer variance `v = α_i β_j φ_u` into the unified
/// worker quality `q = erf(ε / √(2v))` (paper Eq. 2).
#[inline]
pub fn quality_from_variance(epsilon: f64, variance: f64) -> f64 {
    clamp_prob(erf(epsilon / (2.0 * clamp_var(variance)).sqrt()))
}

/// Derivative of [`quality_from_variance`] with respect to `ln v`.
///
/// With `x = ε/√(2v)`, `dx/d ln v = −x/2`, so
/// `dq/d ln v = erf'(x) · (−x/2)` — the chain-rule factor used by the
/// categorical M-step gradient.
#[inline]
pub fn quality_dlnv(epsilon: f64, variance: f64) -> f64 {
    let x = epsilon / (2.0 * clamp_var(variance)).sqrt();
    erf_derivative(x) * (-x / 2.0)
}

/// Quality-link argument `x = ε/√(2v)` straight from `ln v` — one `exp`
/// instead of `exp` + `sqrt` + division.
#[inline]
pub fn quality_x_from_ln_variance(epsilon: f64, ln_v: f64) -> f64 {
    (epsilon / std::f64::consts::SQRT_2) * (-0.5 * ln_v).exp()
}

/// Fast unified quality from `ln v`, via the Hermite-interpolated `erf`
/// kernel (absolute error `< 2e-12`; see `tcrowd_stat::lut`).
///
/// This is the columnar engine's hot-loop version of
/// [`quality_from_variance`]; the naive reference path keeps the exact
/// series so the differential tests pin the two engines' estimates to
/// within `1e-9` of each other.
#[inline]
pub fn quality_from_ln_variance_fast(epsilon: f64, ln_v: f64) -> f64 {
    clamp_prob(tcrowd_stat::lut::erf_fast(quality_x_from_ln_variance(epsilon, ln_v)))
}

/// Fast `(q, dq/d ln v)` pair from `ln v`, sharing the link argument between
/// the quality and its gradient (the categorical M-step needs both).
#[inline]
pub fn quality_pair_from_ln_variance_fast(epsilon: f64, ln_v: f64) -> (f64, f64) {
    let x = quality_x_from_ln_variance(epsilon, ln_v);
    let q = clamp_prob(tcrowd_stat::lut::erf_fast(x));
    let dq = FRAC_2_SQRT_PI * tcrowd_stat::lut::exp_neg_sq_fast(x) * (-x / 2.0);
    (q, dq)
}

/// Log-likelihood of a categorical answer given that the truth is `correct`
/// (true → the answer equals the truth): `ln q` or `ln((1−q)/(|L|−1))`
/// (paper Eq. 3).
#[inline]
pub fn cat_answer_ln_likelihood(q: f64, cardinality: u32, correct: bool) -> f64 {
    let q = clamp_prob(q);
    if correct {
        q.ln()
    } else {
        ((1.0 - q) / (cardinality.max(2) - 1) as f64).ln()
    }
}

/// Likelihood (not log) of a categorical answer under truth hypothesis `z`.
#[inline]
pub fn cat_answer_likelihood(q: f64, cardinality: u32, correct: bool) -> f64 {
    let q = clamp_prob(q);
    if correct {
        q
    } else {
        (1.0 - q) / (cardinality.max(2) - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrowd_stat::optimize::numerical_gradient;

    #[test]
    fn quality_decreases_with_variance() {
        let eps = 0.5;
        let mut prev = 1.0;
        for v in [0.01, 0.1, 0.5, 2.0, 10.0] {
            let q = quality_from_variance(eps, v);
            assert!(q < prev, "quality must fall as variance grows");
            assert!(q > 0.0 && q < 1.0);
            prev = q;
        }
    }

    #[test]
    fn quality_increases_with_epsilon() {
        let v = 0.3;
        assert!(quality_from_variance(1.0, v) > quality_from_variance(0.3, v));
    }

    #[test]
    fn quality_gradient_matches_numeric() {
        let eps = 0.5;
        for v in [0.05, 0.3, 1.0, 4.0] {
            let analytic = quality_dlnv(eps, v);
            let numeric =
                numerical_gradient(|p| quality_from_variance(eps, p[0].exp()), &[v.ln()], 1e-6)[0];
            assert!(
                (analytic - numeric).abs() < 1e-7,
                "v={v}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn cat_likelihoods_normalise() {
        // Σ_a P(a | T=z) over the |L| possible answers must be 1.
        let (q, l) = (0.7, 5u32);
        let total =
            cat_answer_likelihood(q, l, true) + (l - 1) as f64 * cat_answer_likelihood(q, l, false);
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cat_ln_likelihood_consistent_with_likelihood() {
        for correct in [true, false] {
            let ln = cat_answer_ln_likelihood(0.6, 4, correct);
            let lin = cat_answer_likelihood(0.6, 4, correct);
            assert!((ln.exp() - lin).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_cardinality_is_guarded() {
        // |L| = 1 would divide by zero; the guard treats it as 2.
        let v = cat_answer_likelihood(0.9, 1, false);
        assert!(v.is_finite() && v > 0.0);
    }
}
