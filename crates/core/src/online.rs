//! Online truth inference: maintain estimates while answers stream in.
//!
//! A live platform (paper Fig. 1) interleaves answer collection with
//! inference. Re-running full EM on every answer is wasteful — §5.1 already
//! notes that one answer barely moves anything except the answered cell's
//! posterior — so [`OnlineTCrowd`] applies each incoming answer as an
//! incremental Bayesian update and re-fits the full model only every
//! `refit_every` answers (or on demand). Between refits the worker/difficulty
//! parameters are frozen; after a refit everything is exact again.
//!
//! ## Mutate vs. fit state
//!
//! The streaming state splits cleanly in two, and the split is load-bearing
//! for serving deployments:
//!
//! * the **mutate state** — the append-only [`AnswerLog`] — is all the
//!   collection path ever touches: `O(1)` push, `O(Δ)` tail slicing
//!   ([`AnswerLog::slice_since`]);
//! * the **fit state** — [`FitState`]: the evolving freeze plus the current
//!   [`InferenceResult`] — is what EM reads and writes, and it advances
//!   *only* by absorbing epoch-tagged [`LogSlice`]s.
//!
//! [`OnlineTCrowd`] composes the two behind the original single-threaded
//! API. A service that must not stall collection while EM runs holds them
//! behind separate locks instead: slice the tail under the ingest lock
//! (`O(Δ)`), [`FitState::absorb`] + [`FitState::refit`] outside it, then a
//! brief catch-up ([`FitState::catch_up`]) for the answers that arrived
//! mid-fit — see `tcrowd-service`.

use crate::assign::apply_answer_incrementally;
use crate::inference::{InferenceResult, TCrowd};
use std::sync::Arc;
use tcrowd_tabular::{Answer, AnswerLog, AnswerMatrix, LogSlice, Schema, Value, WorkerId};

/// The fit half of the online loop: the evolving freeze and the inference
/// result over it, advanced exclusively by epoch-tagged log slices.
///
/// A `FitState` never sees the answer log itself — whoever owns the log
/// hands it [`LogSlice`]s ([`AnswerLog::slice_since`]) and the state
/// delta-merges them into its freeze ([`AnswerMatrix::merge_delta`]). That
/// makes it safe to run EM over a `FitState` on one thread while another
/// keeps appending to the log: the fit works on a consistent prefix, and
/// [`FitState::catch_up`] folds in whatever arrived mid-fit with the §5.1
/// incremental posterior update.
///
/// The freeze lives behind an [`Arc`] so publishing it (handing an
/// immutable matrix to readers) is one refcount bump, not an `O(n)` clone.
#[derive(Debug, Clone)]
pub struct FitState {
    model: TCrowd,
    schema: Schema,
    matrix: Arc<AnswerMatrix>,
    result: InferenceResult,
    /// Quarantined workers, sorted ascending. The freeze always covers the
    /// full log; when this is non-empty, [`FitState::refit`] fits over
    /// [`AnswerMatrix::without_workers`] and [`FitState::catch_up`] skips
    /// these workers' incremental updates — the exclusion is a property of
    /// the *fit*, never of the data.
    exclude: Vec<WorkerId>,
}

impl FitState {
    /// An empty fit state for a `rows`-row table (runs the initial fit of
    /// the empty answer set).
    pub fn empty(model: TCrowd, schema: Schema, rows: usize) -> FitState {
        let matrix = AnswerMatrix::build(&AnswerLog::new(rows, schema.num_columns()));
        let result = model.infer_matrix(&schema, &matrix);
        FitState { model, schema, matrix: Arc::new(matrix), result, exclude: Vec::new() }
    }

    /// Adopt an already-computed fit of `matrix` (the crash-recovery
    /// constructor — see [`OnlineTCrowd::from_fit`] for the provenance
    /// contract).
    pub fn from_parts(
        model: TCrowd,
        schema: Schema,
        matrix: AnswerMatrix,
        result: InferenceResult,
    ) -> FitState {
        assert_eq!(
            (result.rows(), result.cols()),
            (matrix.rows(), matrix.cols()),
            "adopted fit has a different table shape than the freeze"
        );
        FitState { model, schema, matrix: Arc::new(matrix), result, exclude: Vec::new() }
    }

    /// Replace the quarantined-worker set (deduplicated and sorted
    /// internally). Returns whether the set actually changed; when it did,
    /// the current result still reflects the old set until the next
    /// [`Self::refit`]. Note an adopted result ([`Self::from_parts`]) is
    /// trusted to match whatever set the caller fit it under.
    pub fn set_exclusions(&mut self, mut excluded: Vec<WorkerId>) -> bool {
        excluded.sort_unstable();
        excluded.dedup();
        if excluded == self.exclude {
            return false;
        }
        self.exclude = excluded;
        true
    }

    /// The quarantined-worker set the next refit will exclude (sorted).
    #[inline]
    pub fn exclusions(&self) -> &[WorkerId] {
        &self.exclude
    }

    /// The epoch this fit state has absorbed up to (= its freeze's epoch).
    #[inline]
    pub fn epoch(&self) -> usize {
        self.matrix.epoch()
    }

    /// Merge an epoch-tagged log tail into the freeze (`O(Δ)` per-answer
    /// work plus bulk copies; no EM). Panics if the slice's base is not this
    /// state's epoch — it belongs to a different prefix.
    pub fn absorb(&mut self, slice: &LogSlice) {
        assert_eq!(slice.base(), self.epoch(), "fit state absorbed a slice from a different epoch");
        if slice.is_empty() {
            return;
        }
        self.matrix = Arc::new(self.matrix.merge_delta(slice.answers()));
    }

    /// Run full EM over the current freeze: cold by default (the result is a
    /// pure function of the absorbed prefix), warm-started from the current
    /// result when `warm` is set. With a non-empty exclusion set
    /// ([`Self::set_exclusions`]) EM runs over the filtered freeze instead —
    /// identical to fitting a log that never contained those workers'
    /// answers, while the published freeze keeps covering the full log.
    pub fn refit(&mut self, warm: bool) {
        let fit_over = |matrix: &AnswerMatrix, result: &InferenceResult| {
            if warm {
                self.model.infer_matrix_warm(&self.schema, matrix, result)
            } else {
                self.model.infer_matrix(&self.schema, matrix)
            }
        };
        self.result = if self.exclude.is_empty() {
            fit_over(&self.matrix, &self.result)
        } else {
            fit_over(&self.matrix.without_workers(&self.exclude), &self.result)
        };
    }

    /// Fold in the answers that arrived while a fit was running: absorb the
    /// slice into the freeze and apply the §5.1 incremental posterior
    /// update per answer (skipping excluded workers — their answers join the
    /// freeze but must not move the posteriors). `O(Δ')` — no EM. The next
    /// [`Self::refit`] makes the state exact again.
    pub fn catch_up(&mut self, slice: &LogSlice) {
        self.absorb(slice);
        for a in slice.answers() {
            if self.exclude.binary_search(&a.worker).is_err() {
                self.apply_incremental(a);
            }
        }
    }

    /// Apply one answer's incremental posterior update to the current
    /// result (the freeze is *not* advanced — pair with [`Self::absorb`]).
    pub fn apply_incremental(&mut self, answer: &Answer) {
        apply_answer_incrementally(&mut self.result, answer.worker, answer.cell, &answer.value);
    }

    /// The current freeze.
    #[inline]
    pub fn matrix(&self) -> &AnswerMatrix {
        &self.matrix
    }

    /// The current freeze behind its `Arc` (share with readers for free).
    #[inline]
    pub fn matrix_arc(&self) -> Arc<AnswerMatrix> {
        Arc::clone(&self.matrix)
    }

    /// The current inference result.
    #[inline]
    pub fn result(&self) -> &InferenceResult {
        &self.result
    }

    /// The model.
    #[inline]
    pub fn model(&self) -> &TCrowd {
        &self.model
    }

    /// The schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }
}

/// Streaming wrapper around [`TCrowd`]: the mutate state (answer log) and
/// the [`FitState`] composed behind one single-threaded API.
#[derive(Debug, Clone)]
pub struct OnlineTCrowd {
    answers: AnswerLog,
    fit: FitState,
    since_refit: usize,
    /// Full EM re-fit cadence, in answers (default 64).
    pub refit_every: usize,
    /// Warm-start automatic re-fits from the previous fit's parameters
    /// (default off: cold re-fits reproduce the batch path bit-for-bit,
    /// which the differential tests rely on; turn this on in latency-bound
    /// deployments — see [`TCrowd::infer_matrix_warm`]).
    pub warm_refits: bool,
}

impl OnlineTCrowd {
    /// Start from an existing answer set (runs one full fit).
    pub fn new(model: TCrowd, schema: Schema, answers: AnswerLog) -> Self {
        let matrix = AnswerMatrix::build(&answers);
        let result = model.infer_matrix(&schema, &matrix);
        let fit = FitState::from_parts(model, schema, matrix, result);
        OnlineTCrowd { answers, fit, since_refit: 0, refit_every: 64, warm_refits: false }
    }

    /// Start with an empty answer log for a `rows`-row table.
    pub fn empty(model: TCrowd, schema: Schema, rows: usize) -> Self {
        let answers = AnswerLog::new(rows, schema.num_columns());
        Self::new(model, schema, answers)
    }

    /// Adopt an already-computed fit of `answers` instead of running EM —
    /// the crash-recovery constructor: the store layer replays the WAL into
    /// `answers`, produces `result` (seeded from the snapshot's
    /// [`crate::FitParams`] when one survived, cold otherwise) and resumes
    /// streaming from there.
    ///
    /// The caller supplies the freeze it already built to produce `result`
    /// (recovery runs the seeded fit on a freeze first — rebuilding it here
    /// would double the `O(n)` freeze cost on the boot path) and asserts
    /// that both are derived *from this log*; shape and staleness are
    /// checked, the provenance cannot be.
    pub fn from_fit(
        model: TCrowd,
        schema: Schema,
        answers: AnswerLog,
        matrix: AnswerMatrix,
        result: InferenceResult,
    ) -> Self {
        assert_eq!(
            (result.rows(), result.cols()),
            (answers.rows(), answers.cols()),
            "adopted fit has a different table shape than the answer log"
        );
        assert!(
            !matrix.is_stale(&answers) && matrix.rows() == answers.rows(),
            "adopted freeze does not cover the answer log"
        );
        let fit = FitState::from_parts(model, schema, matrix, result);
        OnlineTCrowd { answers, fit, since_refit: 0, refit_every: 64, warm_refits: false }
    }

    /// Ingest one answer: `O(1)` incremental posterior update, with a full
    /// EM re-fit every [`Self::refit_every`] answers. Returns `true` if this
    /// answer triggered a re-fit.
    pub fn add_answer(&mut self, answer: Answer) -> bool {
        assert!(
            self.fit.schema().column_type(answer.cell.col as usize).accepts(&answer.value),
            "answer value does not match its column type"
        );
        self.answers.push(answer);
        self.since_refit += 1;
        if self.since_refit >= self.refit_every {
            self.refit();
            true
        } else {
            self.fit.apply_incremental(&answer);
            false
        }
    }

    /// Force a full EM re-fit now: the freeze is delta-merged up to date
    /// (identical to a rebuild, at a fraction of the cost) and EM runs —
    /// warm-started from the current result when [`Self::warm_refits`] is
    /// set, cold otherwise.
    pub fn refit(&mut self) {
        if self.fit.epoch() != self.answers.len() {
            self.fit.absorb(&self.answers.slice_since(self.fit.epoch()));
        }
        self.fit.refit(self.warm_refits);
        self.since_refit = 0;
    }

    /// Re-fit only if answers arrived since the last full fit. External
    /// drivers (a service refresher thread, a batch scheduler) call this on
    /// their own cadence instead of relying on [`Self::refit_every`]; a
    /// clean state is a no-op, so over-calling is free. Returns whether a
    /// re-fit actually ran.
    pub fn flush_refit(&mut self) -> bool {
        if self.since_refit == 0 && self.fit.epoch() == self.answers.len() {
            return false;
        }
        self.refit();
        true
    }

    /// The current freeze of the answer log (kept current at refit points;
    /// may trail the log by up to [`Self::staleness`] answers in between).
    pub fn matrix(&self) -> &AnswerMatrix {
        self.fit.matrix()
    }

    /// A staleness-checkable handle on the current freeze — what an
    /// [`crate::AssignmentContext`] wants. The view trails the log by
    /// [`Self::pending`] answers between re-fits; call [`Self::flush_refit`]
    /// first when assignment must see every ingested answer.
    pub fn freeze_view(&self) -> tcrowd_tabular::FrozenView<'_> {
        self.fit.matrix().freeze_view()
    }

    /// The current inference state (possibly incrementally updated since the
    /// last full fit).
    pub fn result(&self) -> &InferenceResult {
        self.fit.result()
    }

    /// The accumulated answer log.
    pub fn answers(&self) -> &AnswerLog {
        &self.answers
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        self.fit.schema()
    }

    /// Current point estimates.
    pub fn estimates(&self) -> Vec<Vec<Value>> {
        self.fit.result().estimates()
    }

    /// Answers ingested since the last full fit.
    pub fn staleness(&self) -> usize {
        self.since_refit
    }

    /// Answers waiting for the next full fit — [`Self::staleness`] under the
    /// name external refresh drivers read it by ("how much is batched up?").
    pub fn pending(&self) -> usize {
        self.since_refit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrowd_tabular::{evaluate, generate_dataset, GeneratorConfig};

    fn dataset(seed: u64) -> tcrowd_tabular::Dataset {
        generate_dataset(
            &GeneratorConfig {
                rows: 25,
                columns: 4,
                num_workers: 15,
                answers_per_task: 4,
                ..Default::default()
            },
            seed,
        )
    }

    /// The categorical error rate of a report. Every dataset in this module
    /// mixes datatypes, so a missing rate means the generator layout changed
    /// out from under the test — say so instead of panicking on a bare
    /// `Option::unwrap` that leaves CI logs undiagnosable.
    fn error_rate(report: &tcrowd_tabular::QualityReport) -> f64 {
        report.error_rate.expect(
            "report has no categorical error rate — the test dataset should contain categorical \
             columns (did the generator's column layout change?)",
        )
    }

    #[test]
    fn streaming_matches_batch_after_refit() {
        let d = dataset(1);
        let mut online = OnlineTCrowd::empty(TCrowd::default_full(), d.schema.clone(), d.rows());
        for &a in d.answers.all() {
            online.add_answer(a);
        }
        online.refit();
        let batch = TCrowd::default_full().infer(&d.schema, &d.answers);
        assert_eq!(online.estimates(), batch.estimates());
        assert_eq!(online.result().iterations, batch.iterations);
    }

    #[test]
    fn refit_cadence_is_respected() {
        let d = dataset(2);
        let mut online = OnlineTCrowd::empty(TCrowd::default_full(), d.schema.clone(), d.rows());
        online.refit_every = 10;
        let mut refits = 0;
        for (i, &a) in d.answers.all().iter().enumerate() {
            if online.add_answer(a) {
                refits += 1;
                assert_eq!(online.staleness(), 0);
            }
            assert!(online.staleness() <= 10, "staleness at answer {i}");
        }
        assert_eq!(refits, d.answers.len() / 10);
    }

    #[test]
    fn incremental_estimates_stay_close_to_batch() {
        // Between refits the estimates are approximate; they must still be
        // useful (here: within a small error-rate gap of the batch fit).
        let d = dataset(3);
        let mut online = OnlineTCrowd::empty(TCrowd::default_full(), d.schema.clone(), d.rows());
        online.refit_every = usize::MAX; // never refit: pure incremental
        for &a in d.answers.all() {
            online.add_answer(a);
        }
        let online_rep = evaluate(&d.schema, &d.truth, &online.estimates());
        let batch = TCrowd::default_full().infer(&d.schema, &d.answers);
        let batch_rep = evaluate(&d.schema, &d.truth, &batch.estimates());
        assert!(
            error_rate(&online_rep) <= error_rate(&batch_rep) + 0.15,
            "incremental {} vs batch {}",
            error_rate(&online_rep),
            error_rate(&batch_rep)
        );
    }

    #[test]
    fn warm_refits_stay_close_to_cold_refits() {
        let d = dataset(5);
        let mut warm = OnlineTCrowd::empty(TCrowd::default_full(), d.schema.clone(), d.rows());
        warm.warm_refits = true;
        warm.refit_every = 25;
        let mut cold = OnlineTCrowd::empty(TCrowd::default_full(), d.schema.clone(), d.rows());
        cold.refit_every = 25;
        for &a in d.answers.all() {
            warm.add_answer(a);
            cold.add_answer(a);
        }
        warm.refit();
        cold.refit();
        // Both chains see identical data; the warm chain's estimates must be
        // statistically indistinguishable (same error rate ballpark).
        let rw = evaluate(&d.schema, &d.truth, &warm.estimates());
        let rc = evaluate(&d.schema, &d.truth, &cold.estimates());
        assert!(
            (error_rate(&rw) - error_rate(&rc)).abs() <= 0.05,
            "warm {} vs cold {}",
            error_rate(&rw),
            error_rate(&rc)
        );
        // The freeze tracks the log at refit points.
        assert!(!warm.matrix().is_stale(warm.answers()));
    }

    #[test]
    fn flush_refit_is_explicit_and_idempotent() {
        let d = dataset(6);
        let mut online = OnlineTCrowd::empty(TCrowd::default_full(), d.schema.clone(), d.rows());
        online.refit_every = usize::MAX; // external driver controls refits
        for &a in d.answers.all() {
            online.add_answer(a);
        }
        assert_eq!(online.pending(), d.answers.len());
        assert!(online.freeze_view().is_stale(online.answers()), "freeze trails the log");
        assert!(online.flush_refit(), "pending answers must trigger a refit");
        assert_eq!(online.pending(), 0);
        assert!(!online.freeze_view().is_stale(online.answers()));
        assert_eq!(online.freeze_view().epoch(), d.answers.len());
        // Nothing new: flushing again is a no-op.
        assert!(!online.flush_refit());
        // And the flushed state equals the batch fit (cold refits).
        let batch = TCrowd::default_full().infer(&d.schema, &d.answers);
        assert_eq!(online.estimates(), batch.estimates());
    }

    #[test]
    #[should_panic(expected = "column type")]
    fn rejects_mistyped_answers() {
        let d = dataset(4);
        let mut online = OnlineTCrowd::empty(TCrowd::default_full(), d.schema.clone(), d.rows());
        // Column 0 is categorical in this layout.
        online.add_answer(Answer {
            worker: tcrowd_tabular::WorkerId(0),
            cell: tcrowd_tabular::CellId::new(0, 0),
            value: Value::Continuous(1.0),
        });
    }

    #[test]
    fn fit_state_absorb_refit_equals_batch() {
        // The lock-split protocol a service runs, exercised serially: slice
        // the log tail, absorb + refit out of band, catch up, repeat. At a
        // quiescent refit the state must equal the batch fit exactly.
        let d = dataset(7);
        let mut log = AnswerLog::new(d.rows(), d.cols());
        let mut fit = FitState::empty(TCrowd::default_full(), d.schema.clone(), d.rows());
        let stream = d.answers.all();
        let mut fed = 0usize;
        while fed < stream.len() {
            // "Collection" appends a burst…
            let burst = (stream.len() - fed).min(17);
            for &a in &stream[fed..fed + burst] {
                log.push(a);
            }
            fed += burst;
            // …the fitter takes the tail slice and fits outside the lock…
            let slice = log.slice_since(fit.epoch());
            fit.absorb(&slice);
            fit.refit(false);
            // …and a mid-fit arrival is caught up without EM.
            if fed < stream.len() {
                log.push(stream[fed]);
                fed += 1;
                fit.catch_up(&log.slice_since(fit.epoch()));
            }
        }
        // Final quiescent refit: everything absorbed, no catch-up pending.
        assert_eq!(fit.epoch(), log.len());
        fit.refit(false);
        let batch = TCrowd::default_full().infer(&d.schema, &d.answers);
        assert_eq!(fit.result().estimates(), batch.estimates());
        assert_eq!(fit.result().iterations, batch.iterations);
        assert_eq!(fit.matrix(), &AnswerMatrix::build(&log));
    }

    #[test]
    fn fit_state_exclusions_match_a_log_without_those_workers() {
        let d = dataset(9);
        let mut log = AnswerLog::new(d.rows(), d.cols());
        for &a in d.answers.all() {
            log.push(a);
        }
        let excluded: Vec<tcrowd_tabular::WorkerId> = log.workers().take(3).collect();
        let mut fit = FitState::empty(TCrowd::default_full(), d.schema.clone(), d.rows());
        fit.absorb(&log.slice_since(0));
        assert!(fit.set_exclusions(excluded.clone()));
        assert!(!fit.set_exclusions(excluded.clone()), "same set again is a no-op");
        fit.refit(false);
        // The freeze still covers the full log; only the fit is filtered.
        assert_eq!(fit.matrix().len(), log.len());
        let batch = TCrowd::default_full().infer(&d.schema, &log.without_workers(&excluded));
        assert_eq!(fit.result().estimates(), batch.estimates());
        assert_eq!(fit.result().iterations, batch.iterations);
        // Excluded workers carry no fitted quality; the rest match the batch.
        for w in &excluded {
            assert_eq!(fit.result().quality_of(*w), None);
        }
        // Dropping the exclusion restores the unfiltered fit bit-for-bit.
        assert!(fit.set_exclusions(Vec::new()));
        fit.refit(false);
        let full = TCrowd::default_full().infer(&d.schema, &log);
        assert_eq!(fit.result().estimates(), full.estimates());
        assert_eq!(fit.result().iterations, full.iterations);
    }

    #[test]
    fn catch_up_skips_excluded_workers() {
        let d = dataset(10);
        let stream = d.answers.all();
        let split = stream.len() / 2;
        let mut log = AnswerLog::new(d.rows(), d.cols());
        for &a in &stream[..split] {
            log.push(a);
        }
        let excluded = vec![stream[split].worker];
        let mut fit = FitState::empty(TCrowd::default_full(), d.schema.clone(), d.rows());
        fit.absorb(&log.slice_since(0));
        fit.set_exclusions(excluded.clone());
        fit.refit(false);
        let before = fit.result().clone();
        // Catch up with a tail that starts with the excluded worker's answer:
        // the freeze advances, the posteriors ignore it.
        log.push(stream[split]);
        fit.catch_up(&log.slice_since(fit.epoch()));
        assert_eq!(fit.epoch(), log.len());
        assert_eq!(fit.result().estimates(), before.estimates());
    }

    #[test]
    #[should_panic(expected = "different epoch")]
    fn fit_state_rejects_misaligned_slices() {
        let d = dataset(8);
        let mut fit = FitState::empty(TCrowd::default_full(), d.schema.clone(), d.rows());
        fit.absorb(&d.answers.slice_since(3)); // state is at epoch 0
    }
}
