//! A persistent fork-join worker pool for the EM hot loops.
//!
//! The M-step evaluates its objective dozens of times per EM iteration and
//! the E-step runs once per iteration; spawning OS threads per call (the
//! pre-PR-6 `std::thread::scope` E-step) costs more than the work it splits
//! on all but the largest tables. This pool spawns its helpers **once per EM
//! run** and then hands them jobs with a mutex/condvar epoch handshake — a
//! job dispatch is two uncontended lock round-trips, not `threads` spawns.
//!
//! A job is a chunk-indexed closure: [`WorkerPool::run`]`(chunks, f)` calls
//! `f(i)` exactly once for every `i in 0..chunks`, splitting the indices
//! across the helpers *and the calling thread* via an atomic cursor
//! (work-stealing at chunk granularity — which thread runs a chunk is
//! scheduling-dependent, so determinism must come from the chunks
//! themselves writing disjoint outputs, which is how both EM phases use it).
//!
//! ## Safety
//!
//! This module is the `tcrowd-core` island of `unsafe` (see the crate-level
//! `deny(unsafe_code)` note): the borrowed job closure is published to the
//! helpers as a lifetime-erased raw pointer. Soundness rests on a strict
//! barrier discipline:
//!
//! * `run` does not return until every chunk has finished **and** every
//!   helper has left the steal loop (`active == 0`), so no helper can hold
//!   or dereference the pointer after `run` returns — the closure outlives
//!   every use.
//! * A helper only dereferences the pointer after claiming a valid chunk
//!   index from the cursor of the epoch it observed under the lock; once a
//!   cursor is exhausted the pointer is never touched again, and the next
//!   epoch's cursor is only reset after the previous `run` returned (which
//!   required `active == 0` — no straggler can claim a fresh index against
//!   a stale pointer).
//! * Panics inside a chunk are caught (a panicking helper would otherwise
//!   die silently and deadlock the barrier), recorded, and re-raised on the
//!   calling thread after the barrier.

#![allow(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Lifetime-erased borrowed job closure (`&dyn Fn(usize) + Sync` in truth;
/// see the module docs for why the erasure is sound).
type Job = *const (dyn Fn(usize) + Sync);

/// The raw pointer is handed between threads only inside the barrier
/// discipline above; the underlying closure is `Sync`.
#[derive(Clone, Copy)]
struct SendJob(Job);
unsafe impl Send for SendJob {}

struct PoolState {
    /// Bumped once per published job; helpers use it to tell "new work"
    /// from a spurious wakeup.
    epoch: u64,
    job: Option<SendJob>,
    chunks: usize,
    /// Helpers currently inside the steal loop of the published job.
    active: usize,
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Helpers wait here for a new epoch.
    work_cv: Condvar,
    /// `run` waits here for the completion barrier.
    done_cv: Condvar,
    /// Next unclaimed chunk of the current job.
    cursor: AtomicUsize,
    /// Chunks finished in the current job.
    completed: AtomicUsize,
}

/// Persistent fork-join pool; see the module docs.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    helpers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// A pool that splits jobs `threads` ways: `threads - 1` helper threads
    /// plus the thread that calls [`Self::run`].
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                chunks: 0,
                active: 0,
                panicked: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cursor: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
        });
        let helpers = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || helper_loop(&shared))
            })
            .collect();
        WorkerPool { shared, helpers, threads }
    }

    /// Number of threads a job is split across (helpers + caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f(i)` for every `i in 0..chunks`, splitting across the pool.
    /// Blocks until every chunk has completed; re-raises on the calling
    /// thread if any chunk panicked.
    pub fn run(&self, chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        // SAFETY (lifetime erasure): `*const dyn Trait` carries an implicit
        // `'static` bound, so the borrowed closure is transmuted into it; the
        // barrier discipline in the module docs keeps every dereference
        // within `f`'s real lifetime.
        let job: Job = unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), Job>(f as *const _)
        };
        self.shared.cursor.store(0, Ordering::Relaxed);
        self.shared.completed.store(0, Ordering::Relaxed);
        {
            let mut st = self.shared.state.lock().expect("pool mutex");
            st.job = Some(SendJob(job));
            st.chunks = chunks;
            st.epoch += 1;
            st.panicked = false;
            self.shared.work_cv.notify_all();
        }
        // The caller is worker zero.
        steal_chunks(&self.shared, job, chunks);
        // Completion barrier: all chunks done and no helper still inside
        // the steal loop (it may hold the job pointer until it leaves).
        let mut st = self.shared.state.lock().expect("pool mutex");
        while self.shared.completed.load(Ordering::Acquire) < chunks || st.active > 0 {
            st = self.shared.done_cv.wait(st).expect("pool condvar");
        }
        st.job = None;
        let panicked = st.panicked;
        drop(st);
        if panicked {
            panic!("worker pool job panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool mutex");
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.helpers.drain(..) {
            let _ = h.join();
        }
    }
}

fn helper_loop(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        let (job, chunks) = {
            let mut st = shared.state.lock().expect("pool mutex");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    if let Some(j) = st.job {
                        // Register as active *under the lock* that showed us
                        // the job — `run` cannot pass its barrier (and free
                        // the closure) until we deregister.
                        st.active += 1;
                        break (j.0, st.chunks);
                    }
                    // Epoch moved but the job is already cleared: that run
                    // completed without us; wait for the next one.
                }
                st = shared.work_cv.wait(st).expect("pool condvar");
            }
        };
        steal_chunks(shared, job, chunks);
        let mut st = shared.state.lock().expect("pool mutex");
        st.active -= 1;
        drop(st);
        shared.done_cv.notify_all();
    }
}

/// Claim and execute chunks off the shared cursor until it is exhausted.
fn steal_chunks(shared: &Shared, job: Job, chunks: usize) {
    loop {
        let i = shared.cursor.fetch_add(1, Ordering::Relaxed);
        if i >= chunks {
            return;
        }
        // SAFETY: `i < chunks` means the current job is still live — `run`
        // cannot have returned (its barrier needs `completed == chunks`),
        // so the closure behind `job` is still in scope on `run`'s caller.
        let f = unsafe { &*job };
        if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
            shared.state.lock().expect("pool mutex").panicked = true;
        }
        if shared.completed.fetch_add(1, Ordering::AcqRel) + 1 == chunks {
            // Wake the barrier under the lock so the wakeup cannot be lost.
            let _guard = shared.state.lock().expect("pool mutex");
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_chunk_exactly_once() {
        let pool = WorkerPool::new(4);
        for chunks in [0usize, 1, 3, 7, 64, 1000] {
            let hits: Vec<AtomicU64> = (0..chunks).map(|_| AtomicU64::new(0)).collect();
            pool.run(chunks, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {i} of {chunks}");
            }
        }
    }

    #[test]
    fn reusable_across_many_jobs() {
        let pool = WorkerPool::new(3);
        let total = AtomicU64::new(0);
        for _ in 0..100 {
            pool.run(16, &|i| {
                total.fetch_add(i as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 100 * (0..16).sum::<usize>() as u64);
    }

    #[test]
    fn single_threaded_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let sum = AtomicU64::new(0);
        pool.run(10, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn chunk_panic_propagates_after_the_barrier() {
        let pool = WorkerPool::new(2);
        let done = AtomicU64::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        // Every non-panicking chunk still completed (the barrier held).
        assert_eq!(done.load(Ordering::Relaxed), 7);
        // And the pool is still usable afterwards.
        let ok = AtomicU64::new(0);
        pool.run(4, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }
}
