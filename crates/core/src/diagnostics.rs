//! Model diagnostics: goodness-of-fit and calibration summaries.
//!
//! A production deployment needs to know *whether the model's assumptions
//! hold on this crowd* before trusting its estimates — the paper validates
//! them manually in §6.4; this module turns those case studies into
//! reusable checks:
//!
//! * [`quality_consistency`] — Fig. 3 as a statistic: how correlated is a
//!   worker's error level across attributes (near 0 ⇒ the unified-quality
//!   assumption is doing little; clearly positive ⇒ it transfers evidence).
//! * [`calibration`] — Fig. 4 as a statistic: regression of observed answer
//!   agreement against the model's predicted quality.
//! * [`residual_report`] — per-column standardised residuals of continuous
//!   answers; heavy tails point at answer distributions the Gaussian model
//!   under-fits.

use crate::inference::InferenceResult;
use crate::truth::TruthDist;
use tcrowd_stat::describe::{mean, pearson, std_dev};
use tcrowd_stat::linreg::{self, LinearFit};
use tcrowd_tabular::{AnswerLog, Schema, Value, WorkerId};

/// Minimum answers a worker needs before they enter a diagnostic.
const MIN_ANSWERS: usize = 8;

/// Largest z-space discrepancy between two fits of the same table:
/// posterior-mean gap for continuous cells, probability gap for categorical
/// cells. This is the metric behind the warm-vs-cold 1e-6 agreement
/// contract (`bench_refresh` and the sim regression suite both gate on it);
/// z-score units make it a fraction of a column spread in the original
/// scale, commensurate across datatypes. Panics if the fits disagree on
/// shape or cell datatypes (they cannot be fits of the same table).
pub fn max_z_discrepancy(a: &InferenceResult, b: &InferenceResult) -> f64 {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "fits of different table shapes");
    let mut max_z = 0.0f64;
    for i in 0..a.rows() as u32 {
        for j in 0..a.cols() as u32 {
            let cell = tcrowd_tabular::CellId::new(i, j);
            match (a.truth_z(cell), b.truth_z(cell)) {
                (TruthDist::Categorical(p), TruthDist::Categorical(q)) => {
                    for (x, y) in p.iter().zip(q) {
                        max_z = max_z.max((x - y).abs());
                    }
                }
                (TruthDist::Continuous(x), TruthDist::Continuous(y)) => {
                    max_z = max_z.max((x.mean - y.mean).abs());
                }
                _ => panic!("datatype mismatch between fits"),
            }
        }
    }
    max_z
}

/// Cross-attribute consistency of worker quality (Fig. 3 as a number).
///
/// For each worker with enough answers, computes the mean 0/1 error against
/// the *estimated* truths separately on two halves of the columns (even and
/// odd indices — an arbitrary split that any systematic per-worker quality
/// survives), then returns the Pearson correlation of the two halves across
/// workers. `None` when fewer than three workers qualify.
pub fn quality_consistency(
    schema: &Schema,
    answers: &AnswerLog,
    result: &InferenceResult,
) -> Option<f64> {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for w in answers.workers().collect::<Vec<_>>() {
        let mut half = [(0.0f64, 0.0f64), (0.0f64, 0.0f64)]; // (errors, count)
        for a in answers.for_worker(w) {
            let err = answer_error(result, a);
            let bucket = (a.cell.col % 2) as usize;
            half[bucket].0 += err;
            half[bucket].1 += 1.0;
        }
        if half[0].1 >= (MIN_ANSWERS / 2) as f64 && half[1].1 >= (MIN_ANSWERS / 2) as f64 {
            xs.push(half[0].0 / half[0].1);
            ys.push(half[1].0 / half[1].1);
        }
    }
    let _ = schema;
    (xs.len() >= 3).then(|| pearson(&xs, &ys))
}

/// Normalised error of one answer against the current estimates: 0/1
/// mismatch for categorical answers, squared z-residual for continuous.
fn answer_error(result: &InferenceResult, a: &tcrowd_tabular::Answer) -> f64 {
    match a.value {
        Value::Categorical(l) => {
            (result.truth_z(a.cell).estimate().expect_categorical() != l) as i32 as f64
        }
        Value::Continuous(x) => {
            let (m, s) = result.scaler(a.cell.col as usize).expect("scaler");
            let z = (x - m) / s;
            let mu = match result.truth_z(a.cell) {
                TruthDist::Continuous(n) => n.mean,
                TruthDist::Categorical(_) => unreachable!(),
            };
            (z - mu) * (z - mu)
        }
    }
}

/// Calibration of the fitted worker qualities (Fig. 4 as a fit).
///
/// Regresses each worker's *observed* categorical agreement rate (vs the
/// estimated truths) on the model's predicted quality `q_u`. A well-calibrated
/// model gives slope ≈ 1 and high `r`. `None` without enough workers or
/// categorical data.
pub fn calibration(
    schema: &Schema,
    answers: &AnswerLog,
    result: &InferenceResult,
) -> Option<LinearFit> {
    let cats = schema.categorical_columns();
    if cats.is_empty() {
        return None;
    }
    let mut predicted = Vec::new();
    let mut observed = Vec::new();
    for w in answers.workers().collect::<Vec<_>>() {
        let cat_answers: Vec<_> =
            answers.for_worker(w).filter(|a| cats.contains(&(a.cell.col as usize))).collect();
        if cat_answers.len() < MIN_ANSWERS {
            continue;
        }
        let agree = cat_answers
            .iter()
            .filter(|a| {
                result.truth_z(a.cell).estimate().expect_categorical()
                    == a.value.expect_categorical()
            })
            .count() as f64
            / cat_answers.len() as f64;
        let q = result.quality_of(w)?;
        predicted.push(q);
        observed.push(agree);
    }
    (predicted.len() >= 3).then(|| linreg::fit(&predicted, &observed))
}

/// Standardised-residual summary of one continuous column.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualSummary {
    /// Column index.
    pub column: usize,
    /// Mean standardised residual (≈ 0 when unbiased).
    pub mean: f64,
    /// Std of standardised residuals (≈ 1 when the variance model fits).
    pub std: f64,
    /// Fraction of |residual| > 3 (≈ 0.003 under Gaussian errors; a large
    /// value flags heavy tails the model under-fits).
    pub outlier_fraction: f64,
}

/// Per-column residual report for the continuous columns.
///
/// Residuals are `(a − T^µ) / √(α_i β_j φ_u)` in z-space — standardised by
/// the model's *own* predicted answer noise, so departures from `N(0,1)`
/// localise which assumption is strained.
pub fn residual_report(
    schema: &Schema,
    answers: &AnswerLog,
    result: &InferenceResult,
) -> Vec<ResidualSummary> {
    let mut out = Vec::new();
    for j in schema.continuous_columns() {
        let mut residuals = Vec::new();
        for a in answers.all().iter().filter(|a| a.cell.col as usize == j) {
            let (m, s) = result.scaler(j).expect("scaler");
            let z = (a.value.expect_continuous() - m) / s;
            let mu = match result.truth_z(a.cell) {
                TruthDist::Continuous(n) => n.mean,
                TruthDist::Categorical(_) => unreachable!(),
            };
            let v = result.effective_variance(a.worker, a.cell);
            residuals.push((z - mu) / v.sqrt());
        }
        if residuals.is_empty() {
            continue;
        }
        let outliers =
            residuals.iter().filter(|r| r.abs() > 3.0).count() as f64 / residuals.len() as f64;
        out.push(ResidualSummary {
            column: j,
            mean: mean(&residuals),
            std: std_dev(&residuals),
            outlier_fraction: outliers,
        });
    }
    out
}

/// Convenience: which worker looks most suspicious (highest fitted `φ`)?
pub fn worst_workers(result: &InferenceResult, k: usize) -> Vec<(WorkerId, f64)> {
    let mut pairs: Vec<(WorkerId, f64)> =
        result.workers.iter().copied().zip(result.phi.iter().copied()).collect();
    pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("NaN phi").then(a.0.cmp(&b.0)));
    pairs.truncate(k);
    pairs
}

/// One row of the entity-familiarity report: a (worker, group) pair whose
/// fitted variance multiplier deviates most from 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FamiliarityFinding {
    /// The worker.
    pub worker: WorkerId,
    /// The entity group (index into the grouping used at fit time).
    pub group: usize,
    /// Fitted variance multiplier `λ_{u,g}` (> 1 = unfamiliar, < 1 = expert).
    pub lambda: f64,
}

/// The strongest entity-familiarity effects in a fitted [`EntityModel`]
/// (§7 extension): the `k` (worker, group) pairs with the largest
/// `|ln λ|`, most-deviant first. Requesters use this to see *which* workers
/// are blind to *which* slice of the table — e.g. to route those rows away
/// from them manually.
///
/// [`EntityModel`]: crate::entity::EntityModel
pub fn familiarity_findings(
    model: &crate::entity::EntityModel,
    k: usize,
) -> Vec<FamiliarityFinding> {
    let mut findings: Vec<FamiliarityFinding> = model
        .multipliers()
        .map(|((worker, group), lambda)| FamiliarityFinding { worker, group, lambda })
        .collect();
    findings.sort_by(|a, b| {
        b.lambda
            .ln()
            .abs()
            .partial_cmp(&a.lambda.ln().abs())
            .expect("NaN lambda")
            .then(a.worker.cmp(&b.worker))
            .then(a.group.cmp(&b.group))
    });
    findings.truncate(k);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::TCrowd;
    use tcrowd_tabular::{generate_dataset, GeneratorConfig, WorkerQualityConfig};

    fn world(seed: u64) -> (tcrowd_tabular::Dataset, InferenceResult) {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 60,
                columns: 6,
                num_workers: 20,
                answers_per_task: 5,
                quality: WorkerQualityConfig {
                    median_phi: 0.2,
                    sigma_ln_phi: 1.0,
                    spammer_fraction: 0.15,
                    spammer_factor: 30.0,
                },
                ..Default::default()
            },
            seed,
        );
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        (d, r)
    }

    #[test]
    fn consistency_is_positive_on_model_generated_data() {
        let (d, r) = world(1);
        let c = quality_consistency(&d.schema, &d.answers, &r).expect("enough workers");
        assert!(c > 0.3, "consistency = {c}");
    }

    #[test]
    fn calibration_slope_and_r_are_sane() {
        let (d, r) = world(2);
        let fit = calibration(&d.schema, &d.answers, &r).expect("enough workers");
        assert!(fit.r > 0.6, "r = {}", fit.r);
        assert!(fit.slope > 0.3, "slope = {}", fit.slope);
    }

    #[test]
    fn residuals_look_standard_normal_under_the_model() {
        let (d, r) = world(3);
        let report = residual_report(&d.schema, &d.answers, &r);
        assert_eq!(report.len(), d.schema.continuous_columns().len());
        for s in &report {
            assert!(s.mean.abs() < 0.2, "column {} biased: {}", s.column, s.mean);
            assert!(
                (0.5..1.6).contains(&s.std),
                "column {} residual std {} far from 1",
                s.column,
                s.std
            );
            assert!(s.outlier_fraction < 0.05, "column {} heavy tails", s.column);
        }
    }

    #[test]
    fn worst_workers_are_actual_spammers() {
        let (d, r) = world(4);
        let worst = worst_workers(&r, 3);
        assert_eq!(worst.len(), 3);
        // The top-φ workers should be drawn from the upper half of the true
        // φ distribution.
        let mut true_phis: Vec<f64> = d.worker_truth.values().map(|p| p.phi).collect();
        true_phis.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = true_phis[true_phis.len() / 2];
        for (w, _) in &worst {
            assert!(
                d.worker_truth[w].phi >= median,
                "flagged worker {w} is actually better than median"
            );
        }
        // Ordered descending.
        assert!(worst[0].1 >= worst[1].1 && worst[1].1 >= worst[2].1);
    }

    #[test]
    fn calibration_none_without_categorical_columns() {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 10,
                columns: 2,
                categorical_ratio: 0.0,
                num_workers: 6,
                answers_per_task: 3,
                ..Default::default()
            },
            5,
        );
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        assert!(calibration(&d.schema, &d.answers, &r).is_none());
        // But residuals exist for every continuous column.
        assert_eq!(residual_report(&d.schema, &d.answers, &r).len(), 2);
    }

    #[test]
    fn familiarity_findings_rank_by_deviation() {
        use crate::entity::{EntityModel, EntityModelOptions, RowGrouping};
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 40,
                columns: 5,
                num_workers: 15,
                answers_per_task: 4,
                entity_groups: Some(tcrowd_tabular::generator::EntityGroups {
                    groups: 2,
                    p_unfamiliar: 0.4,
                    difficulty_factor: 40.0,
                }),
                ..Default::default()
            },
            21,
        );
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        let groups: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let m = EntityModel::fit(
            &d.schema,
            &d.answers,
            &r,
            &RowGrouping::Known(groups),
            &EntityModelOptions::default(),
        );
        let findings = familiarity_findings(&m, 5);
        assert!(findings.len() <= 5);
        assert!(!findings.is_empty(), "a strong group effect must surface findings");
        for w in findings.windows(2) {
            assert!(
                w[0].lambda.ln().abs() >= w[1].lambda.ln().abs(),
                "findings must be sorted by |ln λ| descending"
            );
        }
        // Asking for more than exist returns all, no panic.
        let all = familiarity_findings(&m, usize::MAX);
        assert_eq!(all.len(), m.fitted_pairs());
    }
}
