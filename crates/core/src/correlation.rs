//! The attribute-correlation model (paper §5.2, Tables 4–5, Eq. 7–8).
//!
//! For every answer we define an *error variable*: a categorical answer's
//! error is the 0/1 mismatch against the estimated truth; a continuous
//! answer's error is the signed z-space residual `a − T^µ`. Errors of the
//! same worker on the same row, across two columns `j ≠ k`, form the paired
//! samples from which marginal distributions (Table 4), conditional
//! distributions (Table 5, four datatype cases) and the correlation
//! coefficients `W_jk` (Eq. 8) are estimated by maximum likelihood.
//!
//! Given the errors an incoming worker already made on a row, Eq. 7 predicts
//! the error distribution on a yet-unanswered cell of that row as the
//! `W`-weighted combination of the per-column conditionals; the
//! structure-aware policy converts the prediction into an adjusted quality /
//! observation variance and re-uses the inherent-gain machinery.

#![allow(clippy::needless_range_loop)] // index loops here walk several parallel arrays
use crate::inference::InferenceResult;
use crate::truth::TruthDist;
use tcrowd_stat::bernoulli::Bernoulli;
use tcrowd_stat::bivariate::BivariateNormal;
use tcrowd_stat::describe::pearson;
use tcrowd_stat::normal::Normal;
use tcrowd_stat::{clamp_prob, EPS};
use tcrowd_tabular::{AnswerLog, AnswerMatrix, Schema, Value};

/// One observed error of a worker on an already-answered cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorObservation {
    /// Categorical column: `true` means the answer mismatched the estimate.
    Categorical(bool),
    /// Continuous column: the signed z-space residual.
    Continuous(f64),
}

/// A predicted error distribution on a target column.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictedError {
    /// Categorical target: probability the worker answers *wrongly*.
    Categorical(f64),
    /// Continuous target: a weighted mixture of Gaussian error components
    /// (one per conditioning column), weights normalised to 1.
    ContinuousMixture(Vec<(f64, Normal)>),
}

impl PredictedError {
    /// Mean and variance of the mixture (continuous targets).
    ///
    /// The *second moment about zero* — variance plus squared bias — is what
    /// the gain computation uses as the effective observation variance, so a
    /// predictably-biased worker is treated as noisier.
    pub fn mixture_moments(&self) -> Option<(f64, f64)> {
        match self {
            PredictedError::ContinuousMixture(parts) => {
                let total: f64 = parts.iter().map(|(w, _)| w).sum();
                if total <= EPS {
                    return None;
                }
                let mean: f64 = parts.iter().map(|(w, n)| w * n.mean).sum::<f64>() / total;
                let second: f64 =
                    parts.iter().map(|(w, n)| w * (n.var + n.mean * n.mean)).sum::<f64>() / total;
                Some((mean, (second - mean * mean).max(EPS)))
            }
            PredictedError::Categorical(_) => None,
        }
    }
}

/// Conditional model for an ordered column pair `(j, k)`: `P(e_j | e_k)`.
#[derive(Debug, Clone)]
enum Conditional {
    /// Both categorical: `P(e_j = wrong | e_k = correct/wrong)`.
    CatCat { p_wrong_given_correct: f64, p_wrong_given_wrong: f64 },
    /// Both continuous: joint bivariate Gaussian over `(e_j, e_k)`.
    ContCont(BivariateNormal),
    /// `j` continuous, `k` categorical: one Gaussian per `e_k` outcome.
    ContGivenCat { given_correct: Normal, given_wrong: Normal },
    /// `j` categorical, `k` continuous: Bayes inversion through the
    /// class-conditional Gaussians of `e_k` and the marginal of `e_j`.
    CatGivenCont { ek_given_correct: Normal, ek_given_wrong: Normal, p_wrong: f64 },
    /// Not enough co-observations to fit anything.
    Unavailable,
}

/// The fitted correlation model over all ordered column pairs.
#[derive(Debug, Clone)]
pub struct CorrelationModel {
    n_cols: usize,
    /// `W_jk` (Eq. 8), row-major `j * n_cols + k`.
    w: Vec<f64>,
    /// `P(e_j | e_k)`, row-major `j * n_cols + k`.
    cond: Vec<Conditional>,
    /// Number of co-observed pairs behind each fit (diagnostics).
    support: Vec<usize>,
}

/// Minimum number of co-observed error pairs before a conditional is trusted.
const MIN_SUPPORT: usize = 8;

/// Error of one answer against the current estimates, in the convention used
/// throughout §5.2.
pub fn observe_error(
    result: &InferenceResult,
    answer: &tcrowd_tabular::Answer,
) -> ErrorObservation {
    match answer.value {
        Value::Categorical(l) => {
            let est = result.truth_z(answer.cell).estimate().expect_categorical();
            ErrorObservation::Categorical(l != est)
        }
        Value::Continuous(x) => {
            let (m, s) = result.scaler(answer.cell.col as usize).expect("continuous column scaler");
            let z = (x - m) / s;
            let mu = match result.truth_z(answer.cell) {
                TruthDist::Continuous(n) => n.mean,
                TruthDist::Categorical(_) => unreachable!("type mismatch"),
            };
            ErrorObservation::Continuous(z - mu)
        }
    }
}

impl CorrelationModel {
    /// Fit the model from the full answer history and the current inference
    /// result (Tables 4–5 by MLE; Eq. 8 for `W`). Freezes the log into an
    /// [`AnswerMatrix`] first; callers that already hold one should use
    /// [`Self::fit_matrix`].
    pub fn fit(schema: &Schema, answers: &AnswerLog, result: &InferenceResult) -> Self {
        Self::fit_matrix(schema, &AnswerMatrix::build(answers), result)
    }

    /// Fit from a frozen columnar answer set: the by-(worker, row) CSR view
    /// yields each `L^u_i` group as one contiguous run, workers ascending —
    /// the pair collection is allocation-free and deterministic.
    pub fn fit_matrix(schema: &Schema, matrix: &AnswerMatrix, result: &InferenceResult) -> Self {
        let m = schema.num_columns();
        // Collect per-(worker,row) error tuples: col -> observation.
        let mut pairs: Vec<Vec<Vec<(ErrorObservation, ErrorObservation)>>> =
            vec![vec![Vec::new(); m]; m];
        let mut group: Vec<(usize, ErrorObservation)> = Vec::new();
        for w in 0..matrix.num_workers() {
            // The worker's answers are grouped by ascending row; split runs.
            let idx = matrix.worker_answer_indices(w);
            let mut start = 0;
            while start < idx.len() {
                let row = matrix.answer_rows()[idx[start] as usize];
                let mut end = start + 1;
                while end < idx.len() && matrix.answer_rows()[idx[end] as usize] == row {
                    end += 1;
                }
                group.clear();
                for &k in &idx[start..end] {
                    let a = matrix.to_answer(k as usize);
                    group.push((a.cell.col as usize, observe_error(result, &a)));
                }
                for &(j, ej) in &group {
                    for &(k, ek) in &group {
                        if j != k {
                            pairs[j][k].push((ej, ek));
                        }
                    }
                }
                start = end;
            }
        }

        let mut w = vec![0.0; m * m];
        let mut cond = Vec::with_capacity(m * m);
        let mut support = vec![0usize; m * m];
        for j in 0..m {
            for k in 0..m {
                let idx = j * m + k;
                if j == k {
                    cond.push(Conditional::Unavailable);
                    continue;
                }
                let p = &pairs[j][k];
                support[idx] = p.len();
                // Eq. 8: Pearson on the numeric encodings of the error pair.
                let ej: Vec<f64> = p.iter().map(|(a, _)| error_as_f64(a)).collect();
                let ek: Vec<f64> = p.iter().map(|(_, b)| error_as_f64(b)).collect();
                w[idx] = pearson(&ej, &ek);
                cond.push(fit_conditional(schema, j, k, p));
            }
        }
        CorrelationModel { n_cols: m, w, cond, support }
    }

    /// The correlation coefficient `W_jk`.
    pub fn wjk(&self, j: usize, k: usize) -> f64 {
        self.w[j * self.n_cols + k]
    }

    /// Number of co-observed error pairs behind the `(j, k)` fit.
    pub fn support(&self, j: usize, k: usize) -> usize {
        self.support[j * self.n_cols + k]
    }

    /// Eq. 7: predicted error distribution on column `j` given the worker's
    /// observed errors on other columns of the same row.
    ///
    /// Mixture weights are `|W_jk|` — the magnitude measures how much column
    /// `k` tells us about column `j`, while the direction of the relationship
    /// lives inside the conditional itself. Returns `None` when no usable
    /// conditional exists (the caller falls back to the inherent gain).
    pub fn conditional_error(
        &self,
        j: usize,
        observed: &[(usize, ErrorObservation)],
    ) -> Option<PredictedError> {
        let mut cat_num = 0.0;
        let mut cat_den = 0.0;
        let mut mix: Vec<(f64, Normal)> = Vec::new();
        for &(k, ref ek) in observed {
            if k == j || k >= self.n_cols {
                continue;
            }
            let idx = j * self.n_cols + k;
            if self.support[idx] < MIN_SUPPORT {
                continue;
            }
            let weight = self.w[idx].abs();
            if weight < 1e-4 {
                continue;
            }
            match (&self.cond[idx], ek) {
                (
                    Conditional::CatCat { p_wrong_given_correct, p_wrong_given_wrong },
                    ErrorObservation::Categorical(wrong),
                ) => {
                    let p = if *wrong { *p_wrong_given_wrong } else { *p_wrong_given_correct };
                    cat_num += weight * p;
                    cat_den += weight;
                }
                (
                    Conditional::CatGivenCont { ek_given_correct, ek_given_wrong, p_wrong },
                    ErrorObservation::Continuous(x),
                ) => {
                    // Bayes: P(e_j = wrong | e_k = x).
                    let num = ek_given_wrong.pdf(*x) * p_wrong;
                    let den = num + ek_given_correct.pdf(*x) * (1.0 - p_wrong);
                    if den > EPS {
                        cat_num += weight * (num / den);
                        cat_den += weight;
                    }
                }
                (Conditional::ContCont(b), ErrorObservation::Continuous(x)) => {
                    mix.push((weight, b.conditional1_given2(*x)));
                }
                (
                    Conditional::ContGivenCat { given_correct, given_wrong },
                    ErrorObservation::Categorical(wrong),
                ) => {
                    mix.push((weight, if *wrong { *given_wrong } else { *given_correct }));
                }
                _ => {} // unavailable or datatype mismatch: skip
            }
        }
        if cat_den > 0.0 {
            Some(PredictedError::Categorical(clamp_prob(cat_num / cat_den)))
        } else if !mix.is_empty() {
            let total: f64 = mix.iter().map(|(w, _)| w).sum();
            for (w, _) in &mut mix {
                *w /= total;
            }
            Some(PredictedError::ContinuousMixture(mix))
        } else {
            None
        }
    }
}

fn error_as_f64(e: &ErrorObservation) -> f64 {
    match e {
        ErrorObservation::Categorical(wrong) => *wrong as i32 as f64,
        ErrorObservation::Continuous(x) => *x,
    }
}

fn fit_conditional(
    schema: &Schema,
    j: usize,
    k: usize,
    pairs: &[(ErrorObservation, ErrorObservation)],
) -> Conditional {
    if pairs.len() < MIN_SUPPORT {
        return Conditional::Unavailable;
    }
    let j_cat = schema.column_type(j).is_categorical();
    let k_cat = schema.column_type(k).is_categorical();
    match (j_cat, k_cat) {
        (true, true) => {
            // Case (a): two Bernoulli parameters, split by e_k.
            let given = |wrong_k: bool| {
                Bernoulli::mle_smoothed(pairs.iter().filter_map(|(ej, ek)| match (ej, ek) {
                    (ErrorObservation::Categorical(wj), ErrorObservation::Categorical(wk))
                        if *wk == wrong_k =>
                    {
                        Some(*wj)
                    }
                    _ => None,
                }))
                .p
            };
            Conditional::CatCat {
                p_wrong_given_correct: given(false),
                p_wrong_given_wrong: given(true),
            }
        }
        (false, false) => {
            // Case (b): bivariate Gaussian MLE.
            let xy: Vec<(f64, f64)> = pairs
                .iter()
                .filter_map(|(ej, ek)| match (ej, ek) {
                    (ErrorObservation::Continuous(a), ErrorObservation::Continuous(b)) => {
                        Some((*a, *b))
                    }
                    _ => None,
                })
                .collect();
            Conditional::ContCont(BivariateNormal::mle(&xy))
        }
        (false, true) => {
            // Case (c): Gaussian of e_j per e_k outcome.
            let split = |wrong_k: bool| {
                let vals: Vec<f64> = pairs
                    .iter()
                    .filter_map(|(ej, ek)| match (ej, ek) {
                        (ErrorObservation::Continuous(a), ErrorObservation::Categorical(wk))
                            if *wk == wrong_k =>
                        {
                            Some(*a)
                        }
                        _ => None,
                    })
                    .collect();
                Normal::mle(&vals)
            };
            Conditional::ContGivenCat { given_correct: split(false), given_wrong: split(true) }
        }
        (true, false) => {
            // Case (d): class-conditional Gaussians of e_k plus the marginal
            // of e_j, inverted with Bayes at query time.
            let split = |wrong_j: bool| {
                let vals: Vec<f64> = pairs
                    .iter()
                    .filter_map(|(ej, ek)| match (ej, ek) {
                        (ErrorObservation::Categorical(wj), ErrorObservation::Continuous(b))
                            if *wj == wrong_j =>
                        {
                            Some(*b)
                        }
                        _ => None,
                    })
                    .collect();
                Normal::mle(&vals)
            };
            let p_wrong = Bernoulli::mle_smoothed(pairs.iter().filter_map(|(ej, _)| match ej {
                ErrorObservation::Categorical(w) => Some(*w),
                _ => None,
            }))
            .p;
            Conditional::CatGivenCont {
                ek_given_correct: split(false),
                ek_given_wrong: split(true),
                p_wrong,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::TCrowd;
    use tcrowd_tabular::real_sim;
    use tcrowd_tabular::{generate_dataset, GeneratorConfig, RowFamiliarity};

    fn correlated_dataset(seed: u64) -> tcrowd_tabular::Dataset {
        generate_dataset(
            &GeneratorConfig {
                rows: 150,
                columns: 4,
                categorical_ratio: 0.5,
                num_workers: 30,
                answers_per_task: 4,
                row_familiarity: Some(RowFamiliarity {
                    p_unfamiliar: 0.35,
                    difficulty_factor: 50.0,
                }),
                ..Default::default()
            },
            seed,
        )
    }

    #[test]
    fn wjk_is_symmetric_in_magnitude_and_bounded() {
        let d = correlated_dataset(1);
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        let c = CorrelationModel::fit(&d.schema, &d.answers, &r);
        for j in 0..4 {
            for k in 0..4 {
                let w = c.wjk(j, k);
                assert!((-1.0..=1.0).contains(&w), "W[{j}][{k}] = {w}");
                if j != k {
                    assert!((c.wjk(j, k) - c.wjk(k, j)).abs() < 1e-9, "Pearson is symmetric");
                }
            }
        }
    }

    #[test]
    fn familiarity_effect_shows_up_as_positive_correlation() {
        let d = correlated_dataset(6);
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        let c = CorrelationModel::fit(&d.schema, &d.answers, &r);
        // Average off-diagonal W should be positive.
        let mut total = 0.0;
        let mut n = 0.0;
        for j in 0..4 {
            for k in 0..4 {
                if j != k {
                    total += c.wjk(j, k);
                    n += 1.0;
                }
            }
        }
        assert!(total / n > 0.05, "mean off-diagonal W = {}", total / n);
    }

    #[test]
    fn restaurant_start_end_conditional_tracks_observed_error() {
        // §6.4.3's headline: a large observed error on StartTarget should
        // shift the predicted EndTarget error mean upward.
        let d = real_sim::restaurant(3);
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        let c = CorrelationModel::fit(&d.schema, &d.answers, &r);
        let (start, end) = (3usize, 4usize);
        assert!(c.support(end, start) >= MIN_SUPPORT);
        let small = c
            .conditional_error(end, &[(start, ErrorObservation::Continuous(0.0))])
            .expect("conditional available");
        let large = c
            .conditional_error(end, &[(start, ErrorObservation::Continuous(2.0))])
            .expect("conditional available");
        let (m_small, _) = small.mixture_moments().unwrap();
        let (m_large, _) = large.mixture_moments().unwrap();
        assert!(
            m_large > m_small,
            "conditional mean should track the observed error: {m_small} vs {m_large}"
        );
    }

    #[test]
    fn categorical_prediction_worsens_after_observed_mistake() {
        let d = correlated_dataset(4);
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        let c = CorrelationModel::fit(&d.schema, &d.answers, &r);
        let cats = d.schema.categorical_columns();
        let (j, k) = (cats[0], cats[1]);
        if c.support(j, k) < MIN_SUPPORT {
            return; // not enough pairs in this draw; other tests cover the path
        }
        let after_ok = c.conditional_error(j, &[(k, ErrorObservation::Categorical(false))]);
        let after_err = c.conditional_error(j, &[(k, ErrorObservation::Categorical(true))]);
        if let (Some(PredictedError::Categorical(p_ok)), Some(PredictedError::Categorical(p_err))) =
            (after_ok, after_err)
        {
            assert!(
                p_err > p_ok,
                "P(wrong | prior mistake) = {p_err} must exceed P(wrong | prior correct) = {p_ok}"
            );
        } else {
            panic!("expected categorical predictions");
        }
    }

    #[test]
    fn no_observations_yields_none() {
        let d = correlated_dataset(5);
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        let c = CorrelationModel::fit(&d.schema, &d.answers, &r);
        assert_eq!(c.conditional_error(0, &[]), None);
        // Self-conditioning is ignored.
        assert_eq!(c.conditional_error(0, &[(0, ErrorObservation::Categorical(true))]), None);
    }

    #[test]
    fn mixture_moments_are_sane() {
        let parts = vec![(0.5, Normal::new(1.0, 1.0)), (0.5, Normal::new(-1.0, 1.0))];
        let p = PredictedError::ContinuousMixture(parts);
        let (mean, var) = p.mixture_moments().unwrap();
        assert!(mean.abs() < 1e-12);
        // Var = E[var] + Var[means] = 1 + 1 = 2.
        assert!((var - 2.0).abs() < 1e-12);
        assert_eq!(PredictedError::Categorical(0.3).mixture_moments(), None);
    }
}
