//! Differential property suite for the quarantine filter: inference over the
//! filtered view must equal inference over a log *rebuilt without* the
//! quarantined workers' answers — the filter is a view, never a mutation —
//! and releasing every exclusion must restore the unfiltered fit
//! bit-for-bit. Exercised over both production paths:
//!
//! * the batch path — [`QuarantineView::to_matrix`] / `infer_matrix` against
//!   `infer(&log.without_workers(..))`;
//! * the online path — [`FitState::set_exclusions`] + `refit` against the
//!   same rebuilt-log batch fit.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcrowd_core::{FitState, TCrowd};
use tcrowd_tabular::{Answer, AnswerLog, AnswerMatrix, CellId, QuarantineView, Value, WorkerId};

/// A random mixed-type answer log: shape from the strategy, contents from a
/// seeded RNG (workers repeat, cells repeat, both value kinds appear).
fn random_log(rows: usize, cols: usize, n: usize, seed: u64) -> AnswerLog {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut log = AnswerLog::new(rows, cols);
    for _ in 0..n {
        let cell = CellId::new(rng.gen_range(0..rows as u32), rng.gen_range(0..cols as u32));
        let value = if cell.col % 2 == 0 {
            Value::Categorical(rng.gen_range(0..4))
        } else {
            Value::Continuous(rng.gen_range(-5.0..5.0))
        };
        log.push(Answer { worker: WorkerId(rng.gen_range(0..10)), cell, value });
    }
    log
}

/// A schema matching `random_log`'s value pattern: even columns categorical
/// (4 labels), odd columns continuous over the generator's range.
fn schema_for(cols: usize) -> tcrowd_tabular::Schema {
    use tcrowd_tabular::{Column, ColumnType, Schema};
    Schema::new(
        "prop",
        "key",
        (0..cols)
            .map(|j| Column {
                name: format!("c{j}"),
                ty: if j % 2 == 0 {
                    ColumnType::categorical_with_cardinality(4)
                } else {
                    ColumnType::Continuous { min: -5.0, max: 5.0 }
                },
            })
            .collect(),
    )
}

/// Pick a subset of the log's workers from a selection mask.
fn pick_excluded(log: &AnswerLog, mask: u16) -> Vec<WorkerId> {
    log.workers().filter(|w| mask & (1u16 << (w.0 % 16)) != 0).collect()
}

/// `filtered` and `rebuilt` must describe the same fit to within `tol`:
/// identical categorical estimates, continuous estimates within `tol`, the
/// same surviving-worker qualities within `tol`, and no fitted quality at
/// all for the excluded workers.
fn assert_fits_equal(
    filtered: &tcrowd_core::InferenceResult,
    rebuilt: &tcrowd_core::InferenceResult,
    excluded: &[WorkerId],
    survivors: &[WorkerId],
    tol: f64,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(filtered.rows(), rebuilt.rows());
    prop_assert_eq!(filtered.cols(), rebuilt.cols());
    for (i, (fr, rr)) in filtered.estimates().iter().zip(rebuilt.estimates().iter()).enumerate() {
        for (j, (fv, rv)) in fr.iter().zip(rr.iter()).enumerate() {
            match (fv, rv) {
                (Value::Categorical(a), Value::Categorical(b)) => {
                    prop_assert_eq!(a, b, "categorical estimate at ({}, {})", i, j);
                }
                (Value::Continuous(a), Value::Continuous(b)) => {
                    prop_assert!(
                        (a - b).abs() <= tol,
                        "continuous estimate at ({}, {}): {} vs {}",
                        i,
                        j,
                        a,
                        b
                    );
                }
                _ => prop_assert!(false, "estimate kinds differ at ({}, {})", i, j),
            }
        }
    }
    for w in excluded {
        prop_assert_eq!(
            filtered.quality_of(*w),
            None,
            "excluded worker {} must carry no fitted quality",
            w.0
        );
    }
    for w in survivors {
        match (filtered.quality_of(*w), rebuilt.quality_of(*w)) {
            (Some(a), Some(b)) => prop_assert!(
                (a - b).abs() <= tol,
                "quality of surviving worker {}: {} vs {}",
                w.0,
                a,
                b
            ),
            (a, b) => prop_assert_eq!(a, b, "quality presence for worker {}", w.0),
        }
    }
    Ok(())
}

proptest! {
    /// Batch path: EM over the quarantine view's filtered matrix equals EM
    /// over a log physically rebuilt without those workers, to 1e-9.
    #[test]
    fn filtered_view_inference_equals_rebuilt_log(
        (rows, cols) in (1usize..6, 1usize..5),
        n in 0usize..80,
        mask in any::<u16>(),
        seed in any::<u64>(),
    ) {
        let log = random_log(rows, cols, n, seed);
        let schema = schema_for(cols);
        let excluded = pick_excluded(&log, mask);
        let survivors: Vec<WorkerId> =
            log.workers().filter(|w| !excluded.contains(w)).collect();

        let matrix = AnswerMatrix::build(&log);
        let view = QuarantineView::new(&matrix, &excluded);
        // The view filters the fit, never the data underneath it.
        prop_assert_eq!(view.matrix().len(), log.len());

        let model = TCrowd::default_full();
        let filtered = model.infer_matrix(&schema, &view.to_matrix());
        let rebuilt = model.infer(&schema, &log.without_workers(&excluded));
        assert_fits_equal(&filtered, &rebuilt, &excluded, &survivors, 1e-9)?;
    }

    /// Online path: a [`FitState`] with exclusions set refits to the same
    /// posterior as the rebuilt-log batch fit, and *releasing* every
    /// exclusion restores the unfiltered fit bit-identically.
    #[test]
    fn fit_state_exclusion_matches_rebuild_and_release_is_bit_identical(
        (rows, cols) in (1usize..6, 1usize..5),
        n in 0usize..60,
        mask in any::<u16>(),
        seed in any::<u64>(),
    ) {
        let log = random_log(rows, cols, n, seed);
        let schema = schema_for(cols);
        let excluded = pick_excluded(&log, mask);
        let survivors: Vec<WorkerId> =
            log.workers().filter(|w| !excluded.contains(w)).collect();
        let model = TCrowd::default_full();

        let mut fit = FitState::empty(model.clone(), schema.clone(), rows);
        fit.absorb(&log.slice_since(0));
        fit.set_exclusions(excluded.clone());
        fit.refit(false);
        // Quarantine filters the fit; the freeze still covers the full log.
        prop_assert_eq!(fit.matrix().len(), log.len());
        let rebuilt = model.infer(&schema, &log.without_workers(&excluded));
        assert_fits_equal(fit.result(), &rebuilt, &excluded, &survivors, 1e-9)?;

        // Release: clearing the exclusions must reproduce a fit that never
        // excluded anyone, bit-for-bit (same estimates, same iteration count).
        fit.set_exclusions(Vec::new());
        fit.refit(false);
        let full = model.infer(&schema, &log);
        prop_assert_eq!(fit.result().estimates(), full.estimates());
        prop_assert_eq!(fit.result().iterations, full.iterations);
        for w in log.workers() {
            prop_assert_eq!(fit.result().quality_of(w), full.quality_of(w));
        }
    }
}
