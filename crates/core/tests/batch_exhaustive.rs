//! Validates the §5.3 batched-assignment claim: because per-cell gains are
//! additive across distinct cells (Eq. 9 decomposes), the greedy top-K
//! selection equals the exhaustively-optimal K-subset.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tcrowd_core::gain::{gain_with_params, GainEstimator};
use tcrowd_core::{AssignmentContext, AssignmentPolicy, InherentGainPolicy, TCrowd};
use tcrowd_tabular::{generate_dataset, CellId, GeneratorConfig, WorkerId};

/// Enumerate all K-subsets of `items` (tiny instances only).
fn k_subsets(items: &[CellId], k: usize) -> Vec<Vec<CellId>> {
    fn rec(
        items: &[CellId],
        k: usize,
        start: usize,
        cur: &mut Vec<CellId>,
        out: &mut Vec<Vec<CellId>>,
    ) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..items.len() {
            cur.push(items[i]);
            rec(items, k, i + 1, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    rec(items, k, 0, &mut Vec::new(), &mut out);
    out
}

#[test]
fn top_k_equals_exhaustive_optimum() {
    let d = generate_dataset(
        &GeneratorConfig {
            rows: 4,
            columns: 3,
            num_workers: 8,
            answers_per_task: 2,
            ..Default::default()
        },
        13,
    );
    let inference = TCrowd::default_full().infer(&d.schema, &d.answers);
    let m = d.answers.to_matrix();
    let ctx = AssignmentContext {
        schema: &d.schema,
        answers: &d.answers,
        freeze: m.freeze_view(),
        inference: Some(&inference),
        max_answers_per_cell: None,
        terminated: None,
        correlation: None,
    };
    let worker = WorkerId(777);
    let candidates = ctx.candidates(worker);
    assert_eq!(candidates.len(), 12);

    let mut rng = StdRng::seed_from_u64(1);
    let gain_of = |c: CellId, rng: &mut StdRng| {
        let v = inference.effective_variance(worker, c);
        let q = inference.cell_quality(worker, c);
        gain_with_params(inference.truth_z(c), v, q, GainEstimator::Exact, rng)
    };

    for k in [1usize, 2, 3, 5] {
        // Exhaustive optimum of the additive batch objective (Eq. 9).
        let mut best_total = f64::NEG_INFINITY;
        let mut best_set: Vec<CellId> = Vec::new();
        for subset in k_subsets(&candidates, k) {
            let total: f64 = subset.iter().map(|&c| gain_of(c, &mut rng)).sum();
            if total > best_total {
                best_total = total;
                best_set = subset;
            }
        }
        // Greedy top-K from the policy.
        let mut policy = InherentGainPolicy::default();
        let picked = policy.select(worker, k, &ctx);
        let picked_total: f64 = picked.iter().map(|&c| gain_of(c, &mut rng)).sum();
        assert!(
            (picked_total - best_total).abs() < 1e-9,
            "k={k}: greedy total {picked_total} vs exhaustive {best_total} ({best_set:?})"
        );
    }
}
