//! Golden-value tests: every special function checked against published
//! reference values (Abramowitz & Stegun tables, R/`scipy` evaluations),
//! independent of the unit tests inside the modules.

use tcrowd_stat::cluster::adjusted_rand_index;
use tcrowd_stat::entropy::{gaussian_differential, shannon};
use tcrowd_stat::special::{
    chi_square_cdf, chi_square_quantile, erf, erf_inv, erfc, ln_gamma, std_normal_cdf,
    std_normal_pdf, std_normal_quantile,
};
use tcrowd_stat::{BivariateNormal, Normal};

fn close(got: f64, want: f64, tol: f64) {
    assert!((got - want).abs() <= tol, "got {got}, want {want} (tol {tol})");
}

#[test]
fn erf_reference_values() {
    // A&S table 7.1 / scipy.special.erf.
    close(erf(0.0), 0.0, 1e-15);
    close(erf(0.5), 0.520_499_877_813_046_5, 2e-7);
    close(erf(1.0), 0.842_700_792_949_714_9, 2e-7);
    close(erf(1.5), 0.966_105_146_475_310_7, 2e-7);
    close(erf(2.0), 0.995_322_265_018_952_7, 2e-7);
    close(erf(3.0), 0.999_977_909_503_001_4, 2e-7);
    close(erf(-1.0), -0.842_700_792_949_714_9, 2e-7);
}

#[test]
fn erfc_complements_erf_in_the_tail() {
    close(erfc(2.0), 0.004_677_734_981_047_266, 2e-7);
    close(erfc(3.0), 2.209_049_699_858_544e-5, 1e-8);
    for x in [0.1, 0.7, 1.3, 2.9] {
        close(erf(x) + erfc(x), 1.0, 1e-12);
    }
}

#[test]
fn erf_inv_reference_values() {
    // scipy.special.erfinv.
    close(erf_inv(0.5), 0.476_936_276_204_469_9, 1e-5);
    close(erf_inv(0.9), 1.163_087_153_676_674, 1e-5);
    close(erf_inv(-0.5), -0.476_936_276_204_469_9, 1e-5);
    close(erf_inv(0.99), 1.821_386_367_718_481, 1e-4);
}

#[test]
fn normal_cdf_and_quantile_reference_values() {
    // Φ(1.96) ≈ 0.975; Φ(1.6449) ≈ 0.95.
    close(std_normal_cdf(0.0), 0.5, 1e-12);
    close(std_normal_cdf(1.959_963_984_540_054), 0.975, 1e-6);
    close(std_normal_cdf(-1.281_551_565_544_6), 0.10, 1e-6);
    close(std_normal_quantile(0.975), 1.959_963_984_540_054, 1e-4);
    close(std_normal_quantile(0.5), 0.0, 1e-10);
    close(std_normal_pdf(0.0), 0.398_942_280_401_432_7, 1e-12);
    close(std_normal_pdf(1.0), 0.241_970_724_519_143_37, 1e-12);
}

#[test]
fn ln_gamma_reference_values() {
    // Γ(1) = Γ(2) = 1; Γ(0.5) = √π; Γ(5) = 24.
    close(ln_gamma(1.0), 0.0, 1e-10);
    close(ln_gamma(2.0), 0.0, 1e-10);
    close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
    close(ln_gamma(5.0), 24.0f64.ln(), 1e-9);
    close(ln_gamma(10.0), 362_880.0f64.ln(), 1e-8);
}

#[test]
fn chi_square_reference_values() {
    // R: qchisq(0.95, 1) = 3.841459, qchisq(0.95, 5) = 11.0705,
    //    qchisq(0.5, 10) = 9.341818; pchisq(3.841459, 1) = 0.95.
    close(chi_square_quantile(0.95, 1.0), 3.841_458_820_694_124, 2e-2);
    close(chi_square_quantile(0.95, 5.0), 11.070_497_693_516_351, 2e-2);
    close(chi_square_quantile(0.5, 10.0), 9.341_818_240_309_545, 2e-2);
    close(chi_square_cdf(3.841_458_820_694_124, 1.0), 0.95, 1e-4);
    close(chi_square_cdf(11.070_497_693_516_351, 5.0), 0.95, 1e-4);
}

#[test]
fn entropy_reference_values() {
    // H(uniform over 4) = ln 4; H(0.5, 0.5) = ln 2.
    close(shannon(&[0.25; 4]), 4.0f64.ln(), 1e-12);
    close(shannon(&[0.5, 0.5]), std::f64::consts::LN_2, 1e-12);
    // H(0.9, 0.1) = −0.9 ln 0.9 − 0.1 ln 0.1 ≈ 0.325083.
    close(shannon(&[0.9, 0.1]), 0.325_082_973_391_448, 1e-12);
    // h(N(µ, 1)) = ½ ln(2πe) ≈ 1.418939.
    close(gaussian_differential(1.0), 1.418_938_533_204_672_7, 1e-12);
    // h(N(µ, 4)) = h(N(µ,1)) + ½ ln 4.
    close(gaussian_differential(4.0), 1.418_938_533_204_672_7 + 0.5 * 4.0f64.ln(), 1e-12);
}

#[test]
fn normal_posterior_textbook_update() {
    // Prior N(0, 1), observation 2.0 with variance 1 → posterior N(1, 0.5).
    let prior = Normal::new(0.0, 1.0);
    let post = prior.posterior_with_observation(2.0, 1.0);
    close(post.mean, 1.0, 1e-12);
    close(post.var, 0.5, 1e-12);
    // Two observations at once agree with sequential updates.
    let both = prior.posterior_with_observations(&[(2.0, 1.0), (-1.0, 0.5)]);
    let seq = post.posterior_with_observation(-1.0, 0.5);
    close(both.mean, seq.mean, 1e-12);
    close(both.var, seq.var, 1e-12);
}

#[test]
fn bivariate_conditional_textbook_values() {
    // X ~ N(1, 4), Y ~ N(-2, 9), ρ = 0.5:
    // E[X | Y = 1] = 1 + (2/3)·0.5·(1 − (−2)) = 2, Var = 4(1−0.25) = 3.
    let b = BivariateNormal::new(1.0, -2.0, 4.0, 9.0, 0.5);
    let c = b.conditional1_given2(1.0);
    close(c.mean, 2.0, 1e-12);
    close(c.var, 3.0, 1e-12);
}

#[test]
fn ari_textbook_example() {
    // Hubert & Arabie's canonical example-sized check: two partitions of 6
    // points sharing structure. Computed by sklearn.metrics.adjusted_rand_score.
    let a = [0, 0, 1, 1, 2, 2];
    let b = [0, 0, 1, 2, 2, 2];
    close(adjusted_rand_index(&a, &b), 0.444_444_444_444_444_4, 1e-12);
}
