//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use tcrowd_stat::describe;
use tcrowd_stat::entropy::shannon;
use tcrowd_stat::normal::Normal;
use tcrowd_stat::optimize::{gradient_ascent, AscentOptions};
use tcrowd_stat::special::{chi_square_cdf, chi_square_quantile, erf, erf_inv, std_normal_cdf};
use tcrowd_stat::{Bernoulli, BivariateNormal};

proptest! {
    #[test]
    fn erf_is_odd_bounded_monotone(x in -6.0f64..6.0, y in -6.0f64..6.0) {
        let (a, b) = (erf(x), erf(y));
        prop_assert!((-1.0..=1.0).contains(&a));
        prop_assert!((erf(-x) + a).abs() < 1e-12, "odd symmetry");
        if x < y {
            prop_assert!(a <= b, "monotone: erf({x})={a} > erf({y})={b}");
        }
    }

    #[test]
    fn erf_roundtrips_through_inverse(y in -0.999f64..0.999) {
        let x = erf_inv(y);
        prop_assert!((erf(x) - y).abs() < 1e-10);
    }

    #[test]
    fn normal_cdf_is_a_cdf(x in -8.0f64..8.0, y in -8.0f64..8.0) {
        let (a, b) = (std_normal_cdf(x), std_normal_cdf(y));
        prop_assert!((0.0..=1.0).contains(&a));
        if x < y {
            prop_assert!(a <= b);
        }
        prop_assert!((std_normal_cdf(x) + std_normal_cdf(-x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chi2_quantile_cdf_roundtrip(p in 0.01f64..0.99, k in 1.0f64..60.0) {
        let x = chi_square_quantile(p, k);
        prop_assert!(x >= 0.0);
        prop_assert!((chi_square_cdf(x, k) - p).abs() < 1e-7);
    }

    #[test]
    fn posterior_precision_always_grows(
        mean in -10.0f64..10.0,
        var in 0.01f64..20.0,
        obs in -10.0f64..10.0,
        obs_var in 0.01f64..20.0,
    ) {
        let prior = Normal::new(mean, var);
        let post = prior.posterior_with_observation(obs, obs_var);
        prop_assert!(post.var < prior.var, "observation must shrink variance");
        // The posterior mean lies between the prior mean and the observation.
        let (lo, hi) = if mean <= obs { (mean, obs) } else { (obs, mean) };
        prop_assert!(post.mean >= lo - 1e-9 && post.mean <= hi + 1e-9);
    }

    #[test]
    fn interval_mass_is_monotone_in_eps(
        var in 0.01f64..30.0,
        e1 in 0.0f64..5.0,
        e2 in 0.0f64..5.0,
    ) {
        let n = Normal::new(0.0, var);
        let (m1, m2) = (n.interval_mass(0.0, e1), n.interval_mass(0.0, e2));
        prop_assert!((0.0..=1.0).contains(&m1));
        if e1 < e2 {
            prop_assert!(m1 <= m2);
        }
    }

    #[test]
    fn shannon_entropy_bounds(raw in prop::collection::vec(0.01f64..10.0, 1..12)) {
        let total: f64 = raw.iter().sum();
        let probs: Vec<f64> = raw.iter().map(|x| x / total).collect();
        let h = shannon(&probs);
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (probs.len() as f64).ln() + 1e-12);
    }

    #[test]
    fn bernoulli_mle_stays_in_open_interval(outcomes in prop::collection::vec(any::<bool>(), 0..40)) {
        let b = Bernoulli::mle_smoothed(outcomes);
        prop_assert!(b.p > 0.0 && b.p < 1.0);
    }

    #[test]
    fn bivariate_conditional_variance_never_exceeds_marginal(
        m1 in -5.0f64..5.0,
        m2 in -5.0f64..5.0,
        v1 in 0.05f64..10.0,
        v2 in 0.05f64..10.0,
        rho in -0.99f64..0.99,
        x in -10.0f64..10.0,
    ) {
        let b = BivariateNormal::new(m1, m2, v1, v2, rho);
        let c = b.conditional1_given2(x);
        prop_assert!(c.var <= b.var1 + 1e-12);
        prop_assert!(c.var > 0.0);
    }

    #[test]
    fn pearson_always_bounded(
        a in prop::collection::vec(-100.0f64..100.0, 2..30),
        b in prop::collection::vec(-100.0f64..100.0, 2..30),
    ) {
        let n = a.len().min(b.len());
        let r = describe::pearson(&a[..n], &b[..n]);
        prop_assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn median_lies_within_range(data in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let m = describe::median(&data);
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo && m <= hi);
    }

    #[test]
    fn gradient_ascent_never_worsens_concave_objective(
        x0 in -50.0f64..50.0,
        y0 in -50.0f64..50.0,
        cx in -10.0f64..10.0,
        cy in -10.0f64..10.0,
    ) {
        let f = move |x: &[f64]| {
            let v = -(x[0] - cx).powi(2) - 0.5 * (x[1] - cy).powi(2);
            (v, vec![-2.0 * (x[0] - cx), -(x[1] - cy)])
        };
        let start = [x0, y0];
        let (v0, _) = f(&start);
        let res = gradient_ascent(f, &start, &AscentOptions::default());
        prop_assert!(res.value >= v0 - 1e-12);
    }
}
