//! Differential tests for the batch kernels: the portable generic path and
//! the AVX2 wide path must be **bit-equal** for every input — including the
//! clamp boundaries (±`ln_param_bound` ⇒ ln v = ±12 by default), tiny/huge
//! variances, lane-tail lengths (n % 4 ≠ 0) and empty slices. On hosts
//! without AVX2 the wide-path assertions are skipped (the generic-vs-naive
//! accuracy tests still run); CI runs at least one AVX2-capable job.

use proptest::prelude::*;
use tcrowd_stat::batch::{BatchKernels, KernelPath};

fn wide() -> Option<BatchKernels> {
    BatchKernels::with_path(KernelPath::Avx2)
}

fn generic() -> BatchKernels {
    BatchKernels::with_path(KernelPath::Generic).unwrap()
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len());
    for i in 0..a.len() {
        assert_eq!(
            a[i].to_bits(),
            b[i].to_bits(),
            "{what}[{i}]: generic {} vs wide {}",
            a[i],
            b[i]
        );
    }
}

/// Edge inputs every fixed test sweeps: clamp boundaries, tiny and huge
/// log-variances, exact zero, and values straddling the erf grid edge.
fn edge_ln_v() -> Vec<f64> {
    vec![
        -12.0,
        -11.999999999,
        -8.0,
        -2.0,
        -1e-12,
        0.0,
        1e-12,
        0.25,
        1.0,
        5.0,
        7.999,
        11.999999999,
        12.0,
        -0.0,
    ]
}

#[test]
fn kernel_paths_bit_equal_on_edge_inputs() {
    let Some(w) = wide() else {
        eprintln!("skipping: no AVX2 on this host");
        return;
    };
    let g = generic();
    for eps in [1e-3, 0.05, 0.5, 1.0, 17.0] {
        let ln_v = edge_ln_v();
        let n = ln_v.len();
        let k: Vec<f64> = (0..n).map(|i| 1e-6 + i as f64 * 0.83).collect();
        let p: Vec<f64> = (0..n).map(|i| 1e-12 + (i as f64 / n as f64) * (1.0 - 2e-12)).collect();
        let c: Vec<f64> = p.iter().map(|pi| (1.0 - pi) * 3.0f64.ln()).collect();

        let (mut gg, mut gw) = (vec![0.0; n], vec![0.0; n]);
        let sg = g.gaussian_terms(&ln_v, &k, &mut gg);
        let sw = w.gaussian_terms(&ln_v, &k, &mut gw);
        assert_eq!(sg.to_bits(), sw.to_bits(), "gaussian sum, eps {eps}");
        assert_bits_eq(&gg, &gw, "gaussian grad");

        let sg = g.quality_terms(eps, &ln_v, &p, &c, &mut gg);
        let sw = w.quality_terms(eps, &ln_v, &p, &c, &mut gw);
        assert_eq!(sg.to_bits(), sw.to_bits(), "quality sum, eps {eps}");
        assert_bits_eq(&gg, &gw, "quality grad");

        let (mut qg, mut qw) = (vec![0.0; n], vec![0.0; n]);
        let (mut dg, mut dw) = (vec![0.0; n], vec![0.0; n]);
        g.quality_pairs_from_ln_variance(eps, &ln_v, &mut qg, &mut dg);
        w.quality_pairs_from_ln_variance(eps, &ln_v, &mut qw, &mut dw);
        assert_bits_eq(&qg, &qw, "q");
        assert_bits_eq(&dg, &dw, "dq");
    }
}

#[test]
fn kernel_paths_bit_equal_on_every_tail_length() {
    let Some(w) = wide() else {
        eprintln!("skipping: no AVX2 on this host");
        return;
    };
    let g = generic();
    // 0..=9 exercises empty, sub-lane, exactly-one-lane and lane+tail shapes.
    for n in 0..=9usize {
        let ln_v: Vec<f64> = (0..n).map(|i| -12.0 + i as f64 * 2.7).collect();
        let k: Vec<f64> = (0..n).map(|i| 0.5 + i as f64).collect();
        let p: Vec<f64> = (0..n).map(|i| 0.1 + 0.09 * i as f64).collect();
        let c: Vec<f64> = p.iter().map(|pi| (1.0 - pi) * 1.5).collect();
        let (mut gg, mut gw) = (vec![0.0; n], vec![0.0; n]);
        let sg = g.gaussian_terms(&ln_v, &k, &mut gg);
        let sw = w.gaussian_terms(&ln_v, &k, &mut gw);
        assert_eq!(sg.to_bits(), sw.to_bits(), "gaussian sum, n={n}");
        assert_bits_eq(&gg, &gw, "gaussian grad");
        let sg = g.quality_terms(0.7, &ln_v, &p, &c, &mut gg);
        let sw = w.quality_terms(0.7, &ln_v, &p, &c, &mut gw);
        assert_eq!(sg.to_bits(), sw.to_bits(), "quality sum, n={n}");
        assert_bits_eq(&gg, &gw, "quality grad");
    }
}

proptest! {
    #[test]
    fn gaussian_terms_paths_bit_equal(
        ln_v in prop::collection::vec(-12.0f64..12.0, 1..70),
        seed in any::<u64>(),
    ) {
        let Some(w) = wide() else { return Ok(()); };
        let g = generic();
        let n = ln_v.len();
        let k: Vec<f64> = (0..n)
            .map(|i| {
                let r = seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
                1e-9 + (r >> 11) as f64 / (1u64 << 53) as f64 * 100.0
            })
            .collect();
        let (mut gg, mut gw) = (vec![0.0; n], vec![0.0; n]);
        let sg = g.gaussian_terms(&ln_v, &k, &mut gg);
        let sw = w.gaussian_terms(&ln_v, &k, &mut gw);
        prop_assert_eq!(sg.to_bits(), sw.to_bits());
        for i in 0..n {
            prop_assert_eq!(gg[i].to_bits(), gw[i].to_bits());
        }
    }

    #[test]
    fn quality_terms_paths_bit_equal(
        ln_v in prop::collection::vec(-12.0f64..12.0, 1..70),
        p0 in prop::collection::vec(0.0f64..1.0, 70..71),
        eps in 1e-3f64..4.0,
        card in 2u32..12,
    ) {
        let Some(w) = wide() else { return Ok(()); };
        let g = generic();
        let n = ln_v.len();
        let p: Vec<f64> = p0[..n].iter().map(|&x| tcrowd_stat::clamp_prob(x)).collect();
        let ln_card1 = ((card - 1) as f64).ln();
        let c: Vec<f64> = p.iter().map(|pi| (1.0 - pi) * ln_card1).collect();
        let (mut gg, mut gw) = (vec![0.0; n], vec![0.0; n]);
        let sg = g.quality_terms(eps, &ln_v, &p, &c, &mut gg);
        let sw = w.quality_terms(eps, &ln_v, &p, &c, &mut gw);
        prop_assert_eq!(sg.to_bits(), sw.to_bits());
        for i in 0..n {
            prop_assert_eq!(gg[i].to_bits(), gw[i].to_bits());
        }
    }

    /// The generic path itself must agree with a naive libm evaluation —
    /// this bounds *accuracy*, while the tests above bound *equality*.
    #[test]
    fn generic_gaussian_matches_naive_libm(
        ln_v in prop::collection::vec(-12.0f64..12.0, 1..40),
    ) {
        let g = generic();
        let n = ln_v.len();
        let k: Vec<f64> = (0..n).map(|i| 0.01 + i as f64 * 0.5).collect();
        let mut grad = vec![0.0; n];
        let total = g.gaussian_terms(&ln_v, &k, &mut grad);
        let mut naive = 0.0;
        for i in 0..n {
            let v = ln_v[i].exp();
            naive += -0.5 * ((2.0 * std::f64::consts::PI).ln() + ln_v[i]) - k[i] / (2.0 * v);
            let expect = -0.5 + k[i] / (2.0 * v);
            prop_assert!((grad[i] - expect).abs() <= 1e-10 * expect.abs().max(1.0));
        }
        prop_assert!((total - naive).abs() <= 1e-9 * naive.abs().max(1.0));
    }
}
