//! Gaussian sampling on top of any [`rand::Rng`].
//!
//! The allowed dependency set does not include `rand_distr`, so standard
//! normal variates are produced with the Marsaglia polar (Box–Muller) method.

use rand::Rng;

/// Draw one standard-normal variate using the Marsaglia polar method.
///
/// The method produces variates in pairs; the second is deliberately *not*
/// cached. A cache shared across calls would couple streams drawn from
/// different seeded RNGs on the same thread and destroy per-seed determinism
/// — reproducibility of every experiment trumps halving the `ln`/`sqrt`
/// count here.
pub fn sample_std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            let factor = (-2.0 * s.ln() / s).sqrt();
            return u * factor;
        }
    }
}

/// Draw a `N(mean, std²)` variate.
#[inline]
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * sample_std_normal(rng)
}

/// Draw an index in `0..weights.len()` proportionally to `weights`.
///
/// Zero or negative weights contribute no mass; panics if the total mass is
/// not positive. Used for sampling categorical answers from a worker model.
pub fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
    assert!(total > 0.0 && total.is_finite(), "weights must have positive finite mass");
    let mut target = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        if target < w {
            return i;
        }
        target -= w;
    }
    // Floating-point slack: fall back to the last positive-weight index.
    weights.iter().rposition(|w| *w > 0.0).expect("at least one positive weight")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn std_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..100_000).map(|_| sample_std_normal(&mut rng)).collect();
        assert!(describe::mean(&xs).abs() < 0.02);
        assert!((describe::variance(&xs) - 1.0).abs() < 0.03);
        // Skewness should vanish.
        let m = describe::mean(&xs);
        let s3: f64 = xs.iter().map(|x| (x - m).powi(3)).sum::<f64>() / xs.len() as f64;
        assert!(s3.abs() < 0.05, "skewness term = {s3}");
    }

    #[test]
    fn std_normal_tail_fractions() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let beyond2: usize = (0..n).filter(|_| sample_std_normal(&mut rng).abs() > 2.0).count();
        let frac = beyond2 as f64 / n as f64;
        // P(|Z| > 2) ≈ 0.0455
        assert!((frac - 0.0455).abs() < 0.005, "frac = {frac}");
    }

    #[test]
    fn weighted_sampling_respects_proportions() {
        let mut rng = StdRng::seed_from_u64(3);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[sample_weighted(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio = {ratio}");
    }

    #[test]
    #[should_panic(expected = "positive finite mass")]
    fn weighted_sampling_rejects_zero_mass() {
        let mut rng = StdRng::seed_from_u64(4);
        sample_weighted(&mut rng, &[0.0, -1.0]);
    }
}
