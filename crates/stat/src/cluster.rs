//! K-means clustering (Lloyd's algorithm with k-means++ seeding) and the
//! adjusted Rand index.
//!
//! Used by the entity-correlation extension (paper §7's future-work
//! direction): rows are clustered by the error profiles workers exhibit on
//! them, so that "a worker may be more familiar with celebrities starring in
//! a certain category of films" becomes a learnable structure. Feature
//! vectors may contain `NaN` for missing entries (a worker who never answered
//! a row); distances and centroid updates are computed over the observed
//! coordinates only, rescaled to the full dimensionality.

use crate::EPS;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The output of [`kmeans`].
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster label per input point, in `0..k`.
    pub assignment: Vec<usize>,
    /// Final centroids, `k × dims`.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared point-to-centroid distances (missing-aware).
    pub inertia: f64,
    /// Lloyd iterations until convergence (or the cap).
    pub iterations: usize,
}

/// Squared distance over co-observed coordinates, scaled to full
/// dimensionality; `None` when the pair shares no observed coordinate.
fn missing_aware_dist2(a: &[f64], b: &[f64]) -> Option<f64> {
    let mut sum = 0.0;
    let mut seen = 0usize;
    for (x, y) in a.iter().zip(b) {
        if x.is_finite() && y.is_finite() {
            sum += (x - y) * (x - y);
            seen += 1;
        }
    }
    if seen == 0 {
        None
    } else {
        Some(sum * a.len() as f64 / seen as f64)
    }
}

/// K-means++ seeding: the first centroid is uniform, each next one is drawn
/// with probability proportional to its squared distance from the chosen set.
fn seed_centroids(data: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(data[rng.gen_range(0..data.len())].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = data
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .filter_map(|c| missing_aware_dist2(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .map(|d| if d.is_finite() { d } else { 1.0 })
            .collect();
        let total: f64 = d2.iter().sum();
        if total <= EPS {
            // All points coincide with a centroid; fall back to uniform.
            centroids.push(data[rng.gen_range(0..data.len())].clone());
            continue;
        }
        let mut target = rng.gen::<f64>() * total;
        let mut pick = data.len() - 1;
        for (i, &d) in d2.iter().enumerate() {
            target -= d;
            if target <= 0.0 {
                pick = i;
                break;
            }
        }
        centroids.push(data[pick].clone());
    }
    centroids
}

/// Run k-means over `data` (points may contain `NaN` for missing features).
///
/// Deterministic for a given `seed`. Empty clusters are re-seeded with the
/// point farthest from its centroid. Panics if `data` is empty, `k == 0`, or
/// the points have inconsistent dimensionality.
pub fn kmeans(data: &[Vec<f64>], k: usize, seed: u64, max_iter: usize) -> KMeansResult {
    assert!(!data.is_empty(), "kmeans needs at least one point");
    assert!(k >= 1, "kmeans needs k >= 1");
    let dims = data[0].len();
    assert!(data.iter().all(|p| p.len() == dims), "inconsistent dimensionality");
    let k = k.min(data.len());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut centroids = seed_centroids(data, k, &mut rng);
    let mut assignment = vec![0usize; data.len()];
    let mut iterations = 0;

    for iter in 0..max_iter.max(1) {
        iterations = iter + 1;
        // Assignment step.
        let mut changed = false;
        for (i, p) in data.iter().enumerate() {
            let best = (0..k)
                .map(|c| (c, missing_aware_dist2(p, &centroids[c]).unwrap_or(f64::INFINITY)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN distance"))
                .map(|(c, _)| c)
                .unwrap_or(0);
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Update step: per-coordinate mean over observed values.
        let mut sums = vec![vec![0.0; dims]; k];
        let mut counts = vec![vec![0usize; dims]; k];
        let mut members = vec![0usize; k];
        for (p, &c) in data.iter().zip(&assignment) {
            members[c] += 1;
            for (d, &x) in p.iter().enumerate() {
                if x.is_finite() {
                    sums[c][d] += x;
                    counts[c][d] += 1;
                }
            }
        }
        for c in 0..k {
            if members[c] == 0 {
                // Re-seed the empty cluster with the worst-fit point.
                let far = data
                    .iter()
                    .enumerate()
                    .max_by(|(i, p), (j, q)| {
                        let di = missing_aware_dist2(p, &centroids[assignment[*i]]).unwrap_or(0.0);
                        let dj = missing_aware_dist2(q, &centroids[assignment[*j]]).unwrap_or(0.0);
                        di.partial_cmp(&dj).expect("NaN distance")
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty data");
                centroids[c] = data[far].clone();
                continue;
            }
            for d in 0..dims {
                if counts[c][d] > 0 {
                    centroids[c][d] = sums[c][d] / counts[c][d] as f64;
                }
                // A coordinate never observed in this cluster keeps its
                // previous value, so distances remain well-defined.
            }
        }
        if !changed && iter > 0 {
            break;
        }
    }

    let inertia = data
        .iter()
        .zip(&assignment)
        .filter_map(|(p, &c)| missing_aware_dist2(p, &centroids[c]))
        .sum();
    KMeansResult { assignment, centroids, inertia, iterations }
}

/// Adjusted Rand index between two labelings of the same points.
///
/// 1.0 for identical partitions (up to label permutation), ≈0 for independent
/// ones; can be negative for worse-than-chance agreement.
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must cover the same points");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let ka = a.iter().max().map(|&m| m + 1).unwrap_or(0);
    let kb = b.iter().max().map(|&m| m + 1).unwrap_or(0);
    let mut table = vec![vec![0usize; kb]; ka];
    for (&x, &y) in a.iter().zip(b) {
        table[x][y] += 1;
    }
    let choose2 = |x: usize| (x * x.saturating_sub(1)) as f64 / 2.0;
    let sum_ij: f64 = table.iter().flatten().map(|&c| choose2(c)).sum();
    let sum_a: f64 = table.iter().map(|row| choose2(row.iter().sum())).sum();
    let sum_b: f64 = (0..kb).map(|j| choose2(table.iter().map(|row| row[j]).sum())).sum();
    let total = choose2(n);
    let expected = sum_a * sum_b / total;
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() <= EPS {
        return 1.0; // degenerate: single cluster on both sides
    }
    (sum_ij - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: &[f64], n: usize, spread: f64, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| center.iter().map(|&c| c + spread * (rng.gen::<f64>() - 0.5)).collect())
            .collect()
    }

    #[test]
    fn separates_well_separated_blobs() {
        let mut data = blob(&[0.0, 0.0], 30, 0.5, 1);
        data.extend(blob(&[10.0, 10.0], 30, 0.5, 2));
        let truth: Vec<usize> = (0..60).map(|i| i / 30).collect();
        let r = kmeans(&data, 2, 7, 100);
        assert!(adjusted_rand_index(&r.assignment, &truth) > 0.99);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut data = blob(&[0.0, 0.0, 0.0], 20, 1.0, 3);
        data.extend(blob(&[5.0, 5.0, 5.0], 20, 1.0, 4));
        let a = kmeans(&data, 2, 11, 100);
        let b = kmeans(&data, 2, 11, 100);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn handles_missing_features() {
        // Two blobs in dim 0; dim 1 is missing for half the points.
        let mut data: Vec<Vec<f64>> = Vec::new();
        for i in 0..40 {
            let x = if i < 20 { 0.0 } else { 10.0 };
            let y = if i % 2 == 0 { f64::NAN } else { x };
            data.push(vec![x + (i % 5) as f64 * 0.01, y]);
        }
        let truth: Vec<usize> = (0..40).map(|i| i / 20).collect();
        let r = kmeans(&data, 2, 5, 100);
        assert!(adjusted_rand_index(&r.assignment, &truth) > 0.99);
        // Centroids must be finite in the observed coordinate.
        for c in &r.centroids {
            assert!(c[0].is_finite());
        }
    }

    #[test]
    fn k_clamped_to_point_count() {
        let data = vec![vec![1.0], vec![2.0]];
        let r = kmeans(&data, 10, 1, 50);
        assert!(r.assignment.iter().all(|&c| c < 2));
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let mut data = blob(&[0.0, 0.0], 25, 2.0, 8);
        data.extend(blob(&[6.0, 0.0], 25, 2.0, 9));
        data.extend(blob(&[3.0, 6.0], 25, 2.0, 10));
        let r1 = kmeans(&data, 1, 3, 100);
        let r3 = kmeans(&data, 3, 3, 100);
        assert!(r3.inertia < r1.inertia);
    }

    #[test]
    fn ari_identical_and_permuted() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![2, 2, 0, 0, 1, 1]; // same partition, relabelled
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_single_cluster_degenerate() {
        let a = vec![0; 10];
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
    }

    #[test]
    fn ari_independent_labelings_near_zero() {
        // Checkerboard: every pair split evenly — ARI exactly computable.
        let a: Vec<usize> = (0..40).map(|i| i / 20).collect();
        let b: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari.abs() < 0.1, "ARI = {ari}");
    }

    #[test]
    #[should_panic(expected = "same points")]
    fn ari_length_mismatch_panics() {
        adjusted_rand_index(&[0, 1], &[0]);
    }

    #[test]
    fn single_point() {
        let r = kmeans(&[vec![3.0]], 1, 0, 10);
        assert_eq!(r.assignment, vec![0]);
        assert!((r.centroids[0][0] - 3.0).abs() < 1e-12);
        assert!(r.inertia < 1e-12);
    }
}
