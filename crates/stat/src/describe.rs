//! Descriptive statistics: means, variances, medians, correlation, RMSE.
//!
//! These back the evaluation metrics (Error Rate and MNAD, §6.2), the
//! correlation coefficient `W_jk` (Eq. 8) and the per-column z-scoring that
//! makes a single `ε` meaningful across heterogeneous continuous domains.

use crate::EPS;

/// Arithmetic mean; `0.0` for empty input.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Population variance (divides by `n`); `0.0` for empty input.
pub fn variance(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / data.len() as f64
}

/// Sample variance (divides by `n−1`); `0.0` for fewer than two points.
pub fn sample_variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (data.len() - 1) as f64
}

/// Population standard deviation.
pub fn std_dev(data: &[f64]) -> f64 {
    variance(data).sqrt()
}

/// Median (average of the two central order statistics for even length);
/// `0.0` for empty input. `O(n log n)`; does not mutate the input.
pub fn median(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = data.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Weighted mean `Σ wᵢxᵢ / Σ wᵢ`; panics if the total weight is not positive.
pub fn weighted_mean(values: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(values.len(), weights.len());
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "total weight must be positive");
    values.iter().zip(weights).map(|(x, w)| x * w).sum::<f64>() / total
}

/// Population covariance of two equally long slices.
pub fn covariance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    let (ma, mb) = (mean(a), mean(b));
    a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum::<f64>() / a.len() as f64
}

/// Pearson correlation coefficient; `0.0` when either side is (near-)constant.
///
/// This is exactly the paper's `W_jk` (Eq. 8) when applied to paired error
/// vectors of two attributes.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let va = variance(a);
    let vb = variance(b);
    if va <= EPS || vb <= EPS {
        return 0.0;
    }
    (covariance(a, b) / (va.sqrt() * vb.sqrt())).clamp(-1.0, 1.0)
}

/// Root-mean-squared error between predictions and ground truth.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    if pred.is_empty() {
        return 0.0;
    }
    let ss: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum();
    (ss / pred.len() as f64).sqrt()
}

/// Z-score transform parameters `(mean, std)` of a sample, with the std
/// floored at [`EPS`] so constant columns stay transformable.
pub fn zscore_params(data: &[f64]) -> (f64, f64) {
    (mean(data), std_dev(data).max(EPS))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basic() {
        let d = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&d), 2.5);
        assert!((variance(&d) - 1.25).abs() < 1e-12);
        assert!((sample_variance(&d) - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(rmse(&[], &[]), 0.0);
        assert_eq!(sample_variance(&[1.0]), 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn weighted_mean_matches_manual() {
        let v = weighted_mean(&[1.0, 3.0], &[1.0, 3.0]);
        assert!((v - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "total weight")]
    fn weighted_mean_rejects_zero_weight() {
        weighted_mean(&[1.0], &[0.0]);
    }

    #[test]
    fn pearson_perfect_and_constant() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [-1.0, -2.0, -3.0, -4.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
        let flat = [5.0; 4];
        assert_eq!(pearson(&a, &flat), 0.0);
    }

    #[test]
    fn pearson_bounded() {
        let a = [0.3, -1.2, 2.2, 0.1, -0.4];
        let b = [1.0, 0.2, -0.7, 0.9, 2.2];
        let r = pearson(&a, &b);
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn rmse_known_value() {
        let pred = [1.0, 2.0];
        let truth = [0.0, 4.0];
        // sqrt((1 + 4)/2)
        assert!((rmse(&pred, &truth) - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn zscore_params_floor_std() {
        let (_, s) = zscore_params(&[3.0, 3.0, 3.0]);
        assert!(s > 0.0);
    }
}
