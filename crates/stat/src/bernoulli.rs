//! Bernoulli distribution.
//!
//! The attribute-correlation model (paper Table 4) treats the error variable
//! `e_j` of a *categorical* column as Bernoulli: `e = 1` means the worker's
//! answer mismatched the estimated truth.

use crate::clamp_prob;
use rand::Rng;

/// A Bernoulli distribution `B(1, p)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    /// Success (error) probability, clamped to the open unit interval.
    pub p: f64,
}

impl Bernoulli {
    /// Create a Bernoulli distribution, clamping `p` into `(0, 1)`.
    pub fn new(p: f64) -> Self {
        Bernoulli { p: clamp_prob(p) }
    }

    /// Probability mass of outcome `x` (`true` ↦ `p`, `false` ↦ `1-p`).
    #[inline]
    pub fn pmf(&self, x: bool) -> f64 {
        if x {
            self.p
        } else {
            1.0 - self.p
        }
    }

    /// Shannon entropy in nats.
    pub fn entropy(&self) -> f64 {
        let p = self.p;
        -(p * p.ln() + (1.0 - p) * (1.0 - p).ln())
    }

    /// Maximum-likelihood estimate from a sequence of outcomes.
    ///
    /// Applies add-one (Laplace) smoothing so downstream conditionals never
    /// see a hard 0/1 probability from sparse data — the correlation model of
    /// §5.2 conditions on events that may have been observed only a handful
    /// of times.
    pub fn mle_smoothed(outcomes: impl IntoIterator<Item = bool>) -> Self {
        let mut n = 0u64;
        let mut k = 0u64;
        for o in outcomes {
            n += 1;
            if o {
                k += 1;
            }
        }
        Bernoulli::new((k as f64 + 1.0) / (n as f64 + 2.0))
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen_range(0.0..1.0) < self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn entropy_is_maximal_at_half() {
        let half = Bernoulli::new(0.5).entropy();
        assert!((half - std::f64::consts::LN_2).abs() < 1e-12);
        for p in [0.1, 0.3, 0.7, 0.95] {
            assert!(Bernoulli::new(p).entropy() < half, "p = {p}");
        }
    }

    #[test]
    fn entropy_is_symmetric() {
        for p in [0.05, 0.2, 0.41] {
            let a = Bernoulli::new(p).entropy();
            let b = Bernoulli::new(1.0 - p).entropy();
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn mle_with_smoothing() {
        // 3 successes out of 4 → (3+1)/(4+2) = 2/3.
        let fit = Bernoulli::mle_smoothed([true, true, true, false]);
        assert!((fit.p - 2.0 / 3.0).abs() < 1e-12);
        // Empty data → uniform prior 1/2.
        let empty = Bernoulli::mle_smoothed(std::iter::empty());
        assert!((empty.p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn smoothing_avoids_degenerate_probabilities() {
        let all_true = Bernoulli::mle_smoothed(std::iter::repeat_n(true, 5));
        assert!(all_true.p < 1.0);
        let all_false = Bernoulli::mle_smoothed(std::iter::repeat_n(false, 5));
        assert!(all_false.p > 0.0);
    }

    #[test]
    fn sampling_frequency() {
        let mut rng = StdRng::seed_from_u64(11);
        let b = Bernoulli::new(0.3);
        let hits = (0..50_000).filter(|_| b.sample(&mut rng)).count();
        let frac = hits as f64 / 50_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac = {frac}");
    }
}
