//! AVX2 wide batch path: 4 × f64 lanes per instruction.
//!
//! Every arithmetic step mirrors [`super::lane`] operation-for-operation
//! (same basic ops, same association, no FMA), so each SIMD lane computes
//! the exact bit pattern the scalar path computes for that element — IEEE
//! 754 basic operations are exactly rounded, which makes "same DAG ⇒ same
//! bits" a guarantee rather than a hope. The per-call sum uses the same
//! 4-lane accumulator tree as the generic path (`lane l` accumulates
//! elements `i ≡ l (mod 4)`), spilled and combined in the identical order.
//! Differential tests in `tests/prop_batch.rs` pin the equality.
//!
//! Safety: every function here is `#[target_feature(enable = "avx2")]` and
//! only reachable through [`super::BatchKernels`], which verifies
//! `is_x86_feature_detected!("avx2")` before constructing the AVX2 variant.
//! Gathers index the flat LUTs with indices clamped to the last interval,
//! so they stay in bounds for any finite non-negative input.

use super::lane;
use crate::EPS;
use std::arch::x86_64::*;
use std::f64::consts::FRAC_2_SQRT_PI;

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn splat(v: f64) -> __m256d {
    _mm256_set1_pd(v)
}

/// `e^x`, mirroring `lane::exp_lane`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn exp_pd(x: __m256d) -> __m256d {
    let shift = splat(lane::EXP_SHIFT);
    let kf = _mm256_add_pd(_mm256_mul_pd(x, splat(lane::EXP_INV_LN2)), shift);
    let kr = _mm256_sub_pd(kf, shift);
    let kc = _mm256_max_pd(_mm256_min_pd(kr, splat(2_000.0)), splat(-2_000.0));
    let ki32 = _mm256_cvttpd_epi32(kc); // exact: kc is integral
    let ki64 = _mm256_cvtepi32_epi64(ki32);
    let hi = _mm256_sub_pd(x, _mm256_mul_pd(kc, splat(lane::EXP_LN2_HI)));
    let r = _mm256_sub_pd(hi, _mm256_mul_pd(kc, splat(lane::EXP_LN2_LO)));
    let mut p = splat(lane::EXP_POLY[10]);
    let mut j = 10;
    while j > 0 {
        j -= 1;
        p = _mm256_add_pd(_mm256_mul_pd(p, r), splat(lane::EXP_POLY[j]));
    }
    let rr = _mm256_mul_pd(r, r);
    let er = _mm256_add_pd(splat(1.0), _mm256_add_pd(r, _mm256_mul_pd(rr, p)));
    let biased = _mm256_add_epi64(ki64, _mm256_set1_epi64x(1023));
    let scale = _mm256_castsi256_pd(_mm256_slli_epi64::<52>(biased));
    let v = _mm256_mul_pd(er, scale);
    let hi_mask = _mm256_cmp_pd::<_CMP_GT_OQ>(x, splat(lane::EXP_HI));
    let v = _mm256_blendv_pd(v, splat(f64::INFINITY), hi_mask);
    let lo_mask = _mm256_cmp_pd::<_CMP_LT_OQ>(x, splat(lane::EXP_LO));
    _mm256_blendv_pd(v, _mm256_setzero_pd(), lo_mask)
}

/// Pack the low dword of each 64-bit lane into a `__m128i` of four i32s.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn qword_lo_dwords(v: __m256i) -> __m128i {
    let idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
    _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(v, idx))
}

/// `ln x` for positive normal lanes, mirroring `lane::ln_lane`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn ln_pd(x: __m256d) -> __m256d {
    let ix = _mm256_castpd_si256(x);
    let mant = _mm256_and_si256(ix, _mm256_set1_epi64x(lane::LN_MANT_MASK as i64));
    let i = _mm256_and_si256(
        _mm256_add_epi64(mant, _mm256_set1_epi64x(lane::LN_SQRT2_ADJ as i64)),
        _mm256_set1_epi64x(lane::LN_HIDDEN_BIT as i64),
    );
    let mi =
        _mm256_or_si256(mant, _mm256_xor_si256(i, _mm256_set1_epi64x(lane::LN_ONE_BITS as i64)));
    let ke = _mm256_add_epi64(
        _mm256_sub_epi64(_mm256_srli_epi64::<52>(ix), _mm256_set1_epi64x(1023)),
        _mm256_srli_epi64::<52>(i),
    );
    let dk = _mm256_cvtepi32_pd(qword_lo_dwords(ke));
    let m = _mm256_castsi256_pd(mi);
    let f = _mm256_sub_pd(m, splat(1.0));
    let hfsq = _mm256_mul_pd(_mm256_mul_pd(splat(0.5), f), f);
    let s = _mm256_div_pd(f, _mm256_add_pd(splat(2.0), f));
    let z = _mm256_mul_pd(s, s);
    let w = _mm256_mul_pd(z, z);
    let t1 = _mm256_mul_pd(
        w,
        _mm256_add_pd(
            splat(lane::LN_LG2),
            _mm256_mul_pd(
                w,
                _mm256_add_pd(splat(lane::LN_LG4), _mm256_mul_pd(w, splat(lane::LN_LG6))),
            ),
        ),
    );
    let t2 = _mm256_mul_pd(
        z,
        _mm256_add_pd(
            splat(lane::LN_LG1),
            _mm256_mul_pd(
                w,
                _mm256_add_pd(
                    splat(lane::LN_LG3),
                    _mm256_mul_pd(
                        w,
                        _mm256_add_pd(splat(lane::LN_LG5), _mm256_mul_pd(w, splat(lane::LN_LG7))),
                    ),
                ),
            ),
        ),
    );
    let r = _mm256_add_pd(t2, t1);
    // dk·ln2_hi - ((hfsq - (s·(hfsq+r) + dk·ln2_lo)) - f)
    let inner = _mm256_add_pd(
        _mm256_mul_pd(s, _mm256_add_pd(hfsq, r)),
        _mm256_mul_pd(dk, splat(lane::LN_LN2_LO)),
    );
    _mm256_sub_pd(
        _mm256_mul_pd(dk, splat(lane::LN_LN2_HI)),
        _mm256_sub_pd(_mm256_sub_pd(hfsq, inner), f),
    )
}

/// Cubic Hermite gather-evaluate on a flat node table, mirroring
/// `lane::hermite_lane`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hermite_pd(nodes: *const f64, x: __m256d) -> __m256d {
    let pos = _mm256_mul_pd(x, splat(lane::GRID_SCALE));
    let posc = _mm256_min_pd(pos, splat(lane::GRID_LAST));
    let i32v = _mm256_cvttpd_epi32(posc);
    let di = _mm256_cvtepi32_pd(i32v);
    let t = _mm256_sub_pd(pos, di);
    let base = _mm_slli_epi32::<1>(i32v); // node pair → flat index 2i
    let f0 = _mm256_i32gather_pd::<8>(nodes, base);
    let hd0 = _mm256_i32gather_pd::<8>(nodes.add(1), base);
    let f1 = _mm256_i32gather_pd::<8>(nodes.add(2), base);
    let hd1 = _mm256_i32gather_pd::<8>(nodes.add(3), base);
    let t2 = _mm256_mul_pd(t, t);
    let t3 = _mm256_mul_pd(t2, t);
    let w0 = _mm256_add_pd(
        _mm256_sub_pd(_mm256_mul_pd(splat(2.0), t3), _mm256_mul_pd(splat(3.0), t2)),
        splat(1.0),
    );
    let w1 = _mm256_add_pd(_mm256_sub_pd(t3, _mm256_mul_pd(splat(2.0), t2)), t);
    let w2 = _mm256_add_pd(_mm256_mul_pd(splat(-2.0), t3), _mm256_mul_pd(splat(3.0), t2));
    let w3 = _mm256_sub_pd(t3, t2);
    _mm256_add_pd(
        _mm256_add_pd(
            _mm256_add_pd(_mm256_mul_pd(w0, f0), _mm256_mul_pd(w1, hd0)),
            _mm256_mul_pd(w2, f1),
        ),
        _mm256_mul_pd(w3, hd1),
    )
}

/// Wide quality pair: `(q, dq/d ln v)` lanes, mirroring
/// `lane::quality_pair_lane`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn quality_pair_pd(
    erf_nodes: *const f64,
    gauss_nodes: *const f64,
    scaled_eps: __m256d,
    ln_v: __m256d,
) -> (__m256d, __m256d) {
    let x = _mm256_mul_pd(scaled_eps, exp_pd(_mm256_mul_pd(splat(-0.5), ln_v)));
    let wide = _mm256_cmp_pd::<_CMP_GE_OQ>(x, splat(lane::GRID_X_MAX));
    let e = _mm256_blendv_pd(hermite_pd(erf_nodes, x), splat(1.0), wide);
    let q = _mm256_min_pd(_mm256_max_pd(e, splat(EPS)), splat(1.0 - EPS));
    let gs = _mm256_blendv_pd(hermite_pd(gauss_nodes, x), _mm256_setzero_pd(), wide);
    let dq = _mm256_mul_pd(_mm256_mul_pd(splat(FRAC_2_SQRT_PI), gs), _mm256_mul_pd(x, splat(-0.5)));
    (q, dq)
}

/// See [`super::BatchKernels::gaussian_terms`].
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn gaussian_terms(ln_v: &[f64], k: &[f64], grad: &mut [f64]) -> f64 {
    let n = ln_v.len();
    let n4 = n - (n % 4);
    let mut vacc = _mm256_setzero_pd();
    let mut i = 0;
    while i < n4 {
        let lv = _mm256_loadu_pd(ln_v.as_ptr().add(i));
        let kv = _mm256_loadu_pd(k.as_ptr().add(i));
        let v = exp_pd(lv);
        let h = _mm256_div_pd(kv, _mm256_mul_pd(splat(2.0), v));
        // -0.5·(LN_2PI + ln v) - h
        let term =
            _mm256_sub_pd(_mm256_mul_pd(splat(-0.5), _mm256_add_pd(splat(lane::LN_2PI), lv)), h);
        let g = _mm256_add_pd(splat(-0.5), h);
        vacc = _mm256_add_pd(vacc, term);
        _mm256_storeu_pd(grad.as_mut_ptr().add(i), g);
        i += 4;
    }
    let mut acc = [0.0f64; 4];
    _mm256_storeu_pd(acc.as_mut_ptr(), vacc);
    for l in 0..(n - n4) {
        let (term, g) = lane::gaussian_lane(ln_v[n4 + l], k[n4 + l]);
        acc[l] += term;
        grad[n4 + l] = g;
    }
    super::generic::combine(acc)
}

/// See [`super::BatchKernels::quality_terms`].
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn quality_terms(
    scaled_eps: f64,
    ln_v: &[f64],
    p: &[f64],
    c: &[f64],
    grad: &mut [f64],
) -> f64 {
    let erf_nodes = crate::lut::erf_nodes_flat();
    let gauss_nodes = crate::lut::gauss_nodes_flat();
    let erf_ptr = erf_nodes.as_ptr();
    let gauss_ptr = gauss_nodes.as_ptr();
    let eps_v = splat(scaled_eps);
    let n = ln_v.len();
    let n4 = n - (n % 4);
    let mut vacc = _mm256_setzero_pd();
    let mut i = 0;
    while i < n4 {
        let lv = _mm256_loadu_pd(ln_v.as_ptr().add(i));
        let pv = _mm256_loadu_pd(p.as_ptr().add(i));
        let cv = _mm256_loadu_pd(c.as_ptr().add(i));
        let (q, dq) = quality_pair_pd(erf_ptr, gauss_ptr, eps_v, lv);
        let omq = _mm256_sub_pd(splat(1.0), q);
        let omp = _mm256_sub_pd(splat(1.0), pv);
        let lq = ln_pd(q);
        let lomq = ln_pd(omq);
        // (p·ln q + (1-p)·ln(1-q)) - c
        let term =
            _mm256_sub_pd(_mm256_add_pd(_mm256_mul_pd(pv, lq), _mm256_mul_pd(omp, lomq)), cv);
        // (p/q - (1-p)/(1-q)) · dq
        let g = _mm256_mul_pd(_mm256_sub_pd(_mm256_div_pd(pv, q), _mm256_div_pd(omp, omq)), dq);
        vacc = _mm256_add_pd(vacc, term);
        _mm256_storeu_pd(grad.as_mut_ptr().add(i), g);
        i += 4;
    }
    let mut acc = [0.0f64; 4];
    _mm256_storeu_pd(acc.as_mut_ptr(), vacc);
    for l in 0..(n - n4) {
        let (term, g) = lane::quality_term_lane(
            erf_nodes,
            gauss_nodes,
            scaled_eps,
            ln_v[n4 + l],
            p[n4 + l],
            c[n4 + l],
        );
        acc[l] += term;
        grad[n4 + l] = g;
    }
    super::generic::combine(acc)
}

/// See [`super::BatchKernels::quality_pairs_from_ln_variance`].
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn quality_pairs(scaled_eps: f64, ln_v: &[f64], q: &mut [f64], dq: &mut [f64]) {
    let erf_nodes = crate::lut::erf_nodes_flat();
    let gauss_nodes = crate::lut::gauss_nodes_flat();
    let eps_v = splat(scaled_eps);
    let n = ln_v.len();
    let n4 = n - (n % 4);
    let mut i = 0;
    while i < n4 {
        let lv = _mm256_loadu_pd(ln_v.as_ptr().add(i));
        let (qv, dv) = quality_pair_pd(erf_nodes.as_ptr(), gauss_nodes.as_ptr(), eps_v, lv);
        _mm256_storeu_pd(q.as_mut_ptr().add(i), qv);
        _mm256_storeu_pd(dq.as_mut_ptr().add(i), dv);
        i += 4;
    }
    for j in n4..n {
        let (qi, di) = lane::quality_pair_lane(erf_nodes, gauss_nodes, scaled_eps, ln_v[j]);
        q[j] = qi;
        dq[j] = di;
    }
}
