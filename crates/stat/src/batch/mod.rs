//! Vectorized batch kernels for the EM M-step hot loop.
//!
//! The M-step objective is, per answer, one `exp`, an erf-family lookup and
//! two `ln`s — evaluated tens of millions of times per inference. This
//! module provides those per-answer terms as *batch* kernels over `&[f64]`
//! slices, in two interchangeable paths:
//!
//! * [`generic`] — portable scalar code, four independent lane accumulators;
//! * [`avx2`] — 4 × f64 AVX2 lanes behind **runtime** feature detection.
//!
//! The two paths execute the identical IEEE-754 operation DAG (see
//! [`lane`]) and the identical lane-accumulator tree, so they are
//! **bit-equal** — differential-tested in `tests/prop_batch.rs` and gated in
//! CI. Callers therefore never have to care which path ran, and results are
//! reproducible across machines with and without AVX2.
//!
//! Path selection: [`BatchKernels::auto`] picks AVX2 when the CPU supports
//! it; the `TCROWD_KERNELS` environment variable (`generic` or `avx2`)
//! overrides, which is how CI pins the portable path and how a deployment
//! can be forced to a known path. [`kernels`] caches the decision
//! process-wide.

pub(crate) mod lane;

pub(crate) mod generic;

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
pub(crate) mod avx2;

use std::f64::consts::SQRT_2;
use std::sync::OnceLock;

/// Which implementation a [`BatchKernels`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// Portable scalar path (always available).
    Generic,
    /// 4-wide AVX2 path (x86-64 with AVX2 only).
    Avx2,
}

impl KernelPath {
    /// Stable lowercase name, used in benches, `/stats` and CI gates.
    pub fn name(self) -> &'static str {
        match self {
            KernelPath::Generic => "generic",
            KernelPath::Avx2 => "avx2",
        }
    }
}

/// Resolved batch-kernel dispatcher. Copy-cheap; construct via
/// [`BatchKernels::auto`] or grab the process-wide one with [`kernels`].
#[derive(Debug, Clone, Copy)]
pub struct BatchKernels {
    path: KernelPath,
}

fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

impl BatchKernels {
    /// Pick the widest path the running CPU supports.
    pub fn auto() -> BatchKernels {
        BatchKernels { path: if avx2_available() { KernelPath::Avx2 } else { KernelPath::Generic } }
    }

    /// Force a specific path; `None` if the host cannot run it.
    pub fn with_path(path: KernelPath) -> Option<BatchKernels> {
        match path {
            KernelPath::Generic => Some(BatchKernels { path }),
            KernelPath::Avx2 => avx2_available().then_some(BatchKernels { path }),
        }
    }

    /// The path this dispatcher runs.
    pub fn path(&self) -> KernelPath {
        self.path
    }

    /// Gaussian per-answer objective terms for continuous columns.
    ///
    /// For each `i` with effective log-variance `ln_v[i]` and posterior
    /// second moment `k[i] = (a - μ)² + σ²`, writes the gradient
    /// `d/d ln v = -½ + k/2v` into `grad[i]` and returns the summed
    /// objective contribution `Σ -½(ln 2π + ln v) - k/2v`.
    pub fn gaussian_terms(&self, ln_v: &[f64], k: &[f64], grad: &mut [f64]) -> f64 {
        assert_eq!(ln_v.len(), k.len());
        assert_eq!(ln_v.len(), grad.len());
        match self.path {
            KernelPath::Generic => generic::gaussian_terms(ln_v, k, grad),
            #[cfg(target_arch = "x86_64")]
            #[allow(unsafe_code)]
            // SAFETY: `Avx2` is only constructed when `avx2_available()`.
            KernelPath::Avx2 => unsafe { avx2::gaussian_terms(ln_v, k, grad) },
            #[cfg(not(target_arch = "x86_64"))]
            KernelPath::Avx2 => unreachable!("avx2 path on non-x86_64"),
        }
    }

    /// Categorical per-answer objective terms (paper Eq. 2/5).
    ///
    /// For each `i` with log-variance `ln_v[i]`, posterior hit probability
    /// `p[i]` and precomputed miss constant `c[i] = (1-p[i])·ln(L-1)`,
    /// writes `(p/q - (1-p)/(1-q))·dq/d ln v` into `grad[i]` and returns
    /// `Σ p·ln q + (1-p)·ln(1-q) - c`, where `q = erf(ε/√(2v))` clamped
    /// into `(EPS, 1-EPS)`.
    pub fn quality_terms(
        &self,
        epsilon: f64,
        ln_v: &[f64],
        p: &[f64],
        c: &[f64],
        grad: &mut [f64],
    ) -> f64 {
        assert_eq!(ln_v.len(), p.len());
        assert_eq!(ln_v.len(), c.len());
        assert_eq!(ln_v.len(), grad.len());
        debug_assert!(epsilon > 0.0, "quality link needs ε > 0");
        let scaled = epsilon / SQRT_2;
        match self.path {
            KernelPath::Generic => generic::quality_terms(scaled, ln_v, p, c, grad),
            #[cfg(target_arch = "x86_64")]
            #[allow(unsafe_code)]
            // SAFETY: `Avx2` is only constructed when `avx2_available()`.
            KernelPath::Avx2 => unsafe { avx2::quality_terms(scaled, ln_v, p, c, grad) },
            #[cfg(not(target_arch = "x86_64"))]
            KernelPath::Avx2 => unreachable!("avx2 path on non-x86_64"),
        }
    }

    /// Batch form of the scalar quality link: for each `ln_v[i]` write
    /// `q[i] = clamp(erf(ε/√(2v)))` and `dq[i] = dq/d ln v`.
    pub fn quality_pairs_from_ln_variance(
        &self,
        epsilon: f64,
        ln_v: &[f64],
        q: &mut [f64],
        dq: &mut [f64],
    ) {
        assert_eq!(ln_v.len(), q.len());
        assert_eq!(ln_v.len(), dq.len());
        debug_assert!(epsilon > 0.0, "quality link needs ε > 0");
        let scaled = epsilon / SQRT_2;
        match self.path {
            KernelPath::Generic => generic::quality_pairs(scaled, ln_v, q, dq),
            #[cfg(target_arch = "x86_64")]
            #[allow(unsafe_code)]
            // SAFETY: `Avx2` is only constructed when `avx2_available()`.
            KernelPath::Avx2 => unsafe { avx2::quality_pairs(scaled, ln_v, q, dq) },
            #[cfg(not(target_arch = "x86_64"))]
            KernelPath::Avx2 => unreachable!("avx2 path on non-x86_64"),
        }
    }
}

/// Process-wide kernel dispatcher: auto-detected once, overridable with
/// `TCROWD_KERNELS=generic|avx2` (an unsupported request falls back to
/// [`KernelPath::Generic`]).
pub fn kernels() -> BatchKernels {
    static KERNELS: OnceLock<BatchKernels> = OnceLock::new();
    *KERNELS.get_or_init(|| match std::env::var("TCROWD_KERNELS").as_deref() {
        Ok("generic") => BatchKernels { path: KernelPath::Generic },
        Ok("avx2") => BatchKernels::with_path(KernelPath::Avx2)
            .unwrap_or(BatchKernels { path: KernelPath::Generic }),
        _ => BatchKernels::auto(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clamp_prob;
    use crate::lut::{erf_fast, exp_neg_sq_fast};

    fn sample_ln_v() -> Vec<f64> {
        let mut v = vec![-12.0, -6.0, -1.0, -1e-9, 0.0, 1e-9, 0.5, 3.0, 6.0, 11.99, 12.0];
        for i in 0..40 {
            v.push(-12.0 + i as f64 * 0.61); // sweep the clamp range
        }
        v
    }

    #[test]
    fn gaussian_terms_match_naive_scalar() {
        let g = BatchKernels::with_path(KernelPath::Generic).unwrap();
        let ln_v = sample_ln_v();
        let k: Vec<f64> = ln_v.iter().enumerate().map(|(i, _)| 0.01 + i as f64 * 0.37).collect();
        let mut grad = vec![0.0; ln_v.len()];
        let total = g.gaussian_terms(&ln_v, &k, &mut grad);
        let mut naive = 0.0;
        for i in 0..ln_v.len() {
            let v = ln_v[i].exp();
            naive += -0.5 * (lane::LN_2PI + ln_v[i]) - k[i] / (2.0 * v);
            let expect = -0.5 + k[i] / (2.0 * v);
            assert!(
                (grad[i] - expect).abs() <= 1e-12 * expect.abs().max(1.0),
                "grad[{i}] = {} vs {}",
                grad[i],
                expect
            );
        }
        assert!((total - naive).abs() <= 1e-9 * naive.abs().max(1.0), "{total} vs {naive}");
    }

    #[test]
    fn quality_pairs_match_scalar_lut_link() {
        let g = BatchKernels::with_path(KernelPath::Generic).unwrap();
        let ln_v = sample_ln_v();
        let eps = 0.5;
        let mut q = vec![0.0; ln_v.len()];
        let mut dq = vec![0.0; ln_v.len()];
        g.quality_pairs_from_ln_variance(eps, &ln_v, &mut q, &mut dq);
        for i in 0..ln_v.len() {
            let x = (eps / SQRT_2) * (-0.5 * ln_v[i]).exp();
            let expect_q = clamp_prob(erf_fast(x));
            let expect_dq = std::f64::consts::FRAC_2_SQRT_PI * exp_neg_sq_fast(x) * (-x / 2.0);
            assert!((q[i] - expect_q).abs() < 1e-12, "q[{i}]: {} vs {expect_q}", q[i]);
            assert!((dq[i] - expect_dq).abs() < 1e-12, "dq[{i}]: {} vs {expect_dq}", dq[i]);
        }
    }

    #[test]
    fn quality_terms_match_naive_scalar() {
        let g = BatchKernels::with_path(KernelPath::Generic).unwrap();
        let ln_v = sample_ln_v();
        let n = ln_v.len();
        let eps = 1.25;
        let p: Vec<f64> = (0..n).map(|i| clamp_prob(0.03 + 0.92 * (i as f64 / n as f64))).collect();
        let card1 = 3.0f64;
        let c: Vec<f64> = p.iter().map(|pi| (1.0 - pi) * card1.ln()).collect();
        let mut grad = vec![0.0; n];
        let total = g.quality_terms(eps, &ln_v, &p, &c, &mut grad);
        let mut naive = 0.0;
        for i in 0..n {
            let x = (eps / SQRT_2) * (-0.5 * ln_v[i]).exp();
            let q = clamp_prob(erf_fast(x));
            let dq = std::f64::consts::FRAC_2_SQRT_PI * exp_neg_sq_fast(x) * (-x / 2.0);
            naive += p[i] * q.ln() + (1.0 - p[i]) * ((1.0 - q) / card1).ln();
            let expect = (p[i] / q - (1.0 - p[i]) / (1.0 - q)) * dq;
            assert!(
                (grad[i] - expect).abs() <= 1e-9 * expect.abs().max(1.0),
                "grad[{i}] = {} vs {}",
                grad[i],
                expect
            );
        }
        assert!((total - naive).abs() <= 1e-9 * naive.abs().max(1.0), "{total} vs {naive}");
    }

    #[test]
    fn empty_slices_are_fine() {
        let k = kernels();
        assert_eq!(k.gaussian_terms(&[], &[], &mut []), 0.0);
        assert_eq!(k.quality_terms(1.0, &[], &[], &[], &mut []), 0.0);
    }

    #[test]
    fn env_override_is_respected_by_with_path() {
        // `kernels()` itself caches process-wide, so test the constructor.
        assert_eq!(BatchKernels::with_path(KernelPath::Generic).unwrap().path().name(), "generic");
        if let Some(k) = BatchKernels::with_path(KernelPath::Avx2) {
            assert_eq!(k.path().name(), "avx2");
        }
    }
}
