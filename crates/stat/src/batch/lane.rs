//! Per-lane math shared between the generic and AVX2 batch paths.
//!
//! Everything here is written so that a 4-wide SIMD implementation can mirror
//! it *operation for operation*: IEEE 754 requires `+`, `-`, `×`, `÷` to be
//! exactly rounded, so two implementations that perform the same basic
//! operations in the same order produce bit-identical results whether the
//! lanes live in scalar registers or in one `__m256d`. The rules that make
//! this hold:
//!
//! * no fused multiply-add (Rust never contracts `a * b + c` implicitly, and
//!   the AVX2 path deliberately uses separate `mul`/`add`);
//! * no libm calls in the hot path — `exp` and `ln` are implemented below
//!   from basic operations and bit manipulation (libm's versions are not
//!   reproducible lane-wise);
//! * `min`/`max` use the SSE operand convention (`min(a,b) = a < b ? a : b`),
//!   see [`fmin`] / [`fmax`];
//! * float→int conversions only ever truncate integral values, where scalar
//!   `as` casts and `_mm256_cvttpd_epi32` agree exactly.
//!
//! Accuracy: [`exp_lane`] / [`ln_lane`] follow the classic Cody–Waite /
//! fdlibm constructions and are accurate to a few ulp (≲ 1e-15 relative) —
//! two orders of magnitude below the ~4e-12 interpolation error the quality
//! link already tolerates from [`crate::lut`].

// The Cody–Waite split constants below keep fdlibm's published digit
// strings; truncating them to shortest-roundtrip form would obscure their
// provenance without changing the bits.
#![allow(clippy::excessive_precision)]

use crate::EPS;
use std::f64::consts::FRAC_2_SQRT_PI;

/// `min` with SSE semantics: returns `b` on ties (and on NaN `a`).
///
/// This is exactly `_mm256_min_pd(a, b)`; for the non-NaN inputs the kernels
/// produce it is value-equal to `f64::min`.
#[inline(always)]
pub(crate) fn fmin(a: f64, b: f64) -> f64 {
    if a < b {
        a
    } else {
        b
    }
}

/// `max` with SSE semantics: returns `b` on ties (and on NaN `a`).
#[inline(always)]
pub(crate) fn fmax(a: f64, b: f64) -> f64 {
    if a > b {
        a
    } else {
        b
    }
}

// ---------------------------------------------------------------------------
// exp
// ---------------------------------------------------------------------------

pub(crate) const EXP_INV_LN2: f64 = std::f64::consts::LOG2_E;
/// `1.5 × 2^52`: adding and subtracting this rounds to the nearest integer
/// (ties to even) for |x| < 2^51 — the branch-free `round` both paths share.
pub(crate) const EXP_SHIFT: f64 = 6_755_399_441_055_744.0;
/// High/low split of ln 2 (Cody–Waite), from fdlibm.
pub(crate) const EXP_LN2_HI: f64 = 6.931_471_803_691_238_164_90e-01;
pub(crate) const EXP_LN2_LO: f64 = 1.908_214_929_270_587_700_02e-10;
/// Taylor coefficients `1/k!` for `k = 2..=12`, Horner order (index 0 = 1/2!).
pub(crate) const EXP_POLY: [f64; 11] = [
    0.5,
    1.0 / 6.0,
    1.0 / 24.0,
    1.0 / 120.0,
    1.0 / 720.0,
    1.0 / 5_040.0,
    1.0 / 40_320.0,
    1.0 / 362_880.0,
    1.0 / 3_628_800.0,
    1.0 / 39_916_800.0,
    1.0 / 479_001_600.0,
];
/// Saturation rails: above, the result is +∞; below, it is flushed to 0
/// (the 2^k bit-trick cannot represent subnormal scales, so the subnormal
/// tail `x ∈ (-745, -708)` flushes too — irrelevant at the magnitudes the
/// EM objective produces, and identical in both paths).
pub(crate) const EXP_HI: f64 = 709.0;
pub(crate) const EXP_LO: f64 = -708.0;

/// `e^x` from basic operations only; both batch paths mirror this exactly.
#[inline(always)]
pub(crate) fn exp_lane(x: f64) -> f64 {
    let kf = x * EXP_INV_LN2 + EXP_SHIFT;
    let kr = kf - EXP_SHIFT; // round-to-nearest-integer of x/ln2
    let kc = fmax(fmin(kr, 2_000.0), -2_000.0); // keep the int cast in range
    let ki = kc as i64; // exact: kc is integral
    let hi = x - kc * EXP_LN2_HI;
    let r = hi - kc * EXP_LN2_LO;
    let mut p = EXP_POLY[10];
    let mut j = 10;
    while j > 0 {
        j -= 1;
        p = p * r + EXP_POLY[j];
    }
    let rr = r * r;
    let er = 1.0 + (r + rr * p);
    let scale = f64::from_bits(((ki + 1023) << 52) as u64);
    let v = er * scale;
    let v = if x > EXP_HI { f64::INFINITY } else { v };
    if x < EXP_LO {
        0.0
    } else {
        v
    }
}

// ---------------------------------------------------------------------------
// ln
// ---------------------------------------------------------------------------

/// fdlibm `log` constants.
pub(crate) const LN_LN2_HI: f64 = 6.931_471_803_691_238_164_90e-01;
pub(crate) const LN_LN2_LO: f64 = 1.908_214_929_270_587_700_02e-10;
pub(crate) const LN_LG1: f64 = 6.666_666_666_666_735_130e-01;
pub(crate) const LN_LG2: f64 = 3.999_999_999_940_941_908e-01;
pub(crate) const LN_LG3: f64 = 2.857_142_874_366_239_149e-01;
pub(crate) const LN_LG4: f64 = 2.222_219_843_214_978_396e-01;
pub(crate) const LN_LG5: f64 = 1.818_357_216_161_805_012e-01;
pub(crate) const LN_LG6: f64 = 1.531_383_769_920_937_332e-01;
pub(crate) const LN_LG7: f64 = 1.479_819_860_511_658_591e-01;
pub(crate) const LN_MANT_MASK: u64 = 0x000F_FFFF_FFFF_FFFF;
/// Adding this to the mantissa carries into the hidden bit exactly when the
/// mantissa fraction is ≥ √2 - 1 (fdlibm's `0x95f64` threshold).
pub(crate) const LN_SQRT2_ADJ: u64 = 0x0009_5F64_0000_0000;
pub(crate) const LN_HIDDEN_BIT: u64 = 0x0010_0000_0000_0000;
pub(crate) const LN_ONE_BITS: u64 = 0x3FF0_0000_0000_0000;

/// `ln x` for finite positive *normal* `x` (the kernels only ever pass
/// probabilities clamped into `[EPS, 1-EPS]`); fdlibm construction.
#[inline(always)]
pub(crate) fn ln_lane(x: f64) -> f64 {
    let ix = x.to_bits();
    let mant = ix & LN_MANT_MASK;
    let i = mant.wrapping_add(LN_SQRT2_ADJ) & LN_HIDDEN_BIT;
    let mi = mant | (i ^ LN_ONE_BITS); // exponent 0x3ff, or 0x3fe if m ≥ √2
    let k = ((ix >> 52) as i64) - 1023 + ((i >> 52) as i64);
    let m = f64::from_bits(mi); // x = m · 2^k, m ∈ [√2/2, √2)
    let f = m - 1.0;
    let hfsq = (0.5 * f) * f;
    let s = f / (2.0 + f);
    let z = s * s;
    let w = z * z;
    let t1 = w * (LN_LG2 + w * (LN_LG4 + w * LN_LG6));
    let t2 = z * (LN_LG1 + w * (LN_LG3 + w * (LN_LG5 + w * LN_LG7)));
    let r = t2 + t1;
    let dk = k as f64;
    dk * LN_LN2_HI - ((hfsq - (s * (hfsq + r) + dk * LN_LN2_LO)) - f)
}

// ---------------------------------------------------------------------------
// Hermite interpolation on the flat LUTs
// ---------------------------------------------------------------------------

/// Grid constants mirrored from [`crate::lut`] (512 intervals/unit on [0,6]).
pub(crate) const GRID_SCALE: f64 = crate::lut::PER_UNIT as f64;
pub(crate) const GRID_LAST: f64 = (crate::lut::N - 1) as f64;
pub(crate) const GRID_X_MAX: f64 = crate::lut::X_MAX;

/// Cubic Hermite evaluation on a flat `[f, H·d, …]` node table.
///
/// Bit-identical to `lut::Table::eval` for `x ∈ [0, X_MAX)` — same index
/// computation, same weight expressions, same left-associated final sum —
/// so the batch kernels reproduce `erf_fast` / `exp_neg_sq_fast` exactly.
#[inline(always)]
pub(crate) fn hermite_lane(nodes: &[f64], x: f64) -> f64 {
    let pos = x * GRID_SCALE;
    let posc = fmin(pos, GRID_LAST); // clamp the *index*, not t (matches lut)
    let i = posc as i32; // truncate; exact mirror of cvttpd
    let t = pos - i as f64;
    let base = i as usize * 2;
    let f0 = nodes[base];
    let hd0 = nodes[base + 1];
    let f1 = nodes[base + 2];
    let hd1 = nodes[base + 3];
    let t2 = t * t;
    let t3 = t2 * t;
    (((2.0 * t3 - 3.0 * t2 + 1.0) * f0) + ((t3 - 2.0 * t2 + t) * hd0))
        + ((-2.0 * t3 + 3.0 * t2) * f1)
        + ((t3 - t2) * hd1)
}

// ---------------------------------------------------------------------------
// Fused per-answer terms
// ---------------------------------------------------------------------------

/// Natural log of 2π (the Gaussian normaliser).
pub(crate) const LN_2PI: f64 = 1.837_877_066_409_345_3;

/// Gaussian per-answer term: given `ln v` and `k = (a - μ)² + σ²`, returns
/// `(-½(ln 2π + ln v) - k/2v,  -½ + k/2v)` — the objective contribution and
/// `d/d ln v`.
#[inline(always)]
pub(crate) fn gaussian_lane(ln_v: f64, k: f64) -> (f64, f64) {
    let v = exp_lane(ln_v);
    let h = k / (2.0 * v);
    let term = -0.5 * (LN_2PI + ln_v) - h;
    let g = -0.5 + h;
    (term, g)
}

/// Categorical quality pair: `q = clamp(erf(ε/√(2v)))` and `dq/d ln v`.
///
/// `scaled_eps` is `ε/√2`, hoisted out of the loop by the caller.
#[inline(always)]
pub(crate) fn quality_pair_lane(
    erf_nodes: &[f64],
    gauss_nodes: &[f64],
    scaled_eps: f64,
    ln_v: f64,
) -> (f64, f64) {
    let x = scaled_eps * exp_lane(-0.5 * ln_v);
    let wide = x >= GRID_X_MAX;
    let e = if wide { 1.0 } else { hermite_lane(erf_nodes, x) };
    let q = fmin(fmax(e, EPS), 1.0 - EPS);
    let gs = if wide { 0.0 } else { hermite_lane(gauss_nodes, x) };
    let dq = FRAC_2_SQRT_PI * gs * (x * -0.5);
    (q, dq)
}

/// Categorical per-answer objective term and gradient: given the posterior
/// hit probability `p` and the precomputed miss constant
/// `c = (1-p)·ln(L-1)`, returns
/// `(p·ln q + (1-p)·ln(1-q) - c,  (p/q - (1-p)/(1-q))·dq)`.
#[inline(always)]
pub(crate) fn quality_term_lane(
    erf_nodes: &[f64],
    gauss_nodes: &[f64],
    scaled_eps: f64,
    ln_v: f64,
    p: f64,
    c: f64,
) -> (f64, f64) {
    let (q, dq) = quality_pair_lane(erf_nodes, gauss_nodes, scaled_eps, ln_v);
    let omq = 1.0 - q;
    let omp = 1.0 - p;
    let lq = ln_lane(q);
    let lomq = ln_lane(omq);
    let term = (p * lq + omp * lomq) - c;
    let g = (p / q - omp / omq) * dq;
    (term, g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_lane_tracks_libm() {
        let mut worst = 0.0f64;
        for i in -30_000..=30_000 {
            let x = i as f64 * 1e-3; // [-30, 30]
            let rel = (exp_lane(x) - x.exp()).abs() / x.exp();
            worst = worst.max(rel);
        }
        assert!(worst < 5e-15, "worst exp relative error {worst:e}");
        assert_eq!(exp_lane(0.0), 1.0);
        assert_eq!(exp_lane(f64::from_bits(0x8000000000000000)), 1.0); // -0.0
        assert_eq!(exp_lane(1000.0), f64::INFINITY);
        assert_eq!(exp_lane(-1000.0), 0.0);
    }

    #[test]
    fn exp_lane_handles_large_finite_inputs() {
        // Near the rails the result stays finite/saturated, never NaN.
        let v = exp_lane(708.9);
        assert!(v.is_finite() && v > 1e307, "exp(708.9) = {v:e}");
        assert_eq!(exp_lane(709.1), f64::INFINITY);
        assert_eq!(exp_lane(-708.1), 0.0);
        assert_eq!(exp_lane(1e308), f64::INFINITY);
        assert_eq!(exp_lane(-1e308), 0.0);
    }

    #[test]
    fn ln_lane_tracks_libm() {
        let mut worst = 0.0f64;
        let mut x = 1e-12;
        while x < 1.0 {
            let rel = (ln_lane(x) - x.ln()).abs() / x.ln().abs().max(1e-300);
            worst = worst.max(rel);
            x *= 1.000_37;
        }
        // Also the near-1 region where ln → 0 (absolute check there).
        for i in 1..1000 {
            let x = 1.0 - i as f64 * 1e-6;
            assert!((ln_lane(x) - x.ln()).abs() < 1e-16, "ln({x})");
        }
        assert!(worst < 1e-14, "worst ln relative error {worst:e}");
        assert_eq!(ln_lane(1.0), 0.0);
    }

    #[test]
    fn hermite_lane_is_bit_identical_to_lut() {
        let erf_nodes = crate::lut::erf_nodes_flat();
        let gauss_nodes = crate::lut::gauss_nodes_flat();
        for i in 0..=12_000 {
            let x = i as f64 * 5e-4; // [0, 6)
            if x >= GRID_X_MAX {
                break;
            }
            assert_eq!(
                hermite_lane(erf_nodes, x).to_bits(),
                crate::lut::erf_fast(x).to_bits(),
                "erf at {x}"
            );
            assert_eq!(
                hermite_lane(gauss_nodes, x).to_bits(),
                crate::lut::exp_neg_sq_fast(x).to_bits(),
                "gauss at {x}"
            );
        }
    }
}
