//! Portable scalar batch path.
//!
//! Processes elements four at a time into four independent lane accumulators
//! — the *same* accumulator tree the AVX2 path keeps in one `__m256d` — so
//! the two paths sum in the same order and return bit-identical results.
//! The tail (`n % 4` elements) folds into lanes `0..rem`, again exactly as
//! the wide path does after spilling its vector accumulator.

use super::lane;

/// Combine the four lane accumulators; both paths use this exact tree.
#[inline(always)]
pub(crate) fn combine(acc: [f64; 4]) -> f64 {
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// See [`super::BatchKernels::gaussian_terms`].
pub(crate) fn gaussian_terms(ln_v: &[f64], k: &[f64], grad: &mut [f64]) -> f64 {
    let n = ln_v.len();
    let n4 = n - (n % 4);
    let mut acc = [0.0f64; 4];
    let mut i = 0;
    while i < n4 {
        for l in 0..4 {
            let (term, g) = lane::gaussian_lane(ln_v[i + l], k[i + l]);
            acc[l] += term;
            grad[i + l] = g;
        }
        i += 4;
    }
    for l in 0..(n - n4) {
        let (term, g) = lane::gaussian_lane(ln_v[n4 + l], k[n4 + l]);
        acc[l] += term;
        grad[n4 + l] = g;
    }
    combine(acc)
}

/// See [`super::BatchKernels::quality_terms`].
pub(crate) fn quality_terms(
    scaled_eps: f64,
    ln_v: &[f64],
    p: &[f64],
    c: &[f64],
    grad: &mut [f64],
) -> f64 {
    let erf_nodes = crate::lut::erf_nodes_flat();
    let gauss_nodes = crate::lut::gauss_nodes_flat();
    let n = ln_v.len();
    let n4 = n - (n % 4);
    let mut acc = [0.0f64; 4];
    let mut i = 0;
    while i < n4 {
        for l in 0..4 {
            let (term, g) = lane::quality_term_lane(
                erf_nodes,
                gauss_nodes,
                scaled_eps,
                ln_v[i + l],
                p[i + l],
                c[i + l],
            );
            acc[l] += term;
            grad[i + l] = g;
        }
        i += 4;
    }
    for l in 0..(n - n4) {
        let (term, g) = lane::quality_term_lane(
            erf_nodes,
            gauss_nodes,
            scaled_eps,
            ln_v[n4 + l],
            p[n4 + l],
            c[n4 + l],
        );
        acc[l] += term;
        grad[n4 + l] = g;
    }
    combine(acc)
}

/// See [`super::BatchKernels::quality_pairs_from_ln_variance`].
pub(crate) fn quality_pairs(scaled_eps: f64, ln_v: &[f64], q: &mut [f64], dq: &mut [f64]) {
    let erf_nodes = crate::lut::erf_nodes_flat();
    let gauss_nodes = crate::lut::gauss_nodes_flat();
    for i in 0..ln_v.len() {
        let (qi, di) = lane::quality_pair_lane(erf_nodes, gauss_nodes, scaled_eps, ln_v[i]);
        q[i] = qi;
        dq[i] = di;
    }
}
