//! Entropy measures used by the task-assignment utility (paper §5.1).
//!
//! Shannon entropy `H_s` quantifies the uncertainty of a categorical truth
//! distribution; differential entropy `H_d` that of a Gaussian truth. The
//! paper's key observation is that the two are *not* directly comparable
//! (differential entropy can be negative), but their *differences* are:
//! discretising a continuous variable with bin width Δ gives
//! `H_s(X^Δ) ≈ H_d(X) − ln Δ`, so the Δ terms cancel in an entropy delta.

use crate::normal::Normal;

/// Shannon entropy (nats) of a discrete distribution given as probabilities.
///
/// Zero-probability entries contribute nothing (the `p ln p → 0` limit).
/// The input is expected to be normalised; entries are not re-normalised.
pub fn shannon(probs: &[f64]) -> f64 {
    let mut h = 0.0;
    for &p in probs {
        if p > 0.0 {
            h -= p * p.ln();
        }
    }
    h
}

/// Differential entropy (nats) of a Gaussian: `½ ln(2πe·var)`.
#[inline]
pub fn gaussian_differential(var: f64) -> f64 {
    Normal::new(0.0, var).differential_entropy()
}

/// Shannon entropy of a discretisation of `N(0, var)` with bin width `delta`.
///
/// Exists to *test* the paper's comparability argument
/// (`H_s(X^Δ) + ln Δ → H_d(X)` as Δ → 0); the production gain computation
/// uses the closed forms directly.
pub fn discretized_gaussian_shannon(var: f64, delta: f64, half_width_sigmas: f64) -> f64 {
    let n = Normal::new(0.0, var);
    let sd = var.sqrt();
    let half = half_width_sigmas * sd;
    let bins = (2.0 * half / delta).ceil() as usize;
    let mut probs = Vec::with_capacity(bins);
    let mut x = -half;
    while x < half {
        let p = n.cdf(x + delta) - n.cdf(x);
        probs.push(p);
        x += delta;
    }
    shannon(&probs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_maximises_shannon() {
        let k = 5;
        let uniform = vec![1.0 / k as f64; k];
        let h_uniform = shannon(&uniform);
        assert!((h_uniform - (k as f64).ln()).abs() < 1e-12);
        let skewed = [0.9, 0.025, 0.025, 0.025, 0.025];
        assert!(shannon(&skewed) < h_uniform);
    }

    #[test]
    fn shannon_of_point_mass_is_zero() {
        assert_eq!(shannon(&[1.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn shannon_is_nonnegative() {
        for probs in [vec![0.3, 0.7], vec![0.2; 5], vec![1.0]] {
            assert!(shannon(&probs) >= 0.0);
        }
    }

    #[test]
    fn discretization_identity_from_the_paper() {
        // §5.1: H_s(X^Δ) + ln Δ → H_d(X) as Δ → 0.
        let var = 2.3;
        let hd = gaussian_differential(var);
        let delta = 0.01;
        let hs = discretized_gaussian_shannon(var, delta, 10.0);
        assert!((hs + delta.ln() - hd).abs() < 1e-3, "H_s + lnΔ = {}, H_d = {hd}", hs + delta.ln());
    }

    #[test]
    fn entropy_deltas_match_across_representations() {
        // The subtraction H(X1) − H(X2) must agree between the differential
        // form and the discretised Shannon form — the paper's justification
        // for a single comparable "information gain" across datatypes.
        let (v1, v2) = (4.0, 1.0);
        let d_diff = gaussian_differential(v1) - gaussian_differential(v2);
        let delta = 0.005;
        let d_shannon = discretized_gaussian_shannon(v1, delta, 12.0)
            - discretized_gaussian_shannon(v2, delta, 12.0);
        assert!((d_diff - d_shannon).abs() < 1e-3, "diff = {d_diff}, shannon = {d_shannon}");
    }
}
