//! # tcrowd-stat
//!
//! Statistics substrate for the T-Crowd reproduction (ICDE 2018).
//!
//! The T-Crowd model is built on a small set of statistical primitives that
//! the paper uses throughout: the Gauss error function for the unified worker
//! quality `q_u = erf(ε / √(2φ_u))` (Eq. 2), Gaussian posteriors for
//! continuous truths (Eq. 4), Shannon and differential entropies for the
//! information-gain assignment (§5.1), bivariate-normal conditionals for the
//! attribute-correlation model (Table 5), and maximum-likelihood fits plus a
//! gradient optimizer for the M-step (Eq. 5).
//!
//! The Rust statistics ecosystem is deliberately not used here — every
//! primitive is implemented from scratch, tested against known values, and
//! kept dependency-free apart from [`rand`] for uniform bits.
//!
//! ## Modules
//!
//! * [`special`] — `erf`, `erfc`, `erf_inv`, standard-normal CDF/quantile,
//!   χ² quantile (Wilson–Hilferty).
//! * [`normal`] — univariate Gaussian with Bayesian updates and sampling.
//! * [`bernoulli`] — Bernoulli distribution and MLE.
//! * [`bivariate`] — bivariate Gaussian with exact conditionals.
//! * [`entropy`] — Shannon and differential entropy helpers.
//! * [`describe`] — descriptive statistics (mean, variance, median, Pearson…).
//! * [`cluster`] — k-means (missing-aware) and the adjusted Rand index, for
//!   the entity-correlation extension.
//! * [`bootstrap`] — percentile CIs and the paired bootstrap test used to
//!   compare methods cell-by-cell.
//! * [`lut`] — Hermite-interpolated fast `erf` / `e^{-x²}` kernels for the
//!   EM hot loop (built from the exact implementations at first use).
//! * [`batch`] — the same kernels over `&[f64]` slices: a portable scalar
//!   path and a bit-identical AVX2 path behind runtime dispatch.
//! * [`optimize`] — adaptive gradient ascent used by the EM M-step.
//! * [`linreg`] — simple linear regression (quality-calibration case study).
//! * [`sample`] — Box–Muller Gaussian sampling on top of any [`rand::Rng`].

// `deny` rather than `forbid`: the AVX2 batch path (`batch::avx2`) is the
// one sanctioned island of `unsafe` (intrinsics + gathers), opted in with a
// module-level `allow` and guarded by runtime feature detection.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod bernoulli;
pub mod bivariate;
pub mod bootstrap;
pub mod cluster;
pub mod describe;
pub mod entropy;
pub mod linreg;
pub mod lut;
pub mod normal;
pub mod optimize;
pub mod sample;
pub mod special;

pub use bernoulli::Bernoulli;
pub use bivariate::BivariateNormal;
pub use normal::Normal;

/// Numerical floor used to keep variances and probabilities strictly positive.
pub const EPS: f64 = 1e-12;

/// Clamp a probability into the open interval `(EPS, 1 - EPS)`.
///
/// Model code divides by both `p` and `1 - p` (e.g. the categorical M-step
/// gradient), so probabilities must never saturate at exactly 0 or 1.
#[inline]
pub fn clamp_prob(p: f64) -> f64 {
    p.clamp(EPS, 1.0 - EPS)
}

/// Clamp a variance-like quantity to be at least [`EPS`].
#[inline]
pub fn clamp_var(v: f64) -> f64 {
    if v.is_finite() {
        v.max(EPS)
    } else {
        EPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_prob_bounds() {
        assert_eq!(clamp_prob(-1.0), EPS);
        assert_eq!(clamp_prob(2.0), 1.0 - EPS);
        assert_eq!(clamp_prob(0.5), 0.5);
    }

    #[test]
    fn clamp_var_handles_nan_and_negative() {
        assert_eq!(clamp_var(f64::NAN), EPS);
        assert_eq!(clamp_var(-3.0), EPS);
        assert_eq!(clamp_var(2.5), 2.5);
        assert_eq!(clamp_var(f64::INFINITY), EPS);
    }
}
