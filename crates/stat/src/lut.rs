//! Hermite-interpolated fast kernels for the EM hot loop.
//!
//! The M-step objective evaluates `erf(ε/√(2v))` and `e^{-x²}` once per
//! answer per gradient-ascent step — tens of millions of calls per
//! inference on production-sized tables — and the exact Maclaurin-series
//! [`crate::special::erf`] costs ~40 ns per call. These kernels replace the
//! series with cubic **Hermite interpolation** on a uniform grid over
//! `[0, 6]`, built once per process from the exact functions themselves (no
//! external coefficients to trust):
//!
//! * node values come from [`crate::special::erf`] / `exp`,
//! * node derivatives are analytic (`erf'(x) = 2/√π · e^{-x²}`,
//!   `(e^{-x²})' = -2x·e^{-x²}`),
//! * per-interval error of cubic Hermite interpolation is
//!   `h⁴/384 · max|f⁗|`; with `h = 1/512` and `max|f⁗| ≤ 12` on `[0, 6]`
//!   the interpolation itself contributes `< 1e-12`, and the reference
//!   `erf`'s own accuracy (~3e-12 near the series/continued-fraction switch
//!   at `x = 3`) dominates the total — unit-tested below `4e-12` against
//!   the exact implementation on a dense grid.
//!
//! Beyond the grid (`x > 6`) both functions are flat to ~1e-16
//! (`erf → 1`, `e^{-x²} → 0`). Negative inputs are not needed by the
//! quality link (`x = ε/√(2v) > 0`) and are debug-asserted.

use crate::special::erf;
use std::f64::consts::FRAC_2_SQRT_PI;
use std::sync::OnceLock;

/// Upper end of the interpolation grid.
pub(crate) const X_MAX: f64 = 6.0;
/// Grid resolution: 512 intervals per unit.
pub(crate) const PER_UNIT: usize = 512;
pub(crate) const N: usize = (X_MAX as usize) * PER_UNIT;
const H: f64 = 1.0 / PER_UNIT as f64;

/// `(value, derivative)` per grid node.
struct Table {
    nodes: Vec<(f64, f64)>,
}

impl Table {
    fn build(f: impl Fn(f64) -> f64, df: impl Fn(f64) -> f64) -> Table {
        let nodes = (0..=N)
            .map(|i| {
                let x = i as f64 * H;
                (f(x), df(x))
            })
            .collect();
        Table { nodes }
    }

    /// Cubic Hermite evaluation at `x ∈ [0, X_MAX]`.
    #[inline]
    fn eval(&self, x: f64) -> f64 {
        let pos = x * PER_UNIT as f64;
        let i = (pos as usize).min(N - 1);
        let t = pos - i as f64;
        let (f0, d0) = self.nodes[i];
        let (f1, d1) = self.nodes[i + 1];
        let t2 = t * t;
        let t3 = t2 * t;
        (2.0 * t3 - 3.0 * t2 + 1.0) * f0
            + (t3 - 2.0 * t2 + t) * (H * d0)
            + (-2.0 * t3 + 3.0 * t2) * f1
            + (t3 - t2) * (H * d1)
    }
}

fn erf_table() -> &'static Table {
    static TABLE: OnceLock<Table> = OnceLock::new();
    TABLE.get_or_init(|| Table::build(erf, |x| FRAC_2_SQRT_PI * (-x * x).exp()))
}

fn gauss_table() -> &'static Table {
    static TABLE: OnceLock<Table> = OnceLock::new();
    TABLE.get_or_init(|| Table::build(|x| (-x * x).exp(), |x| -2.0 * x * (-x * x).exp()))
}

/// Flatten a table into `[f₀, H·d₀, f₁, H·d₁, …]` for the batch kernels.
///
/// Pre-scaling the derivative by `H` folds the `(H * d)` multiply of
/// [`Table::eval`] into the table build; `H` is a power of two so the product
/// is exact and the flattened evaluation stays bit-identical to `eval`. The
/// flat `&[f64]` layout (rather than `&[(f64, f64)]`, whose layout Rust does
/// not guarantee) is what the AVX2 gather loads index into.
fn flatten(t: &Table) -> Vec<f64> {
    t.nodes.iter().flat_map(|&(f, d)| [f, H * d]).collect()
}

/// Flat erf node table for the batch kernels: `2·(N+1)` values.
pub(crate) fn erf_nodes_flat() -> &'static [f64] {
    static FLAT: OnceLock<Vec<f64>> = OnceLock::new();
    FLAT.get_or_init(|| flatten(erf_table()))
}

/// Flat `e^{-x²}` node table for the batch kernels: `2·(N+1)` values.
pub(crate) fn gauss_nodes_flat() -> &'static [f64] {
    static FLAT: OnceLock<Vec<f64>> = OnceLock::new();
    FLAT.get_or_init(|| flatten(gauss_table()))
}

/// Fast `erf(x)` for `x ≥ 0`; absolute error `< 4e-12`.
#[inline]
pub fn erf_fast(x: f64) -> f64 {
    debug_assert!(x >= 0.0, "erf_fast expects the quality link's x ≥ 0");
    if x >= X_MAX {
        return 1.0;
    }
    erf_table().eval(x)
}

/// Fast `e^{-x²}` for `x ≥ 0`; absolute error `< 1e-12`.
#[inline]
pub fn exp_neg_sq_fast(x: f64) -> f64 {
    debug_assert!(x >= 0.0, "exp_neg_sq_fast expects the quality link's x ≥ 0");
    if x >= X_MAX {
        return 0.0;
    }
    gauss_table().eval(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_fast_tracks_exact_series() {
        let mut worst = 0.0f64;
        for i in 0..=60_000 {
            let x = i as f64 * 1e-4; // dense grid over [0, 6]
            let err = (erf_fast(x) - erf(x)).abs();
            worst = worst.max(err);
        }
        assert!(worst < 4e-12, "worst erf interpolation error {worst:e}");
        assert_eq!(erf_fast(6.0), 1.0);
        assert_eq!(erf_fast(100.0), 1.0);
    }

    #[test]
    fn exp_neg_sq_fast_tracks_exact() {
        let mut worst = 0.0f64;
        for i in 0..=60_000 {
            let x = i as f64 * 1e-4;
            let err = (exp_neg_sq_fast(x) - (-x * x).exp()).abs();
            worst = worst.max(err);
        }
        assert!(worst < 1e-12, "worst exp(-x²) interpolation error {worst:e}");
        assert_eq!(exp_neg_sq_fast(7.0), 0.0);
    }

    #[test]
    fn grid_nodes_are_exact() {
        // At grid nodes the interpolant reproduces the node value itself.
        for i in [0usize, 1, 17, 511, 512, 3071] {
            let x = i as f64 / 512.0;
            assert!((erf_fast(x) - erf(x)).abs() < 1e-15, "node {i}");
        }
    }
}
