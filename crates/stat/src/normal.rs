//! Univariate Gaussian distribution with the Bayesian operations T-Crowd
//! needs: precision-weighted posterior updates (paper Eq. 4, continuous case),
//! interval mass (Eq. 2), differential entropy (§5.1) and sampling.

use crate::sample::sample_std_normal;
use crate::special::{erf, std_normal_cdf};
use crate::{clamp_var, EPS};
use rand::Rng;
use std::f64::consts::{PI, SQRT_2};

/// A normal distribution `N(mean, var)` parameterised by mean and **variance**
/// (the paper writes `N(T̂_ij, φ)` with `φ` a variance throughout §4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean of the distribution.
    pub mean: f64,
    /// Variance of the distribution (strictly positive).
    pub var: f64,
}

impl Normal {
    /// Standard normal `N(0, 1)`.
    pub const STANDARD: Normal = Normal { mean: 0.0, var: 1.0 };

    /// Create a normal distribution; the variance is floored at [`EPS`].
    pub fn new(mean: f64, var: f64) -> Self {
        Normal { mean, var: clamp_var(var) }
    }

    /// Standard deviation.
    #[inline]
    pub fn std(&self) -> f64 {
        self.var.sqrt()
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }

    /// Log-density at `x`.
    pub fn ln_pdf(&self, x: f64) -> f64 {
        let d = x - self.mean;
        -0.5 * ((2.0 * PI * self.var).ln() + d * d / self.var)
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mean) / self.std())
    }

    /// Probability mass inside the symmetric window `[center-eps, center+eps]`.
    ///
    /// With `center = mean` this is exactly the paper's Eq. 2:
    /// `P(a ∈ [T̂-ε, T̂+ε]) = erf(ε / √(2φ))`.
    pub fn interval_mass(&self, center: f64, eps: f64) -> f64 {
        debug_assert!(eps >= 0.0);
        if center == self.mean {
            erf(eps / (SQRT_2 * self.std()))
        } else {
            self.cdf(center + eps) - self.cdf(center - eps)
        }
    }

    /// Differential entropy `½ ln(2πe·var)` (paper §5.1, `H_d`).
    pub fn differential_entropy(&self) -> f64 {
        0.5 * (2.0 * PI * std::f64::consts::E * self.var).ln()
    }

    /// Bayesian update of a Gaussian prior with one Gaussian observation of
    /// variance `obs_var`: returns the posterior `N(μ', φ')` with
    /// `φ' = (1/φ + 1/obs_var)⁻¹`, `μ' = φ'(μ/φ + x/obs_var)`.
    ///
    /// Folding all observations of a cell into the prior in this way yields
    /// exactly the paper's `T^μ_ij`, `T^φ_ij` formulas (Eq. 4, continuous).
    pub fn posterior_with_observation(&self, x: f64, obs_var: f64) -> Normal {
        let obs_var = clamp_var(obs_var);
        let prec = 1.0 / self.var + 1.0 / obs_var;
        let var = 1.0 / prec;
        let mean = var * (self.mean / self.var + x / obs_var);
        Normal::new(mean, var)
    }

    /// Precision-weighted combination of a prior and a set of observations
    /// with per-observation variances (vectorised form of
    /// [`Self::posterior_with_observation`]).
    pub fn posterior_with_observations(&self, obs: &[(f64, f64)]) -> Normal {
        let mut prec = 1.0 / self.var;
        let mut weighted = self.mean / self.var;
        for &(x, v) in obs {
            let v = clamp_var(v);
            prec += 1.0 / v;
            weighted += x / v;
        }
        let var = 1.0 / prec;
        Normal::new(weighted * var, var)
    }

    /// Predictive distribution of a new observation with noise variance
    /// `obs_var`: `N(mean, var + obs_var)`.
    ///
    /// Used by the information-gain computation to enumerate an incoming
    /// worker's likely answers (§5.1).
    pub fn predictive(&self, obs_var: f64) -> Normal {
        Normal::new(self.mean, self.var + clamp_var(obs_var))
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std() * sample_std_normal(rng)
    }

    /// Maximum-likelihood fit (sample mean, population variance) of `data`.
    ///
    /// Returns `N(0, 1)`-ish degenerate defaults for empty input and floors
    /// the variance at [`EPS`] for constant input.
    pub fn mle(data: &[f64]) -> Normal {
        if data.is_empty() {
            return Normal::new(0.0, 1.0);
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Normal::new(mean, var.max(EPS))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pdf_integrates_to_one_numerically() {
        let n = Normal::new(1.5, 2.0);
        let (a, b, steps) = (-20.0, 20.0, 40_000);
        let h = (b - a) / steps as f64;
        let integral: f64 = (0..steps).map(|i| n.pdf(a + (i as f64 + 0.5) * h) * h).sum();
        assert!((integral - 1.0).abs() < 1e-8, "integral = {integral}");
    }

    #[test]
    fn interval_mass_matches_erf_identity() {
        let n = Normal::new(0.0, 4.0);
        let eps = 1.3;
        let via_erf = n.interval_mass(0.0, eps);
        let via_cdf = n.cdf(eps) - n.cdf(-eps);
        assert!((via_erf - via_cdf).abs() < 1e-12);
    }

    #[test]
    fn interval_mass_off_center() {
        let n = Normal::new(2.0, 1.0);
        let m = n.interval_mass(3.0, 0.5);
        let expected = n.cdf(3.5) - n.cdf(2.5);
        assert!((m - expected).abs() < 1e-12);
        assert!(m < n.interval_mass(2.0, 0.5));
    }

    #[test]
    fn posterior_update_shrinks_variance_toward_observation() {
        let prior = Normal::new(0.0, 10.0);
        let post = prior.posterior_with_observation(5.0, 1.0);
        assert!(post.var < prior.var);
        assert!(post.var < 1.0);
        assert!(post.mean > 4.0 && post.mean < 5.0, "mean = {}", post.mean);
    }

    #[test]
    fn sequential_and_batch_posteriors_agree() {
        let prior = Normal::new(1.0, 3.0);
        let obs = [(2.0, 0.5), (0.5, 1.5), (3.0, 4.0)];
        let batch = prior.posterior_with_observations(&obs);
        let mut seq = prior;
        for &(x, v) in &obs {
            seq = seq.posterior_with_observation(x, v);
        }
        assert!((batch.mean - seq.mean).abs() < 1e-12);
        assert!((batch.var - seq.var).abs() < 1e-12);
    }

    #[test]
    fn posterior_matches_paper_formula() {
        // Paper Eq. 4: Tφ = (Σ 1/(αβφ_u) + 1/φ0)⁻¹, Tμ = (Σ a/(αβφ_u) + μ0/φ0)·Tφ
        let (mu0, phi0) = (10.0, 25.0);
        let answers = [(12.0, 2.0), (9.0, 0.8)];
        let prior = Normal::new(mu0, phi0);
        let post = prior.posterior_with_observations(&answers);
        let t_phi = 1.0 / (1.0 / 2.0 + 1.0 / 0.8 + 1.0 / 25.0);
        let t_mu = (12.0 / 2.0 + 9.0 / 0.8 + 10.0 / 25.0) * t_phi;
        assert!((post.var - t_phi).abs() < 1e-12);
        assert!((post.mean - t_mu).abs() < 1e-12);
    }

    #[test]
    fn differential_entropy_grows_with_variance() {
        let lo = Normal::new(0.0, 0.5).differential_entropy();
        let hi = Normal::new(0.0, 5.0).differential_entropy();
        assert!(hi > lo);
        // Known value: H(N(0,1)) = ½ ln(2πe) ≈ 1.4189385332
        let std = Normal::STANDARD.differential_entropy();
        assert!((std - 1.4189385332046727).abs() < 1e-12);
    }

    #[test]
    fn differential_entropy_can_be_negative() {
        // §5.1 footnote: differential entropy is negative for tight
        // distributions — the reason raw entropies are not comparable.
        assert!(Normal::new(0.0, 1e-4).differential_entropy() < 0.0);
    }

    #[test]
    fn mle_recovers_parameters() {
        let mut rng = StdRng::seed_from_u64(7);
        let truth = Normal::new(-3.0, 4.0);
        let data: Vec<f64> = (0..20_000).map(|_| truth.sample(&mut rng)).collect();
        let fit = Normal::mle(&data);
        assert!((fit.mean - truth.mean).abs() < 0.05, "mean = {}", fit.mean);
        assert!((fit.var - truth.var).abs() < 0.15, "var = {}", fit.var);
    }

    #[test]
    fn mle_degenerate_inputs() {
        assert_eq!(Normal::mle(&[]).var, 1.0);
        let constant = Normal::mle(&[2.0, 2.0, 2.0]);
        assert_eq!(constant.mean, 2.0);
        assert!(constant.var <= 1e-10);
    }

    #[test]
    fn predictive_adds_variances() {
        let n = Normal::new(1.0, 2.0).predictive(3.0);
        assert_eq!(n.mean, 1.0);
        assert!((n.var - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = Normal::new(2.0, 9.0);
        let samples: Vec<f64> = (0..50_000).map(|_| n.sample(&mut rng)).collect();
        let fit = Normal::mle(&samples);
        assert!((fit.mean - 2.0).abs() < 0.1);
        assert!((fit.var - 9.0).abs() < 0.3);
    }
}
