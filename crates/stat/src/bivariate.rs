//! Bivariate normal distribution with exact conditionals.
//!
//! Case (b) of the paper's correlation model (Table 5): when columns `j` and
//! `k` are both continuous, the joint error distribution `P(e_j, e_k)` is a
//! bivariate Gaussian, and the conditional used in Eq. 7 is
//! `P(e_j | e_k = x) = N(μ_j + ρ σ_j/σ_k (x − μ_k), (1 − ρ²) σ_j²)`.

use crate::normal::Normal;
use crate::{clamp_var, EPS};

/// A bivariate normal over `(x₁, x₂)` parameterised by means, variances and
/// the correlation coefficient `ρ ∈ (−1, 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BivariateNormal {
    /// Mean of the first component.
    pub mean1: f64,
    /// Mean of the second component.
    pub mean2: f64,
    /// Variance of the first component.
    pub var1: f64,
    /// Variance of the second component.
    pub var2: f64,
    /// Pearson correlation coefficient, clamped into `(−1, 1)`.
    pub rho: f64,
}

impl BivariateNormal {
    /// Maximum correlation magnitude retained after fitting; keeps the
    /// conditional variance `(1−ρ²)σ²` bounded away from zero.
    pub const RHO_CAP: f64 = 0.999;

    /// Construct from raw parameters (variances floored, `ρ` clamped).
    pub fn new(mean1: f64, mean2: f64, var1: f64, var2: f64, rho: f64) -> Self {
        BivariateNormal {
            mean1,
            mean2,
            var1: clamp_var(var1),
            var2: clamp_var(var2),
            rho: rho.clamp(-Self::RHO_CAP, Self::RHO_CAP),
        }
    }

    /// Maximum-likelihood fit from paired samples.
    ///
    /// Fewer than two pairs (or degenerate marginals) yield an independent
    /// standard-ish fit with `ρ = 0`, so a sparse correlation table degrades
    /// gracefully to "no structural information" rather than failing.
    pub fn mle(pairs: &[(f64, f64)]) -> Self {
        if pairs.len() < 2 {
            let (m1, m2) = pairs.first().copied().unwrap_or((0.0, 0.0));
            return BivariateNormal::new(m1, m2, 1.0, 1.0, 0.0);
        }
        let n = pairs.len() as f64;
        let mean1 = pairs.iter().map(|p| p.0).sum::<f64>() / n;
        let mean2 = pairs.iter().map(|p| p.1).sum::<f64>() / n;
        let mut v1 = 0.0;
        let mut v2 = 0.0;
        let mut cov = 0.0;
        for &(a, b) in pairs {
            let (da, db) = (a - mean1, b - mean2);
            v1 += da * da;
            v2 += db * db;
            cov += da * db;
        }
        v1 /= n;
        v2 /= n;
        cov /= n;
        let rho = if v1 <= EPS || v2 <= EPS { 0.0 } else { cov / (v1.sqrt() * v2.sqrt()) };
        BivariateNormal::new(mean1, mean2, v1.max(EPS), v2.max(EPS), rho)
    }

    /// Marginal distribution of the first component.
    pub fn marginal1(&self) -> Normal {
        Normal::new(self.mean1, self.var1)
    }

    /// Marginal distribution of the second component.
    pub fn marginal2(&self) -> Normal {
        Normal::new(self.mean2, self.var2)
    }

    /// Conditional distribution of the first component given `x₂ = x`.
    ///
    /// `N(μ₁ + ρ σ₁/σ₂ (x − μ₂), (1 − ρ²) σ₁²)` — the formula quoted verbatim
    /// in §5.2 case (b).
    pub fn conditional1_given2(&self, x: f64) -> Normal {
        let s1 = self.var1.sqrt();
        let s2 = self.var2.sqrt();
        let mean = self.mean1 + self.rho * s1 / s2 * (x - self.mean2);
        let var = (1.0 - self.rho * self.rho) * self.var1;
        Normal::new(mean, var)
    }

    /// Conditional distribution of the second component given `x₁ = x`.
    pub fn conditional2_given1(&self, x: f64) -> Normal {
        let s1 = self.var1.sqrt();
        let s2 = self.var2.sqrt();
        let mean = self.mean2 + self.rho * s2 / s1 * (x - self.mean1);
        let var = (1.0 - self.rho * self.rho) * self.var2;
        Normal::new(mean, var)
    }

    /// Joint density at `(x₁, x₂)`.
    pub fn pdf(&self, x1: f64, x2: f64) -> f64 {
        let (s1, s2) = (self.var1.sqrt(), self.var2.sqrt());
        let z1 = (x1 - self.mean1) / s1;
        let z2 = (x2 - self.mean2) / s2;
        let r = self.rho;
        let det = 1.0 - r * r;
        let q = (z1 * z1 - 2.0 * r * z1 * z2 + z2 * z2) / det;
        (-0.5 * q).exp() / (2.0 * std::f64::consts::PI * s1 * s2 * det.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::sample_std_normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn correlated_pairs(rho: f64, n: usize, seed: u64) -> Vec<(f64, f64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let z1 = sample_std_normal(&mut rng);
                let z2 = sample_std_normal(&mut rng);
                let x = 1.0 + 2.0 * z1;
                let y = -0.5 + 0.8 * (rho * z1 + (1.0 - rho * rho).sqrt() * z2);
                (x, y)
            })
            .collect()
    }

    #[test]
    fn mle_recovers_correlation() {
        let pairs = correlated_pairs(0.7, 60_000, 5);
        let fit = BivariateNormal::mle(&pairs);
        assert!((fit.rho - 0.7).abs() < 0.02, "rho = {}", fit.rho);
        assert!((fit.mean1 - 1.0).abs() < 0.05);
        assert!((fit.mean2 + 0.5).abs() < 0.02);
        assert!((fit.var1 - 4.0).abs() < 0.1);
        assert!((fit.var2 - 0.64).abs() < 0.02);
    }

    #[test]
    fn conditional_formula_paper_example() {
        // §6.4.3: "if the error of StartTarget is 0, EndTarget error is
        // N(0.28, 0.76); if it is 6, N(3.75, 0.76)" — verify our conditional
        // produces a shifted mean with unchanged variance, as in that example.
        let b = BivariateNormal::new(0.5, 0.3, 2.0, 1.5, 0.6);
        let c0 = b.conditional1_given2(0.0);
        let c6 = b.conditional1_given2(6.0);
        assert!((c0.var - c6.var).abs() < 1e-12, "variance must not depend on x");
        assert!(c6.mean > c0.mean, "positive rho shifts the mean up");
        let expected_var = (1.0 - 0.36) * 2.0;
        assert!((c0.var - expected_var).abs() < 1e-12);
    }

    #[test]
    fn conditional_reduces_to_marginal_when_independent() {
        let b = BivariateNormal::new(1.0, 2.0, 3.0, 4.0, 0.0);
        let c = b.conditional1_given2(100.0);
        let m = b.marginal1();
        assert!((c.mean - m.mean).abs() < 1e-12);
        assert!((c.var - m.var).abs() < 1e-12);
    }

    #[test]
    fn conditional_variance_shrinks_with_correlation() {
        let weak = BivariateNormal::new(0.0, 0.0, 1.0, 1.0, 0.2);
        let strong = BivariateNormal::new(0.0, 0.0, 1.0, 1.0, 0.9);
        assert!(strong.conditional1_given2(1.0).var < weak.conditional1_given2(1.0).var);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let b = BivariateNormal::new(0.0, 0.0, 1.0, 2.0, 0.5);
        let steps = 200;
        let (lo, hi) = (-8.0, 8.0);
        let h = (hi - lo) / steps as f64;
        let mut integral = 0.0;
        for i in 0..steps {
            for j in 0..steps {
                let x = lo + (i as f64 + 0.5) * h;
                let y = lo + (j as f64 + 0.5) * h;
                integral += b.pdf(x, y) * h * h;
            }
        }
        assert!((integral - 1.0).abs() < 1e-3, "integral = {integral}");
    }

    #[test]
    fn degenerate_fit_is_independent() {
        let fit = BivariateNormal::mle(&[(1.0, 2.0)]);
        assert_eq!(fit.rho, 0.0);
        let empty = BivariateNormal::mle(&[]);
        assert_eq!(empty.rho, 0.0);
        // Constant column → rho must be 0, not NaN.
        let constant = BivariateNormal::mle(&[(1.0, 5.0), (1.0, 6.0), (1.0, 7.0)]);
        assert_eq!(constant.rho, 0.0);
    }

    #[test]
    fn rho_is_capped() {
        let b = BivariateNormal::new(0.0, 0.0, 1.0, 1.0, 1.0);
        assert!(b.rho < 1.0);
        assert!(b.conditional1_given2(0.0).var > 0.0);
    }
}
