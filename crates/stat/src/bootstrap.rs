//! Bootstrap resampling: percentile confidence intervals and the paired
//! bootstrap test used to compare truth-inference methods cell-by-cell.
//!
//! Table 7 of the paper compares eleven methods on three datasets with a
//! single number each; whether a 0.2-point gap is *meaningful* depends on
//! the per-cell variance. The paired bootstrap answers that without any
//! normality assumption: resample cells with replacement, recompute the mean
//! loss difference between two methods on each resample, and read the
//! significance off the resulting distribution. Deterministic for a given
//! seed, like everything else in this workspace.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a paired bootstrap comparison of two per-item loss vectors.
#[derive(Debug, Clone, Copy)]
pub struct PairedBootstrap {
    /// Observed mean difference `mean(a) − mean(b)` (negative = `a` better
    /// when losses are "lower is better").
    pub mean_diff: f64,
    /// Percentile confidence interval of the mean difference.
    pub ci: (f64, f64),
    /// Two-sided bootstrap p-value for `mean_diff = 0` (fraction of
    /// resamples on the other side of zero, doubled and clamped).
    pub p_value: f64,
    /// Resamples drawn.
    pub resamples: usize,
}

impl PairedBootstrap {
    /// True when the interval excludes zero at the configured level.
    pub fn significant(&self) -> bool {
        self.ci.0 > 0.0 || self.ci.1 < 0.0
    }
}

/// Percentile bootstrap confidence interval for `stat` over `data`.
///
/// `alpha = 0.05` gives a 95 % interval. Panics if `data` is empty or
/// `n_resamples == 0`.
pub fn bootstrap_ci<F>(
    data: &[f64],
    stat: F,
    n_resamples: usize,
    alpha: f64,
    seed: u64,
) -> (f64, f64)
where
    F: Fn(&[f64]) -> f64,
{
    assert!(!data.is_empty(), "bootstrap needs data");
    assert!(n_resamples > 0, "bootstrap needs resamples");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats: Vec<f64> = (0..n_resamples)
        .map(|_| {
            let resample: Vec<f64> =
                (0..data.len()).map(|_| data[rng.gen_range(0..data.len())]).collect();
            stat(&resample)
        })
        .collect();
    stats.sort_by(|a, b| a.partial_cmp(b).expect("NaN bootstrap statistic"));
    let lo = percentile(&stats, alpha / 2.0);
    let hi = percentile(&stats, 1.0 - alpha / 2.0);
    (lo, hi)
}

/// Paired bootstrap comparison of two per-item loss vectors (same items, so
/// indices are resampled jointly). `alpha` controls the CI level.
///
/// Panics when the vectors are empty or of different lengths.
pub fn paired_bootstrap(
    a: &[f64],
    b: &[f64],
    n_resamples: usize,
    alpha: f64,
    seed: u64,
) -> PairedBootstrap {
    assert_eq!(a.len(), b.len(), "paired bootstrap needs paired losses");
    assert!(!a.is_empty(), "paired bootstrap needs data");
    assert!(n_resamples > 0, "bootstrap needs resamples");
    let n = a.len();
    let observed = a.iter().sum::<f64>() / n as f64 - b.iter().sum::<f64>() / n as f64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut diffs: Vec<f64> = (0..n_resamples)
        .map(|_| {
            let mut d = 0.0;
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                d += a[i] - b[i];
            }
            d / n as f64
        })
        .collect();
    diffs.sort_by(|x, y| x.partial_cmp(y).expect("NaN bootstrap diff"));
    let ci = (percentile(&diffs, alpha / 2.0), percentile(&diffs, 1.0 - alpha / 2.0));
    // Two-sided p: how often the resampled diff crosses zero.
    let frac_le = diffs.iter().filter(|&&d| d <= 0.0).count() as f64 / diffs.len() as f64;
    let frac_ge = diffs.iter().filter(|&&d| d >= 0.0).count() as f64 / diffs.len() as f64;
    let p_value = (2.0 * frac_le.min(frac_ge)).min(1.0);
    PairedBootstrap { mean_diff: observed, ci, p_value, resamples: n_resamples }
}

/// Linear-interpolated percentile of a sorted slice (`q` in `[0, 1]`).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::mean;

    #[test]
    fn ci_contains_the_population_mean_for_a_clean_sample() {
        let data: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect(); // mean 4.5
        let (lo, hi) = bootstrap_ci(&data, mean, 500, 0.05, 7);
        assert!(lo < 4.5 && 4.5 < hi, "CI [{lo}, {hi}] should cover 4.5");
        assert!(hi - lo < 1.0, "CI [{lo}, {hi}] too wide for n = 200");
    }

    #[test]
    fn ci_is_deterministic_per_seed() {
        let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let a = bootstrap_ci(&data, mean, 300, 0.05, 3);
        let b = bootstrap_ci(&data, mean, 300, 0.05, 3);
        assert_eq!(a, b);
        let c = bootstrap_ci(&data, mean, 300, 0.05, 4);
        assert_ne!(a, c, "different seeds should shuffle differently");
    }

    #[test]
    fn clearly_separated_losses_are_significant() {
        // Method A is wrong on 10 % of cells, method B on 40 %.
        let a: Vec<f64> = (0..300).map(|i| (i % 10 == 0) as i32 as f64).collect();
        let b: Vec<f64> = (0..300).map(|i| (i % 10 < 4) as i32 as f64).collect();
        let r = paired_bootstrap(&a, &b, 1_000, 0.05, 11);
        assert!(r.mean_diff < 0.0, "A should have lower loss");
        assert!(r.significant(), "CI {:?} should exclude zero", r.ci);
        assert!(r.p_value < 0.01, "p = {}", r.p_value);
    }

    #[test]
    fn identical_losses_are_never_significant() {
        let a: Vec<f64> = (0..100).map(|i| (i % 3 == 0) as i32 as f64).collect();
        let r = paired_bootstrap(&a, &a, 500, 0.05, 13);
        assert_eq!(r.mean_diff, 0.0);
        assert!(!r.significant());
        assert!((r.p_value - 1.0).abs() < 1e-12, "identical vectors: p = {}", r.p_value);
    }

    #[test]
    fn tiny_noise_differences_are_not_significant() {
        // Same loss pattern shifted by one index: same mean, paired noise.
        let a: Vec<f64> = (0..200).map(|i| (i % 7 == 0) as i32 as f64).collect();
        let b: Vec<f64> = (0..200).map(|i| ((i + 1) % 7 == 0) as i32 as f64).collect();
        let r = paired_bootstrap(&a, &b, 1_000, 0.05, 17);
        assert!(!r.significant(), "equal-mean vectors must not be significant: {:?}", r.ci);
        assert!(r.p_value > 0.2, "p = {}", r.p_value);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.0), 0.0);
        assert_eq!(percentile(&sorted, 1.0), 4.0);
        assert_eq!(percentile(&sorted, 0.5), 2.0);
        assert!((percentile(&sorted, 0.125) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "paired")]
    fn mismatched_lengths_panic() {
        paired_bootstrap(&[1.0], &[1.0, 2.0], 10, 0.05, 1);
    }
}
