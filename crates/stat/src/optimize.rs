//! Gradient ascent with adaptive step size.
//!
//! The M-step of the paper's EM algorithm (Eq. 5) "applies gradient descent
//! to find the values of α, β and φ" that maximise the expected joint
//! log-likelihood. We maximise directly (gradient *ascent*); the caller
//! supplies the objective and its analytic gradient, and the optimizer
//! guarantees monotone progress by halving the step whenever a trial point
//! does not improve the objective.

/// Configuration for [`gradient_ascent`].
#[derive(Debug, Clone, Copy)]
pub struct AscentOptions {
    /// Initial step size along the (unnormalised) gradient.
    pub initial_step: f64,
    /// Maximum number of accepted iterations.
    pub max_iters: usize,
    /// Convergence threshold on the objective improvement between accepted
    /// iterations (the paper uses 1e-5 for its outer loop; the inner M-step
    /// can be looser because EM re-enters it every round).
    pub tol: f64,
    /// Step-halving limit per iteration before giving up on progress.
    pub max_backtracks: usize,
    /// Step growth factor applied after an immediately-accepted step.
    pub growth: f64,
}

impl Default for AscentOptions {
    fn default() -> Self {
        AscentOptions {
            initial_step: 0.1,
            max_iters: 50,
            tol: 1e-7,
            max_backtracks: 30,
            growth: 1.5,
        }
    }
}

/// Result of a [`gradient_ascent`] run.
#[derive(Debug, Clone)]
pub struct AscentResult {
    /// The optimised parameter vector.
    pub params: Vec<f64>,
    /// Objective value at [`Self::params`].
    pub value: f64,
    /// Number of accepted iterations performed.
    pub iterations: usize,
    /// Whether the tolerance criterion was met before `max_iters`.
    pub converged: bool,
    /// Number of objective evaluations performed (accepted + backtracked).
    pub evaluations: usize,
}

/// Maximise `f` starting from `x0`.
///
/// `f(x)` returns `(value, gradient)`. The algorithm is plain gradient ascent
/// with backtracking: a step is only accepted if it strictly improves the
/// objective, so the returned value is never worse than `f(x0)` — this is
/// what makes the enclosing EM objective monotone (tested at the EM level).
pub fn gradient_ascent<F>(f: F, x0: &[f64], opts: &AscentOptions) -> AscentResult
where
    F: Fn(&[f64]) -> (f64, Vec<f64>),
{
    gradient_ascent_with(
        |x, grad| {
            let (v, g) = f(x);
            assert_eq!(g.len(), grad.len(), "gradient dimension mismatch");
            grad.copy_from_slice(&g);
            v
        },
        x0,
        opts,
    )
}

/// Allocation-free form of [`gradient_ascent`]: the objective writes its
/// gradient into a caller-owned buffer instead of returning a fresh `Vec`.
///
/// `f(x, grad)` fills `grad` (same length as `x`) and returns the value.
/// This is the EM M-step entry point — the objective there is evaluated
/// dozens of times per EM iteration over buffers of `rows + cols + workers`
/// parameters, and the four vectors this routine juggles (current/trial
/// point, current/trial gradient) are allocated exactly once and swapped.
pub fn gradient_ascent_with<F>(mut f: F, x0: &[f64], opts: &AscentOptions) -> AscentResult
where
    F: FnMut(&[f64], &mut [f64]) -> f64,
{
    let mut x = x0.to_vec();
    let mut grad = vec![0.0; x.len()];
    let mut trial = vec![0.0; x.len()];
    let mut trial_grad = vec![0.0; x.len()];
    let mut value = f(&x, &mut grad);
    let mut evaluations = 1usize;
    let mut step = opts.initial_step;
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..opts.max_iters {
        // Scale step against gradient magnitude so it is a trust region on
        // parameter movement, not on raw gradient units.
        let gnorm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        if gnorm < 1e-14 {
            converged = true;
            break;
        }
        let mut accepted = false;
        let mut local_step = step;
        for bt in 0..=opts.max_backtracks {
            for i in 0..x.len() {
                trial[i] = x[i] + local_step * grad[i] / gnorm.max(1.0);
            }
            let tv = f(&trial, &mut trial_grad);
            evaluations += 1;
            if tv > value && tv.is_finite() {
                let improvement = tv - value;
                std::mem::swap(&mut x, &mut trial);
                std::mem::swap(&mut grad, &mut trial_grad);
                value = tv;
                iterations += 1;
                // Reward an immediately successful step with growth.
                step = if bt == 0 { local_step * opts.growth } else { local_step };
                accepted = true;
                if improvement < opts.tol {
                    converged = true;
                }
                break;
            }
            local_step *= 0.5;
        }
        if !accepted {
            converged = true; // no improving direction at any step size
            break;
        }
        if converged {
            break;
        }
    }
    AscentResult { params: x, value, iterations, converged, evaluations }
}

/// Central-difference numerical gradient, for testing analytic gradients.
pub fn numerical_gradient<F>(f: F, x: &[f64], h: f64) -> Vec<f64>
where
    F: Fn(&[f64]) -> f64,
{
    let mut grad = vec![0.0; x.len()];
    let mut xp = x.to_vec();
    for i in 0..x.len() {
        let orig = xp[i];
        xp[i] = orig + h;
        let fp = f(&xp);
        xp[i] = orig - h;
        let fm = f(&xp);
        xp[i] = orig;
        grad[i] = (fp - fm) / (2.0 * h);
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Concave quadratic with known maximum.
    fn quadratic(x: &[f64]) -> (f64, Vec<f64>) {
        // f = -(x0-1)² - 2(x1+2)² ; max at (1, -2), value 0.
        let v = -(x[0] - 1.0).powi(2) - 2.0 * (x[1] + 2.0).powi(2);
        let g = vec![-2.0 * (x[0] - 1.0), -4.0 * (x[1] + 2.0)];
        (v, g)
    }

    #[test]
    fn finds_quadratic_maximum() {
        let opts = AscentOptions { max_iters: 500, tol: 1e-12, ..Default::default() };
        let res = gradient_ascent(quadratic, &[10.0, 10.0], &opts);
        assert!((res.params[0] - 1.0).abs() < 1e-3, "x0 = {}", res.params[0]);
        assert!((res.params[1] + 2.0).abs() < 1e-3, "x1 = {}", res.params[1]);
        assert!(res.value > -1e-5);
    }

    #[test]
    fn never_decreases_objective() {
        let start = [5.0, -7.0];
        let (v0, _) = quadratic(&start);
        let res = gradient_ascent(quadratic, &start, &AscentOptions::default());
        assert!(res.value >= v0);
    }

    #[test]
    fn handles_flat_gradient() {
        let res =
            gradient_ascent(|_| (3.0, vec![0.0, 0.0]), &[1.0, 2.0], &AscentOptions::default());
        assert!(res.converged);
        assert_eq!(res.params, vec![1.0, 2.0]);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn respects_iteration_budget() {
        let opts = AscentOptions { max_iters: 3, tol: 0.0, ..Default::default() };
        let res = gradient_ascent(quadratic, &[100.0, 100.0], &opts);
        assert!(res.iterations <= 3);
    }

    #[test]
    fn numerical_gradient_matches_analytic() {
        let x = [0.4, -1.3];
        let (_, analytic) = quadratic(&x);
        let numeric = numerical_gradient(|p| quadratic(p).0, &x, 1e-6);
        for (a, n) in analytic.iter().zip(&numeric) {
            assert!((a - n).abs() < 1e-6);
        }
    }

    #[test]
    fn nonconvex_objective_still_improves() {
        // f = -x⁴ + x² has maxima at ±1/√2; start near zero.
        let f = |x: &[f64]| {
            let v = -x[0].powi(4) + x[0] * x[0];
            (v, vec![-4.0 * x[0].powi(3) + 2.0 * x[0]])
        };
        let res =
            gradient_ascent(f, &[0.1], &AscentOptions { max_iters: 200, ..Default::default() });
        assert!((res.params[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-2);
    }
}
