//! Simple (ordinary least squares) linear regression.
//!
//! Used by the quality-calibration case study (paper Fig. 4): regress a
//! worker's *actual* quality on the quality *estimated* by truth inference
//! and report the correlation coefficient (the paper finds r ≈ 0.84).

use crate::describe::{covariance, mean, pearson, variance};
use crate::EPS;

/// An OLS fit `y ≈ slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Pearson correlation coefficient between `x` and `y`.
    pub r: f64,
}

impl LinearFit {
    /// Predicted value at `x`.
    #[inline]
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fit `y` against `x` by ordinary least squares.
///
/// A constant `x` yields a flat line through the mean of `y` with `r = 0`.
pub fn fit(x: &[f64], y: &[f64]) -> LinearFit {
    assert_eq!(x.len(), y.len(), "x and y must pair up");
    let vx = variance(x);
    if vx <= EPS || x.len() < 2 {
        return LinearFit { slope: 0.0, intercept: mean(y), r: 0.0 };
    }
    let slope = covariance(x, y) / vx;
    let intercept = mean(y) - slope * mean(x);
    LinearFit { slope, intercept, r: pearson(x, y) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let x: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 1.5).collect();
        let f = fit(&x, &y);
        assert!((f.slope - 3.0).abs() < 1e-10);
        assert!((f.intercept + 1.5).abs() < 1e-10);
        assert!((f.r - 1.0).abs() < 1e-10);
        assert!((f.predict(2.0) - 4.5).abs() < 1e-10);
    }

    #[test]
    fn noisy_line_correlation_below_one() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 2.0 * v + if i % 2 == 0 { 5.0 } else { -5.0 })
            .collect();
        let f = fit(&x, &y);
        assert!(f.r < 1.0 && f.r > 0.9);
        assert!((f.slope - 2.0).abs() < 0.05);
    }

    #[test]
    fn constant_x_degenerates_gracefully() {
        let f = fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.intercept, 2.0);
        assert_eq!(f.r, 0.0);
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn mismatched_lengths_panic() {
        fit(&[1.0], &[1.0, 2.0]);
    }
}
