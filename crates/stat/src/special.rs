//! Special functions: the Gauss error function family and derived quantiles.
//!
//! T-Crowd's unified worker quality (paper Eq. 2) is
//! `q_u = erf(ε / √(2 φ_u))`, i.e. the probability mass of a zero-mean
//! Gaussian with variance `φ_u` inside `[-ε, ε]`. Both the E-step and the
//! M-step gradient therefore need `erf` and its derivative; the CATD baseline
//! needs a χ² quantile; the simulator and the noise experiments need the
//! normal quantile.

use std::f64::consts::{FRAC_2_SQRT_PI, SQRT_2};

/// The Gauss error function `erf(x) = 2/√π ∫₀ˣ e^{-t²} dt`.
///
/// Uses the rational Chebyshev approximation of W. J. Cody (via the classic
/// `erfc` kernel popularised by Numerical Recipes), followed by one Newton
/// refinement step; absolute error is below `1e-12` across the real line.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Accurate in the tails (relative error bounded) which matters when a
/// worker's quality saturates near 1 — the categorical gradient divides by
/// `1 - q` and must not hit an exact zero prematurely.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    if z <= 3.0 {
        // Bulk: the Maclaurin series for erf converges to full double
        // precision in < 40 terms for |x| ≤ 3.
        return 1.0 - erf_series(x);
    }
    // Tails: Numerical Recipes' Chebyshev fit to erfc. Its *fractional* error
    // is < 1.2e-7, and for |x| > 3 the value itself is < 2.3e-5, so the
    // absolute error is < 3e-12 — consistent with the series branch.
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Maclaurin series for `erf`, accurate to double precision for `|x| <= 3`.
fn erf_series(x: f64) -> f64 {
    // erf(x) = 2/√π Σ_{n≥0} (-1)^n x^{2n+1} / (n! (2n+1))
    // For |x| <= 3 fewer than 40 terms reach double precision.
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    let mut n = 1u32;
    loop {
        term *= -x2 / n as f64;
        let contrib = term / (2 * n + 1) as f64;
        sum += contrib;
        if contrib.abs() < 1e-18 * sum.abs().max(1e-300) || n > 200 {
            break;
        }
        n += 1;
    }
    FRAC_2_SQRT_PI * sum
}

/// Derivative of `erf`: `erf'(x) = 2/√π · e^{-x²}`.
///
/// Needed by the categorical M-step gradient (chain rule through
/// `q = erf(ε/√(2αβφ))`).
#[inline]
pub fn erf_derivative(x: f64) -> f64 {
    FRAC_2_SQRT_PI * (-x * x).exp()
}

/// Inverse error function, `erf_inv(erf(x)) = x`.
///
/// Initialised with the Giles (2010) single-precision polynomial and refined
/// with two Newton steps against [`erf`], giving ~1e-14 accuracy on
/// `(-1, 1)`. Returns `±∞` at `±1` and NaN outside `[-1, 1]`.
pub fn erf_inv(y: f64) -> f64 {
    if y.is_nan() || !(-1.0..=1.0).contains(&y) {
        return f64::NAN;
    }
    if y == 1.0 {
        return f64::INFINITY;
    }
    if y == -1.0 {
        return f64::NEG_INFINITY;
    }
    if y == 0.0 {
        return 0.0;
    }
    // Giles' polynomial initial guess.
    let w = -((1.0 - y) * (1.0 + y)).ln();
    let mut x = if w < 5.0 {
        let w = w - 2.5;
        let mut p = 2.81022636e-08;
        p = 3.43273939e-07 + p * w;
        p = -3.5233877e-06 + p * w;
        p = -4.39150654e-06 + p * w;
        p = 0.00021858087 + p * w;
        p = -0.00125372503 + p * w;
        p = -0.00417768164 + p * w;
        p = 0.246640727 + p * w;
        p = 1.50140941 + p * w;
        p * y
    } else {
        let w = w.sqrt() - 3.0;
        let mut p = -0.000200214257;
        p = 0.000100950558 + p * w;
        p = 0.00134934322 + p * w;
        p = -0.00367342844 + p * w;
        p = 0.00573950773 + p * w;
        p = -0.0076224613 + p * w;
        p = 0.00943887047 + p * w;
        p = 1.00167406 + p * w;
        p = 2.83297682 + p * w;
        p * y
    };
    // Newton refinement: solve erf(x) - y = 0.
    for _ in 0..2 {
        let err = erf(x) - y;
        x -= err / erf_derivative(x);
    }
    x
}

/// Standard normal cumulative distribution function `Φ(x)`.
#[inline]
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / SQRT_2)
}

/// Standard normal probability density function `φ(x)`.
#[inline]
pub fn std_normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal quantile function `Φ⁻¹(p)`.
///
/// `p` outside `(0, 1)` maps to `±∞`/NaN consistently with the CDF limits.
#[inline]
pub fn std_normal_quantile(p: f64) -> f64 {
    SQRT_2 * erf_inv(2.0 * p - 1.0)
}

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
///
/// Accurate to ~1e-13 for positive arguments, which is all the χ² machinery
/// below needs.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularised lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Series expansion for `x < a + 1`, Lentz continued fraction otherwise
/// (the standard `gammp` split).
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "invalid incomplete gamma arguments");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a, x), then P = 1 - Q.
        let tiny = 1e-300;
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / tiny;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < tiny {
                d = tiny;
            }
            c = b + an / c;
            if c.abs() < tiny {
                c = tiny;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        1.0 - q
    }
}

/// χ² cumulative distribution function with `k` degrees of freedom.
#[inline]
pub fn chi_square_cdf(x: f64, k: f64) -> f64 {
    assert!(k > 0.0, "degrees of freedom must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    reg_lower_gamma(0.5 * k, 0.5 * x)
}

/// Quantile of the χ² distribution with `k` degrees of freedom.
///
/// `chi_square_quantile(p, k)` returns `x` with `P(X ≤ x) = p`. The CATD
/// baseline weighs sources by `χ²(α/2, n)` over their squared error sum.
/// Initialised with the Wilson–Hilferty cube approximation and polished with
/// Newton steps against the exact CDF, giving ~1e-10 relative accuracy.
pub fn chi_square_quantile(p: f64, k: f64) -> f64 {
    assert!(k > 0.0, "degrees of freedom must be positive");
    assert!((0.0..1.0).contains(&p), "p must be in [0, 1)");
    if p == 0.0 {
        return 0.0;
    }
    // Wilson–Hilferty starting point.
    let z = std_normal_quantile(p);
    let t = 1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt();
    let mut x = (k * t * t * t).max(1e-8);
    // Newton refinement on F(x) = p with the χ² pdf as derivative.
    for _ in 0..50 {
        let f = chi_square_cdf(x, k) - p;
        let pdf = ((0.5 * k - 1.0) * x.ln()
            - 0.5 * x
            - 0.5 * k * std::f64::consts::LN_2
            - ln_gamma(0.5 * k))
        .exp();
        if pdf <= 0.0 || !pdf.is_finite() {
            break;
        }
        let step = f / pdf;
        let next = x - step;
        x = if next > 0.0 { next } else { x * 0.5 };
        if (step / x).abs() < 1e-12 {
            break;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from Abramowitz & Stegun Table 7.1 / mpmath.
    const ERF_TABLE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.1124629160182849),
        (0.5, 0.5204998778130465),
        (1.0, 0.8427007929497149),
        (1.5, 0.9661051464753107),
        (2.0, 0.9953222650189527),
        (3.0, 0.9999779095030014),
        (4.0, 0.9999999845827421),
    ];

    #[test]
    fn erf_matches_reference_table() {
        for &(x, want) in ERF_TABLE {
            let got = erf(x);
            assert!((got - want).abs() < 1e-12, "erf({x}) = {got}, want {want}");
            // Odd symmetry.
            assert!((erf(-x) + want).abs() < 1e-12);
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [-6.0, -2.5, -0.3, 0.0, 0.7, 1.9, 5.5] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn erfc_tail_is_positive_and_decreasing() {
        let mut prev = erfc(3.0);
        for i in 1..40 {
            let x = 3.0 + i as f64 * 0.5;
            let v = erfc(x);
            assert!(v > 0.0, "erfc({x}) must stay positive");
            assert!(v < prev, "erfc must decrease, x={x}");
            prev = v;
        }
    }

    #[test]
    fn erf_inv_roundtrip() {
        for i in -99..=99 {
            let y = i as f64 / 100.0;
            let x = erf_inv(y);
            assert!((erf(x) - y).abs() < 1e-12, "roundtrip failed at y={y}");
        }
    }

    #[test]
    fn erf_inv_extremes() {
        assert!(erf_inv(1.0).is_infinite() && erf_inv(1.0) > 0.0);
        assert!(erf_inv(-1.0).is_infinite() && erf_inv(-1.0) < 0.0);
        assert!(erf_inv(1.5).is_nan());
        assert_eq!(erf_inv(0.0), 0.0);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-14);
        assert!((std_normal_cdf(1.959963984540054) - 0.975).abs() < 1e-10);
        assert!((std_normal_cdf(-1.959963984540054) - 0.025).abs() < 1e-10);
        assert!((std_normal_cdf(1.0) - 0.8413447460685429).abs() < 1e-12);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for p in [0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999] {
            let x = std_normal_quantile(p);
            assert!((std_normal_cdf(x) - p).abs() < 1e-10, "p={p}");
        }
    }

    #[test]
    fn erf_derivative_matches_finite_difference() {
        let h = 1e-6;
        for x in [-2.0, -0.5, 0.0, 0.3, 1.7] {
            let num = (erf(x + h) - erf(x - h)) / (2.0 * h);
            assert!((num - erf_derivative(x)).abs() < 1e-8, "x={x}");
        }
    }

    #[test]
    fn chi_square_quantile_reference() {
        // Reference: scipy.stats.chi2.ppf
        let cases = [
            (0.95, 1.0, 3.841458820694124),
            (0.95, 10.0, 18.307038053275146),
            (0.05, 10.0, 3.9402991361190605),
            (0.5, 4.0, 3.356694),
        ];
        for (p, k, want) in cases {
            let got = chi_square_quantile(p, k);
            let rel = (got - want).abs() / want;
            assert!(rel < 1e-6, "chi2({p},{k}) = {got}, want ≈ {want}");
        }
    }

    #[test]
    fn ln_gamma_reference_values() {
        // Γ(1)=Γ(2)=1, Γ(5)=24, Γ(0.5)=√π
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-11);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-11);
    }

    #[test]
    fn chi_square_cdf_quantile_roundtrip() {
        for k in [1.0, 2.0, 5.0, 30.0] {
            for p in [0.01, 0.3, 0.5, 0.9, 0.99] {
                let x = chi_square_quantile(p, k);
                assert!((chi_square_cdf(x, k) - p).abs() < 1e-9, "roundtrip p={p} k={k}");
            }
        }
    }

    #[test]
    fn reg_lower_gamma_known_values() {
        // P(1, x) = 1 - e^{-x}
        for x in [0.1, 1.0, 3.0] {
            assert!((reg_lower_gamma(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
        assert_eq!(reg_lower_gamma(2.0, 0.0), 0.0);
    }

    #[test]
    fn chi_square_quantile_monotone_in_p() {
        let mut prev = 0.0;
        for i in 1..20 {
            let p = i as f64 / 20.0;
            let q = chi_square_quantile(p, 5.0);
            assert!(q >= prev);
            prev = q;
        }
    }

    #[test]
    #[should_panic(expected = "degrees of freedom")]
    fn chi_square_rejects_zero_dof() {
        chi_square_quantile(0.5, 0.0);
    }
}
