//! `tcrowd` — command-line front-end for the T-Crowd library.
//!
//! ```text
//! tcrowd generate --rows 50 --cols 6 --out-dir demo/        # demo dataset
//! tcrowd infer    --schema demo/table.schema.tsv --answers demo/table.answers.tsv \
//!                 --rows 50 --out estimates.tsv [--workers workers.tsv]
//!                 [--only-cate | --only-cont]
//! tcrowd assign   --schema … --answers … --rows 50 --worker 7 --k 6
//!                 [--inherent]            # default is structure-aware
//! tcrowd evaluate --schema … --truth truth.tsv --estimates estimates.tsv
//! tcrowd serve    --addr 127.0.0.1:8077 --threads 8        # HTTP service
//! ```
//!
//! All files use the TSV interchange format of `tcrowd_tabular::io`.

mod args;

use args::Args;
use std::path::Path;
use tcrowd_baselines::{EntropyPolicy, LoopingPolicy, QascaPolicy, RandomPolicy};
use tcrowd_core::diagnostics;
use tcrowd_core::{
    AssignmentContext, AssignmentPolicy, EntityAwarePolicy, InherentGainPolicy, RowGrouping,
    StructureAwarePolicy, TCrowd,
};
use tcrowd_sim::{
    ExperimentConfig, InferenceBackend, Runner, StoppingRule, WorkerPool, WorkerPoolConfig,
};
use tcrowd_tabular::io;
use tcrowd_tabular::{evaluate, generate_dataset, GeneratorConfig, WorkerId};

fn main() {
    // `tcrowd store <sub> …` nests a second positional (the store
    // subcommand); hand the remainder to its own parser before the flat
    // grammar below rejects it.
    if std::env::args().nth(1).as_deref() == Some("store") {
        let result = Args::parse(std::env::args().skip(2)).and_then(|sub| cmd_store(&sub));
        if let Err(e) = result {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let result = match args.command.as_str() {
        "generate" => cmd_generate(&args),
        "infer" => cmd_infer(&args),
        "assign" => cmd_assign(&args),
        "evaluate" => cmd_evaluate(&args),
        "diagnose" => cmd_diagnose(&args),
        "simulate" => cmd_simulate(&args),
        "compare" => cmd_compare(&args),
        "serve" => cmd_serve(&args),
        "events" => cmd_events(&args),
        "" | "help" | "--help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

const USAGE: &str = "\
tcrowd — effective crowdsourcing for tabular data (ICDE 2018)

USAGE:
  tcrowd generate --out-dir DIR [--rows N] [--cols M] [--ratio R]
                  [--answers-per-task K] [--workers W] [--seed S]
  tcrowd infer    --schema FILE --answers FILE --rows N --out FILE
                  [--workers FILE] [--only-cate | --only-cont]
                  [--exclude ID,ID,...]     # drop flagged workers first
  tcrowd assign   --schema FILE --answers FILE --rows N --worker ID
                  [--k K] [--inherent]
  tcrowd evaluate --schema FILE --truth FILE --estimates FILE
  tcrowd diagnose --schema FILE --answers FILE --rows N [--worst K]
                  [--entity-groups G]       # fit §7 familiarity multipliers
  tcrowd simulate [--rows N] [--cols M] [--ratio R] [--workers W]
                  [--budget B] [--seed S] [--policy NAME] [--adaptive]
                  [--out FILE]              # policy: structure-aware (default),
                                            # inherent, entity, qasca, random,
                                            # looping, entropy
  tcrowd compare  [--rows N] [--cols M] [--budget B] [--seed S] [--out FILE]
                  # runs every policy at equal budget, one series per policy
  tcrowd serve    [--addr HOST:PORT] [--threads T] [--demo]
                  [--data-dir DIR] [--fsync always|flush|never]
                  [--max-pending N]
                  # multi-table HTTP service (tcrowd-service crate); --demo
                  # pre-creates a generated 40x5 table named 'demo'.
                  # --data-dir makes tables durable: per-table WAL + snapshots
                  # (tcrowd-store), recover-on-boot after crash or restart.
                  # --max-pending bounds each table's refresh lag: ingest
                  # answers 429 Retry-After past N pending answers
  tcrowd events   --table ID [--addr HOST:PORT] [--since SEQ] [--max N]
                  # tail a served table's lifecycle event ring (ingest
                  # commits, refits, snapshots, WAL + health transitions)
                  # over GET /tables/:id/events; prints seq, timestamp,
                  # kind, detail and the request correlation id
  tcrowd store    <inspect|verify|compact> --data-dir DIR [--table ID]
                  # offline durability tooling: inspect prints per-table WAL/
                  # segment/snapshot-chain state ('N+' segments = cold head
                  # compacted away under a covering snapshot), verify audits
                  # checksums + segment-chain continuity + chain/WAL
                  # consistency (exit 1 on hard errors), compact collapses
                  # the segment chain into one defragmented WAL segment and
                  # rewrites a fresh full-epoch snapshot";

fn cmd_generate(args: &Args) -> Result<(), String> {
    let dir = Path::new(args.require("out-dir")?);
    let cfg = GeneratorConfig {
        rows: args.get_parsed("rows", 50)?,
        columns: args.get_parsed("cols", 6)?,
        categorical_ratio: args.get_parsed("ratio", 0.5)?,
        answers_per_task: args.get_parsed("answers-per-task", 4)?,
        num_workers: args.get_parsed("workers", 25)?,
        ..Default::default()
    };
    let seed = args.get_parsed("seed", 1u64)?;
    let d = generate_dataset(&cfg, seed);
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    io::write_schema(&d.schema, dir.join("table.schema.tsv")).map_err(|e| e.to_string())?;
    io::write_answers(&d.schema, &d.answers, dir.join("table.answers.tsv"))
        .map_err(|e| e.to_string())?;
    io::write_table(&d.schema, &d.truth, dir.join("table.truth.tsv")).map_err(|e| e.to_string())?;
    println!(
        "wrote {} rows × {} columns, {} answers from {} workers to {}",
        d.rows(),
        d.cols(),
        d.answers.len(),
        d.answers.num_workers(),
        dir.display()
    );
    Ok(())
}

fn load_state(args: &Args) -> Result<(tcrowd_tabular::Schema, tcrowd_tabular::AnswerLog), String> {
    let schema = io::read_schema(args.require("schema")?).map_err(|e| e.to_string())?;
    let rows: usize = args.get_parsed("rows", 0)?;
    if rows == 0 {
        return Err("--rows is required (the answer file may omit trailing rows)".into());
    }
    let answers =
        io::read_answers(&schema, rows, args.require("answers")?).map_err(|e| e.to_string())?;
    Ok((schema, answers))
}

fn cmd_infer(args: &Args) -> Result<(), String> {
    let (schema, mut answers) = load_state(args)?;
    if let Some(list) = args.get("exclude") {
        let ids: Result<Vec<WorkerId>, String> = list
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<u32>()
                    .map(WorkerId)
                    .map_err(|_| format!("invalid worker id '{t}' in --exclude"))
            })
            .collect();
        let ids = ids?;
        let before = answers.len();
        answers = answers.without_workers(&ids);
        println!(
            "excluded {} worker(s): {} of {} answers dropped",
            ids.len(),
            before - answers.len(),
            before
        );
    }
    let model = match (args.has_switch("only-cate"), args.has_switch("only-cont")) {
        (true, true) => return Err("--only-cate and --only-cont are mutually exclusive".into()),
        (true, false) => TCrowd::only_categorical(),
        (false, true) => TCrowd::only_continuous(),
        (false, false) => TCrowd::default_full(),
    };
    let result = model.infer(&schema, &answers);
    io::write_table(&schema, &result.estimates(), args.require("out")?)
        .map_err(|e| e.to_string())?;
    println!(
        "inferred {} cells from {} answers by {} workers (EM: {} iterations, converged = {})",
        result.rows() * result.cols(),
        answers.len(),
        result.workers.len(),
        result.iterations,
        result.converged
    );
    if let Some(path) = args.get("workers") {
        use std::io::Write;
        let mut out =
            std::io::BufWriter::new(std::fs::File::create(path).map_err(|e| e.to_string())?);
        writeln!(out, "worker\tphi\tquality\tanswers").map_err(|e| e.to_string())?;
        let mut workers = result.workers.clone();
        workers.sort();
        for w in workers {
            writeln!(
                out,
                "{}\t{:.6}\t{:.6}\t{}",
                w.0,
                result.phi_of(w).unwrap(),
                result.quality_of(w).unwrap(),
                answers.for_worker(w).count()
            )
            .map_err(|e| e.to_string())?;
        }
        println!("worker report written to {path}");
    }
    Ok(())
}

fn cmd_assign(args: &Args) -> Result<(), String> {
    let (schema, answers) = load_state(args)?;
    let worker = WorkerId(args.get_parsed("worker", u32::MAX)?);
    if worker.0 == u32::MAX {
        return Err("missing required flag --worker".into());
    }
    let k: usize = args.get_parsed("k", schema.num_columns())?;
    let inference = TCrowd::default_full().infer(&schema, &answers);
    let matrix = answers.to_matrix();
    let ctx = AssignmentContext {
        schema: &schema,
        answers: &answers,
        freeze: matrix.freeze_view(),
        inference: Some(&inference),
        max_answers_per_cell: None,
        terminated: None,
        correlation: None,
    };
    let mut inherent = InherentGainPolicy::default();
    let mut sa = StructureAwarePolicy::default();
    let policy: &mut dyn AssignmentPolicy =
        if args.has_switch("inherent") { &mut inherent } else { &mut sa };
    let picks = policy.select(worker, k, &ctx);
    println!("policy: {}", policy.name());
    println!("row\tcolumn");
    for c in picks {
        println!("{}\t{}", c.row, schema.columns[c.col as usize].name);
    }
    Ok(())
}

fn cmd_diagnose(args: &Args) -> Result<(), String> {
    let (schema, answers) = load_state(args)?;
    let result = TCrowd::default_full().infer(&schema, &answers);
    println!(
        "fit: {} answers, {} workers, EM {} iterations (converged = {})",
        answers.len(),
        result.workers.len(),
        result.iterations,
        result.converged
    );
    match diagnostics::quality_consistency(&schema, &answers, &result) {
        Some(r) => println!("cross-attribute quality consistency: r = {r:.3}"),
        None => println!("cross-attribute quality consistency: not enough data"),
    }
    match diagnostics::calibration(&schema, &answers, &result) {
        Some(fit) => println!(
            "quality calibration: r = {:.3}, slope = {:.3} (1.0 = perfectly calibrated)",
            fit.r, fit.slope
        ),
        None => println!("quality calibration: not enough categorical data"),
    }
    let residuals = diagnostics::residual_report(&schema, &answers, &result);
    if !residuals.is_empty() {
        println!("\ncontinuous residuals (want mean 0, std 1, outliers < 0.5%):");
        for r in residuals {
            println!(
                "  {:<16} mean {:>7.3}  std {:>6.3}  outliers {:>6.3}%",
                schema.columns[r.column].name,
                r.mean,
                r.std,
                100.0 * r.outlier_fraction
            );
        }
    }
    if let Some(g) = args.get("entity-groups") {
        use tcrowd_core::entity::{EntityModel, EntityModelOptions};
        let groups: usize = g.parse().map_err(|_| "invalid --entity-groups")?;
        let model = EntityModel::fit(
            &schema,
            &answers,
            &result,
            &RowGrouping::Learned { groups, seed: 1 },
            &EntityModelOptions::default(),
        );
        let findings = diagnostics::familiarity_findings(&model, 8);
        println!("\nentity familiarity (λ > 1 = worker struggles with that row group):");
        if findings.is_empty() {
            println!("  no (worker, group) pair deviates from the global quality");
        }
        for f in findings {
            println!("  worker {:<6} group {:<3} λ = {:.2}", f.worker.0, f.group, f.lambda);
        }
    }
    let k = args.get_parsed("worst", 5usize)?;
    println!("\nhighest-variance workers (candidates for exclusion):");
    println!("worker\tphi\tquality\tanswers");
    for (w, phi) in diagnostics::worst_workers(&result, k) {
        println!(
            "{}\t{:.4}\t{:.4}\t{}",
            w.0,
            phi,
            result.quality_of(w).unwrap_or(0.0),
            answers.for_worker(w).count()
        );
    }
    Ok(())
}

/// Build a named assignment policy for the simulator commands.
fn make_policy(name: &str, rows: usize, seed: u64) -> Result<Box<dyn AssignmentPolicy>, String> {
    Ok(match name {
        "structure-aware" => Box::new(StructureAwarePolicy::default()),
        "inherent" => Box::new(InherentGainPolicy::default()),
        "entity" => Box::new(EntityAwarePolicy::new(RowGrouping::Learned {
            groups: (rows / 10).clamp(2, 8),
            seed,
        })),
        "qasca" => Box::new(QascaPolicy),
        "random" => Box::new(RandomPolicy::seeded(seed)),
        "looping" => Box::new(LoopingPolicy::default()),
        "entropy" => Box::new(EntropyPolicy),
        other => {
            return Err(format!(
                "unknown policy '{other}' (expected structure-aware, inherent, entity, \
                 qasca, random, looping or entropy)"
            ))
        }
    })
}

/// Shared world construction for `simulate` and `compare`.
fn sim_world(args: &Args, seed: u64) -> Result<(tcrowd_tabular::Dataset, WorkerPool), String> {
    let rows = args.get_parsed("rows", 40usize)?;
    let cfg = GeneratorConfig {
        rows,
        columns: args.get_parsed("cols", 5)?,
        categorical_ratio: args.get_parsed("ratio", 0.5)?,
        num_workers: args.get_parsed("workers", 25)?,
        answers_per_task: 1,
        ..Default::default()
    };
    let d = generate_dataset(&cfg, seed);
    let pool = WorkerPool::new(
        &d.schema,
        &d.truth,
        WorkerPoolConfig { num_workers: cfg.num_workers, ..Default::default() },
        seed.wrapping_mul(31).wrapping_add(7),
    );
    Ok((d, pool))
}

fn write_series(path: Option<&str>, runs: &[tcrowd_sim::RunResult]) -> Result<(), String> {
    use std::io::Write;
    let mut out: Box<dyn Write> = match path {
        Some(p) => {
            Box::new(std::io::BufWriter::new(std::fs::File::create(p).map_err(|e| e.to_string())?))
        }
        None => Box::new(std::io::stdout()),
    };
    writeln!(out, "policy	avg_answers	error_rate	mnad").map_err(|e| e.to_string())?;
    for r in runs {
        for pt in &r.points {
            writeln!(
                out,
                "{}	{:.2}	{}	{}",
                r.label,
                pt.avg_answers,
                pt.error_rate.map(|v| format!("{v:.4}")).unwrap_or_else(|| "/".into()),
                pt.mnad.map(|v| format!("{v:.4}")).unwrap_or_else(|| "/".into()),
            )
            .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let seed = args.get_parsed("seed", 1u64)?;
    let (d, mut pool) = sim_world(args, seed)?;
    let policy_name = args.get("policy").unwrap_or("structure-aware");
    let mut policy = make_policy(policy_name, d.rows(), seed)?;
    let runner = Runner::new(ExperimentConfig {
        budget_avg_answers: args.get_parsed("budget", 4.0)?,
        checkpoint_step: 0.5,
        stopping: args.has_switch("adaptive").then(StoppingRule::default),
        ..Default::default()
    });
    let backend = InferenceBackend::TCrowd(TCrowd::default_full());
    let result = runner.run(policy_name, &mut pool, policy.as_mut(), &backend);
    println!(
        "{}: {} answers in {} HITs (${:.2}); final error rate {}, MNAD {}{}",
        result.label,
        result.total_answers,
        result.total_hits,
        result.total_cost,
        result.final_report.error_rate.map(|v| format!("{v:.4}")).unwrap_or_else(|| "n/a".into()),
        result.final_report.mnad.map(|v| format!("{v:.4}")).unwrap_or_else(|| "n/a".into()),
        if result.terminated_cells > 0 {
            format!("; {} cells settled early", result.terminated_cells)
        } else {
            String::new()
        }
    );
    write_series(args.get("out"), std::slice::from_ref(&result))
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let seed = args.get_parsed("seed", 1u64)?;
    let budget = args.get_parsed("budget", 4.0)?;
    let backend = InferenceBackend::TCrowd(TCrowd::default_full());
    let mut runs = Vec::new();
    for name in ["structure-aware", "inherent", "entity", "qasca", "random", "looping", "entropy"] {
        let (d, mut pool) = sim_world(args, seed)?;
        let mut policy = make_policy(name, d.rows(), seed)?;
        let runner = Runner::new(ExperimentConfig {
            budget_avg_answers: budget,
            checkpoint_step: 0.5,
            ..Default::default()
        });
        let r = runner.run(name, &mut pool, policy.as_mut(), &backend);
        println!(
            "{:<16} error rate {}  MNAD {}",
            r.label,
            r.final_report.error_rate.map(|v| format!("{v:.4}")).unwrap_or_else(|| "n/a".into()),
            r.final_report.mnad.map(|v| format!("{v:.4}")).unwrap_or_else(|| "n/a".into()),
        );
        runs.push(r);
    }
    write_series(args.get("out"), &runs)
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:8077");
    let threads: usize = args.get_parsed("threads", 8usize)?;
    let (registry, server) = match args.get("data-dir") {
        None => {
            tcrowd_service::start(addr, threads).map_err(|e| format!("cannot bind {addr}: {e}"))?
        }
        Some(dir) => {
            let fsync = tcrowd_store::FsyncPolicy::parse(args.get("fsync").unwrap_or("flush"))?;
            let store = std::sync::Arc::new(
                tcrowd_store::Store::open(dir, fsync)
                    .map_err(|e| format!("cannot open data dir {dir}: {e}"))?,
            );
            let (registry, server, report) = tcrowd_service::start_durable(addr, threads, store)
                .map_err(|e| format!("cannot start durable service on {addr}: {e}"))?;
            println!(
                "durable store at {dir} (fsync={fsync}): recovered {} table(s), {} answers \
                 ({} snapshot-assisted, {} replayed from WAL tails, {} torn tail(s) truncated)",
                report.tables,
                report.answers,
                report.with_snapshot,
                report.replayed,
                report.torn_tails
            );
            (registry, server)
        }
    };
    if let Some(bound) = args.get("max-pending") {
        let bound: usize = bound.parse().map_err(|_| "--max-pending must be a positive integer")?;
        if bound == 0 {
            return Err("--max-pending must be a positive integer".into());
        }
        registry.set_default_max_pending(bound);
        println!("backpressure: tables default to max_pending={bound} (429 past the bound)");
    }
    if args.has_switch("demo") && registry.get("demo").is_none() {
        let d = generate_dataset(
            &GeneratorConfig { rows: 40, columns: 5, num_workers: 25, ..Default::default() },
            1,
        );
        registry
            .create(
                Some("demo".into()),
                d.schema.clone(),
                d.rows(),
                tcrowd_service::TableConfig::default(),
            )
            .map_err(|e| format!("cannot create demo table: {e}"))?;
        println!("demo table 'demo' created (40 rows x 5 columns, empty log)");
    }
    // The actual bound address matters when --addr used port 0.
    println!("tcrowd-service listening on http://{}", server.addr());
    println!(
        "endpoints: /healthz /metrics /tables \
         /tables/:id/{{assignment,answers,truth,stats,refresh,events}}"
    );
    // Serve until killed; the worker pool does all the work.
    loop {
        std::thread::park();
    }
}

/// One plain HTTP/1.0 GET against a running service (std-only; 1.0 so the
/// server closes the connection and `read_to_string` terminates).
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    use std::io::{Read as _, Write as _};
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(10))).map_err(|e| e.to_string())?;
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nHost: tcrowd\r\n\r\n").as_bytes())
        .map_err(|e| format!("cannot send request: {e}"))?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(|e| format!("cannot read response: {e}"))?;
    let (head, body) =
        raw.split_once("\r\n\r\n").ok_or_else(|| "malformed HTTP response".to_string())?;
    let status = head.split_whitespace().nth(1).unwrap_or("");
    if status != "200" {
        return Err(format!("{addr}{path} answered {status}: {}", body.trim()));
    }
    Ok(body.to_string())
}

fn cmd_events(args: &Args) -> Result<(), String> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:8077");
    let table = args.require("table")?;
    let since: u64 = args.get_parsed("since", 0u64)?;
    let max: usize = args.get_parsed("max", 100usize)?;
    let body = http_get(addr, &format!("/tables/{table}/events?since={since}&max={max}"))?;
    let doc = tcrowd_service::json::parse(&body).map_err(|e| format!("bad response JSON: {e}"))?;
    let events = doc
        .get("events")
        .and_then(tcrowd_service::Json::as_array)
        .ok_or_else(|| "response has no 'events' array".to_string())?;
    if doc.get("truncated").and_then(tcrowd_service::Json::as_bool) == Some(true) {
        println!("(ring wrapped: events between --since and the oldest shown were overwritten)");
    }
    for e in events {
        let num = |k: &str| e.get(k).and_then(tcrowd_service::Json::as_f64).unwrap_or(0.0) as u64;
        let text =
            |k: &str| e.get(k).and_then(tcrowd_service::Json::as_str).unwrap_or("").to_string();
        let rid = match e.get("request_id").and_then(tcrowd_service::Json::as_str) {
            Some(r) => format!(" [{r}]"),
            None => String::new(),
        };
        println!(
            "#{:<6} +{:>8}ms  {:<24} {}{rid}",
            num("seq"),
            num("at_ms"),
            text("kind"),
            text("detail")
        );
    }
    let next = doc.get("next_since").and_then(tcrowd_service::Json::as_f64).unwrap_or(0.0) as u64;
    println!("({} event(s); resume with --since {next})", events.len());
    Ok(())
}

fn cmd_store(args: &Args) -> Result<(), String> {
    let dir = args.require("data-dir")?;
    // The fsync policy only matters for appends; the offline tools never
    // append, but compaction rewrites files (always fsynced internally).
    let store = tcrowd_store::Store::open(dir, tcrowd_store::FsyncPolicy::Flush)
        .map_err(|e| format!("cannot open data dir {dir}: {e}"))?;
    let ids = match args.get("table") {
        Some(id) => vec![id.to_string()],
        None => store.table_ids().map_err(|e| e.to_string())?,
    };
    if ids.is_empty() {
        println!("no tables in {dir}");
        return Ok(());
    }
    match args.command.as_str() {
        "inspect" => {
            println!(
                "table\tanswers\trecords\twal_bytes\tsegments\tquarantine_records\tquarantined\t\
                 snapshot_epoch\tchain_links\tfit\ttorn\tdeleted"
            );
            for id in &ids {
                let v = store.verify_table(id).map_err(|e| format!("{id}: {e}"))?;
                let (snap_epoch, links, fit) = match &v.snapshot {
                    Some(s) => (
                        s.epoch.to_string(),
                        s.links.to_string(),
                        if s.has_fit { "yes" } else { "no" },
                    ),
                    None => ("-".to_string(), "-".to_string(), "-"),
                };
                // `3+` marks a head-compacted chain: cold segments below the
                // snapshot were deleted, so the count covers live files only.
                let segments = format!("{}{}", v.segments, if v.head_compacted { "+" } else { "" });
                println!(
                    "{id}\t{}\t{}\t{}\t{segments}\t{}\t{}\t{snap_epoch}\t{links}\t{fit}\t{}\t{}",
                    v.answers,
                    v.records,
                    v.wal_bytes,
                    v.quarantine_records,
                    v.quarantined,
                    v.torn.as_ref().map(|t| format!("@{}", t.at)).unwrap_or_else(|| "-".into()),
                    if v.deleted { "yes" } else { "no" },
                );
            }
            Ok(())
        }
        "verify" => {
            let mut failures = 0usize;
            for id in &ids {
                let v = store.verify_table(id).map_err(|e| format!("{id}: {e}"))?;
                let status = if v.errors.is_empty() { "ok" } else { "FAIL" };
                println!(
                    "{id}: {status} — {} answers in {} records ({} bytes, {} segment(s){})",
                    v.answers,
                    v.records,
                    v.wal_bytes,
                    v.segments,
                    if v.head_compacted {
                        ", head compacted — snapshot is load-bearing"
                    } else {
                        ""
                    }
                );
                if let Some(t) = &v.torn {
                    println!(
                        "  torn tail at byte {} ({} bytes dropped): {} — recovery will truncate",
                        t.at, t.dropped_bytes, t.reason
                    );
                }
                if v.quarantine_records > 0 || v.quarantined > 0 {
                    println!(
                        "  quarantine: {} record(s), {} worker(s) currently quarantined \
                         (fit-level filter — every logged answer above is retained)",
                        v.quarantine_records, v.quarantined
                    );
                }
                if let Some(s) = &v.snapshot {
                    println!(
                        "  snapshot chain: epoch {} at wal offset {}, {} incremental link(s) \
                         ({}consistent, fit {})",
                        s.epoch,
                        s.wal_offset,
                        s.links,
                        if s.consistent { "" } else { "IN" },
                        if s.has_fit { "present" } else { "absent" }
                    );
                }
                for e in &v.errors {
                    println!("  error: {e}");
                }
                failures += usize::from(!v.errors.is_empty());
            }
            if failures > 0 {
                return Err(format!("{failures} table(s) failed verification"));
            }
            Ok(())
        }
        "compact" => {
            for id in &ids {
                let r = store.compact_table(id).map_err(|e| format!("{id}: {e}"))?;
                println!(
                    "{id}: {} answers, {} records -> {}, {} -> {} wal bytes, \
                     {} -> {} segment(s), fit {}",
                    r.answers,
                    r.records_before,
                    r.records_after,
                    r.wal_bytes_before,
                    r.wal_bytes_after,
                    r.segments_before,
                    r.segments_after,
                    if r.fit_preserved { "preserved" } else { "absent" }
                );
            }
            Ok(())
        }
        other => {
            Err(format!("unknown store subcommand '{other}' (expected inspect|verify|compact)"))
        }
    }
}

fn cmd_evaluate(args: &Args) -> Result<(), String> {
    let schema = io::read_schema(args.require("schema")?).map_err(|e| e.to_string())?;
    let truth = io::read_table(&schema, args.require("truth")?).map_err(|e| e.to_string())?;
    let estimates =
        io::read_table(&schema, args.require("estimates")?).map_err(|e| e.to_string())?;
    if truth.len() != estimates.len() {
        return Err(format!(
            "truth has {} rows but estimates has {}",
            truth.len(),
            estimates.len()
        ));
    }
    let report = evaluate(&schema, &truth, &estimates);
    match report.error_rate {
        Some(er) => println!("error rate (categorical): {er:.4}"),
        None => println!("error rate (categorical): n/a (no categorical columns)"),
    }
    match report.mnad {
        Some(m) => println!("MNAD (continuous):        {m:.4}"),
        None => println!("MNAD (continuous):        n/a (no continuous columns)"),
    }
    println!("\nper-column:");
    for c in &report.columns {
        match (c.error_rate, c.nad) {
            (Some(er), _) => println!("  {:<16} error rate {er:.4}", c.name),
            (_, Some(nad)) => {
                println!("  {:<16} NAD {nad:.4} (RMSE {:.4})", c.name, c.rmse.unwrap())
            }
            _ => {}
        }
    }
    Ok(())
}
