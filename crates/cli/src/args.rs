//! Tiny flag parser — the CLI has four subcommands with a handful of
//! `--flag value` options each, which does not justify an argument-parsing
//! dependency outside the allowed set.

use std::collections::HashMap;

/// Parsed command line: subcommand, `--flag value` pairs, bare `--switches`.
#[derive(Debug, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parse from an iterator of arguments (excluding the program name).
    ///
    /// Grammar: `<command> (--name value | --switch)*`. A `--name` followed
    /// by another `--…` token or end-of-input is a switch.
    pub fn parse(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
        let command = argv.next().unwrap_or_default();
        let mut args = Args { command, ..Default::default() };
        let rest: Vec<String> = argv.collect();
        let mut i = 0;
        while i < rest.len() {
            let tok = &rest[i];
            let name = tok
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected positional argument '{tok}'"))?;
            if name.is_empty() {
                return Err("empty flag '--'".into());
            }
            match rest.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    if args.values.insert(name.to_string(), v.clone()).is_some() {
                        return Err(format!("duplicate flag --{name}"));
                    }
                    i += 2;
                }
                _ => {
                    args.switches.push(name.to_string());
                    i += 1;
                }
            }
        }
        Ok(args)
    }

    /// A required `--name value` flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.values
            .get(name)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// An optional `--name value` flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(|s| s.as_str())
    }

    /// An optional flag parsed into `T`, with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{name}: {e}")),
        }
    }

    /// Whether a bare `--switch` was given.
    pub fn has_switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, String> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_values_and_switches() {
        let a = parse(&["infer", "--schema", "s.tsv", "--only-cate", "--rows", "10"]).unwrap();
        assert_eq!(a.command, "infer");
        assert_eq!(a.require("schema").unwrap(), "s.tsv");
        assert_eq!(a.get_parsed::<usize>("rows", 0).unwrap(), 10);
        assert!(a.has_switch("only-cate"));
        assert!(!a.has_switch("only-cont"));
    }

    #[test]
    fn missing_required_flag_errors() {
        let a = parse(&["infer"]).unwrap();
        assert!(a.require("schema").is_err());
    }

    #[test]
    fn rejects_positional_and_duplicates() {
        assert!(parse(&["x", "stray"]).is_err());
        assert!(parse(&["x", "--a", "1", "--a", "2"]).is_err());
    }

    #[test]
    fn default_used_when_flag_absent() {
        let a = parse(&["gen"]).unwrap();
        assert_eq!(a.get_parsed::<f64>("ratio", 0.5).unwrap(), 0.5);
        assert!(a.get_parsed::<usize>("rows", 1).is_ok());
    }

    #[test]
    fn bad_parse_reports_flag_name() {
        let a = parse(&["gen", "--rows", "ten"]).unwrap();
        let err = a.get_parsed::<usize>("rows", 0).unwrap_err();
        assert!(err.contains("--rows"));
    }
}
