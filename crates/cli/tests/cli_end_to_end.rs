//! End-to-end tests of the `tcrowd` binary: generate → infer → evaluate →
//! assign, all through the real executable and the TSV interchange files.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tcrowd"))
}

fn workdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join("tcrowd_cli_tests").join(format!("{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_infer_evaluate_pipeline() {
    let dir = workdir("pipeline");
    let out = bin()
        .args(["generate", "--out-dir"])
        .arg(&dir)
        .args(["--rows", "30", "--cols", "5", "--seed", "9"])
        .output()
        .expect("run generate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let schema = dir.join("table.schema.tsv");
    let answers = dir.join("table.answers.tsv");
    let truth = dir.join("table.truth.tsv");
    let estimates = dir.join("estimates.tsv");
    for f in [&schema, &answers, &truth] {
        assert!(f.exists(), "{} missing", f.display());
    }

    let out = bin()
        .args(["infer", "--schema"])
        .arg(&schema)
        .args(["--answers"])
        .arg(&answers)
        .args(["--rows", "30", "--out"])
        .arg(&estimates)
        .args(["--workers"])
        .arg(dir.join("workers.tsv"))
        .output()
        .expect("run infer");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("converged = true"), "{stdout}");
    assert!(estimates.exists());
    assert!(dir.join("workers.tsv").exists());

    let out = bin()
        .args(["evaluate", "--schema"])
        .arg(&schema)
        .args(["--truth"])
        .arg(&truth)
        .args(["--estimates"])
        .arg(&estimates)
        .output()
        .expect("run evaluate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error rate"), "{stdout}");
    assert!(stdout.contains("MNAD"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn assign_lists_k_tasks() {
    let dir = workdir("assign");
    assert!(bin()
        .args(["generate", "--out-dir"])
        .arg(&dir)
        .args(["--rows", "12", "--cols", "4", "--seed", "3"])
        .status()
        .unwrap()
        .success());
    let out = bin()
        .args(["assign", "--schema"])
        .arg(dir.join("table.schema.tsv"))
        .args(["--answers"])
        .arg(dir.join("table.answers.tsv"))
        .args(["--rows", "12", "--worker", "999", "--k", "5"])
        .output()
        .expect("run assign");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("structure-aware"), "{stdout}");
    // Header + 5 task lines.
    assert_eq!(stdout.lines().filter(|l| l.contains('\t')).count(), 6, "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diagnose_prints_model_health() {
    let dir = workdir("diagnose");
    assert!(bin()
        .args(["generate", "--out-dir"])
        .arg(&dir)
        .args(["--rows", "40", "--cols", "5", "--seed", "5"])
        .status()
        .unwrap()
        .success());
    let out = bin()
        .args(["diagnose", "--schema"])
        .arg(dir.join("table.schema.tsv"))
        .args(["--answers"])
        .arg(dir.join("table.answers.tsv"))
        .args(["--rows", "40", "--worst", "3"])
        .output()
        .expect("run diagnose");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("quality calibration"), "{stdout}");
    assert!(stdout.contains("continuous residuals"), "{stdout}");
    assert!(stdout.contains("highest-variance workers"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn helpful_errors_and_usage() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = bin().arg("infer").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--schema"));

    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn constrained_inference_flags_are_exclusive() {
    let dir = workdir("flags");
    assert!(bin()
        .args(["generate", "--out-dir"])
        .arg(&dir)
        .args(["--rows", "8", "--cols", "4"])
        .status()
        .unwrap()
        .success());
    let out = bin()
        .args(["infer", "--schema"])
        .arg(dir.join("table.schema.tsv"))
        .args(["--answers"])
        .arg(dir.join("table.answers.tsv"))
        .args(["--rows", "8", "--out"])
        .arg(dir.join("est.tsv"))
        .args(["--only-cate", "--only-cont"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simulate_prints_summary_and_writes_series() {
    let dir = workdir("simulate");
    let series = dir.join("series.tsv");
    let out = bin()
        .args([
            "simulate", "--rows", "15", "--cols", "3", "--budget", "2.5", "--seed", "3",
            "--policy", "inherent", "--out",
        ])
        .arg(&series)
        .output()
        .expect("run simulate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("inherent:"), "summary missing: {stdout}");
    let tsv = std::fs::read_to_string(&series).unwrap();
    assert!(tsv.starts_with("policy\tavg_answers\terror_rate\tmnad"));
    assert!(tsv.lines().count() > 2, "series should contain checkpoints");
}

#[test]
fn simulate_adaptive_reports_settled_cells() {
    let out = bin()
        .args([
            "simulate",
            "--rows",
            "12",
            "--cols",
            "3",
            "--budget",
            "5",
            "--seed",
            "4",
            "--adaptive",
        ])
        .output()
        .expect("run simulate --adaptive");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("settled early"), "adaptive run should settle some cells: {stdout}");
}

#[test]
fn simulate_rejects_unknown_policy() {
    let out = bin().args(["simulate", "--policy", "oracle"]).output().expect("run simulate");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown policy"));
}

#[test]
fn compare_runs_every_policy() {
    let dir = workdir("compare");
    let series = dir.join("compare.tsv");
    let out = bin()
        .args(["compare", "--rows", "12", "--cols", "3", "--budget", "2", "--seed", "5", "--out"])
        .arg(&series)
        .output()
        .expect("run compare");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for policy in ["structure-aware", "inherent", "entity", "qasca", "random", "looping", "entropy"]
    {
        assert!(stdout.contains(policy), "missing policy {policy} in: {stdout}");
    }
    let tsv = std::fs::read_to_string(&series).unwrap();
    assert!(tsv.contains("qasca\t"));
}

#[test]
fn infer_exclude_drops_worker_answers() {
    let dir = workdir("exclude");
    let out = bin()
        .args(["generate", "--out-dir"])
        .arg(&dir)
        .args(["--rows", "12", "--cols", "3", "--seed", "6"])
        .output()
        .expect("run generate");
    assert!(out.status.success());
    let est = dir.join("est.tsv");
    let out = bin()
        .args(["infer", "--schema"])
        .arg(dir.join("table.schema.tsv"))
        .arg("--answers")
        .arg(dir.join("table.answers.tsv"))
        .args(["--rows", "12", "--exclude", "0,1", "--out"])
        .arg(&est)
        .output()
        .expect("run infer --exclude");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("excluded 2 worker(s)"), "{stdout}");
    assert!(est.exists());

    let out = bin()
        .args(["infer", "--schema"])
        .arg(dir.join("table.schema.tsv"))
        .arg("--answers")
        .arg(dir.join("table.answers.tsv"))
        .args(["--rows", "12", "--exclude", "zero", "--out"])
        .arg(&est)
        .output()
        .expect("run infer with bad --exclude");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid worker id"));
}

#[test]
fn serve_starts_and_answers_http() {
    use std::io::{BufRead, BufReader, Read, Write};

    // Ephemeral port; the binary prints the actual bound address.
    let mut child = bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2", "--demo"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines.next().expect("serve exited before binding").expect("read stdout");
        if let Some(rest) = line.split("listening on http://").nth(1) {
            break rest.trim().to_string();
        }
    };

    let roundtrip = |raw: &str| -> String {
        let mut s = std::net::TcpStream::connect(&addr).expect("connect");
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    };
    let health = roundtrip("GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    // --demo pre-created one table; its stats endpoint must be live.
    assert!(health.contains("\"tables\":1"), "{health}");
    let stats =
        roundtrip("GET /tables/demo/stats HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    assert!(stats.contains("\"rows\":40"), "{stats}");

    child.kill().expect("kill serve");
    let _ = child.wait();
}

/// Spawn `tcrowd serve` with the given extra args and return (child, addr).
fn spawn_serve(extra: &[&str]) -> (std::process::Child, String) {
    use std::io::{BufRead, BufReader};
    let mut child = bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
        .args(extra)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines.next().expect("serve exited before binding").expect("read stdout");
        if let Some(rest) = line.split("listening on http://").nth(1) {
            break rest.trim().to_string();
        }
    };
    (child, addr)
}

/// One `Connection: close` HTTP round-trip against `addr`.
fn http(addr: &str, method: &str, path: &str, body: &str) -> String {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).expect("connect");
    s.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
    .unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    out
}

/// The kill-and-restart durability smoke (CI: zero acknowledged answers
/// lost): start `tcrowd serve --data-dir`, create a table and ingest over
/// HTTP, SIGKILL the process mid-flight, restart it on the same directory,
/// and require every acknowledged answer (and only those) to be served.
#[test]
fn serve_data_dir_survives_sigkill_with_zero_acked_loss() {
    let dir = workdir("sigkill");
    let data_dir = dir.join("data");
    let data_flag = data_dir.to_str().unwrap().to_string();

    let (mut child, addr) = spawn_serve(&["--data-dir", &data_flag]);
    let create = http(
        &addr,
        "POST",
        "/tables",
        r#"{"id":"t","rows":6,"refit_every":1000000,"refresh_interval_ms":60000,
            "schema":{"columns":[
              {"name":"kind","type":"categorical","labels":["a","b","c"]},
              {"name":"size","type":"continuous","min":0,"max":10}]}}"#,
    );
    assert!(create.starts_with("HTTP/1.1 201"), "{create}");

    // Ingest batches; count only the acknowledged ones.
    let mut acked: Vec<(u32, u32, u32)> = Vec::new(); // (worker, row, col) — col 0 label index too
    for batch in 0..6u32 {
        let answers: Vec<String> = (0..4u32)
            .map(|i| {
                let (w, row) = (batch, (batch + i) % 6);
                if i % 2 == 0 {
                    format!(r#"{{"worker":{w},"row":{row},"col":0,"value":{}}}"#, (batch + i) % 3)
                } else {
                    format!(r#"{{"worker":{w},"row":{row},"col":1,"value":{}.5}}"#, i)
                }
            })
            .collect();
        let reply = http(
            &addr,
            "POST",
            "/tables/t/answers",
            &format!(r#"{{"answers":[{}]}}"#, answers.join(",")),
        );
        assert!(reply.contains("\"accepted\":4"), "{reply}");
        for i in 0..4u32 {
            acked.push((batch, (batch + i) % 6, i % 2));
        }
    }
    let n_acked = acked.len();

    // SIGKILL — no shutdown hooks, no flushes beyond what ingest already did.
    child.kill().expect("SIGKILL serve");
    let _ = child.wait();

    // Restart on the same data dir: recovery must resurrect the table.
    let (mut child, addr) = spawn_serve(&["--data-dir", &data_flag]);
    let tables = http(&addr, "GET", "/tables", "");
    assert!(tables.contains("\"t\""), "{tables}");
    let served = http(&addr, "GET", "/tables/t/answers", "");
    assert!(
        served.contains(&format!("\"epoch\":{n_acked}")),
        "expected all {n_acked} acknowledged answers after recovery: {served}"
    );
    // Spot-check content and that the inference endpoints serve the
    // recovered state.
    assert!(served.contains("\"worker\":5"), "{served}");
    let stats = http(&addr, "GET", "/tables/t/stats", "");
    assert!(stats.contains("\"durable\":true"), "{stats}");
    assert!(stats.contains(&format!("\"epoch\":{n_acked}")), "{stats}");
    let truth = http(&addr, "GET", "/tables/t/truth", "");
    assert!(truth.starts_with("HTTP/1.1 200"), "{truth}");
    // And ingestion still works post-recovery.
    let reply =
        http(&addr, "POST", "/tables/t/answers", r#"{"worker":9,"row":0,"col":0,"value":1}"#);
    assert!(reply.contains("\"accepted\":1"), "{reply}");

    child.kill().expect("kill serve");
    let _ = child.wait();
    std::fs::remove_dir_all(&dir).ok();
}

/// Quarantine durability: a manual quarantine survives SIGKILL + restart
/// (it is a WAL record, not in-memory state), never drops logged answers,
/// and the offline `store inspect`/`verify` tools decode the record kind.
/// A release is a second record that wins on replay.
#[test]
fn quarantine_survives_sigkill_and_store_tools_decode_it() {
    let dir = workdir("quarantine-sigkill");
    let data_dir = dir.join("data");
    let data_flag = data_dir.to_str().unwrap().to_string();

    let (mut child, addr) = spawn_serve(&["--data-dir", &data_flag]);
    let create = http(
        &addr,
        "POST",
        "/tables",
        r#"{"id":"t","rows":4,"refit_every":1000000,"refresh_interval_ms":600000,
            "schema":{"columns":[
              {"name":"kind","type":"categorical","labels":["a","b"]}]}}"#,
    );
    assert!(create.starts_with("HTTP/1.1 201"), "{create}");
    for w in 0..3u32 {
        for row in 0..4u32 {
            let reply = http(
                &addr,
                "POST",
                "/tables/t/answers",
                // Worker 2 contradicts the consensus — the one we quarantine.
                &format!(
                    r#"{{"worker":{w},"row":{row},"col":0,"value":{}}}"#,
                    if w == 2 { 1 - row % 2 } else { row % 2 }
                ),
            );
            assert!(reply.contains("\"accepted\":1"), "{reply}");
        }
    }
    let q = http(&addr, "POST", "/tables/t/workers/2/quarantine", "");
    assert!(q.starts_with("HTTP/1.1 200"), "{q}");
    // SIGKILL — the quarantine record must already be durable.
    child.kill().expect("SIGKILL serve");
    let _ = child.wait();

    let run = |sub: &str| -> (bool, String) {
        let out = bin()
            .args(["store", sub, "--data-dir", &data_flag])
            .output()
            .expect("run store subcommand");
        (
            out.status.success(),
            format!(
                "{}{}",
                String::from_utf8_lossy(&out.stdout),
                String::from_utf8_lossy(&out.stderr)
            ),
        )
    };
    // Offline tools decode the quarantine record kind against the cold dir.
    let (ok, out) = run("inspect");
    assert!(ok, "{out}");
    // table, answers, records, wal_bytes, segments, then
    // quarantine_records=1 and quarantined=1 — all 12 answers in the log.
    let row = out.lines().find(|l| l.starts_with("t\t")).expect("inspect row");
    let fields: Vec<&str> = row.split('\t').collect();
    assert_eq!(fields[1], "12", "answers retained: {out}");
    assert_eq!(fields[4], "1", "single live segment: {out}");
    assert_eq!(fields[5], "1", "quarantine records: {out}");
    assert_eq!(fields[6], "1", "quarantined workers: {out}");
    let (ok, out) = run("verify");
    assert!(ok, "{out}");
    assert!(out.contains("t: ok"), "{out}");
    assert!(out.contains("quarantine: 1 record(s), 1 worker(s) currently quarantined"), "{out}");

    // Restart: recovery replays the quarantine; the log keeps every answer.
    let (mut child, addr) = spawn_serve(&["--data-dir", &data_flag]);
    let served = http(&addr, "GET", "/tables/t/answers", "");
    assert!(served.contains("\"epoch\":12"), "{served}");
    let workers = http(&addr, "GET", "/tables/t/workers", "");
    assert!(
        workers.contains(r#""worker":2,"state":"quarantined""#)
            || workers.contains(r#""state":"quarantined""#),
        "worker 2 must stay quarantined across restart: {workers}"
    );
    let stats = http(&addr, "GET", "/tables/t/stats", "");
    assert!(stats.contains("\"quarantined_workers\":1"), "{stats}");
    // Release, then crash again: the release record wins on replay.
    let r = http(&addr, "POST", "/tables/t/workers/2/release", "");
    assert!(r.starts_with("HTTP/1.1 200"), "{r}");
    child.kill().expect("SIGKILL serve");
    let _ = child.wait();

    let (ok, out) = run("inspect");
    assert!(ok, "{out}");
    let row = out.lines().find(|l| l.starts_with("t\t")).expect("inspect row");
    let fields: Vec<&str> = row.split('\t').collect();
    assert_eq!(fields[5], "2", "two quarantine records after release: {out}");
    assert_eq!(fields[6], "0", "released worker no longer quarantined: {out}");

    let (mut child, addr) = spawn_serve(&["--data-dir", &data_flag]);
    let workers = http(&addr, "GET", "/tables/t/workers", "");
    assert!(!workers.contains("\"state\":\"quarantined\""), "{workers}");
    let stats = http(&addr, "GET", "/tables/t/stats", "");
    assert!(stats.contains("\"quarantined_workers\":0"), "{stats}");
    child.kill().expect("kill serve");
    let _ = child.wait();
    std::fs::remove_dir_all(&dir).ok();
}

/// `tcrowd store inspect|verify|compact` against a directory a served
/// session left behind.
#[test]
fn store_subcommands_inspect_verify_compact() {
    let dir = workdir("storecli");
    let data_dir = dir.join("data");
    let data_flag = data_dir.to_str().unwrap().to_string();

    let (mut child, addr) = spawn_serve(&["--data-dir", &data_flag]);
    let create = http(
        &addr,
        "POST",
        "/tables",
        r#"{"id":"t","rows":4,"schema":{"columns":[
            {"name":"kind","type":"categorical","labels":["a","b"]}]}}"#,
    );
    assert!(create.starts_with("HTTP/1.1 201"), "{create}");
    for i in 0..5u32 {
        let reply = http(
            &addr,
            "POST",
            "/tables/t/answers",
            &format!(r#"{{"worker":{i},"row":{},"col":0,"value":{}}}"#, i % 4, i % 2),
        );
        assert!(reply.contains("\"accepted\":1"), "{reply}");
    }
    // Force a refresh so a snapshot exists, then kill.
    let refresh = http(&addr, "POST", "/tables/t/refresh", "");
    assert!(refresh.starts_with("HTTP/1.1 200"), "{refresh}");
    child.kill().expect("kill serve");
    let _ = child.wait();

    let run = |sub: &str| -> (bool, String) {
        let out = bin()
            .args(["store", sub, "--data-dir", &data_flag])
            .output()
            .expect("run store subcommand");
        (
            out.status.success(),
            format!(
                "{}{}",
                String::from_utf8_lossy(&out.stdout),
                String::from_utf8_lossy(&out.stderr)
            ),
        )
    };
    let (ok, out) = run("inspect");
    assert!(ok, "{out}");
    assert!(out.contains("t\t5"), "{out}");
    let (ok, out) = run("verify");
    assert!(ok, "{out}");
    assert!(out.contains("t: ok"), "{out}");
    assert!(out.contains("snapshot chain: epoch 5"), "{out}");
    let (ok, out) = run("compact");
    assert!(ok, "{out}");
    assert!(out.contains("5 answers"), "{out}");
    // Still verifiable and recoverable after compaction.
    let (ok, out) = run("verify");
    assert!(ok, "{out}");
    assert!(out.contains("t: ok"), "{out}");
    let (mut child, addr) = spawn_serve(&["--data-dir", &data_flag]);
    let served = http(&addr, "GET", "/tables/t/answers", "");
    assert!(served.contains("\"epoch\":5"), "{served}");
    child.kill().expect("kill serve");
    let _ = child.wait();
    std::fs::remove_dir_all(&dir).ok();
}
