//! End-to-end tests of the `tcrowd` binary: generate → infer → evaluate →
//! assign, all through the real executable and the TSV interchange files.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tcrowd"))
}

fn workdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join("tcrowd_cli_tests").join(format!("{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_infer_evaluate_pipeline() {
    let dir = workdir("pipeline");
    let out = bin()
        .args(["generate", "--out-dir"])
        .arg(&dir)
        .args(["--rows", "30", "--cols", "5", "--seed", "9"])
        .output()
        .expect("run generate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let schema = dir.join("table.schema.tsv");
    let answers = dir.join("table.answers.tsv");
    let truth = dir.join("table.truth.tsv");
    let estimates = dir.join("estimates.tsv");
    for f in [&schema, &answers, &truth] {
        assert!(f.exists(), "{} missing", f.display());
    }

    let out = bin()
        .args(["infer", "--schema"])
        .arg(&schema)
        .args(["--answers"])
        .arg(&answers)
        .args(["--rows", "30", "--out"])
        .arg(&estimates)
        .args(["--workers"])
        .arg(dir.join("workers.tsv"))
        .output()
        .expect("run infer");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("converged = true"), "{stdout}");
    assert!(estimates.exists());
    assert!(dir.join("workers.tsv").exists());

    let out = bin()
        .args(["evaluate", "--schema"])
        .arg(&schema)
        .args(["--truth"])
        .arg(&truth)
        .args(["--estimates"])
        .arg(&estimates)
        .output()
        .expect("run evaluate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error rate"), "{stdout}");
    assert!(stdout.contains("MNAD"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn assign_lists_k_tasks() {
    let dir = workdir("assign");
    assert!(bin()
        .args(["generate", "--out-dir"])
        .arg(&dir)
        .args(["--rows", "12", "--cols", "4", "--seed", "3"])
        .status()
        .unwrap()
        .success());
    let out = bin()
        .args(["assign", "--schema"])
        .arg(dir.join("table.schema.tsv"))
        .args(["--answers"])
        .arg(dir.join("table.answers.tsv"))
        .args(["--rows", "12", "--worker", "999", "--k", "5"])
        .output()
        .expect("run assign");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("structure-aware"), "{stdout}");
    // Header + 5 task lines.
    assert_eq!(stdout.lines().filter(|l| l.contains('\t')).count(), 6, "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diagnose_prints_model_health() {
    let dir = workdir("diagnose");
    assert!(bin()
        .args(["generate", "--out-dir"])
        .arg(&dir)
        .args(["--rows", "40", "--cols", "5", "--seed", "5"])
        .status()
        .unwrap()
        .success());
    let out = bin()
        .args(["diagnose", "--schema"])
        .arg(dir.join("table.schema.tsv"))
        .args(["--answers"])
        .arg(dir.join("table.answers.tsv"))
        .args(["--rows", "40", "--worst", "3"])
        .output()
        .expect("run diagnose");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("quality calibration"), "{stdout}");
    assert!(stdout.contains("continuous residuals"), "{stdout}");
    assert!(stdout.contains("highest-variance workers"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn helpful_errors_and_usage() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = bin().arg("infer").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--schema"));

    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn constrained_inference_flags_are_exclusive() {
    let dir = workdir("flags");
    assert!(bin()
        .args(["generate", "--out-dir"])
        .arg(&dir)
        .args(["--rows", "8", "--cols", "4"])
        .status()
        .unwrap()
        .success());
    let out = bin()
        .args(["infer", "--schema"])
        .arg(dir.join("table.schema.tsv"))
        .args(["--answers"])
        .arg(dir.join("table.answers.tsv"))
        .args(["--rows", "8", "--out"])
        .arg(dir.join("est.tsv"))
        .args(["--only-cate", "--only-cont"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simulate_prints_summary_and_writes_series() {
    let dir = workdir("simulate");
    let series = dir.join("series.tsv");
    let out = bin()
        .args([
            "simulate", "--rows", "15", "--cols", "3", "--budget", "2.5", "--seed", "3",
            "--policy", "inherent", "--out",
        ])
        .arg(&series)
        .output()
        .expect("run simulate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("inherent:"), "summary missing: {stdout}");
    let tsv = std::fs::read_to_string(&series).unwrap();
    assert!(tsv.starts_with("policy\tavg_answers\terror_rate\tmnad"));
    assert!(tsv.lines().count() > 2, "series should contain checkpoints");
}

#[test]
fn simulate_adaptive_reports_settled_cells() {
    let out = bin()
        .args([
            "simulate",
            "--rows",
            "12",
            "--cols",
            "3",
            "--budget",
            "5",
            "--seed",
            "4",
            "--adaptive",
        ])
        .output()
        .expect("run simulate --adaptive");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("settled early"), "adaptive run should settle some cells: {stdout}");
}

#[test]
fn simulate_rejects_unknown_policy() {
    let out = bin().args(["simulate", "--policy", "oracle"]).output().expect("run simulate");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown policy"));
}

#[test]
fn compare_runs_every_policy() {
    let dir = workdir("compare");
    let series = dir.join("compare.tsv");
    let out = bin()
        .args(["compare", "--rows", "12", "--cols", "3", "--budget", "2", "--seed", "5", "--out"])
        .arg(&series)
        .output()
        .expect("run compare");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for policy in ["structure-aware", "inherent", "entity", "qasca", "random", "looping", "entropy"]
    {
        assert!(stdout.contains(policy), "missing policy {policy} in: {stdout}");
    }
    let tsv = std::fs::read_to_string(&series).unwrap();
    assert!(tsv.contains("qasca\t"));
}

#[test]
fn infer_exclude_drops_worker_answers() {
    let dir = workdir("exclude");
    let out = bin()
        .args(["generate", "--out-dir"])
        .arg(&dir)
        .args(["--rows", "12", "--cols", "3", "--seed", "6"])
        .output()
        .expect("run generate");
    assert!(out.status.success());
    let est = dir.join("est.tsv");
    let out = bin()
        .args(["infer", "--schema"])
        .arg(dir.join("table.schema.tsv"))
        .arg("--answers")
        .arg(dir.join("table.answers.tsv"))
        .args(["--rows", "12", "--exclude", "0,1", "--out"])
        .arg(&est)
        .output()
        .expect("run infer --exclude");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("excluded 2 worker(s)"), "{stdout}");
    assert!(est.exists());

    let out = bin()
        .args(["infer", "--schema"])
        .arg(dir.join("table.schema.tsv"))
        .arg("--answers")
        .arg(dir.join("table.answers.tsv"))
        .args(["--rows", "12", "--exclude", "zero", "--out"])
        .arg(&est)
        .output()
        .expect("run infer with bad --exclude");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid worker id"));
}

#[test]
fn serve_starts_and_answers_http() {
    use std::io::{BufRead, BufReader, Read, Write};

    // Ephemeral port; the binary prints the actual bound address.
    let mut child = bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2", "--demo"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines.next().expect("serve exited before binding").expect("read stdout");
        if let Some(rest) = line.split("listening on http://").nth(1) {
            break rest.trim().to_string();
        }
    };

    let roundtrip = |raw: &str| -> String {
        let mut s = std::net::TcpStream::connect(&addr).expect("connect");
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    };
    let health = roundtrip("GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    // --demo pre-created one table; its stats endpoint must be live.
    assert!(health.contains("\"tables\":1"), "{health}");
    let stats =
        roundtrip("GET /tables/demo/stats HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    assert!(stats.contains("\"rows\":40"), "{stats}");

    child.kill().expect("kill serve");
    let _ = child.wait();
}
