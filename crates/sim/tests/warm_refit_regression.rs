//! Regression suite for the incremental freeze pipeline: the simulator's
//! steady-state refit chain (delta-merge + warm-started EM) must converge to
//! the same estimates as the one-shot cold path.
//!
//! The comparison replays a recorded answer stream — the chain refits every
//! Δ answers, warm-starting from its previous fit, while the cold path runs
//! one cold fit on the final log. Both use a deep convergence configuration
//! (tight parameter tolerance, tight inner ascent) so each is pinned to the
//! shared EM fixed point; agreement is asserted to 1e-6 in z-score units
//! (equivalently, 1e-6 of a column spread in the original scale — the ELBO
//! surface is flat enough near the optimum that looser, wall-clock-friendly
//! tolerances leave parameter slack far above this bar; see
//! `EmOptions::param_tol`).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tcrowd_core::diagnostics::max_z_discrepancy;
use tcrowd_core::{EmOptions, TCrowd, TCrowdOptions};
use tcrowd_sim::{ExperimentConfig, InferenceBackend, Runner};
use tcrowd_tabular::{generate_dataset, AnswerLog, AnswerMatrix, CellId, GeneratorConfig};

#[test]
fn warm_refit_chain_matches_cold_fit_within_1e6() {
    let d = generate_dataset(
        &GeneratorConfig {
            rows: 40,
            columns: 5,
            num_workers: 20,
            answers_per_task: 4,
            ..Default::default()
        },
        11,
    );
    // Steady-state stream: answers arrive in shuffled order.
    let mut stream = d.answers.all().to_vec();
    stream.shuffle(&mut StdRng::seed_from_u64(3));
    let n = stream.len();
    let seed_len = n / 2;
    let delta = 50usize;

    let model =
        TCrowd::new(TCrowdOptions { em: EmOptions::deep_convergence(), ..Default::default() });

    // Warm chain: cold fit on the seed prefix, then delta-merge + warm refit
    // every Δ answers until the stream is exhausted.
    let mut log = AnswerLog::new(d.rows(), d.cols());
    for a in &stream[..seed_len] {
        log.push(*a);
    }
    let mut matrix = AnswerMatrix::build(&log);
    let mut fit = model.infer_matrix(&d.schema, &matrix);
    let mut at = seed_len;
    let mut refits = 0;
    while at < n {
        let next = (at + delta).min(n);
        for a in &stream[at..next] {
            log.push(*a);
        }
        matrix = matrix.refresh(&log);
        fit = model.infer_matrix_warm(&d.schema, &matrix, &fit);
        refits += 1;
        at = next;
    }
    assert!(refits >= 3, "the chain must exercise several warm refits, got {refits}");
    assert_eq!(matrix.epoch(), n);

    // Cold path: one cold fit on the full log.
    let cold = model.infer_matrix(&d.schema, &matrix);

    let gap = max_z_discrepancy(&fit, &cold);
    assert!(gap < 1e-6, "warm chain diverged from the cold fit: max z-space gap {gap:.3e}");
    // Point estimates: categorical cells must agree exactly.
    for i in 0..d.rows() as u32 {
        for j in 0..d.cols() as u32 {
            let cell = CellId::new(i, j);
            if let (tcrowd_tabular::Value::Categorical(a), tcrowd_tabular::Value::Categorical(b)) =
                (cold.estimate(cell), fit.estimate(cell))
            {
                assert_eq!(a, b, "categorical estimate flipped at ({i},{j})");
            }
        }
    }
}

#[test]
fn runner_with_warm_refits_produces_sound_estimates() {
    // End-to-end: the Runner now delta-merges its freeze and warm-starts
    // every refit. The run must stay healthy (finite metrics, sane error
    // rate on an easy table) — this is the guard against a warm-start bug
    // quietly corrupting the steady-state loop.
    let d = generate_dataset(
        &GeneratorConfig {
            rows: 15,
            columns: 4,
            num_workers: 12,
            answers_per_task: 1,
            avg_difficulty: 0.8,
            ..Default::default()
        },
        21,
    );
    let mut pool = tcrowd_sim::WorkerPool::new(
        &d.schema,
        &d.truth,
        tcrowd_sim::WorkerPoolConfig { num_workers: 12, ..Default::default() },
        21,
    );
    let runner = Runner::new(ExperimentConfig {
        budget_avg_answers: 4.0,
        checkpoint_step: 1.0,
        inference_every: 3,
        ..Default::default()
    });
    let mut policy = tcrowd_core::StructureAwarePolicy::default();
    let backend = InferenceBackend::TCrowd(TCrowd::default_full());
    let result = runner.run("warm-runner", &mut pool, &mut policy, &backend);
    assert!(!result.points.is_empty());
    let err = result.final_report.error_rate.expect("categorical columns present");
    assert!(err.is_finite() && err <= 0.35, "error rate {err} suggests a corrupted refit chain");
    let mnad = result.final_report.mnad.expect("continuous columns present");
    assert!(mnad.is_finite() && mnad < 1.0, "MNAD {mnad} suggests a corrupted refit chain");
}
