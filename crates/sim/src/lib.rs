//! # tcrowd-sim
//!
//! The crowdsourcing-platform simulator for the T-Crowd reproduction.
//!
//! The paper's end-to-end experiments (§6.3, Figs. 2/5/11) ran on Amazon
//! Mechanical Turk with live workers assigned dynamically through the
//! "external-HIT" facility. This crate substitutes that deployment (see
//! DESIGN.md §3): a [`WorkerPool`] draws a long-tail quality population and
//! answers assigned cells through the paper's own worker model, and a
//! [`Runner`] plays out Algorithm 2 — seed answers, worker arrivals, policy
//! selection, answer collection, periodic truth inference — recording Error
//! Rate and MNAD on a fixed answers-per-task grid. A confidence-based
//! [`StoppingRule`] can additionally terminate settled cells early
//! (CDAS-style, rebuilt on T-Crowd's posteriors).
//!
//! ```
//! use tcrowd_sim::{ExperimentConfig, InferenceBackend, Runner, WorkerPool, WorkerPoolConfig};
//! use tcrowd_core::{StructureAwarePolicy, TCrowd};
//! use tcrowd_tabular::{generate_dataset, GeneratorConfig};
//!
//! let data = generate_dataset(&GeneratorConfig {
//!     rows: 10, columns: 3, num_workers: 8, ..Default::default()
//! }, 1);
//! let mut pool = WorkerPool::new(&data.schema, &data.truth,
//!     WorkerPoolConfig { num_workers: 8, ..Default::default() }, 1);
//! let runner = Runner::new(ExperimentConfig { budget_avg_answers: 2.0, ..Default::default() });
//! let mut policy = StructureAwarePolicy::default();
//! let backend = InferenceBackend::TCrowd(TCrowd::default_full());
//! let result = runner.run("T-Crowd", &mut pool, &mut policy, &backend);
//! assert!(!result.points.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod discovery;
pub mod pool;
pub mod runner;
pub mod stopping;

pub use discovery::{DiscoveryState, EntityUniverse, ProposalOracle};
pub use pool::{AdversaryConfig, Archetype, ArrivalOrder, WorkerPool, WorkerPoolConfig};
pub use runner::{ExperimentConfig, InferenceBackend, RunResult, Runner, SeriesPoint};
pub use stopping::{StoppingRule, TerminationState};
