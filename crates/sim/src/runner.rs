//! The budgeted end-to-end experiment runner (paper Algorithm 2 / §6.3).
//!
//! One run pairs an assignment policy with an inference backend and plays
//! out the crowdsourcing process: seed answers, then worker arrivals — each
//! arrival gets a HIT of `batch_size` tasks chosen by the policy, answers
//! through the oracle, and the state advances. Error Rate and MNAD are
//! recorded on a fixed grid of answers-per-task checkpoints so different
//! systems can be compared at equal budget (the x-axis of Figs. 2 and 5).

use crate::pool::WorkerPool;
use crate::stopping::{StoppingRule, TerminationState};
use tcrowd_baselines::TruthMethod;
use tcrowd_core::{
    apply_answer_incrementally, AssignmentContext, AssignmentPolicy, InferenceResult, TCrowd,
};
use tcrowd_tabular::{
    evaluate_with_answers, Answer, AnswerLog, AnswerMatrix, QualityReport, Value,
};

/// Which truth-inference method backs the run (both for the policy's context
/// and for checkpoint evaluation).
pub enum InferenceBackend<'a> {
    /// T-Crowd EM inference: the policy receives a full [`InferenceResult`].
    TCrowd(TCrowd),
    /// A baseline method: the policy context carries no inference result
    /// (matching AskIt!/CDAS/CRH/CATD, which assign without one).
    Baseline(&'a dyn TruthMethod),
}

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Tasks per HIT; defaults to the number of columns (the paper put one
    /// task per column into each HIT).
    pub batch_size: Option<usize>,
    /// Seed rounds: each row is initially answered this many times, whole-row
    /// (Algorithm 2's "initialize each task with several answers").
    pub seed_rounds: usize,
    /// Stop when the average number of answers per task reaches this budget.
    pub budget_avg_answers: f64,
    /// Checkpoint grid step on the answers-per-task axis.
    pub checkpoint_step: f64,
    /// Re-run full EM every this many HITs (between full runs the answered
    /// cells' posteriors are refreshed incrementally, §5.1's acceleration).
    pub inference_every: usize,
    /// Optional per-cell redundancy cap.
    pub max_answers_per_cell: Option<usize>,
    /// Monetary cost per HIT (the paper paid $0.05 per HIT on AMT); the
    /// seed phase is also charged per row-HIT.
    pub cost_per_hit: f64,
    /// Optional confidence-based stopping rule: settled cells stop being
    /// assigned and the run ends when every cell is settled. Requires the
    /// [`InferenceBackend::TCrowd`] backend (ignored for baselines, which
    /// have no posterior to test).
    pub stopping: Option<StoppingRule>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            batch_size: None,
            seed_rounds: 1,
            budget_avg_answers: 5.0,
            checkpoint_step: 0.25,
            inference_every: 5,
            max_answers_per_cell: None,
            cost_per_hit: 0.05,
            stopping: None,
        }
    }
}

/// One evaluation checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Average answers per task when the checkpoint was taken.
    pub avg_answers: f64,
    /// Error rate over categorical cells (if any).
    pub error_rate: Option<f64>,
    /// MNAD over continuous columns (if any).
    pub mnad: Option<f64>,
}

/// The result of one end-to-end run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Label for plots/tables (e.g. "T-Crowd", "AskIt!").
    pub label: String,
    /// Checkpoint series.
    pub points: Vec<SeriesPoint>,
    /// Final quality at budget exhaustion.
    pub final_report: QualityReport,
    /// Total answers collected.
    pub total_answers: usize,
    /// Cells terminated by the stopping rule (0 when no rule configured).
    pub terminated_cells: usize,
    /// Number of HITs issued (seed row-HITs + one per arrival served).
    pub total_hits: usize,
    /// Money spent: `total_hits × cost_per_hit`.
    pub total_cost: f64,
}

/// Re-test the stopping rule against the freshest posterior.
fn refresh_termination(
    termination: &mut Option<TerminationState>,
    rule: Option<&StoppingRule>,
    inference: Option<&InferenceResult>,
    answers: &AnswerLog,
) {
    if let (Some(state), Some(rule), Some(inf)) = (termination.as_mut(), rule, inference) {
        state.update(inf, rule, |c| answers.count_for_cell(c));
    }
}

/// The experiment runner.
#[derive(Debug, Default)]
pub struct Runner {
    /// Configuration shared by every run of this runner.
    pub cfg: ExperimentConfig,
}

impl Runner {
    /// Create a runner.
    pub fn new(cfg: ExperimentConfig) -> Self {
        Runner { cfg }
    }

    /// Play out one crowdsourcing run.
    pub fn run(
        &self,
        label: &str,
        pool: &mut WorkerPool,
        policy: &mut dyn AssignmentPolicy,
        backend: &InferenceBackend<'_>,
    ) -> RunResult {
        let schema = pool.schema().clone();
        let truth = pool.truth().to_vec();
        let n_rows = truth.len();
        let n_cols = schema.num_columns();
        let n_cells = (n_rows * n_cols) as f64;
        let batch = self.cfg.batch_size.unwrap_or(n_cols).max(1);

        let mut answers = AnswerLog::new(n_rows, n_cols);
        let mut total_hits = 0usize;

        // ---- Seed phase: whole-row answers, `seed_rounds` workers per row.
        for round in 0..self.cfg.seed_rounds {
            for i in 0..n_rows as u32 {
                let w = pool.next_worker();
                total_hits += 1;
                let _ = round;
                for j in 0..n_cols as u32 {
                    let cell = tcrowd_tabular::CellId::new(i, j);
                    if answers.has_answered(w, cell) {
                        continue;
                    }
                    let value = pool.answer(w, cell);
                    answers.push(Answer { worker: w, cell, value });
                }
            }
        }

        // The runner's single evolving freeze: built once after the seed
        // phase, then kept current by delta-merging the log tail — per-HIT
        // assignment and every EM refresh share it instead of paying a full
        // `O(n + cells + W·R)` rebuild each time.
        let mut matrix = AnswerMatrix::build(&answers);

        // Full EM refresh on the shared freeze. The first fit is cold; every
        // later refit warm-starts from the previous fit's parameters (the
        // steady-state loop converges in a handful of iterations — see
        // `TCrowd::infer_matrix_warm` and `BENCH_refresh.json`). Between
        // refreshes the answered cells' posteriors are updated incrementally
        // (§5.1).
        let full_fit =
            |model: &TCrowd, matrix: &AnswerMatrix, prev: Option<&InferenceResult>| match prev {
                Some(p) => model.infer_matrix_warm(&schema, matrix, p),
                None => model.infer_matrix(&schema, matrix),
            };

        // ---- Main loop.
        let mut inference: Option<InferenceResult> = match backend {
            InferenceBackend::TCrowd(model) => Some(full_fit(model, &matrix, None)),
            InferenceBackend::Baseline(_) => None,
        };
        let mut points: Vec<SeriesPoint> = Vec::new();
        let mut next_checkpoint = (answers.len() as f64 / n_cells / self.cfg.checkpoint_step)
            .ceil()
            * self.cfg.checkpoint_step;
        let mut hits_since_inference = 0usize;
        let mut consecutive_empty = 0usize;
        let mut termination = self.cfg.stopping.map(|_| TerminationState::new());

        let evaluate_now = |answers: &AnswerLog,
                            matrix: &AnswerMatrix,
                            inference: &Option<InferenceResult>|
         -> QualityReport {
            let estimates: Vec<Vec<Value>> = match backend {
                InferenceBackend::TCrowd(model) => match inference {
                    Some(r) => r.estimates(),
                    None => model.infer_matrix(&schema, matrix).estimates(),
                },
                InferenceBackend::Baseline(m) => m.estimate(&schema, answers),
            };
            evaluate_with_answers(&schema, &truth, &estimates, answers)
        };

        loop {
            // Bring the freeze up to date with the answers collected since
            // the last iteration (per-answer work on the delta + bulk
            // copies). Only the T-Crowd backend ever reads the freeze —
            // matrix-side policies require its inference result, and
            // baseline evaluation goes through the log — so baseline runs
            // skip the merge entirely (zero per-HIT matrix work, as before).
            if matches!(backend, InferenceBackend::TCrowd(_)) && matrix.is_stale(&answers) {
                matrix = matrix.merge_delta(&answers.all()[matrix.epoch()..]);
            }
            let avg = answers.len() as f64 / n_cells;
            // Record any checkpoints we crossed.
            while avg + 1e-9 >= next_checkpoint
                && next_checkpoint <= self.cfg.budget_avg_answers + 1e-9
            {
                // Refresh inference at checkpoints so the evaluation reflects
                // all collected answers.
                if let InferenceBackend::TCrowd(model) = backend {
                    inference = Some(full_fit(model, &matrix, inference.as_ref()));
                    hits_since_inference = 0;
                    refresh_termination(
                        &mut termination,
                        self.cfg.stopping.as_ref(),
                        inference.as_ref(),
                        &answers,
                    );
                }
                let rep = evaluate_now(&answers, &matrix, &inference);
                points.push(SeriesPoint {
                    avg_answers: next_checkpoint,
                    error_rate: rep.error_rate,
                    mnad: rep.mnad,
                });
                next_checkpoint += self.cfg.checkpoint_step;
            }
            if avg >= self.cfg.budget_avg_answers {
                break;
            }
            if let Some(t) = &termination {
                if t.all_terminated(n_rows, n_cols) {
                    break;
                }
            }

            // A worker arrives and receives a HIT.
            let worker = pool.next_worker();
            if let (InferenceBackend::TCrowd(model), true) =
                (backend, hits_since_inference >= self.cfg.inference_every)
            {
                inference = Some(full_fit(model, &matrix, inference.as_ref()));
                hits_since_inference = 0;
                refresh_termination(
                    &mut termination,
                    self.cfg.stopping.as_ref(),
                    inference.as_ref(),
                    &answers,
                );
            }
            let selected = {
                let ctx = AssignmentContext {
                    schema: &schema,
                    answers: &answers,
                    freeze: matrix.freeze_view(),
                    inference: inference.as_ref(),
                    max_answers_per_cell: self.cfg.max_answers_per_cell,
                    terminated: termination.as_ref().map(|t| t.set()),
                    correlation: None,
                };
                policy.select(worker, batch, &ctx)
            };
            if selected.is_empty() {
                // Candidate pool exhausted for this worker; move on. The
                // budget alone cannot end the run here (avg stops growing when
                // no cell is assignable — e.g. every cell reached
                // `max_answers_per_cell`), so once every worker in the pool
                // has arrived in a row with nothing to do, the run is over.
                consecutive_empty += 1;
                if consecutive_empty >= pool.num_workers() {
                    break;
                }
                hits_since_inference += 1;
                continue;
            }
            consecutive_empty = 0;
            total_hits += 1;
            for cell in selected {
                let value = pool.answer(worker, cell);
                answers.push(Answer { worker, cell, value });
                if let Some(r) = inference.as_mut() {
                    apply_answer_incrementally(r, worker, cell, &value);
                }
            }
            hits_since_inference += 1;
        }

        // Final full evaluation on a freeze covering every answer.
        if let InferenceBackend::TCrowd(model) = backend {
            if matrix.is_stale(&answers) {
                matrix = matrix.merge_delta(&answers.all()[matrix.epoch()..]);
            }
            inference = Some(full_fit(model, &matrix, inference.as_ref()));
        }
        let final_report = evaluate_now(&answers, &matrix, &inference);
        RunResult {
            label: label.to_string(),
            points,
            final_report,
            total_answers: answers.len(),
            terminated_cells: termination.map(|t| t.len()).unwrap_or(0),
            total_hits,
            total_cost: total_hits as f64 * self.cfg.cost_per_hit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{WorkerPool, WorkerPoolConfig};
    use tcrowd_baselines::{MajorityVoting, RandomPolicy};
    use tcrowd_core::StructureAwarePolicy;
    use tcrowd_tabular::{generate_dataset, GeneratorConfig};

    fn small_pool(seed: u64) -> WorkerPool {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 15,
                columns: 4,
                num_workers: 12,
                answers_per_task: 1,
                ..Default::default()
            },
            seed,
        );
        WorkerPool::new(
            &d.schema,
            &d.truth,
            WorkerPoolConfig { num_workers: 12, ..Default::default() },
            seed,
        )
    }

    #[test]
    fn run_respects_budget_and_produces_checkpoints() {
        let mut pool = small_pool(1);
        let runner = Runner::new(ExperimentConfig {
            budget_avg_answers: 3.0,
            checkpoint_step: 0.5,
            ..Default::default()
        });
        let mut policy = RandomPolicy::seeded(1);
        let backend = InferenceBackend::Baseline(&MajorityVoting);
        let result = runner.run("mv-random", &mut pool, &mut policy, &backend);
        let cells = 15.0 * 4.0;
        assert!(result.total_answers as f64 / cells >= 3.0);
        assert!(!result.points.is_empty());
        // Checkpoints are ordered and within budget.
        for w in result.points.windows(2) {
            assert!(w[1].avg_answers > w[0].avg_answers);
        }
        assert!(result.points.last().unwrap().avg_answers <= 3.0 + 1e-9);
    }

    #[test]
    fn quality_improves_with_budget() {
        let mut pool = small_pool(2);
        let runner = Runner::new(ExperimentConfig {
            budget_avg_answers: 5.0,
            checkpoint_step: 1.0,
            ..Default::default()
        });
        let mut policy = RandomPolicy::seeded(2);
        let backend = InferenceBackend::Baseline(&MajorityVoting);
        let result = runner.run("mv-random", &mut pool, &mut policy, &backend);
        let first = result.points.first().unwrap();
        let last = result.points.last().unwrap();
        assert!(
            last.error_rate.unwrap() <= first.error_rate.unwrap() + 0.05,
            "error rate should not degrade with more answers: {} -> {}",
            first.error_rate.unwrap(),
            last.error_rate.unwrap()
        );
    }

    #[test]
    fn tcrowd_backend_runs_end_to_end() {
        let mut pool = small_pool(3);
        let runner = Runner::new(ExperimentConfig {
            budget_avg_answers: 2.5,
            checkpoint_step: 0.5,
            inference_every: 3,
            ..Default::default()
        });
        let mut policy = StructureAwarePolicy::default();
        let backend = InferenceBackend::TCrowd(TCrowd::default_full());
        let result = runner.run("t-crowd", &mut pool, &mut policy, &backend);
        assert!(!result.points.is_empty());
        assert!(result.final_report.error_rate.is_some());
        assert!(result.final_report.mnad.is_some());
    }

    #[test]
    fn cost_accounting_matches_hits() {
        let mut pool = small_pool(11);
        let runner = Runner::new(ExperimentConfig {
            budget_avg_answers: 2.0,
            cost_per_hit: 0.05,
            ..Default::default()
        });
        let mut policy = RandomPolicy::seeded(11);
        let backend = InferenceBackend::Baseline(&MajorityVoting);
        let result = runner.run("cost", &mut pool, &mut policy, &backend);
        assert!(result.total_hits >= 15, "seed phase alone issues one HIT per row");
        assert!((result.total_cost - result.total_hits as f64 * 0.05).abs() < 1e-12);
        // With 4-cell HITs on a 60-cell table, roughly answers/batch HITs
        // beyond the seed phase.
        assert!(result.total_hits <= result.total_answers);
    }

    #[test]
    fn run_terminates_when_pool_is_exhausted_under_cap() {
        // Budget far beyond what the cap allows: the run must still end
        // (regression test for the empty-selection infinite loop).
        let mut pool = small_pool(7);
        let runner = Runner::new(ExperimentConfig {
            budget_avg_answers: 50.0,
            max_answers_per_cell: Some(2),
            ..Default::default()
        });
        let mut policy = RandomPolicy::seeded(7);
        let backend = InferenceBackend::Baseline(&MajorityVoting);
        let result = runner.run("exhausted", &mut pool, &mut policy, &backend);
        // 15×4 cells, cap 2, plus the seed round (1 answer/cell).
        assert!(result.total_answers <= 15 * 4 * 2 + 15 * 4);
    }

    #[test]
    fn stopping_rule_ends_run_before_budget() {
        let mut pool = small_pool(9);
        let lenient = Runner::new(ExperimentConfig {
            budget_avg_answers: 8.0,
            stopping: Some(crate::stopping::StoppingRule {
                p_stop: 0.55,
                max_std: 0.9,
                min_answers: 2,
            }),
            inference_every: 2,
            ..Default::default()
        });
        let mut policy = StructureAwarePolicy::default();
        let backend = InferenceBackend::TCrowd(TCrowd::default_full());
        let adaptive = lenient.run("adaptive", &mut pool, &mut policy, &backend);
        assert!(adaptive.terminated_cells > 0, "some cells must settle");

        let mut pool2 = small_pool(9);
        let fixed = Runner::new(ExperimentConfig { budget_avg_answers: 8.0, ..Default::default() });
        let mut policy2 = StructureAwarePolicy::default();
        let fixed_run = fixed.run("fixed", &mut pool2, &mut policy2, &backend);
        assert!(
            adaptive.total_answers <= fixed_run.total_answers,
            "adaptive stopping must not spend more than the fixed budget ({} vs {})",
            adaptive.total_answers,
            fixed_run.total_answers
        );
    }

    #[test]
    fn stopping_rule_is_ignored_for_baseline_backend() {
        let mut pool = small_pool(10);
        let runner = Runner::new(ExperimentConfig {
            budget_avg_answers: 2.0,
            stopping: Some(crate::stopping::StoppingRule::default()),
            ..Default::default()
        });
        let mut policy = RandomPolicy::seeded(10);
        let backend = InferenceBackend::Baseline(&MajorityVoting);
        let result = runner.run("baseline-stop", &mut pool, &mut policy, &backend);
        assert_eq!(result.terminated_cells, 0);
        assert!(result.total_answers as f64 >= 2.0 * 60.0);
    }

    #[test]
    fn redundancy_cap_limits_answers_per_cell() {
        let mut pool = small_pool(4);
        let runner = Runner::new(ExperimentConfig {
            budget_avg_answers: 4.0,
            max_answers_per_cell: Some(4),
            ..Default::default()
        });
        let mut policy = RandomPolicy::seeded(4);
        let backend = InferenceBackend::Baseline(&MajorityVoting);
        let result = runner.run("capped", &mut pool, &mut policy, &backend);
        // Budget says 4.0 avg; the cap makes exactly 4 per cell the ceiling.
        assert!(result.total_answers <= 15 * 4 * 4 + 15 * 4);
    }
}
