//! Confidence-based adaptive stopping (an extension in the spirit of
//! CDAS's quality-sensitive termination \[20\], rebuilt on T-Crowd's
//! posteriors).
//!
//! The paper's runs stop when a fixed answer budget is exhausted. CDAS (§6.3)
//! instead *terminates* tasks it is already confident about, so no money is
//! spent refining settled cells. This module brings that idea to T-Crowd's
//! probabilistic machinery: a categorical cell terminates when its posterior
//! mode carries at least `p_stop` mass; a continuous cell terminates when its
//! posterior standard deviation (z-space, i.e. in units of the column's
//! spread) drops below `max_std`. Terminated cells are excluded from
//! assignment through [`AssignmentContext::terminated`], and a run ends when
//! every cell has terminated — typically well before the raw budget.
//!
//! [`AssignmentContext::terminated`]: tcrowd_core::AssignmentContext

use std::collections::HashSet;
use tcrowd_core::{InferenceResult, TruthDist};
use tcrowd_tabular::CellId;

/// Per-cell termination thresholds.
#[derive(Debug, Clone, Copy)]
pub struct StoppingRule {
    /// A categorical cell terminates when `max_z P(T = z) ≥ p_stop`.
    pub p_stop: f64,
    /// A continuous cell terminates when its posterior std (z-space) is at
    /// most this (e.g. 0.25 = a quarter of the column's spread).
    pub max_std: f64,
    /// No cell terminates before it has this many answers (guards against
    /// "confident" posteriors built from a single lucky answer).
    pub min_answers: usize,
}

impl Default for StoppingRule {
    fn default() -> Self {
        StoppingRule { p_stop: 0.9, max_std: 0.25, min_answers: 2 }
    }
}

/// Tracks which cells an adaptive run has terminated.
///
/// Termination is **sticky**: once a cell passes the test it stays
/// terminated even if a later EM run wobbles its posterior below the
/// threshold — the money for it has already been saved, and un-terminating
/// would make run lengths order-dependent.
#[derive(Debug, Clone, Default)]
pub struct TerminationState {
    terminated: HashSet<CellId>,
}

impl TerminationState {
    /// Start with nothing terminated.
    pub fn new() -> Self {
        Self::default()
    }

    /// The terminated set (for [`tcrowd_core::AssignmentContext`]).
    pub fn set(&self) -> &HashSet<CellId> {
        &self.terminated
    }

    /// Number of terminated cells.
    pub fn len(&self) -> usize {
        self.terminated.len()
    }

    /// True when nothing has terminated yet.
    pub fn is_empty(&self) -> bool {
        self.terminated.is_empty()
    }

    /// Whether a specific cell has terminated.
    pub fn contains(&self, cell: CellId) -> bool {
        self.terminated.contains(&cell)
    }

    /// Apply `rule` to every cell of `inference`, given the per-cell answer
    /// counts from `counts(cell)`. Returns how many cells *newly* terminated.
    pub fn update(
        &mut self,
        inference: &InferenceResult,
        rule: &StoppingRule,
        mut counts: impl FnMut(CellId) -> usize,
    ) -> usize {
        let mut newly = 0;
        for i in 0..inference.rows() as u32 {
            for j in 0..inference.cols() as u32 {
                let cell = CellId::new(i, j);
                if self.terminated.contains(&cell) {
                    continue;
                }
                if counts(cell) < rule.min_answers {
                    continue;
                }
                let stop = match inference.truth_z(cell) {
                    TruthDist::Categorical(p) => {
                        p.iter().cloned().fold(0.0, f64::max) >= rule.p_stop
                    }
                    TruthDist::Continuous(n) => n.var.sqrt() <= rule.max_std,
                };
                if stop {
                    self.terminated.insert(cell);
                    newly += 1;
                }
            }
        }
        newly
    }

    /// True when every cell of an `rows × cols` table has terminated.
    pub fn all_terminated(&self, rows: usize, cols: usize) -> bool {
        self.terminated.len() >= rows * cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrowd_core::TCrowd;
    use tcrowd_tabular::{generate_dataset, GeneratorConfig};

    fn inference(seed: u64, answers_per_task: usize) -> (tcrowd_tabular::Dataset, InferenceResult) {
        let d = generate_dataset(
            &GeneratorConfig {
                rows: 20,
                columns: 4,
                num_workers: 15,
                answers_per_task,
                ..Default::default()
            },
            seed,
        );
        let r = TCrowd::default_full().infer(&d.schema, &d.answers);
        (d, r)
    }

    #[test]
    fn nothing_terminates_below_min_answers() {
        let (d, r) = inference(1, 3);
        let mut state = TerminationState::new();
        let rule = StoppingRule { min_answers: 10, ..Default::default() };
        let newly = state.update(&r, &rule, |c| d.answers.count_for_cell(c));
        assert_eq!(newly, 0);
        assert!(state.is_empty());
    }

    #[test]
    fn lenient_rule_terminates_everything() {
        let (d, r) = inference(2, 3);
        let mut state = TerminationState::new();
        let rule = StoppingRule { p_stop: 0.0, max_std: f64::INFINITY, min_answers: 1 };
        state.update(&r, &rule, |c| d.answers.count_for_cell(c));
        assert!(state.all_terminated(20, 4));
    }

    #[test]
    fn more_answers_terminate_more_cells() {
        let rule = StoppingRule::default();
        let (d3, r3) = inference(3, 3);
        let (d8, r8) = inference(3, 8);
        let mut s3 = TerminationState::new();
        let mut s8 = TerminationState::new();
        s3.update(&r3, &rule, |c| d3.answers.count_for_cell(c));
        s8.update(&r8, &rule, |c| d8.answers.count_for_cell(c));
        assert!(
            s8.len() >= s3.len(),
            "8 answers/task should settle at least as many cells as 3 ({} vs {})",
            s8.len(),
            s3.len()
        );
        assert!(!s8.is_empty(), "with 8 answers/task some cells must be settled");
    }

    #[test]
    fn termination_is_sticky_and_update_is_idempotent() {
        let (d, r) = inference(4, 5);
        let mut state = TerminationState::new();
        let rule = StoppingRule::default();
        let first = state.update(&r, &rule, |c| d.answers.count_for_cell(c));
        let second = state.update(&r, &rule, |c| d.answers.count_for_cell(c));
        assert_eq!(second, 0, "second pass must terminate nothing new");
        assert_eq!(state.len(), first);
    }

    #[test]
    fn terminated_set_plugs_into_assignment_context() {
        use tcrowd_core::{AssignmentContext, AssignmentPolicy, InherentGainPolicy};
        let (d, r) = inference(5, 2);
        let mut state = TerminationState::new();
        // Terminate roughly half the table with a moderate rule.
        let rule = StoppingRule { p_stop: 0.5, max_std: 1.0, min_answers: 1 };
        state.update(&r, &rule, |c| d.answers.count_for_cell(c));
        let m = d.answers.to_matrix();
        let ctx = AssignmentContext {
            schema: &d.schema,
            answers: &d.answers,
            freeze: m.freeze_view(),
            inference: Some(&r),
            max_answers_per_cell: None,
            terminated: Some(state.set()),
            correlation: None,
        };
        let mut policy = InherentGainPolicy::default();
        let picks = policy.select(tcrowd_tabular::WorkerId(42_000), 80, &ctx);
        for c in picks {
            assert!(!state.contains(c), "terminated cell {c:?} was assigned");
        }
    }
}
