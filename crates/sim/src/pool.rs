//! The simulated crowd: a worker pool with long-tail quality, an arrival
//! process, and an answer oracle.
//!
//! This is the substitution for the paper's live AMT deployment (see
//! DESIGN.md §3): workers draw their inherent variance `φ_u` from the same
//! long-tail population as the data generator, arrive in a reproducible
//! sequence, and answer any cell they are assigned through the paper's own
//! worker model (Eq. 1/3) with per-row/column difficulty and an optional
//! row-familiarity effect. One familiarity coin is flipped per (worker, row)
//! and cached, so a worker who "doesn't recognise" an entity stays degraded
//! across that whole row no matter when its cells are assigned.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tcrowd_tabular::generator::{
    EntityGroups, GeneratorConfig, RowFamiliarity, WorkerQualityConfig,
};
use tcrowd_tabular::real_sim::long_tail_phis;
use tcrowd_tabular::{CellId, ColumnType, Schema, Value, WorkerId};

/// How workers arrive at the platform.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ArrivalOrder {
    /// Rounds of a shuffled worker list: everyone participates roughly
    /// equally (the paper keeps the worker sequence fixed across methods).
    #[default]
    ShuffledRounds,
    /// Independent uniform draws (some workers may dominate).
    UniformRandom,
    /// Zipf-skewed participation: worker `u` arrives with probability
    /// proportional to `1/(u+1)^skew`. Real AMT logs are strongly
    /// heavy-tailed (the paper's Fig. 3 reads off the "25 workers who have
    /// given the largest number of answers"); this reproduces that regime.
    ZipfParticipation {
        /// Skew exponent (0 = uniform; 1 ≈ classic Zipf).
        skew: f64,
    },
}

/// Behavioural archetype of a simulated worker (the adversarial extension
/// behind `bench_trust`: spam, collusion rings and sleeper agents attacking
/// the trust subsystem).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Archetype {
    /// Answers through the paper's worker model (Eq. 1/3).
    Honest,
    /// Answers uniformly at random over the column domain — quality pins
    /// near chance no matter how many answers are collected.
    Spammer,
    /// Member of a collusion ring: every member of the same ring gives the
    /// exact same scripted (hash-derived, truth-independent) answer to any
    /// cell, producing near-perfect pairwise agreement.
    Colluder {
        /// Ring index in `0..colluder_groups`.
        group: u32,
    },
    /// Honest for its first `wake_after` answers to build up a reputation,
    /// then turns into a spammer.
    Sleeper {
        /// Answer count after which the worker turns.
        wake_after: u32,
    },
}

impl Archetype {
    /// Whether this archetype ever submits non-honest answers.
    pub fn adversarial(&self) -> bool {
        !matches!(self, Archetype::Honest)
    }
}

/// Adversarial mix of the pool. All fractions default to zero — a fully
/// honest pool whose random streams are bit-identical to a pool built
/// before the adversary machinery existed (archetype assignment is pure
/// arithmetic and consumes no randomness).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdversaryConfig {
    /// Fraction of the pool answering uniformly at random.
    pub spammer_frac: f64,
    /// Fraction of the pool organised into collusion rings.
    pub colluder_frac: f64,
    /// Number of independent collusion rings the colluders split into.
    pub colluder_groups: usize,
    /// Fraction of the pool acting as sleeper agents.
    pub sleeper_frac: f64,
    /// Answers a sleeper gives honestly before turning.
    pub sleeper_wake_after: u32,
}

impl Default for AdversaryConfig {
    fn default() -> Self {
        AdversaryConfig {
            spammer_frac: 0.0,
            colluder_frac: 0.0,
            colluder_groups: 1,
            sleeper_frac: 0.0,
            sleeper_wake_after: 32,
        }
    }
}

/// Configuration of the simulated crowd.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPoolConfig {
    /// Number of workers in the pool.
    pub num_workers: usize,
    /// Quality population (long-tail `φ_u`).
    pub quality: WorkerQualityConfig,
    /// Optional row-familiarity effect.
    pub familiarity: Option<RowFamiliarity>,
    /// Optional entity-group familiarity (the §7 future-work extension: a
    /// worker unfamiliar with a whole *category* of entities).
    pub entity_groups: Option<EntityGroups>,
    /// Quality window `ε` used for categorical answer synthesis (matches the
    /// generator's convention).
    pub epsilon: f64,
    /// Arrival process.
    pub arrival: ArrivalOrder,
    /// Log-space spread of the row/column difficulty draws.
    pub difficulty_sigma: f64,
    /// Average cell difficulty `µ{α_i β_j}`.
    pub avg_difficulty: f64,
    /// Adversarial mix (all-zero default: fully honest pool).
    pub adversaries: AdversaryConfig,
}

impl Default for WorkerPoolConfig {
    fn default() -> Self {
        WorkerPoolConfig {
            num_workers: 109,
            quality: WorkerQualityConfig::default(),
            familiarity: Some(RowFamiliarity::default()),
            entity_groups: None,
            epsilon: 0.5,
            arrival: ArrivalOrder::default(),
            difficulty_sigma: 0.35,
            avg_difficulty: 1.0,
            adversaries: AdversaryConfig::default(),
        }
    }
}

/// Deterministic archetype assignment: honest workers occupy the low ids,
/// adversaries the tail (spammers, then colluders round-robined over their
/// rings, then sleepers). Pure arithmetic — no randomness consumed — so a
/// zero mix leaves every random stream untouched.
fn assign_archetypes(cfg: &WorkerPoolConfig) -> Vec<Archetype> {
    let adv = &cfg.adversaries;
    for (name, f) in [
        ("spammer_frac", adv.spammer_frac),
        ("colluder_frac", adv.colluder_frac),
        ("sleeper_frac", adv.sleeper_frac),
    ] {
        assert!(f.is_finite() && (0.0..=1.0).contains(&f), "{name} must be in [0, 1]");
    }
    let n = cfg.num_workers;
    let n_spam = (adv.spammer_frac * n as f64).round() as usize;
    let n_coll = (adv.colluder_frac * n as f64).round() as usize;
    let n_sleep = (adv.sleeper_frac * n as f64).round() as usize;
    assert!(
        n_spam + n_coll + n_sleep <= n,
        "adversary fractions sum past the pool size ({n_spam}+{n_coll}+{n_sleep} > {n})"
    );
    if n_coll > 0 {
        assert!(adv.colluder_groups > 0, "colluders need at least one ring");
    }
    let mut kinds = vec![Archetype::Honest; n];
    let mut at = n - n_spam - n_coll - n_sleep;
    for _ in 0..n_spam {
        kinds[at] = Archetype::Spammer;
        at += 1;
    }
    for i in 0..n_coll {
        kinds[at] = Archetype::Colluder { group: (i % adv.colluder_groups) as u32 };
        at += 1;
    }
    for _ in 0..n_sleep {
        kinds[at] = Archetype::Sleeper { wake_after: adv.sleeper_wake_after };
        at += 1;
    }
    kinds
}

/// SplitMix64 — the colluders' shared script generator: one hash per
/// (seed, ring, cell), identical for every ring member, independent of
/// the truth and of any RNG stream.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The simulated crowd bound to one table's ground truth.
#[derive(Debug)]
pub struct WorkerPool {
    schema: Schema,
    truth: Vec<Vec<Value>>,
    cfg: WorkerPoolConfig,
    phis: Vec<f64>,
    alpha: Vec<f64>,
    beta: Vec<f64>,
    /// Cached familiarity multiplier per (worker, row), dense row-major
    /// `worker * rows + row`; `0.0` marks "not yet drawn" (real multipliers
    /// are ≥ 1). Dense instead of hashed: the oracle touches every pair over
    /// a run, and the flat lane keeps answers deterministic and cheap.
    fam_cache: Vec<f64>,
    /// Cached familiarity multiplier per (worker, entity group), dense
    /// `worker * groups + group`; same `0.0` sentinel.
    group_cache: Vec<f64>,
    answer_rng: StdRng,
    arrival_rng: StdRng,
    round: Vec<WorkerId>,
    round_pos: usize,
    /// Cumulative participation distribution (Zipf arrivals only).
    zipf_cdf: Vec<f64>,
    /// Behavioural archetype per worker (simulation ground truth for
    /// detection precision/recall).
    archetypes: Vec<Archetype>,
    /// Answers given so far per worker (drives sleeper wake-up).
    answers_given: Vec<u32>,
    /// Seed of the colluders' shared answer script.
    script_seed: u64,
}

impl WorkerPool {
    /// Build a pool for the given table; fully deterministic per seed.
    pub fn new(schema: &Schema, truth: &[Vec<Value>], cfg: WorkerPoolConfig, seed: u64) -> Self {
        assert!(cfg.num_workers > 0, "pool needs workers");
        assert_eq!(
            truth.first().map(|r| r.len()).unwrap_or(0),
            schema.num_columns(),
            "truth shape must match schema"
        );
        // The dense familiarity caches use 0.0 as their "not yet drawn"
        // sentinel, so a zero multiplier must be rejected up front.
        if let Some(rf) = &cfg.familiarity {
            assert!(rf.difficulty_factor > 0.0, "familiarity difficulty_factor must be positive");
        }
        if let Some(eg) = &cfg.entity_groups {
            assert!(eg.difficulty_factor > 0.0, "entity-group difficulty_factor must be positive");
        }
        let phis = long_tail_phis(cfg.num_workers, &cfg.quality, seed ^ 0xA11CE);
        // Row/column difficulties drawn through the generator's machinery so
        // the oracle's population matches the synthetic datasets'.
        let gen_cfg = GeneratorConfig {
            rows: truth.len(),
            columns: schema.num_columns(),
            num_workers: cfg.num_workers,
            avg_difficulty: cfg.avg_difficulty,
            difficulty_sigma: cfg.difficulty_sigma,
            quality: cfg.quality,
            answers_per_task: 1,
            ..Default::default()
        };
        let state = tcrowd_tabular::generator::draw_population(&gen_cfg, seed ^ 0xD1FF);
        WorkerPool {
            schema: schema.clone(),
            truth: truth.to_vec(),
            cfg,
            phis,
            alpha: state.alpha,
            beta: state.beta,
            fam_cache: vec![0.0; cfg.num_workers * truth.len()],
            group_cache: vec![
                0.0;
                cfg.num_workers * cfg.entity_groups.map(|eg| eg.groups).unwrap_or(0)
            ],
            answer_rng: StdRng::seed_from_u64(seed ^ 0x0A5),
            arrival_rng: StdRng::seed_from_u64(seed ^ 0xAB1),
            round: Vec::new(),
            round_pos: 0,
            zipf_cdf: match cfg.arrival {
                ArrivalOrder::ZipfParticipation { skew } => {
                    let weights: Vec<f64> =
                        (0..cfg.num_workers).map(|u| 1.0 / ((u + 1) as f64).powf(skew)).collect();
                    let total: f64 = weights.iter().sum();
                    let mut acc = 0.0;
                    weights
                        .iter()
                        .map(|w| {
                            acc += w / total;
                            acc
                        })
                        .collect()
                }
                _ => Vec::new(),
            },
            archetypes: assign_archetypes(&cfg),
            answers_given: vec![0; cfg.num_workers],
            script_seed: seed ^ 0x5C21_97ED,
        }
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.cfg.num_workers
    }

    /// True `φ_u` of a worker (simulation ground truth).
    pub fn phi(&self, worker: WorkerId) -> f64 {
        self.phis[worker.0 as usize]
    }

    /// The next arriving worker.
    pub fn next_worker(&mut self) -> WorkerId {
        match self.cfg.arrival {
            ArrivalOrder::UniformRandom => {
                WorkerId(self.arrival_rng.gen_range(0..self.cfg.num_workers as u32))
            }
            ArrivalOrder::ShuffledRounds => {
                if self.round_pos >= self.round.len() {
                    self.round = (0..self.cfg.num_workers as u32).map(WorkerId).collect();
                    self.round.shuffle(&mut self.arrival_rng);
                    self.round_pos = 0;
                }
                let w = self.round[self.round_pos];
                self.round_pos += 1;
                w
            }
            ArrivalOrder::ZipfParticipation { .. } => {
                let u = self.arrival_rng.gen::<f64>();
                WorkerId(
                    self.zipf_cdf.partition_point(|&c| c < u).min(self.cfg.num_workers - 1) as u32
                )
            }
        }
    }

    fn familiarity(&mut self, worker: WorkerId, row: u32) -> f64 {
        let mut factor = match self.cfg.familiarity {
            None => 1.0,
            Some(rf) => {
                let slot = worker.0 as usize * self.truth.len() + row as usize;
                if self.fam_cache[slot] == 0.0 {
                    self.fam_cache[slot] = if self.answer_rng.gen_range(0.0..1.0) < rf.p_unfamiliar
                    {
                        rf.difficulty_factor
                    } else {
                        1.0
                    };
                }
                self.fam_cache[slot]
            }
        };
        if let Some(eg) = self.cfg.entity_groups {
            let slot = worker.0 as usize * eg.groups + eg.group_of(row as usize);
            if self.group_cache[slot] == 0.0 {
                self.group_cache[slot] = if self.answer_rng.gen_range(0.0..1.0) < eg.p_unfamiliar {
                    eg.difficulty_factor
                } else {
                    1.0
                };
            }
            factor *= self.group_cache[slot];
        }
        factor
    }

    /// The worker answers a cell (the external-HIT round trip), through its
    /// archetype's behaviour.
    pub fn answer(&mut self, worker: WorkerId, cell: CellId) -> Value {
        let given = self.answers_given[worker.0 as usize];
        self.answers_given[worker.0 as usize] += 1;
        match self.archetypes[worker.0 as usize] {
            Archetype::Honest => self.honest_answer(worker, cell),
            Archetype::Spammer => self.random_answer(cell),
            Archetype::Colluder { group } => self.scripted_answer(group, cell),
            Archetype::Sleeper { wake_after } => {
                if given < wake_after {
                    self.honest_answer(worker, cell)
                } else {
                    self.random_answer(cell)
                }
            }
        }
    }

    /// Behavioural archetype of a worker (simulation ground truth, used by
    /// `bench_trust` to score detection precision/recall).
    pub fn archetype(&self, worker: WorkerId) -> Archetype {
        self.archetypes[worker.0 as usize]
    }

    fn honest_answer(&mut self, worker: WorkerId, cell: CellId) -> Value {
        let phi = self.phis[worker.0 as usize];
        let fam = self.familiarity(worker, cell.row);
        let variance = self.alpha[cell.row as usize] * self.beta[cell.col as usize] * phi * fam;
        tcrowd_tabular::generator::synthesize_answer(
            &mut self.answer_rng,
            &self.truth[cell.row as usize][cell.col as usize],
            self.schema.column_type(cell.col as usize),
            variance,
            self.cfg.epsilon,
        )
    }

    /// Uniform over the column domain, independent of the truth.
    fn random_answer(&mut self, cell: CellId) -> Value {
        let domain = match self.schema.column_type(cell.col as usize) {
            ColumnType::Categorical { labels } => Err(labels.len() as u32),
            ColumnType::Continuous { min, max } => Ok((*min, *max)),
        };
        match domain {
            Err(k) => Value::Categorical(self.answer_rng.gen_range(0..k)),
            Ok((min, max)) => Value::Continuous(self.answer_rng.gen_range(min..max)),
        }
    }

    /// The ring's shared script: one hash-derived value per (seed, ring,
    /// cell), identical for every member and independent of the truth.
    fn scripted_answer(&self, group: u32, cell: CellId) -> Value {
        let h = splitmix64(
            self.script_seed
                ^ (u64::from(group) << 48)
                ^ (u64::from(cell.row) << 20)
                ^ u64::from(cell.col),
        );
        match self.schema.column_type(cell.col as usize) {
            ColumnType::Categorical { labels } => {
                Value::Categorical((h % labels.len() as u64) as u32)
            }
            ColumnType::Continuous { min, max } => {
                let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
                Value::Continuous(min + (max - min) * unit)
            }
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The ground truth the oracle answers from.
    pub fn truth(&self) -> &[Vec<Value>] {
        &self.truth
    }

    /// Domain width of a continuous column (test/diagnostic helper).
    pub fn domain_width(&self, col: usize) -> Option<f64> {
        match self.schema.column_type(col) {
            ColumnType::Continuous { min, max } => Some(max - min),
            ColumnType::Categorical { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrowd_tabular::{generate_dataset, GeneratorConfig};

    fn table(seed: u64) -> tcrowd_tabular::Dataset {
        generate_dataset(
            &GeneratorConfig {
                rows: 20,
                columns: 4,
                num_workers: 10,
                answers_per_task: 2,
                ..Default::default()
            },
            seed,
        )
    }

    #[test]
    fn shuffled_rounds_cover_all_workers() {
        let d = table(1);
        let cfg = WorkerPoolConfig { num_workers: 12, ..Default::default() };
        let mut pool = WorkerPool::new(&d.schema, &d.truth, cfg, 3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..12 {
            seen.insert(pool.next_worker());
        }
        assert_eq!(seen.len(), 12, "one round covers every worker exactly once");
    }

    #[test]
    fn answers_match_column_types() {
        let d = table(2);
        let mut pool = WorkerPool::new(&d.schema, &d.truth, WorkerPoolConfig::default(), 1);
        for i in 0..d.rows() as u32 {
            for j in 0..d.cols() as u32 {
                let v = pool.answer(WorkerId(3), CellId::new(i, j));
                assert!(d.schema.column_type(j as usize).accepts(&v));
            }
        }
    }

    #[test]
    fn pool_is_deterministic_per_seed() {
        let d = table(3);
        let mk = || {
            let mut p = WorkerPool::new(&d.schema, &d.truth, WorkerPoolConfig::default(), 11);
            (0..40)
                .map(|i| {
                    let w = p.next_worker();
                    let c = CellId::new(i % d.rows() as u32, i % d.cols() as u32);
                    (w, p.answer(w, c))
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn good_workers_answer_better() {
        let d = table(4);
        let cfg = WorkerPoolConfig { familiarity: None, ..Default::default() };
        let mut pool = WorkerPool::new(&d.schema, &d.truth, cfg, 5);
        // Identify the best and worst worker by true phi.
        let (mut best, mut worst) = (WorkerId(0), WorkerId(0));
        for w in 0..pool.num_workers() as u32 {
            if pool.phi(WorkerId(w)) < pool.phi(best) {
                best = WorkerId(w);
            }
            if pool.phi(WorkerId(w)) > pool.phi(worst) {
                worst = WorkerId(w);
            }
        }
        assert!(pool.phi(best) < pool.phi(worst));
        let col = d.schema.continuous_columns()[0];
        let mut err = |w: WorkerId| {
            let mut total = 0.0;
            for rep in 0..200u32 {
                let i = rep % d.rows() as u32;
                let t = d.truth[i as usize][col].expect_continuous();
                let a = pool.answer(w, CellId::new(i, col as u32)).expect_continuous();
                total += (a - t).abs();
            }
            total / 200.0
        };
        let e_best = err(best);
        let e_worst = err(worst);
        assert!(e_best < e_worst, "best worker mean |err| {e_best} vs worst {e_worst}");
    }

    #[test]
    fn familiarity_is_sticky_per_row() {
        let d = table(5);
        let cfg = WorkerPoolConfig {
            familiarity: Some(RowFamiliarity { p_unfamiliar: 0.5, difficulty_factor: 100.0 }),
            ..Default::default()
        };
        let mut pool = WorkerPool::new(&d.schema, &d.truth, cfg, 9);
        // Touch every row once to populate the cache, then verify stability.
        let w = WorkerId(2);
        let before: Vec<f64> = (0..d.rows() as u32).map(|i| pool.familiarity(w, i)).collect();
        let after: Vec<f64> = (0..d.rows() as u32).map(|i| pool.familiarity(w, i)).collect();
        assert_eq!(before, after);
        assert!(before.iter().any(|f| *f > 1.0), "some rows unfamiliar");
        assert!(before.contains(&1.0), "some rows familiar");
    }

    #[test]
    fn zero_adversary_mix_is_fully_honest_and_stream_identical() {
        let d = table(6);
        let base = WorkerPoolConfig { num_workers: 10, ..Default::default() };
        let explicit = WorkerPoolConfig {
            adversaries: AdversaryConfig {
                spammer_frac: 0.0,
                colluder_frac: 0.0,
                sleeper_frac: 0.0,
                ..Default::default()
            },
            ..base
        };
        let mut a = WorkerPool::new(&d.schema, &d.truth, base, 7);
        let mut b = WorkerPool::new(&d.schema, &d.truth, explicit, 7);
        for w in 0..10u32 {
            assert_eq!(a.archetype(WorkerId(w)), Archetype::Honest);
        }
        for i in 0..60u32 {
            let wa = a.next_worker();
            assert_eq!(wa, b.next_worker());
            let c = CellId::new(i % d.rows() as u32, i % d.cols() as u32);
            assert_eq!(a.answer(wa, c), b.answer(wa, c), "streams must be bit-identical");
        }
    }

    #[test]
    fn adversarial_archetypes_behave_to_spec() {
        let d = table(7);
        let cfg = WorkerPoolConfig {
            num_workers: 20,
            familiarity: None,
            adversaries: AdversaryConfig {
                spammer_frac: 0.25,
                colluder_frac: 0.2,
                colluder_groups: 2,
                sleeper_frac: 0.1,
                sleeper_wake_after: 3,
            },
            ..Default::default()
        };
        let mut pool = WorkerPool::new(&d.schema, &d.truth, cfg, 21);
        // Deterministic tail layout: 9 honest, 5 spammers, 4 colluders over
        // 2 rings, 2 sleepers.
        let kinds: Vec<Archetype> = (0..20u32).map(|w| pool.archetype(WorkerId(w))).collect();
        assert_eq!(kinds.iter().filter(|a| **a == Archetype::Honest).count(), 9);
        assert_eq!(kinds.iter().filter(|a| **a == Archetype::Spammer).count(), 5);
        assert_eq!(kinds.iter().filter(|a| matches!(a, Archetype::Colluder { .. })).count(), 4);
        assert_eq!(kinds.iter().filter(|a| matches!(a, Archetype::Sleeper { .. })).count(), 2);
        assert!(kinds[..9].iter().all(|a| !a.adversarial()), "honest workers keep the low ids");

        // Ring members give the exact same answer to the same cell; distinct
        // rings disagree somewhere.
        let rings: Vec<(u32, u32)> = (0..20u32)
            .filter_map(|w| match pool.archetype(WorkerId(w)) {
                Archetype::Colluder { group } => Some((w, group)),
                _ => None,
            })
            .collect();
        let (same_a, same_b) = (rings[0], rings[2]);
        assert_eq!(same_a.1, same_b.1, "round-robin ring assignment");
        let other = rings.iter().find(|(_, g)| *g != same_a.1).unwrap();
        let mut cross_ring_diff = false;
        for i in 0..d.rows() as u32 {
            for j in 0..d.cols() as u32 {
                let c = CellId::new(i, j);
                let va = pool.answer(WorkerId(same_a.0), c);
                let vb = pool.answer(WorkerId(same_b.0), c);
                assert_eq!(va, vb, "same ring, same script");
                if pool.answer(WorkerId(other.0), c) != va {
                    cross_ring_diff = true;
                }
            }
        }
        assert!(cross_ring_diff, "different rings follow different scripts");

        // A sleeper answers honestly (= truth-correlated) before its wake
        // count, then spams: compare its pre/post answers on an easy
        // categorical column against the truth.
        let sleeper = (0..20u32)
            .find(|w| matches!(pool.archetype(WorkerId(*w)), Archetype::Sleeper { .. }))
            .unwrap();
        let col = d.schema.categorical_columns()[0] as u32;
        let first: Vec<Value> =
            (0..3u32).map(|i| pool.answer(WorkerId(sleeper), CellId::new(i % 3, col))).collect();
        // After 3 answers the sleeper is awake; its answers now come from the
        // uniform stream — verify over many draws they hit multiple labels
        // on a cell the honest model answers consistently.
        let mut labels_seen = std::collections::HashSet::new();
        for _ in 0..40 {
            match pool.answer(WorkerId(sleeper), CellId::new(0, col)) {
                Value::Categorical(l) => labels_seen.insert(l),
                Value::Continuous(_) => unreachable!("categorical column"),
            };
        }
        assert!(labels_seen.len() > 1, "awake sleeper spams uniformly: {labels_seen:?}");
        assert_eq!(first.len(), 3);

        // Determinism with a full adversarial mix.
        let mut p2 = WorkerPool::new(&d.schema, &d.truth, cfg, 21);
        let mut replay = Vec::new();
        for i in 0..30u32 {
            let w = p2.next_worker();
            replay.push((w, p2.answer(w, CellId::new(i % d.rows() as u32, 0))));
        }
        let mut p3 = WorkerPool::new(&d.schema, &d.truth, cfg, 21);
        for (i, (w, v)) in replay.iter().enumerate() {
            assert_eq!(*w, p3.next_worker());
            assert_eq!(*v, p3.answer(*w, CellId::new(i as u32 % d.rows() as u32, 0)));
        }
    }

    #[test]
    fn zipf_arrivals_are_heavy_tailed_and_deterministic() {
        let d = tcrowd_tabular::generate_dataset(
            &tcrowd_tabular::GeneratorConfig {
                rows: 5,
                columns: 2,
                num_workers: 30,
                answers_per_task: 1,
                ..Default::default()
            },
            1,
        );
        let cfg = WorkerPoolConfig {
            num_workers: 30,
            arrival: ArrivalOrder::ZipfParticipation { skew: 1.2 },
            ..Default::default()
        };
        let mut a = WorkerPool::new(&d.schema, &d.truth, cfg, 5);
        let mut b = WorkerPool::new(&d.schema, &d.truth, cfg, 5);
        let mut counts = vec![0usize; 30];
        for _ in 0..3_000 {
            let wa = a.next_worker();
            assert_eq!(wa, b.next_worker(), "same seed, same arrivals");
            counts[wa.0 as usize] += 1;
        }
        // Heavy tail: the most frequent worker dominates the median one.
        let max = *counts.iter().max().unwrap();
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        let median = sorted[15];
        assert!(
            max > 4 * median.max(1),
            "participation should be heavy-tailed (max {max}, median {median})"
        );
        // Every arrival is a valid worker id.
        assert!(counts.iter().sum::<usize>() == 3_000);
    }
}
