//! Entity discovery from the crowd (paper §7, second future-work
//! direction).
//!
//! §7: *"we plan to extend our approach to apply on tables for which
//! entities are not known. In this case, entities should also be collected
//! from the crowd."*
//!
//! Before any cell can be crowdsourced, the *rows* of the table must exist.
//! This module simulates and solves that enumeration phase:
//!
//! * [`EntityUniverse`] models the unknown entity set with a popularity
//!   skew (workers think of famous entities first — a Zipf-like recall
//!   distribution) and a spurious-proposal rate (misremembered or invented
//!   entities).
//! * [`DiscoveryState`] aggregates proposals with support counting: an
//!   entity enters the table once `min_support` *distinct* workers have
//!   proposed it, which suppresses spurious singletons exactly the way
//!   redundant answers suppress wrong cell values.
//! * [`DiscoveryState::estimated_unseen_mass`] implements the Good–Turing
//!   estimator `f₁ / n` (the fraction of proposals that were first sightings
//!   is an estimate of the probability the *next* proposal is a new
//!   entity), giving a principled stopping rule for the enumeration budget:
//!   stop asking when the expected yield of another proposal drops below a
//!   threshold.
//!
//! The discovered row set then feeds the ordinary T-Crowd pipeline (schema +
//! `AnswerLog` over the discovered rows).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use tcrowd_tabular::WorkerId;

/// The hidden entity set workers draw proposals from.
#[derive(Debug, Clone)]
pub struct EntityUniverse {
    /// Number of true entities.
    pub num_entities: usize,
    /// Zipf-like skew of entity popularity (0 = uniform recall; 1 ≈ classic
    /// Zipf). Popular entities are proposed far more often.
    pub popularity_skew: f64,
    /// Probability a proposal is spurious (not a true entity). Spurious
    /// proposals are drawn from a large junk space and rarely repeat.
    pub p_spurious: f64,
    /// Size of the junk space spurious proposals are drawn from.
    pub spurious_space: usize,
}

impl Default for EntityUniverse {
    fn default() -> Self {
        EntityUniverse {
            num_entities: 50,
            popularity_skew: 0.8,
            p_spurious: 0.1,
            spurious_space: 10_000,
        }
    }
}

/// A proposal: either a true entity id (`0..num_entities`) or a spurious id
/// (`num_entities..num_entities + spurious_space`).
pub type EntityId = usize;

/// Samples worker proposals from the universe.
#[derive(Debug)]
pub struct ProposalOracle {
    universe: EntityUniverse,
    /// Cumulative popularity distribution over true entities.
    cdf: Vec<f64>,
    rng: StdRng,
}

impl ProposalOracle {
    /// Build the oracle (popularities `1/(rank+1)^skew`, normalised).
    pub fn new(universe: EntityUniverse, seed: u64) -> Self {
        let weights: Vec<f64> = (0..universe.num_entities)
            .map(|r| 1.0 / ((r + 1) as f64).powf(universe.popularity_skew))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        ProposalOracle { universe, cdf, rng: StdRng::seed_from_u64(seed) }
    }

    /// The universe being sampled.
    pub fn universe(&self) -> &EntityUniverse {
        &self.universe
    }

    /// One proposal from one worker.
    pub fn propose(&mut self, _worker: WorkerId) -> EntityId {
        if self.rng.gen::<f64>() < self.universe.p_spurious {
            self.universe.num_entities + self.rng.gen_range(0..self.universe.spurious_space)
        } else {
            let u = self.rng.gen::<f64>();
            self.cdf.partition_point(|&c| c < u).min(self.universe.num_entities - 1)
        }
    }
}

/// Aggregated discovery state: support counts and Good–Turing statistics.
#[derive(Debug, Default)]
pub struct DiscoveryState {
    /// Distinct supporting workers per proposed entity.
    support: HashMap<EntityId, Vec<WorkerId>>,
    /// Total proposals seen.
    proposals: usize,
    /// Proposals that were the *first* sighting of their entity.
    first_sightings: usize,
}

impl DiscoveryState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one proposal. Duplicate proposals by the same worker for the
    /// same entity are counted toward Good–Turing `n` but not support.
    pub fn record(&mut self, worker: WorkerId, entity: EntityId) {
        self.proposals += 1;
        match self.support.entry(entity) {
            std::collections::hash_map::Entry::Vacant(e) => {
                self.first_sightings += 1;
                e.insert(vec![worker]);
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if !e.get().contains(&worker) {
                    e.get_mut().push(worker);
                }
            }
        }
    }

    /// Total proposals recorded.
    pub fn proposals(&self) -> usize {
        self.proposals
    }

    /// Entities with at least `min_support` distinct proposers — the rows
    /// the table will be built from.
    pub fn accepted(&self, min_support: usize) -> Vec<EntityId> {
        let mut rows: Vec<EntityId> = self
            .support
            .iter()
            .filter(|(_, ws)| ws.len() >= min_support)
            .map(|(&e, _)| e)
            .collect();
        rows.sort_unstable();
        rows
    }

    /// Good–Turing estimate of the probability that the next proposal names
    /// a not-yet-seen entity (`f₁ / n` with `f₁` = singleton *sightings*;
    /// we use first-sighting counts, the streaming variant). 1.0 before any
    /// data.
    pub fn estimated_unseen_mass(&self) -> f64 {
        if self.proposals == 0 {
            return 1.0;
        }
        // Singletons: entities seen exactly once (by proposals, approximated
        // by support-1 entries; duplicates by the same worker are rare).
        let singletons = self.support.values().filter(|ws| ws.len() == 1).count();
        (singletons as f64 / self.proposals as f64).min(1.0)
    }

    /// Convenience stopping test: the enumeration saturates once the
    /// Good–Turing unseen mass drops below `threshold`.
    ///
    /// **Floor**: spurious proposals are (almost) always first sightings, so
    /// the unseen mass converges to the spurious rate, not to zero — set the
    /// threshold *above* the junk rate you expect from the crowd (e.g.
    /// `p_spurious + 0.02`), or the enumeration will only stop on budget.
    pub fn saturated(&self, threshold: f64) -> bool {
        self.proposals > 0 && self.estimated_unseen_mass() < threshold
    }

    /// Precision/recall of the accepted set against a known universe
    /// (evaluation only — real deployments have no oracle).
    pub fn score(&self, min_support: usize, num_true: usize) -> (f64, f64) {
        let accepted = self.accepted(min_support);
        if accepted.is_empty() {
            return (1.0, 0.0);
        }
        let hits = accepted.iter().filter(|&&e| e < num_true).count();
        let precision = hits as f64 / accepted.len() as f64;
        let recall = hits as f64 / num_true as f64;
        (precision, recall)
    }
}

/// Run the enumeration phase: `workers` take turns proposing entities until
/// the Good–Turing unseen mass drops below `saturation` (or `max_proposals`
/// is hit). Returns the final state.
pub fn run_discovery(
    oracle: &mut ProposalOracle,
    num_workers: usize,
    saturation: f64,
    max_proposals: usize,
) -> DiscoveryState {
    let mut state = DiscoveryState::new();
    let mut turn = 0u32;
    while !state.saturated(saturation) && state.proposals() < max_proposals {
        let worker = WorkerId(turn % num_workers as u32);
        let entity = oracle.propose(worker);
        state.record(worker, entity);
        turn += 1;
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe(n: usize, p_spurious: f64) -> EntityUniverse {
        EntityUniverse { num_entities: n, p_spurious, ..Default::default() }
    }

    #[test]
    fn discovery_finds_most_entities_with_high_precision() {
        // Threshold sits above the 10 % spurious floor (see `saturated`).
        let mut oracle = ProposalOracle::new(universe(40, 0.1), 4);
        let state = run_discovery(&mut oracle, 20, 0.13, 50_000);
        let (precision, recall) = state.score(2, 40);
        assert!(precision > 0.95, "precision {precision}");
        assert!(recall > 0.8, "recall {recall}");
    }

    #[test]
    fn support_threshold_filters_spurious_proposals() {
        let mut oracle = ProposalOracle::new(universe(30, 0.3), 2);
        let state = run_discovery(&mut oracle, 25, 0.33, 50_000);
        let (p1, _) = state.score(1, 30);
        let (p2, _) = state.score(2, 30);
        assert!(p2 > p1, "support-2 precision {p2} must beat support-1 precision {p1}");
        // Spurious junk almost never repeats, so support 2 is near-clean.
        assert!(p2 > 0.9, "support-2 precision {p2}");
    }

    #[test]
    fn unseen_mass_decreases_with_proposals() {
        let mut oracle = ProposalOracle::new(universe(20, 0.05), 3);
        let mut state = DiscoveryState::new();
        for i in 0..60u32 {
            let w = WorkerId(i % 10);
            let e = oracle.propose(w);
            state.record(w, e);
        }
        let early = state.estimated_unseen_mass();
        for i in 60..1_200u32 {
            let w = WorkerId(i % 10);
            let e = oracle.propose(w);
            state.record(w, e);
        }
        let late = state.estimated_unseen_mass();
        assert!(late < early, "unseen mass must shrink: early {early}, late {late}");
        assert!(late < 0.2);
    }

    #[test]
    fn saturation_stops_before_budget_on_small_universes() {
        let mut oracle = ProposalOracle::new(universe(10, 0.0), 4);
        let state = run_discovery(&mut oracle, 10, 0.05, 100_000);
        assert!(
            state.proposals() < 100_000,
            "a 10-entity universe must saturate quickly, used {}",
            state.proposals()
        );
    }

    #[test]
    fn empty_state_conventions() {
        let state = DiscoveryState::new();
        assert_eq!(state.estimated_unseen_mass(), 1.0);
        assert!(!state.saturated(0.5));
        assert!(state.accepted(1).is_empty());
        assert_eq!(state.score(1, 10), (1.0, 0.0));
    }

    #[test]
    fn duplicate_proposals_by_one_worker_do_not_add_support() {
        let mut state = DiscoveryState::new();
        for _ in 0..5 {
            state.record(WorkerId(0), 7);
        }
        assert!(state.accepted(2).is_empty());
        state.record(WorkerId(1), 7);
        assert_eq!(state.accepted(2), vec![7]);
    }

    #[test]
    fn popularity_skew_slows_tail_discovery() {
        // With strong skew, equal budgets discover fewer distinct entities.
        let budget = 400;
        let run = |skew: f64, seed: u64| {
            let mut oracle = ProposalOracle::new(
                EntityUniverse {
                    num_entities: 100,
                    popularity_skew: skew,
                    p_spurious: 0.0,
                    spurious_space: 1,
                },
                seed,
            );
            let mut state = DiscoveryState::new();
            for i in 0..budget {
                let w = WorkerId(i % 20);
                let e = oracle.propose(w);
                state.record(w, e);
            }
            state.accepted(1).len()
        };
        let flat: usize = (0..3).map(|s| run(0.0, s)).sum();
        let skewed: usize = (0..3).map(|s| run(1.5, s)).sum();
        assert!(
            skewed < flat,
            "skewed recall should find fewer distinct entities ({skewed} vs {flat})"
        );
    }
}
