//! Group-commit and segment-rotation integration tests.
//!
//! Two contracts live here:
//!
//! * **Group commit** (`tcrowd_store::GroupCommit`): every acked ticket
//!   implies the frame is on disk (reopen check), coalescing actually
//!   batches (>1 frame per fsync under load), and acks survive arbitrary
//!   fault schedules across rotation/fsync boundaries.
//! * **Segment rotation**: logical offsets are rotation-oblivious, cold
//!   compaction bounds replay by the live tail while making the snapshot
//!   load-bearing, and `compact_table` collapses the chain back to one
//!   segment.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use tcrowd_store::{
    DurableMark, Fault, FaultKind, FaultOp, FaultyIo, FsyncPolicy, GroupCommit, MarkSink, Store,
    StoreIo, TableMeta, TableSnapshot, WalPosition, EIO, ENOSPC,
};
use tcrowd_tabular::{Answer, CellId, Column, ColumnType, Schema, Value, WorkerId};

const ROWS: usize = 6;

fn meta() -> TableMeta {
    TableMeta {
        rows: ROWS,
        schema: Schema::new(
            "t",
            "k",
            vec![
                Column::new("kind", ColumnType::categorical_with_cardinality(4)),
                Column::new("size", ColumnType::Continuous { min: -10.0, max: 10.0 }),
                Column::new("tag", ColumnType::categorical_with_cardinality(2)),
            ],
        ),
        config: Vec::new(),
    }
}

fn random_answers(n: usize, seed: u64) -> Vec<Answer> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let cell = CellId::new(rng.gen_range(0..ROWS as u32), rng.gen_range(0..3u32));
            let value = if cell.col == 1 {
                Value::Continuous(rng.gen_range(-5.0..5.0))
            } else {
                Value::Categorical(rng.gen_range(0..2))
            };
            Answer { worker: WorkerId(rng.gen_range(0..8)), cell, value }
        })
        .collect()
}

fn random_batches(answers: &[Answer], seed: u64) -> Vec<Vec<Answer>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C4);
    let mut out = Vec::new();
    let mut at = 0;
    while at < answers.len() {
        let take = rng.gen_range(1..=5usize).min(answers.len() - at);
        out.push(answers[at..at + take].to_vec());
        at += take;
    }
    out
}

fn log_of(answers: &[Answer]) -> tcrowd_tabular::AnswerLog {
    let mut log = tcrowd_tabular::AnswerLog::new(ROWS, 3);
    for &a in answers {
        log.push(a);
    }
    log
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("tcrowd_store_group_commit_tests")
        .join(format!("{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn segment_files(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.unwrap().file_name().into_string().ok())
        .filter(|n| tcrowd_store::parse_segment_file_name(n).is_some())
        .collect();
    names.sort();
    names
}

#[test]
fn rotation_preserves_logical_offsets_and_recovery() {
    let dir = fresh_dir("rotate");
    // A 512-byte trigger rotates every handful of batches.
    let store = Store::open(&dir, FsyncPolicy::Flush).unwrap().with_segment_max(512);
    let answers = random_answers(300, 11);
    let batches = random_batches(&answers, 11);
    let mut wal = store.create_table("t", &meta()).unwrap();
    let mut boundaries = vec![wal.position()];
    for b in &batches {
        boundaries.push(wal.append_answers(b).unwrap());
    }
    wal.sync().unwrap();
    let tip = wal.position();
    drop(wal);

    let tdir = store.table_dir("t");
    assert!(segment_files(&tdir).len() > 1, "512-byte trigger must have rotated");
    // Logical positions are cumulative across segments and strictly monotone.
    for w in boundaries.windows(2) {
        assert!(w[1].offset > w[0].offset);
    }

    let rec = store.recover_table("t").unwrap();
    assert_eq!(rec.log.all(), answers.as_slice());
    assert!(rec.torn.is_none());
    drop(rec);

    let report = store.verify_table("t").unwrap();
    assert!(report.errors.is_empty(), "verify errors: {:?}", report.errors);
    assert!(report.segments > 1);
    assert!(!report.head_compacted);
    assert_eq!(report.answers, answers.len() as u64);
    // Physical bytes across the chain equal the logical end (base is 0).
    assert_eq!(report.wal_bytes, tip.offset);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cold_compaction_bounds_replay_and_makes_snapshot_load_bearing() {
    let dir = fresh_dir("coldcompact");
    let store = Store::open(&dir, FsyncPolicy::Flush).unwrap().with_segment_max(512);
    let answers = random_answers(300, 12);
    let mut wal = store.create_table("t", &meta()).unwrap();
    for b in random_batches(&answers, 12) {
        wal.append_answers(&b).unwrap();
    }
    wal.sync().unwrap();
    let pos = wal.position();
    drop(wal);
    let tdir = store.table_dir("t");
    let before = segment_files(&tdir).len();
    assert!(before > 2);

    tcrowd_store::write_snapshot(
        &tdir,
        &TableSnapshot {
            epoch: pos.answers,
            wal_offset: pos.offset,
            meta: meta(),
            log: log_of(&answers),
            fit: None,
            quarantine: Vec::new(),
        },
    )
    .unwrap();
    let removed = store.compact_cold_segments("t", pos.offset).unwrap();
    assert_eq!(removed as usize, before - 1, "all but the active segment are cold");
    assert!(!tdir.join(tcrowd_store::WAL_FILE).exists(), "segment 0 compacted away");

    // Recovery now *requires* the snapshot — and still restores everything.
    let rec = store.recover_table("t").unwrap();
    assert_eq!(rec.log.all(), answers.as_slice());
    assert_eq!(rec.snapshot_epoch, Some(answers.len() as u64));
    assert_eq!(rec.replayed_tail, 0);
    let mut wal = rec.wal.unwrap();
    // The reopened chain keeps accepting appends at logical offsets.
    let more = random_answers(10, 13);
    wal.append_answers(&more).unwrap();
    wal.sync().unwrap();
    drop(wal);
    let rec = store.recover_table("t").unwrap();
    assert_eq!(rec.log.len(), answers.len() + more.len());
    drop(rec);

    let report = store.verify_table("t").unwrap();
    assert!(report.errors.is_empty(), "verify errors: {:?}", report.errors);
    assert!(report.head_compacted);
    assert_eq!(report.answers, (answers.len() + more.len()) as u64);

    // Losing the snapshot after head compaction is fatal, loudly: the
    // full-replay fallback is gone by design.
    tcrowd_store::remove_snapshot(&tdir).unwrap();
    assert!(store.recover_table("t").is_err());
    let report = store.verify_table("t").unwrap();
    assert!(!report.errors.is_empty(), "verify must flag an unrecoverable table");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compact_table_collapses_chain_to_one_segment() {
    let dir = fresh_dir("compact");
    let store = Store::open(&dir, FsyncPolicy::Flush).unwrap().with_segment_max(512);
    let answers = random_answers(200, 14);
    let mut wal = store.create_table("t", &meta()).unwrap();
    for b in random_batches(&answers, 14) {
        wal.append_answers(&b).unwrap();
    }
    wal.sync().unwrap();
    drop(wal);
    let tdir = store.table_dir("t");
    assert!(segment_files(&tdir).len() > 1);

    let report = store.compact_table("t").unwrap();
    assert!(report.segments_before > 1);
    assert_eq!(report.segments_after, 1);
    assert_eq!(report.answers, answers.len() as u64);
    assert_eq!(segment_files(&tdir), vec![tcrowd_store::WAL_FILE.to_string()]);

    let rec = store.recover_table("t").unwrap();
    assert_eq!(rec.log.all(), answers.as_slice());
    drop(rec);
    let verify = store.verify_table("t").unwrap();
    assert!(verify.errors.is_empty(), "verify errors: {:?}", verify.errors);
    std::fs::remove_dir_all(&dir).ok();
}

/// A [`StoreIo`] that sleeps inside every fsync — long enough that
/// concurrent submitters pile up behind the commit thread, forcing groups
/// of more than one frame.
#[derive(Debug)]
struct SlowSyncIo;

impl StoreIo for SlowSyncIo {
    fn write_all(&self, _path: &Path, file: &mut File, bytes: &[u8]) -> std::io::Result<()> {
        use std::io::Write;
        file.write_all(bytes)
    }

    fn sync_data(&self, _path: &Path, file: &File) -> std::io::Result<()> {
        std::thread::sleep(std::time::Duration::from_millis(2));
        file.sync_data()
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        std::fs::rename(from, to)
    }
}

/// Satellite: the commit-thread torture test. N submitter threads race one
/// commit thread; every ack must imply frame-on-disk (reopen check), and
/// coalescing must actually batch (>1 frame per fsync under load).
#[test]
fn torture_concurrent_submitters_acks_are_durable_and_coalesced() {
    const THREADS: usize = 8;
    const BATCHES_PER_THREAD: usize = 30;
    let dir = fresh_dir("torture");
    let store = Store::open_with_io(&dir, FsyncPolicy::Always, Arc::new(SlowSyncIo)).unwrap();
    // Rotate mid-run too: group commit and rotation share the WAL lock.
    let store = store.with_segment_max(4096);
    let wal = Arc::new(Mutex::new(store.create_table("t", &meta()).unwrap()));
    let mark = DurableMark::starting_at(wal.lock().unwrap().position());
    let committer =
        Arc::new(GroupCommit::spawn_plain(Arc::clone(&wal), Arc::new(MarkSink(mark.clone()))));

    // Every acked (position, batch) pair, across all threads.
    type AckedLog = Arc<Mutex<Vec<(WalPosition, Vec<Answer>)>>>;
    let acked: AckedLog = Arc::new(Mutex::new(Vec::new()));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let committer = Arc::clone(&committer);
            let acked = Arc::clone(&acked);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x7047 + t as u64);
                for i in 0..BATCHES_PER_THREAD {
                    let batch =
                        random_answers(rng.gen_range(1..=4), (t * BATCHES_PER_THREAD + i) as u64);
                    let ticket = committer.submit(batch.clone()).unwrap();
                    let pos = ticket.wait().expect("healthy disk never NACKs");
                    acked.lock().unwrap().push((pos, batch));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = committer.stats();
    committer.shutdown();
    drop(committer);
    drop(wal);

    assert_eq!(stats.frames, (THREADS * BATCHES_PER_THREAD) as u64);
    assert!(
        stats.groups < stats.frames,
        "no coalescing happened: {} groups for {} frames",
        stats.groups,
        stats.frames
    );

    // Reopen: every ack implies its frame (and everything before it) is on
    // disk, at exactly the position the ticket reported.
    let rec = store.recover_table("t").unwrap();
    let log = rec.log.all();
    let acked = acked.lock().unwrap();
    assert_eq!(log.len(), acked.iter().map(|(_, b)| b.len()).sum::<usize>());
    for (pos, batch) in acked.iter() {
        let end = pos.answers as usize;
        let start = end - batch.len();
        assert_eq!(&log[start..end], batch.as_slice(), "acked batch must sit at its position");
    }
    // The durable watermark is the last committed position.
    let tip = acked.iter().map(|(p, _)| *p).max_by_key(|p| p.answers).unwrap();
    assert_eq!(mark.get(), tip);
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Satellite: seeded fault injection over segment-rotation and
    /// group-commit-fsync boundaries. Whatever the schedule tears —
    /// mid-frame writes, rotation tmp writes/renames, group fsyncs —
    /// recovery must yield a **bit-identical batch-boundary prefix** of
    /// what was attempted that contains **every acked batch**.
    #[test]
    fn faulty_io_over_rotation_boundaries_never_loses_an_ack(
        n in 1usize..120,
        seed in any::<u64>(),
        n_faults in 0usize..5,
        seg_max in 128u64..2048,
    ) {
        let dir = fresh_dir(&format!("prop_rot_{seed}_{n}_{n_faults}"));
        let io = FaultyIo::new();
        let store = Store::open_with_io(&dir, FsyncPolicy::Always, io.clone() as _)
            .unwrap()
            .with_segment_max(seg_max);
        let answers = random_answers(n, seed);
        let batches = random_batches(&answers, seed ^ 0xFA17);
        // Create before arming faults: aborted creation is covered elsewhere.
        let wal = Arc::new(Mutex::new(store.create_table("t", &meta()).unwrap()));
        let mut frng = StdRng::seed_from_u64(seed ^ 0xFA172);
        for _ in 0..n_faults {
            let op = match frng.gen_range(0..4u8) {
                0 | 1 => FaultOp::Write,
                2 => FaultOp::Sync,
                _ => FaultOp::Rename,
            };
            let (w, s, r) = io.counts();
            let base = match op {
                FaultOp::Write => w,
                FaultOp::Sync => s,
                FaultOp::Rename => r,
            };
            let nth = base + frng.gen_range(1..=batches.len() as u64 * 2 + 3);
            let kind = match op {
                FaultOp::Write if frng.gen_bool(0.5) => {
                    FaultKind::ShortWrite { keep: frng.gen_range(0..64), errno: ENOSPC }
                }
                FaultOp::Write => FaultKind::Error(ENOSPC),
                _ => FaultKind::Error(EIO),
            };
            io.arm(Fault { op, nth, path_contains: None, kind });
        }

        let mark = DurableMark::starting_at(wal.lock().unwrap().position());
        let committer = GroupCommit::spawn_plain(Arc::clone(&wal), Arc::new(MarkSink(mark.clone())));
        // Acks are a prefix of the batches: the WAL poisons itself on the
        // first failed group and the committer NACKs everything after.
        let mut acked = 0usize;
        for b in &batches {
            let ticket = committer.submit(b.clone()).unwrap();
            match ticket.wait() {
                Ok(pos) => {
                    acked += b.len();
                    prop_assert_eq!(pos.answers as usize, acked);
                }
                Err(_) => break,
            }
        }
        committer.shutdown();
        drop(committer);
        drop(wal);

        // The disk stops failing; recovery must restore every ack. (It may
        // restore *more*: an fsync that failed after complete frames hit the
        // file legitimately resurrects NACKed batches — but only whole ones,
        // in order.)
        io.heal();
        let rec = store.recover_table("t").unwrap();
        let recovered = rec.log.len();
        prop_assert!(recovered >= acked, "recovered {recovered} < acked {acked}");
        prop_assert_eq!(rec.log.all(), &answers[..recovered], "bit-identical prefix");
        prop_assert!(mark.get().answers as usize <= recovered, "watermark past recovery");
        let mut boundary = 0usize;
        let at_boundary = batches.iter().any(|b| {
            boundary += b.len();
            boundary == recovered
        }) || recovered == 0;
        prop_assert!(at_boundary, "recovered {recovered} answers is not a batch boundary");
        drop(rec);
        // Idempotence, through whatever rotation residue the faults left.
        let again = store.recover_table("t").unwrap();
        prop_assert_eq!(again.log.all(), &answers[..recovered]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
