//! Crash-recovery integration and property tests for the store layer.
//!
//! The heart of the durability contract lives here: for *any* byte offset a
//! crash can tear the WAL at, recovery must reconstruct **exactly the
//! longest checksummed prefix** of the log — bit-identical answers, monotone
//! epochs — and keep the file appendable afterwards.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use tcrowd_store::{
    Fault, FaultKind, FaultOp, FaultyIo, FsyncPolicy, SnapshotDelta, Store, StoreError, TableMeta,
    TableSnapshot, EIO, ENOSPC,
};
use tcrowd_tabular::{Answer, CellId, Column, ColumnType, Schema, Value, WorkerId};

const ROWS: usize = 6;

fn meta() -> TableMeta {
    TableMeta {
        rows: ROWS,
        schema: Schema::new(
            "t",
            "k",
            vec![
                Column::new("kind", ColumnType::categorical_with_cardinality(4)),
                Column::new("size", ColumnType::Continuous { min: -10.0, max: 10.0 }),
                Column::new("tag", ColumnType::categorical_with_cardinality(2)),
            ],
        ),
        config: vec![("policy".into(), "structure-aware".into())],
    }
}

/// Random answers with both datatypes and repeated workers/cells — the same
/// distribution the matrix-delta property suite uses.
fn random_answers(n: usize, seed: u64) -> Vec<Answer> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let cell = CellId::new(rng.gen_range(0..ROWS as u32), rng.gen_range(0..3u32));
            let value = if cell.col == 1 {
                Value::Continuous(rng.gen_range(-5.0..5.0))
            } else {
                Value::Categorical(rng.gen_range(0..2))
            };
            Answer { worker: WorkerId(rng.gen_range(0..8)), cell, value }
        })
        .collect()
}

/// Split `answers` into random non-empty batches (the group-commit units).
fn random_batches(answers: &[Answer], seed: u64) -> Vec<Vec<Answer>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C4);
    let mut out = Vec::new();
    let mut at = 0;
    while at < answers.len() {
        let take = rng.gen_range(1..=5usize).min(answers.len() - at);
        out.push(answers[at..at + take].to_vec());
        at += take;
    }
    out
}

/// Index a slice of answers into an [`tcrowd_tabular::AnswerLog`] of the
/// test table's shape (what `TableSnapshot.log` stores).
fn log_of(answers: &[Answer]) -> tcrowd_tabular::AnswerLog {
    let mut log = tcrowd_tabular::AnswerLog::new(ROWS, 3);
    for &a in answers {
        log.push(a);
    }
    log
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("tcrowd_store_recovery_tests")
        .join(format!("{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn clean_restart_recovers_the_full_log_bit_identically() {
    let dir = fresh_dir("clean");
    let store = Store::open(&dir, FsyncPolicy::Flush).unwrap();
    let answers = random_answers(200, 1);
    let mut wal = store.create_table("t", &meta()).unwrap();
    for batch in random_batches(&answers, 1) {
        wal.append_answers(&batch).unwrap();
    }
    wal.sync().unwrap();
    drop(wal);

    let recs = store.recover_all().unwrap();
    assert_eq!(recs.len(), 1);
    let rec = &recs[0];
    assert_eq!(rec.id, "t");
    assert_eq!(rec.meta, meta());
    assert_eq!(rec.log.all(), answers.as_slice());
    assert_eq!(rec.snapshot_epoch, None);
    assert_eq!(rec.replayed_tail, answers.len() as u64);
    assert!(rec.torn.is_none());
    // Continuous payloads survive to the bit.
    for (a, b) in rec.log.all().iter().zip(&answers) {
        if let (Value::Continuous(x), Value::Continuous(y)) = (a.value, b.value) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_assisted_recovery_replays_only_the_tail() {
    let dir = fresh_dir("snap");
    let store = Store::open(&dir, FsyncPolicy::Flush).unwrap();
    let answers = random_answers(150, 2);
    let mut wal = store.create_table("t", &meta()).unwrap();
    let batches = random_batches(&answers, 2);
    let half = batches.len() / 2;
    for batch in &batches[..half] {
        wal.append_answers(batch).unwrap();
    }
    wal.sync().unwrap();
    let pos = wal.position();
    tcrowd_store::write_snapshot(
        &store.table_dir("t"),
        &TableSnapshot {
            epoch: pos.answers,
            wal_offset: pos.offset,
            meta: meta(),
            log: log_of(&answers[..pos.answers as usize]),
            fit: None,
            quarantine: Vec::new(),
        },
    )
    .unwrap();
    for batch in &batches[half..] {
        wal.append_answers(batch).unwrap();
    }
    wal.sync().unwrap();
    drop(wal);

    let rec = store.recover_table("t").unwrap();
    assert_eq!(rec.snapshot_epoch, Some(pos.answers));
    assert_eq!(rec.replayed_tail, answers.len() as u64 - pos.answers);
    assert_eq!(rec.log.all(), answers.as_slice());

    // A *corrupt* snapshot degrades to a full replay with the same result.
    let snap_path = store.table_dir("t").join(tcrowd_store::SNAPSHOT_FILE);
    let mut bytes = std::fs::read(&snap_path).unwrap();
    let len = bytes.len();
    bytes[len / 2] ^= 0xFF;
    std::fs::write(&snap_path, &bytes).unwrap();
    let rec = store.recover_table("t").unwrap();
    assert_eq!(rec.snapshot_epoch, None, "corrupt snapshot must be ignored");
    assert_eq!(rec.log.all(), answers.as_slice());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovered_wal_accepts_further_appends() {
    let dir = fresh_dir("continue");
    let store = Store::open(&dir, FsyncPolicy::Always).unwrap();
    let answers = random_answers(60, 3);
    let mut wal = store.create_table("t", &meta()).unwrap();
    wal.append_answers(&answers[..40]).unwrap();
    // Tear the tail: write half of another record by hand.
    let pos = wal.position();
    drop(wal);
    let path = store.table_dir("t").join(tcrowd_store::WAL_FILE);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE]);
    std::fs::write(&path, &bytes).unwrap();

    let mut rec = store.recover_table("t").unwrap();
    assert_eq!(rec.log.len(), 40);
    assert_eq!(rec.torn.as_ref().map(|t| t.at), Some(pos.offset));
    // The torn bytes were truncated; appending and re-recovering works.
    rec.wal.as_mut().unwrap().append_answers(&answers[40..]).unwrap();
    drop(rec);
    let rec = store.recover_table("t").unwrap();
    assert_eq!(rec.log.all(), answers.as_slice());
    assert!(rec.torn.is_none());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tombstoned_tables_stay_dead() {
    let dir = fresh_dir("tombstone");
    let store = Store::open(&dir, FsyncPolicy::Flush).unwrap();
    let mut wal = store.create_table("t", &meta()).unwrap();
    wal.append_answers(&random_answers(10, 4)).unwrap();
    wal.append_delete().unwrap();
    drop(wal);
    // The directory still exists (crash before removal)…
    assert_eq!(store.table_ids().unwrap(), vec!["t".to_string()]);
    // …but recover_all finishes the cleanup and serves nothing.
    assert!(store.recover_all().unwrap().is_empty());
    assert!(store.table_ids().unwrap().is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wal_rebuild_from_snapshot_refreshes_the_snapshot_so_later_appends_survive() {
    // The fsync=never loss case: the snapshot is durable but the WAL tail
    // died with the crash, so recovery rebuilds the WAL from the snapshot.
    // Regression: the rebuild must also rewrite the snapshot for the NEW
    // layout — a stale snapshot (old-layout wal_offset) would make the next
    // recovery rebuild from the old epoch again and destroy every answer
    // acknowledged in between.
    let dir = fresh_dir("rebuild");
    let store = Store::open(&dir, FsyncPolicy::Flush).unwrap();
    let answers = random_answers(40, 8);
    let mut wal = store.create_table("t", &meta()).unwrap();
    wal.append_answers(&answers[..30]).unwrap();
    wal.sync().unwrap();
    let pos = wal.position();
    drop(wal);
    tcrowd_store::write_snapshot(
        &store.table_dir("t"),
        &TableSnapshot {
            epoch: 30,
            wal_offset: pos.offset,
            meta: meta(),
            log: log_of(&answers[..30]),
            fit: None,
            quarantine: Vec::new(),
        },
    )
    .unwrap();
    // Lose the WAL tail: the file ends before the snapshot's offset.
    let wal_path = store.table_dir("t").join(tcrowd_store::WAL_FILE);
    let bytes = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &bytes[..(pos.offset / 2) as usize]).unwrap();

    // First recovery: rebuilt from the snapshot, nothing lost beyond the
    // un-synced tail.
    let mut rec = store.recover_table("t").unwrap();
    assert_eq!(rec.log.all(), &answers[..30]);
    assert!(rec.torn.as_ref().unwrap().reason.contains("rebuilt from the snapshot"));
    // Acknowledge more answers on the rebuilt WAL, then crash again.
    rec.wal.as_mut().unwrap().append_answers(&answers[30..]).unwrap();
    drop(rec);

    // Second recovery must see ALL acknowledged answers — the snapshot on
    // disk now matches the rebuilt layout, so nothing is rolled back.
    let rec = store.recover_table("t").unwrap();
    assert_eq!(rec.log.all(), answers.as_slice(), "post-rebuild acks must survive");
    assert_eq!(rec.snapshot_epoch, Some(30));
    assert_eq!(rec.replayed_tail, 10);
    assert!(rec.torn.is_none());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn aborted_creations_are_garbage_collected_without_bricking_boot() {
    // A crash between `create_dir_all` and the durable Create record leaves
    // a directory that was never acknowledged to any client. Boot must
    // garbage-collect it and serve the healthy tables — not refuse to start.
    let dir = fresh_dir("aborted");
    let store = Store::open(&dir, FsyncPolicy::Flush).unwrap();
    let answers = random_answers(15, 9);
    let mut wal = store.create_table("good", &meta()).unwrap();
    wal.append_answers(&answers).unwrap();
    wal.sync().unwrap();
    drop(wal);
    // Three flavours of crashed creation: empty dir, empty WAL, torn Create.
    std::fs::create_dir_all(store.table_dir("empty-dir")).unwrap();
    std::fs::create_dir_all(store.table_dir("empty-wal")).unwrap();
    std::fs::write(store.table_dir("empty-wal").join(tcrowd_store::WAL_FILE), b"").unwrap();
    let good_head = std::fs::read(store.table_dir("good").join(tcrowd_store::WAL_FILE)).unwrap();
    std::fs::create_dir_all(store.table_dir("torn-create")).unwrap();
    std::fs::write(store.table_dir("torn-create").join(tcrowd_store::WAL_FILE), &good_head[..9])
        .unwrap();

    let recs = store.recover_all().unwrap();
    assert_eq!(recs.len(), 1);
    assert_eq!(recs[0].id, "good");
    assert_eq!(recs[0].log.all(), answers.as_slice());
    assert_eq!(store.table_ids().unwrap(), vec!["good".to_string()], "residue must be GC'd");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn half_deleted_directory_with_surviving_snapshot_boots_instead_of_bricking() {
    // A crash mid `remove_dir_all` can unlink wal.log (tombstone included)
    // while snapshot.snap survives. Boot must not refuse to start: the
    // table is rebuilt from the snapshot (re-deleting it is trivial;
    // a bricked service is not).
    let dir = fresh_dir("halfdel");
    let store = Store::open(&dir, FsyncPolicy::Flush).unwrap();
    let answers = random_answers(20, 10);
    let mut wal = store.create_table("t", &meta()).unwrap();
    wal.append_answers(&answers).unwrap();
    wal.sync().unwrap();
    let pos = wal.position();
    drop(wal);
    tcrowd_store::write_snapshot(
        &store.table_dir("t"),
        &TableSnapshot {
            epoch: 20,
            wal_offset: pos.offset,
            meta: meta(),
            log: log_of(&answers),
            fit: None,
            quarantine: Vec::new(),
        },
    )
    .unwrap();
    std::fs::remove_file(store.table_dir("t").join(tcrowd_store::WAL_FILE)).unwrap();

    let recs = store.recover_all().unwrap();
    assert_eq!(recs.len(), 1);
    assert_eq!(recs[0].log.all(), answers.as_slice());
    assert!(recs[0].torn.as_ref().unwrap().reason.contains("rebuilt from the snapshot"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rotted_create_record_with_data_errors_instead_of_silent_deletion() {
    // A COMPLETE Create frame that fails its checksum is rot of durable,
    // acknowledged state — recovery must surface it as an error, never
    // garbage-collect the directory like an aborted creation.
    let dir = fresh_dir("rotted");
    let store = Store::open(&dir, FsyncPolicy::Flush).unwrap();
    let mut wal = store.create_table("t", &meta()).unwrap();
    wal.append_answers(&random_answers(12, 11)).unwrap();
    wal.sync().unwrap();
    drop(wal);
    let wal_path = store.table_dir("t").join(tcrowd_store::WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes[10] ^= 0x01; // one flipped bit inside the Create payload
    std::fs::write(&wal_path, &bytes).unwrap();

    let err = store.recover_all().unwrap_err();
    assert!(err.to_string().contains("create record"), "{err}");
    assert_eq!(
        store.table_ids().unwrap(),
        vec!["t".to_string()],
        "rotted data must never be auto-deleted"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn duplicate_table_ids_are_rejected() {
    let dir = fresh_dir("dup");
    let store = Store::open(&dir, FsyncPolicy::Flush).unwrap();
    let _wal = store.create_table("t", &meta()).unwrap();
    match store.create_table("t", &meta()) {
        Err(StoreError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::AlreadyExists),
        other => panic!("expected AlreadyExists, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compact_preserves_answers_and_passes_verify() {
    let dir = fresh_dir("compact");
    let store = Store::open(&dir, FsyncPolicy::Flush).unwrap();
    let answers = random_answers(120, 5);
    let mut wal = store.create_table("t", &meta()).unwrap();
    for batch in random_batches(&answers, 5) {
        wal.append_answers(&batch).unwrap();
    }
    wal.sync().unwrap();
    drop(wal);

    let report = store.compact_table("t").unwrap();
    assert_eq!(report.answers, answers.len() as u64);
    assert!(report.records_before > 2, "many batch records before compaction");
    assert!(
        report.wal_bytes_after <= report.wal_bytes_before,
        "defragmenting must not grow the WAL ({} -> {})",
        report.wal_bytes_before,
        report.wal_bytes_after
    );

    let verify = store.verify_table("t").unwrap();
    assert!(verify.errors.is_empty(), "{:?}", verify.errors);
    assert_eq!(verify.answers, answers.len() as u64);
    assert_eq!(verify.records, 2, "compacted WAL is create + one append");
    let check = verify.snapshot.expect("compaction writes a snapshot");
    assert!(check.consistent);
    assert_eq!(check.epoch, answers.len() as u64);

    // Recovery after compaction sees the identical log, via the snapshot.
    let rec = store.recover_table("t").unwrap();
    assert_eq!(rec.log.all(), answers.as_slice());
    assert_eq!(rec.snapshot_epoch, Some(answers.len() as u64));
    assert_eq!(rec.replayed_tail, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quarantine_survives_recovery_snapshots_and_compaction() {
    use tcrowd_store::QuarantineEntry;
    let dir = fresh_dir("quarantine");
    let store = Store::open(&dir, FsyncPolicy::Flush).unwrap();
    let answers = random_answers(80, 13);
    let mut wal = store.create_table("t", &meta()).unwrap();
    wal.append_answers(&answers[..40]).unwrap();
    let set = vec![
        QuarantineEntry { worker: WorkerId(2), manual: false },
        QuarantineEntry { worker: WorkerId(5), manual: true },
    ];
    wal.append_answers(&answers[40..]).unwrap();
    wal.append_quarantine(&set).unwrap();
    wal.sync().unwrap();
    let pos = wal.position();
    drop(wal);

    // Full-replay recovery sees the set; the log is untouched by it.
    let rec = store.recover_table("t").unwrap();
    assert_eq!(rec.quarantine, set);
    assert_eq!(rec.log.all(), answers.as_slice(), "quarantine never mutates the log");
    drop(rec);

    // Snapshot-assisted recovery: the snapshot carries the set, and a tail
    // Quarantine record supersedes it.
    tcrowd_store::write_snapshot(
        &store.table_dir("t"),
        &TableSnapshot {
            epoch: pos.answers,
            wal_offset: pos.offset,
            meta: meta(),
            log: log_of(&answers),
            fit: None,
            quarantine: set.clone(),
        },
    )
    .unwrap();
    let rec = store.recover_table("t").unwrap();
    assert_eq!(rec.snapshot_epoch, Some(pos.answers));
    assert_eq!(rec.quarantine, set, "snapshot set adopted when the tail is silent");
    let shrunk = vec![QuarantineEntry { worker: WorkerId(5), manual: true }];
    rec.wal.unwrap().append_quarantine(&shrunk).unwrap();
    let rec = store.recover_table("t").unwrap();
    assert_eq!(rec.quarantine, shrunk, "tail record supersedes the snapshot's set");
    assert_eq!(rec.log.all(), answers.as_slice());
    drop(rec);

    // Verify reports the records and the effective set; compaction carries
    // the set through the rewritten WAL and fresh snapshot.
    let verify = store.verify_table("t").unwrap();
    assert!(verify.errors.is_empty(), "{:?}", verify.errors);
    assert_eq!(verify.quarantine_records, 2);
    assert_eq!(verify.quarantined, 1);
    store.compact_table("t").unwrap();
    let verify = store.verify_table("t").unwrap();
    assert!(verify.errors.is_empty(), "{:?}", verify.errors);
    assert_eq!(verify.quarantine_records, 1, "compaction keeps one replacement record");
    assert_eq!(verify.quarantined, 1);
    let rec = store.recover_table("t").unwrap();
    assert_eq!(rec.quarantine, shrunk);
    assert_eq!(rec.log.all(), answers.as_slice());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn misaligned_snapshot_offset_falls_back_to_full_replay_without_data_loss() {
    // Regression: a CRC-valid snapshot whose wal_offset is NOT a record
    // boundary (e.g. restored from a backup next to a newer WAL) makes the
    // first tail frame fail its checksum. That must trigger a full-replay
    // fallback — truncating at the bogus offset would destroy valid
    // acknowledged records.
    let dir = fresh_dir("misaligned");
    let store = Store::open(&dir, FsyncPolicy::Flush).unwrap();
    let answers = random_answers(50, 7);
    let mut wal = store.create_table("t", &meta()).unwrap();
    let mid = wal.append_answers(&answers[..20]).unwrap();
    wal.append_answers(&answers[20..]).unwrap();
    wal.sync().unwrap();
    let full_len = wal.position().offset;
    drop(wal);
    tcrowd_store::write_snapshot(
        &store.table_dir("t"),
        &TableSnapshot {
            epoch: 20,
            wal_offset: mid.offset + 3, // inside the second record
            meta: meta(),
            log: log_of(&answers[..20]),
            fit: None,
            quarantine: Vec::new(),
        },
    )
    .unwrap();
    let rec = store.recover_table("t").unwrap();
    assert_eq!(rec.snapshot_epoch, None, "misaligned snapshot must be distrusted");
    assert_eq!(rec.log.all(), answers.as_slice(), "no acknowledged answer may be lost");
    assert!(rec.torn.is_none());
    drop(rec);
    let wal_len =
        std::fs::metadata(store.table_dir("t").join(tcrowd_store::WAL_FILE)).unwrap().len();
    assert_eq!(wal_len, full_len, "the WAL must not be truncated at the bogus offset");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verify_flags_inconsistent_snapshots() {
    let dir = fresh_dir("verify");
    let store = Store::open(&dir, FsyncPolicy::Flush).unwrap();
    let answers = random_answers(30, 6);
    let mut wal = store.create_table("t", &meta()).unwrap();
    wal.append_answers(&answers).unwrap();
    wal.sync().unwrap();
    let pos = wal.position();
    drop(wal);
    // A snapshot whose offset is NOT a record boundary.
    tcrowd_store::write_snapshot(
        &store.table_dir("t"),
        &TableSnapshot {
            epoch: 30,
            wal_offset: pos.offset - 1,
            meta: meta(),
            log: log_of(&answers),
            fit: None,
            quarantine: Vec::new(),
        },
    )
    .unwrap();
    let verify = store.verify_table("t").unwrap();
    assert!(verify.errors.iter().any(|e| e.contains("record boundary")), "{:?}", verify.errors);
    assert!(!verify.snapshot.unwrap().consistent);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn incremental_snapshot_chain_assists_recovery_and_survives_compaction() {
    // The happy path of the chain: base + several deltas covering a prefix,
    // a WAL tail past the tip. Recovery must combine the chain and replay
    // only the tail; `compact` must collapse the chain into one base.
    let dir = fresh_dir("chain_happy");
    let store = Store::open(&dir, FsyncPolicy::Flush).unwrap();
    let answers = random_answers(90, 12);
    let mut wal = store.create_table("t", &meta()).unwrap();
    let mut marks = Vec::new(); // positions after 30/50/70 answers
    for (i, batch) in answers.chunks(10).enumerate() {
        let pos = wal.append_answers(batch).unwrap();
        if [2usize, 4, 6].contains(&i) {
            marks.push(pos);
        }
    }
    wal.sync().unwrap();
    drop(wal);
    let tdir = store.table_dir("t");
    tcrowd_store::write_snapshot(
        &tdir,
        &TableSnapshot {
            epoch: marks[0].answers,
            wal_offset: marks[0].offset,
            meta: meta(),
            log: log_of(&answers[..marks[0].answers as usize]),
            fit: None,
            quarantine: Vec::new(),
        },
    )
    .unwrap();
    for (seq, w) in marks.windows(2).enumerate() {
        tcrowd_store::write_snapshot_delta(
            &tdir,
            &SnapshotDelta {
                seq: seq as u64 + 1,
                parent_epoch: w[0].answers,
                epoch: w[1].answers,
                wal_offset: w[1].offset,
                answers: answers[w[0].answers as usize..w[1].answers as usize].to_vec(),
                fit: None,
                quarantine: Vec::new(),
            },
        )
        .unwrap();
    }

    let rec = store.recover_table("t").unwrap();
    assert_eq!(rec.log.all(), answers.as_slice());
    assert_eq!(rec.snapshot_epoch, Some(70), "chain tip is the resume point");
    assert_eq!(rec.replayed_tail, 20, "only the post-chain tail is replayed");
    let chain = rec.chain.as_ref().expect("chain info");
    assert_eq!(chain.links, 2);
    assert_eq!(chain.base_epoch, 30);
    assert_eq!(chain.chain_answers, 40);
    assert!(chain.broken.is_none());
    drop(rec);

    let verify = store.verify_table("t").unwrap();
    assert!(verify.errors.is_empty(), "{:?}", verify.errors);
    let check = verify.snapshot.expect("chain present");
    assert_eq!(check.links, 2);
    assert!(check.consistent);

    // Compaction collapses the chain: one base, zero links.
    store.compact_table("t").unwrap();
    let verify = store.verify_table("t").unwrap();
    assert!(verify.errors.is_empty(), "{:?}", verify.errors);
    let check = verify.snapshot.expect("compaction writes a full snapshot");
    assert_eq!(check.links, 0, "compaction must collapse the chain");
    assert_eq!(check.epoch, answers.len() as u64);
    let rec = store.recover_table("t").unwrap();
    assert_eq!(rec.log.all(), answers.as_slice());
    assert_eq!(rec.replayed_tail, 0);
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    /// Incremental-snapshot chain recovery under fire: append N answers in
    /// random batches, persist a snapshot chain (base + deltas) at random
    /// batch boundaries, tear the WAL at a random byte offset AND rot a
    /// random chain file (or none). Whatever survives, recovery must
    /// reconstruct a bit-identical prefix of the acknowledged order:
    ///
    /// * chain tip ahead of the torn WAL → the rebuild branch restores the
    ///   chain's epoch (the chain is the more durable record);
    /// * chain tip at/behind the cut → chain + WAL tail replay restore the
    ///   longest checksummed WAL prefix;
    /// * a rotten base degrades to a full replay, a rotten delta truncates
    ///   the chain at that link — never an error, never a lost ack.
    #[test]
    fn snapshot_chain_recovery_survives_torn_tails_and_rotten_links(
        n in 1usize..140,
        seed in any::<u64>(),
        cut_frac in 0.0f64..=1.0,
        rot_pick in any::<u64>(),
    ) {
        let dir = fresh_dir(&format!("prop_chain_{seed}_{n}"));
        let store = Store::open(&dir, FsyncPolicy::Flush).unwrap();
        let answers = random_answers(n, seed);
        let batches = random_batches(&answers, seed ^ 0x5EED);
        let mut wal = store.create_table("t", &meta()).unwrap();
        let mut boundaries = vec![wal.position()];
        for b in &batches {
            boundaries.push(wal.append_answers(b).unwrap());
        }
        wal.sync().unwrap();
        drop(wal);
        let tdir = store.table_dir("t");

        // Persist a chain at a random subset of batch boundaries: the first
        // chosen point becomes the full base, later ones delta links.
        let mut chain_rng = StdRng::seed_from_u64(seed ^ 0xC4A1);
        let mut chain_files: Vec<(PathBuf, u64, u64)> = Vec::new(); // (path, epoch, offset)
        let mut parent: Option<u64> = None;
        for pos in &boundaries[1..] {
            if !chain_rng.gen_bool(0.34) {
                continue;
            }
            match parent {
                None => {
                    tcrowd_store::write_snapshot(&tdir, &TableSnapshot {
                        epoch: pos.answers,
                        wal_offset: pos.offset,
                        meta: meta(),
                        log: log_of(&answers[..pos.answers as usize]),
                        fit: None,
                        quarantine: Vec::new(),
                    }).unwrap();
                    chain_files.push((tdir.join(tcrowd_store::SNAPSHOT_FILE), pos.answers, pos.offset));
                }
                Some(p) if pos.answers > p => {
                    let seq = chain_files.len() as u64;
                    tcrowd_store::write_snapshot_delta(&tdir, &SnapshotDelta {
                        seq,
                        parent_epoch: p,
                        epoch: pos.answers,
                        wal_offset: pos.offset,
                        answers: answers[p as usize..pos.answers as usize].to_vec(),
                        fit: None,
                        quarantine: Vec::new(),
                    }).unwrap();
                    chain_files.push((
                        tdir.join(format!("{}{seq}", tcrowd_store::DELTA_PREFIX)),
                        pos.answers,
                        pos.offset,
                    ));
                }
                Some(_) => continue, // empty delta: skip
            }
            parent = Some(pos.answers);
        }

        // Rot one random chain file (or none), one flipped byte.
        let rot = if chain_files.is_empty() { 0 } else { rot_pick % (chain_files.len() as u64 + 1) };
        let valid_links: &[(PathBuf, u64, u64)] = if rot == 0 {
            &chain_files
        } else {
            let (path, _, _) = &chain_files[(rot - 1) as usize];
            let mut bytes = std::fs::read(path).unwrap();
            let at = (rot_pick as usize / 7) % bytes.len();
            bytes[at] ^= 0x20;
            std::fs::write(path, &bytes).unwrap();
            &chain_files[..(rot - 1) as usize]
        };
        let tip = valid_links.last().map(|&(_, epoch, offset)| (epoch, offset));

        // Tear the WAL.
        let wal_path = tdir.join(tcrowd_store::WAL_FILE);
        let full = std::fs::read(&wal_path).unwrap();
        let cut = (full.len() as f64 * cut_frac).round() as u64;
        std::fs::write(&wal_path, &full[..cut as usize]).unwrap();
        let survived = boundaries.iter().rev().find(|p| p.offset <= cut).map(|p| p.answers);

        let rebuilt = matches!(tip, Some((_, offset)) if offset > cut);
        let expected = match (tip, survived) {
            (Some((epoch, offset)), _) if offset > cut => Some(epoch), // rebuild branch
            (_, Some(prefix)) => Some(prefix),                         // tail replay / full replay
            (None, None) => None,                                      // create torn, no chain
            (Some(_), None) => unreachable!("a chain boundary is always at or past the create"),
        };
        match expected {
            None => {
                prop_assert!(store.recover_table("t").is_err());
            }
            Some(expected) => {
                let rec = store.recover_table("t").unwrap();
                prop_assert_eq!(rec.log.all(), &answers[..expected as usize]);
                if let (Some(info), false) = (&rec.chain, rebuilt) {
                    prop_assert_eq!(
                        info.links + 1, valid_links.len() as u64,
                        "applied links must be exactly the uncorrupted prefix"
                    );
                }
                drop(rec);
                // Idempotence: a second recovery reproduces the same state.
                let again = store.recover_table("t").unwrap();
                prop_assert_eq!(again.log.all(), &answers[..expected as usize]);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The fault-injection half of the crash property: instead of tearing
    /// bytes post-hoc, the WAL and snapshot writers are driven through a
    /// [`FaultyIo`] schedule of short writes (`ENOSPC`), fsync failures
    /// (`EIO`) and rename failures, interleaved at random call counts.
    /// Invariant, whatever fires:
    ///
    /// * **acked is a bit-identical prefix of recovered** — every batch the
    ///   WAL acknowledged survives recovery exactly;
    /// * **recovered is a prefix of attempted** at a batch boundary — an
    ///   fsync that failed *after* a complete frame reached the file may
    ///   legitimately resurrect a NACKed batch, but never fabricate or
    ///   reorder answers;
    /// * recovery is idempotent.
    #[test]
    fn faulty_io_schedules_never_lose_an_acked_answer(
        n in 1usize..120,
        seed in any::<u64>(),
        n_faults in 0usize..5,
    ) {
        let dir = fresh_dir(&format!("prop_faulty_{seed}_{n}_{n_faults}"));
        let io = FaultyIo::new();
        let store =
            Store::open_with_io(&dir, FsyncPolicy::Always, io.clone() as _).unwrap();
        let answers = random_answers(n, seed);
        let batches = random_batches(&answers, seed ^ 0xFA17);
        // Create the table before arming faults: a failed creation is the
        // aborted-creation case (GC'd residue), covered elsewhere — this
        // property is about the life of an acknowledged table.
        let mut wal = store.create_table("t", &meta()).unwrap();
        let mut frng = StdRng::seed_from_u64(seed ^ 0xFA171);
        for _ in 0..n_faults {
            let op = match frng.gen_range(0..4u8) {
                0 | 1 => FaultOp::Write,
                2 => FaultOp::Sync,
                _ => FaultOp::Rename,
            };
            // `nth` counts from the handle's creation: offset past the calls
            // the creation already spent so every fault lands in this run.
            let (w, s, r) = io.counts();
            let base = match op {
                FaultOp::Write => w,
                FaultOp::Sync => s,
                FaultOp::Rename => r,
            };
            let nth = base + frng.gen_range(1..=batches.len() as u64 * 2 + 3);
            let kind = match op {
                FaultOp::Write if frng.gen_bool(0.5) => {
                    FaultKind::ShortWrite { keep: frng.gen_range(0..64), errno: ENOSPC }
                }
                FaultOp::Write => FaultKind::Error(ENOSPC),
                _ => FaultKind::Error(EIO),
            };
            io.arm(Fault { op, nth, path_contains: None, kind });
        }

        // Acks are a prefix of the batches: the WAL poisons itself on the
        // first failed append and refuses the rest.
        let mut acked = 0usize;
        let mut last_pos = None;
        for b in &batches {
            match wal.append_answers(b) {
                Ok(pos) => {
                    acked += b.len();
                    last_pos = Some(pos);
                }
                Err(_) => break,
            }
        }
        drop(wal);
        // Attempt a snapshot at the last acked boundary (exercising the
        // write/rename faults on the snapshot path); a failure may leave a
        // tmp file behind, which recovery must ignore.
        if let Some(pos) = last_pos {
            let _ = tcrowd_store::write_snapshot_with_io(
                &store.table_dir("t"),
                &TableSnapshot {
                    epoch: pos.answers,
                    wal_offset: pos.offset,
                    meta: meta(),
                    log: log_of(&answers[..pos.answers as usize]),
                    fit: None,
                    quarantine: Vec::new(),
                },
                &(io.clone() as _),
            );
        }

        // The disk now stops failing; recovery must restore every ack.
        io.heal();
        let rec = store.recover_table("t").unwrap();
        let recovered = rec.log.len();
        prop_assert!(recovered >= acked, "recovered {recovered} < acked {acked}");
        prop_assert_eq!(rec.log.all(), &answers[..recovered], "bit-identical prefix");
        let mut boundary = 0usize;
        let at_boundary = batches.iter().any(|b| {
            boundary += b.len();
            boundary == recovered
        }) || recovered == 0;
        prop_assert!(at_boundary, "recovered {recovered} answers is not a batch boundary");
        drop(rec);
        let again = store.recover_table("t").unwrap();
        prop_assert_eq!(again.log.all(), &answers[..recovered]);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// THE crash-recovery property (torn-write half): append N answers in
    /// random group-commit batches, kill the WAL at a random byte offset,
    /// recover — the recovered log is exactly the concatenation of the
    /// batches whose frames survived in full (the longest checksummed
    /// prefix), epochs are monotone, and the truncated WAL re-recovers to
    /// the same state (idempotence).
    #[test]
    fn torn_wal_recovers_longest_checksummed_prefix(
        n in 1usize..160,
        seed in any::<u64>(),
        cut_frac in 0.0f64..=1.0,
    ) {
        let dir = fresh_dir(&format!("prop_{seed}_{n}"));
        let store = Store::open(&dir, FsyncPolicy::Flush).unwrap();
        let answers = random_answers(n, seed);
        let batches = random_batches(&answers, seed);
        let mut wal = store.create_table("t", &meta()).unwrap();
        // Boundary i = (byte offset, cumulative answers) after batch i-1.
        let mut boundaries = vec![wal.position()];
        for b in &batches {
            boundaries.push(wal.append_answers(b).unwrap());
        }
        wal.sync().unwrap();
        drop(wal);

        // Epoch monotonicity of the committed positions.
        for w in boundaries.windows(2) {
            prop_assert!(w[1].offset > w[0].offset);
            prop_assert!(w[1].answers >= w[0].answers);
        }

        let path = store.table_dir("t").join(tcrowd_store::WAL_FILE);
        let full = std::fs::read(&path).unwrap();
        let total = full.len() as u64;
        prop_assert_eq!(total, boundaries.last().unwrap().offset);
        // Kill point anywhere in the file, including inside the create
        // record and exactly at the end (no tear).
        let cut = (total as f64 * cut_frac).round() as u64;
        std::fs::write(&path, &full[..cut as usize]).unwrap();

        // Expected: every batch whose frame ends at or before the cut.
        let survived = boundaries.iter().rev().find(|p| p.offset <= cut);
        match survived {
            None => {
                // Even the create record is torn: the table is unrecoverable
                // and recovery must say so, not fabricate an empty table.
                prop_assert!(store.recover_table("t").is_err());
            }
            Some(pos) => {
                let expected = &answers[..pos.answers as usize];
                let rec = store.recover_table("t").unwrap();
                prop_assert_eq!(rec.log.all(), expected);
                prop_assert_eq!(rec.log.len() as u64, pos.answers);
                prop_assert_eq!(rec.torn.is_some(), cut > pos.offset);
                drop(rec);
                // Idempotence: recovering the truncated file changes nothing.
                let again = store.recover_table("t").unwrap();
                prop_assert_eq!(again.log.all(), expected);
                prop_assert!(again.torn.is_none());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
