//! The per-table **write-ahead log**: an append-only file of length-prefixed,
//! CRC-checksummed binary records that is the table's system of record.
//!
//! ## Frame format
//!
//! ```text
//! ┌────────────┬────────────┬──────────────────────────────┐
//! │ len: u32LE │ crc: u32LE │ payload (len bytes)          │
//! └────────────┴────────────┴──────────────────────────────┘
//! payload = kind: u8 ++ body   (tcrowd_tabular::io::binary codec)
//! ```
//!
//! `crc` is the CRC-32 of the payload. Four record kinds exist:
//!
//! * **Create** (`kind 1`) — the table's birth certificate: shape, schema
//!   and service configuration. Always the first record of a WAL.
//! * **Append** (`kind 2`) — a batch of answers. One record per ingest
//!   batch: the batch is the *group-commit unit* — however many answers a
//!   client posts together are framed, checksummed and (policy permitting)
//!   fsynced once.
//! * **Delete** (`kind 3`) — a tombstone. A deleted table's directory is
//!   removed after the tombstone commits; recovery that finds the tombstone
//!   (crash between the two steps) finishes the cleanup instead of
//!   resurrecting the table.
//! * **Quarantine** (`kind 4`) — the complete quarantined-worker set at a
//!   point in the log, with a manual/automatic flag per worker. Records are
//!   *full replacements* (the last one wins), so replay is idempotent and a
//!   record torn off the tail loses only the newest decision, never corrupts
//!   the set. Quarantine excludes a worker from truth inference; it never
//!   touches the answers themselves, which is why it is a separate record
//!   kind and not a rewrite of Append history.
//! * **Segment** (`kind 5`) — the first record of every rotated segment
//!   file (see [`crate::segment`]): `{seq, base_offset, answers_before}`,
//!   chaining the segment to where its predecessor ended. Offsets stay
//!   *logical* (cumulative across segments), so positions and snapshot
//!   offsets are rotation-oblivious.
//!
//! ## Torn tails
//!
//! A crash can leave a partially-written frame at the end of the active
//! segment. Replay tolerates this by construction: decoding stops at the
//! first frame whose header is truncated, whose length is implausible, or
//! whose CRC does not match, and reports the logical offset of the valid
//! prefix — recovery truncates there ([`truncate_to_valid`]) and continues.
//! Rotation only ever happens at record boundaries and fsyncs the outgoing
//! segment, so a tear in a *non-last* segment is rot, not a crash artifact;
//! replay stops there too and recovery drops the later segments (they are
//! unreachable past the tear). An acknowledged batch is never dropped:
//! acknowledgement happens only after its frame is fully written (and
//! flushed/fsynced per [`FsyncPolicy`]), so the frame before any torn bytes
//! is complete.

use crate::crc::crc32;
use crate::io::{real_io, IoHandle};
use crate::obs::{noop_obs, ObsHandle};
use crate::segment::{self, SegmentHeader, KIND_SEGMENT};
use crate::StoreError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use tcrowd_tabular::io::binary::{self, Cursor};
use tcrowd_tabular::{Answer, Schema, WorkerId};

/// File name of the per-table WAL inside its table directory.
pub const WAL_FILE: &str = "wal.log";

/// Frame header size: `u32` length + `u32` CRC.
const FRAME_HEADER: u64 = 8;
/// Upper bound on a single record's payload — anything larger is treated as
/// a corrupt length field, not an allocation request.
const MAX_RECORD: u32 = 1 << 30;

const KIND_CREATE: u8 = 1;
const KIND_APPEND: u8 = 2;
const KIND_DELETE: u8 = 3;
const KIND_QUARANTINE: u8 = 4;
// KIND_SEGMENT (5) lives in `crate::segment`.

/// Human-readable name of a record kind byte (for `inspect`/`verify`).
pub fn record_kind_name(kind: u8) -> &'static str {
    match kind {
        KIND_CREATE => "create",
        KIND_APPEND => "append",
        KIND_DELETE => "delete",
        KIND_QUARANTINE => "quarantine",
        KIND_SEGMENT => "segment",
        _ => "unknown",
    }
}

/// One quarantined worker in a Quarantine record (and in snapshots):
/// who, and whether an operator pinned the decision by hand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct QuarantineEntry {
    /// The quarantined worker.
    pub worker: WorkerId,
    /// `true` when the quarantine was imposed via the manual endpoint —
    /// manual decisions are never auto-released by the trust scorer.
    pub manual: bool,
}

/// Encode a quarantined-worker set (shared between WAL records and
/// snapshots): `count: u32 ++ (worker: u32 ++ flags: u8)*`, flag bit 0 =
/// manual.
pub(crate) fn encode_quarantine(buf: &mut Vec<u8>, entries: &[QuarantineEntry]) {
    binary::put_u32(buf, entries.len() as u32);
    for e in entries {
        binary::put_u32(buf, e.worker.0);
        buf.push(e.manual as u8);
    }
}

/// Decode a quarantined-worker set (see [`encode_quarantine`]). Rejects
/// unknown flag bits so a future format change fails loudly instead of
/// being silently misread.
pub(crate) fn decode_quarantine(
    c: &mut Cursor<'_>,
) -> Result<Vec<QuarantineEntry>, binary::CodecError> {
    let n = c.u32()? as usize;
    let mut entries = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let worker = WorkerId(c.u32()?);
        let flags = c.u8()?;
        if flags > 1 {
            return Err(binary::CodecError {
                at: c.position(),
                message: format!("unknown quarantine flags 0b{flags:b}"),
            });
        }
        entries.push(QuarantineEntry { worker, manual: flags & 1 == 1 });
    }
    Ok(entries)
}

/// When the WAL pushes bytes toward the platters.
///
/// The policy trades ingest throughput against the failure domain the log
/// survives; `bench_persistence` measures all three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` after every committed batch: acknowledged answers survive
    /// power loss. The slowest and strongest option.
    Always,
    /// Flush to the OS after every committed batch (no `fsync`):
    /// acknowledged answers survive a process crash/`SIGKILL` but not a
    /// kernel panic or power cut. The default.
    #[default]
    Flush,
    /// Leave bytes in the user-space buffer until a snapshot or shutdown
    /// forces them out: fastest, survives only a clean close. Snapshots
    /// still flush+fsync the WAL before they are written, so recovery never
    /// sees a snapshot that is ahead of a *durable* WAL without handling it.
    Never,
}

impl FsyncPolicy {
    /// The canonical CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Flush => "flush",
            FsyncPolicy::Never => "never",
        }
    }

    /// Parse a CLI name.
    pub fn parse(name: &str) -> Result<FsyncPolicy, String> {
        match name {
            "always" => Ok(FsyncPolicy::Always),
            "flush" => Ok(FsyncPolicy::Flush),
            "never" => Ok(FsyncPolicy::Never),
            other => Err(format!("unknown fsync policy '{other}' (expected always|flush|never)")),
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything a table needs beyond its answers: shape, schema, and the
/// service-layer configuration as opaque key/value pairs (the store does not
/// interpret them, so the service can evolve its config without a WAL
/// format change).
#[derive(Debug, Clone, PartialEq)]
pub struct TableMeta {
    /// Table height (the schema fixes the width).
    pub rows: usize,
    /// The table schema.
    pub schema: Schema,
    /// Service configuration, sorted key/value pairs.
    pub config: Vec<(String, String)>,
}

impl TableMeta {
    fn encode(&self, buf: &mut Vec<u8>) {
        binary::put_u64(buf, self.rows as u64);
        binary::put_schema(buf, &self.schema);
        binary::put_u32(buf, self.config.len() as u32);
        for (k, v) in &self.config {
            binary::put_str(buf, k);
            binary::put_str(buf, v);
        }
    }

    fn decode(c: &mut Cursor<'_>) -> Result<TableMeta, binary::CodecError> {
        let rows = c.u64()? as usize;
        let schema = binary::get_schema(c)?;
        let n = c.u32()? as usize;
        let mut config = Vec::with_capacity(n.min(256));
        for _ in 0..n {
            let k = c.str()?;
            let v = c.str()?;
            config.push((k, v));
        }
        Ok(TableMeta { rows, schema, config })
    }
}

/// Encode a [`TableMeta`] with the WAL's codec (shared with snapshots).
pub(crate) fn encode_meta(buf: &mut Vec<u8>, meta: &TableMeta) {
    meta.encode(buf)
}

/// Decode a [`TableMeta`] with the WAL's codec (shared with snapshots).
pub(crate) fn decode_meta(c: &mut Cursor<'_>) -> Result<TableMeta, binary::CodecError> {
    TableMeta::decode(c)
}

/// A committed position in the WAL: logical byte length of the segment
/// chain and the number of answers every record up to there carries.
/// Snapshots persist the pair so recovery can resume decoding at `offset`
/// instead of at byte zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalPosition {
    /// Byte offset just past the last committed record.
    pub offset: u64,
    /// Total answers appended up to `offset`.
    pub answers: u64,
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_HEADER as usize);
    binary::put_u32(&mut out, payload.len() as u32);
    binary::put_u32(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    out
}

/// Best-effort directory fsync so a rename/create survives power loss on
/// filesystems that need it; ignored on platforms where directories cannot
/// be opened.
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// An open, appendable WAL.
///
/// Buffering is managed explicitly (`buf`) rather than through a
/// `BufWriter`: when an append fails, the buffered bytes of the failed
/// frame must be *discarded*, and `BufWriter` would flush them on drop —
/// turning a NACKed batch into durable, CRC-valid, acknowledged-looking
/// data after the next restart.
pub struct Wal {
    file: File,
    /// Frames committed to the caller but not yet written to the file
    /// (non-empty only under [`FsyncPolicy::Never`] between syncs).
    buf: Vec<u8>,
    /// The table directory (segments live here).
    dir: PathBuf,
    /// Path of the **active** segment file.
    path: PathBuf,
    /// Active segment sequence number.
    seg_seq: u64,
    /// Logical offset of the active segment's physical byte 0.
    seg_base: u64,
    /// Rotate once the active segment reaches this many physical bytes.
    segment_max: u64,
    /// Logical offset (cumulative across segments) just past the last
    /// committed record.
    offset: u64,
    answers: u64,
    policy: FsyncPolicy,
    /// All file writes/fsyncs go through this handle ([`crate::io`]).
    io: IoHandle,
    /// Timing observations (append / fsync durations) go through this sink
    /// ([`crate::obs`]); defaults to the free no-op.
    obs: ObsHandle,
    /// Set when an append failed mid-record: an unknown number of bytes of
    /// the failed frame may already sit in the file, so any further write
    /// would land *after* garbage and be unrecoverable. A poisoned WAL
    /// refuses all writes and syncs; recovery (replay + torn-tail
    /// truncation) is the only way back.
    poisoned: bool,
}

/// `Never`-policy frames accumulate in memory up to this many bytes before
/// they are written to the OS in one call.
const NEVER_BUF_BYTES: usize = 256 * 1024;

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("segment", &self.seg_seq)
            .field("offset", &self.offset)
            .field("answers", &self.answers)
            .field("policy", &self.policy)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl Wal {
    /// Create a fresh WAL in `dir` and durably write the Create record.
    /// Fails if a WAL already exists there (a table id is claimed exactly
    /// once). Creation is always flushed+fsynced regardless of policy:
    /// tables are born durable.
    pub fn create(dir: &Path, meta: &TableMeta, policy: FsyncPolicy) -> Result<Wal, StoreError> {
        Wal::create_with_io(dir, meta, policy, real_io())
    }

    /// [`Wal::create`] with an explicit [`IoHandle`] (fault injection).
    pub fn create_with_io(
        dir: &Path,
        meta: &TableMeta,
        policy: FsyncPolicy,
        io: IoHandle,
    ) -> Result<Wal, StoreError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(WAL_FILE);
        let file = OpenOptions::new().write(true).create_new(true).open(&path)?;
        let mut payload = vec![KIND_CREATE];
        meta.encode(&mut payload);
        let bytes = frame(&payload);
        let mut wal = Wal {
            file,
            buf: Vec::new(),
            dir: dir.to_path_buf(),
            path,
            seg_seq: 0,
            seg_base: 0,
            segment_max: segment::SEGMENT_MAX_DEFAULT,
            offset: 0,
            answers: 0,
            policy,
            io,
            obs: noop_obs(),
            poisoned: false,
        };
        wal.buf.extend_from_slice(&bytes);
        wal.guarded(|w| {
            w.write_buf()?;
            w.io.sync_data(&w.path, &w.file)
        })?;
        wal.offset = bytes.len() as u64;
        sync_dir(dir);
        Ok(wal)
    }

    /// Reopen a recovered WAL for appending. `path` is the table's
    /// `wal.log` path (the directory is what matters — the **last** segment
    /// of the chain is the one opened); `position` is the validated logical
    /// prefix the caller just replayed (and truncated to); appends continue
    /// from there.
    pub fn open_for_append(
        path: impl Into<PathBuf>,
        position: WalPosition,
        policy: FsyncPolicy,
    ) -> Result<Wal, StoreError> {
        Wal::open_for_append_with_io(path, position, policy, real_io())
    }

    /// [`Wal::open_for_append`] with an explicit [`IoHandle`] (fault
    /// injection).
    pub fn open_for_append_with_io(
        path: impl Into<PathBuf>,
        position: WalPosition,
        policy: FsyncPolicy,
        io: IoHandle,
    ) -> Result<Wal, StoreError> {
        let path = path.into();
        let dir = path.parent().map(Path::to_path_buf).unwrap_or_else(|| PathBuf::from("."));
        let scan = segment::scan_segments(&dir)?;
        let (active, seg_seq, seg_base) = match scan.segments.last() {
            Some(last) => (last.path.clone(), last.seq, last.base),
            None => (path.clone(), 0, 0),
        };
        let mut file = OpenOptions::new().write(true).open(&active)?;
        let len = file.metadata()?.len();
        if seg_base + len != position.offset {
            return Err(StoreError::corrupt(
                &active,
                position.offset,
                format!(
                    "cannot append at logical offset {}: active segment {} spans {}..{}",
                    position.offset,
                    seg_seq,
                    seg_base,
                    seg_base + len
                ),
            ));
        }
        file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            file,
            buf: Vec::new(),
            dir,
            path: active,
            seg_seq,
            seg_base,
            segment_max: segment::SEGMENT_MAX_DEFAULT,
            offset: position.offset,
            answers: position.answers,
            policy,
            io,
            obs: noop_obs(),
            poisoned: false,
        })
    }

    /// Path of the active segment file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The table directory the segment chain lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence number of the active segment.
    pub fn segment_seq(&self) -> u64 {
        self.seg_seq
    }

    /// Override the rotation threshold (bytes of the active segment).
    /// `u64::MAX` disables rotation (used by `rewrite_wal`, whose output
    /// must be a single fresh segment).
    pub fn set_segment_max(&mut self, max: u64) {
        self.segment_max = max.max(1);
    }

    /// The committed position (grows with every append).
    pub fn position(&self) -> WalPosition {
        WalPosition { offset: self.offset, answers: self.answers }
    }

    /// Whether a failed write has poisoned this WAL (see [`Wal`] docs).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The fsync policy this WAL was opened with (so a repair path can
    /// reopen a rebuilt log under the same durability contract).
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Route append/fsync timing observations to `obs` (default: no-op).
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// `sync_data` through the io handle, reporting the duration of a
    /// successful fsync to the obs sink.
    fn timed_sync(&self) -> std::io::Result<()> {
        let t = std::time::Instant::now();
        let res = self.io.sync_data(&self.path, &self.file);
        if res.is_ok() {
            self.obs.wal_fsync_ns(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
        res
    }

    fn check_poisoned(&self) -> Result<(), StoreError> {
        if self.poisoned {
            return Err(StoreError::corrupt(
                &self.path,
                self.offset,
                "WAL poisoned by an earlier failed write; restart (crash recovery truncates \
                 the partial frame) before writing again"
                    .to_string(),
            ));
        }
        Ok(())
    }

    /// Push the owned buffer into the OS. On a partial-write error the file
    /// holds an unknown prefix of it — the caller (always [`Self::guarded`])
    /// must poison.
    fn write_buf(&mut self) -> std::io::Result<()> {
        if !self.buf.is_empty() {
            self.io.write_all(&self.path, &mut self.file, &self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Run `op`; on any error, poison the WAL and **discard the buffer** so
    /// no later write or sync can make a NACKed frame durable. Bytes the
    /// failed write already placed in the file are covered by CRC
    /// truncation at recovery.
    fn guarded<T>(
        &mut self,
        op: impl FnOnce(&mut Self) -> std::io::Result<T>,
    ) -> Result<T, StoreError> {
        match op(self) {
            Ok(v) => Ok(v),
            Err(e) => {
                self.poisoned = true;
                self.buf.clear();
                Err(e.into())
            }
        }
    }

    fn commit(&mut self) -> std::io::Result<()> {
        match self.policy {
            FsyncPolicy::Always => {
                self.write_buf()?;
                self.timed_sync()
            }
            FsyncPolicy::Flush => self.write_buf(),
            FsyncPolicy::Never => {
                if self.buf.len() >= NEVER_BUF_BYTES {
                    self.write_buf()?;
                }
                Ok(())
            }
        }
    }

    /// Append one batch of answers as a single group-committed record.
    /// Returns the position after the record — only once this returns may
    /// the batch be acknowledged to the client.
    pub fn append_answers(&mut self, batch: &[Answer]) -> Result<WalPosition, StoreError> {
        let positions = self.append_group(&[batch])?;
        Ok(positions[0])
    }

    /// Append many batches — one frame each — under a **single** commit
    /// (one flush/fsync for the whole group, per policy). Returns the
    /// per-batch positions, in order; only once this returns may any of the
    /// batches be acknowledged. This is the commit thread's
    /// ([`crate::GroupCommit`]) primitive: coalescing is what closes the
    /// `fsync=always` throughput gap. Batches whose encoding would exceed
    /// the replay sanity bound are rejected up front (they could be written
    /// but never read back).
    pub fn append_group(&mut self, batches: &[&[Answer]]) -> Result<Vec<WalPosition>, StoreError> {
        self.check_poisoned()?;
        let t = std::time::Instant::now();
        let mut positions = Vec::with_capacity(batches.len());
        let mut offset = self.offset;
        let mut answers = self.answers;
        let staged = self.buf.len();
        for batch in batches {
            let mut payload = vec![KIND_APPEND];
            binary::put_answers(&mut payload, batch);
            if payload.len() as u64 > MAX_RECORD as u64 {
                // Reject the whole group without staging anything new.
                self.buf.truncate(staged);
                return Err(StoreError::corrupt(
                    &self.path,
                    self.offset,
                    format!(
                        "batch of {} answers encodes to {} bytes, above the {} record bound — \
                         split it",
                        batch.len(),
                        payload.len(),
                        MAX_RECORD
                    ),
                ));
            }
            let bytes = frame(&payload);
            self.buf.extend_from_slice(&bytes);
            offset += bytes.len() as u64;
            answers += batch.len() as u64;
            positions.push(WalPosition { offset, answers });
        }
        self.guarded(Wal::commit)?;
        self.offset = offset;
        self.answers = answers;
        self.obs.wal_append_ns(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        // Rotation failure does NOT fail the append: the group is already
        // durable per policy and will be acknowledged; the failed rotation
        // poisons the WAL so the *next* write degrades loudly instead. The
        // inverse (failing an already-durable append) would let recovery
        // resurrect a NACKed batch.
        let _ = self.maybe_rotate();
        Ok(positions)
    }

    /// Rotate the active segment once it crosses the size trigger: fsync it
    /// (it becomes immutable), then tmp-write + fsync + rename a new
    /// segment starting with a Segment header record, and switch appends
    /// over. Any failure poisons the WAL — half a rotation must not accept
    /// further writes.
    fn maybe_rotate(&mut self) -> Result<(), StoreError> {
        if self.offset - self.seg_base < self.segment_max || self.poisoned {
            return Ok(());
        }
        // The outgoing segment becomes a *middle* segment, which replay
        // assumes is complete on disk — flush and fsync it regardless of
        // policy before the new segment exists.
        self.guarded(|w| {
            w.write_buf()?;
            w.io.sync_data(&w.path, &w.file)
        })?;
        let seq = self.seg_seq + 1;
        let name = segment::segment_file_name(seq);
        let final_path = self.dir.join(&name);
        let tmp_path = self.dir.join(format!("{name}.tmp"));
        let header = SegmentHeader { seq, base_offset: self.offset, answers_before: self.answers };
        let mut payload = vec![KIND_SEGMENT];
        segment::encode_header_body(&mut payload, &header);
        let bytes = frame(&payload);
        let io = self.io.clone();
        let result = (|| -> std::io::Result<File> {
            match std::fs::remove_file(&tmp_path) {
                Err(e) if e.kind() != std::io::ErrorKind::NotFound => return Err(e),
                _ => {}
            }
            let mut f =
                OpenOptions::new().write(true).create(true).truncate(true).open(&tmp_path)?;
            io.write_all(&tmp_path, &mut f, &bytes)?;
            io.sync_data(&tmp_path, &f)?;
            io.rename(&tmp_path, &final_path)?;
            sync_dir(&self.dir);
            let mut f = OpenOptions::new().write(true).open(&final_path)?;
            f.seek(SeekFrom::End(0))?;
            Ok(f)
        })();
        match result {
            Ok(file) => {
                self.file = file;
                self.path = final_path;
                self.seg_seq = seq;
                self.seg_base = self.offset;
                self.offset += bytes.len() as u64;
                self.obs.wal_segments(segment::count_segments(&self.dir));
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                self.buf.clear();
                Err(e.into())
            }
        }
    }

    /// Append a Quarantine record carrying the **complete** quarantined
    /// worker set (`entries` need not be sorted; the record is normalised).
    /// Always flushed and fsynced regardless of policy: a quarantine is a
    /// safety decision — losing it to a buffered crash would re-admit a
    /// known-bad worker's answers to truth inference after recovery.
    pub fn append_quarantine(
        &mut self,
        entries: &[QuarantineEntry],
    ) -> Result<WalPosition, StoreError> {
        self.check_poisoned()?;
        let mut sorted = entries.to_vec();
        sorted.sort_unstable();
        sorted.dedup_by_key(|e| e.worker);
        let mut payload = vec![KIND_QUARANTINE];
        encode_quarantine(&mut payload, &sorted);
        let bytes = frame(&payload);
        self.buf.extend_from_slice(&bytes);
        self.guarded(|w| {
            w.write_buf()?;
            w.timed_sync()
        })?;
        self.offset += bytes.len() as u64;
        let pos = self.position();
        let _ = self.maybe_rotate();
        Ok(pos)
    }

    /// Append the deletion tombstone. Tombstones are always flushed and
    /// fsynced — a table must not resurrect because its deletion was sitting
    /// in a buffer.
    pub fn append_delete(&mut self) -> Result<(), StoreError> {
        self.check_poisoned()?;
        let payload = vec![KIND_DELETE];
        let bytes = frame(&payload);
        self.buf.extend_from_slice(&bytes);
        self.guarded(|w| {
            w.write_buf()?;
            w.timed_sync()
        })?;
        self.offset += bytes.len() as u64;
        Ok(())
    }

    /// Flush buffered bytes to the OS and fsync, regardless of policy.
    /// Snapshot writers call this first so a snapshot never refers to WAL
    /// bytes that are less durable than itself. Refuses on a poisoned WAL —
    /// syncing one could promote the partial frame of a NACKed batch.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.poisoned {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "WAL poisoned by an earlier failed write; refusing to sync",
            ));
        }
        let res = (|| {
            self.write_buf()?;
            self.timed_sync()
        })();
        if res.is_err() {
            self.poisoned = true;
            self.buf.clear();
        }
        res
    }
}

/// What the first frame of a WAL file looks like — the evidence
/// [`crate::Store`] uses to tell a crashed, never-acknowledged
/// `create_table` from a table whose durable head later rotted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreateProbe {
    /// A complete, checksummed Create record: the table exists.
    Valid,
    /// The file is missing, empty, or **ends mid-frame**: the single
    /// `write_all + fsync` of [`Wal::create`] never completed, so the
    /// creation was never acknowledged to any client — safe to
    /// garbage-collect.
    AbortedCreation,
    /// The file holds at least the full length its first frame declares,
    /// but the frame does not decode as a valid Create (bad checksum, bad
    /// kind, implausible header). A completed creation that later rotted —
    /// must surface as corruption, never be silently deleted.
    Corrupt,
}

/// Probe the first frame of `path` (reading only that frame); see
/// [`CreateProbe`] for how the verdicts are told apart.
pub fn probe_create(path: &Path) -> std::io::Result<CreateProbe> {
    let mut file = match File::open(path) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(CreateProbe::AbortedCreation)
        }
        other => other?,
    };
    let file_len = file.metadata()?.len();
    if file_len < FRAME_HEADER {
        return Ok(CreateProbe::AbortedCreation);
    }
    let mut head = [0u8; FRAME_HEADER as usize];
    file.read_exact(&mut head)?;
    let len = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
    if len > MAX_RECORD {
        // A garbage length field on a file long enough to hold a header is
        // indistinguishable from rot; never auto-delete it.
        return Ok(CreateProbe::Corrupt);
    }
    if file_len < FRAME_HEADER + len as u64 {
        return Ok(CreateProbe::AbortedCreation);
    }
    let mut payload = vec![0u8; len as usize];
    file.read_exact(&mut payload)?;
    if crc32(&payload) == crc && payload.first() == Some(&KIND_CREATE) {
        Ok(CreateProbe::Valid)
    } else {
        Ok(CreateProbe::Corrupt)
    }
}

/// Where and why replay stopped before the end of the file.
#[derive(Debug, Clone, PartialEq)]
pub struct TornTail {
    /// Byte offset of the first invalid frame — the valid prefix ends here.
    pub at: u64,
    /// Bytes from `at` to the end of the file that were dropped.
    pub dropped_bytes: u64,
    /// Human-readable cause (truncated header, bad CRC, …).
    pub reason: String,
}

/// One decoded record's bookkeeping (for `verify`/`inspect`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordInfo {
    /// Record kind byte.
    pub kind: u8,
    /// Byte offset just past this record.
    pub end_offset: u64,
    /// Cumulative answers including this record.
    pub answers_after: u64,
}

/// The result of replaying a WAL (or a tail of one).
#[derive(Debug)]
pub struct WalReplay {
    /// The Create record's metadata (`None` when replaying a tail, or when
    /// the head of the file is unreadable).
    pub meta: Option<TableMeta>,
    /// Every answer in the valid prefix, in append order.
    pub answers: Vec<Answer>,
    /// Per-record bookkeeping, in file order.
    pub records: Vec<RecordInfo>,
    /// Whether a deletion tombstone was found.
    pub deleted: bool,
    /// The latest quarantined-worker set in the valid prefix (`None` when no
    /// Quarantine record was seen — for a tail replay that means "whatever
    /// the snapshot said still stands", which is why this is not an empty
    /// `Vec`).
    pub quarantine: Option<Vec<QuarantineEntry>>,
    /// Logical offset where this replay started: 0 for an intact chain,
    /// the first surviving segment's base after head compaction, the tail
    /// offset for [`replay_tail`].
    pub base_offset: u64,
    /// Answers committed before `base_offset` (0 for tail replays, whose
    /// caller knows its own epoch).
    pub base_answers: u64,
    /// Logical byte length of the valid prefix (absolute, even for tail
    /// replays).
    pub valid_len: u64,
    /// Present when the chain extends past the valid prefix.
    pub torn: Option<TornTail>,
}

/// Replay a whole WAL segment chain. `path` is the table's `wal.log` path;
/// the sibling rotated segments are discovered and chained automatically.
/// For an intact chain the first record must be a valid Create; for a
/// head-compacted chain (`wal.log` deleted, rotated segments remain) the
/// replay starts at the first surviving segment's base and `meta` is
/// `None` — the caller must have a snapshot to recover from.
pub fn replay(path: &Path) -> Result<WalReplay, StoreError> {
    let dir = path.parent().map(Path::to_path_buf).unwrap_or_else(|| PathBuf::from("."));
    let scan = segment::scan_segments(&dir)?;
    if scan.segments.is_empty() {
        // No recognisable segments: preserve the single-file behaviour
        // (including the NotFound error for a missing file).
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        return Ok(decode_records(&bytes, 0, Some(0), true));
    }
    let base = scan.base_offset();
    let mut bytes = Vec::with_capacity((scan.end_offset() - base) as usize);
    for seg in &scan.segments {
        File::open(&seg.path)?.read_to_end(&mut bytes)?;
    }
    let mut out = decode_records(&bytes, base, Some(scan.base_answers()), !scan.head_compacted());
    if out.torn.is_none() {
        if let Some(reason) = scan.orphan_reason {
            // Chain-valid bytes end cleanly but orphaned segment files sit
            // past the end — report them as the torn tail so recovery's
            // truncation pass cleans them up.
            out.torn = Some(TornTail { at: out.valid_len, dropped_bytes: 0, reason });
        }
    }
    Ok(out)
}

/// Replay only the records at and after logical byte `offset` — the
/// snapshot-assisted recovery path. The caller owns the claim that `offset`
/// is a record boundary; a wrong claim fails the first CRC and surfaces as
/// a torn tail at `offset`, which the caller must treat as "fall back to a
/// full replay", not as data loss.
pub fn replay_tail(path: &Path, offset: u64) -> Result<WalReplay, StoreError> {
    let dir = path.parent().map(Path::to_path_buf).unwrap_or_else(|| PathBuf::from("."));
    let scan = segment::scan_segments(&dir)?;
    if scan.segments.is_empty() {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if offset > len {
            return Err(StoreError::corrupt(
                path,
                offset,
                format!("tail offset {offset} beyond the {len}-byte file"),
            ));
        }
        file.seek(SeekFrom::Start(offset))?;
        let mut bytes = Vec::with_capacity((len - offset) as usize);
        file.read_to_end(&mut bytes)?;
        return Ok(decode_records(&bytes, offset, None, false));
    }
    let end = scan.end_offset();
    if offset > end {
        return Err(StoreError::corrupt(
            path,
            offset,
            format!("tail offset {offset} beyond the {end}-byte chain"),
        ));
    }
    if offset < scan.base_offset() {
        return Err(StoreError::corrupt(
            path,
            offset,
            format!(
                "tail offset {offset} is below the compacted chain head {}",
                scan.base_offset()
            ),
        ));
    }
    // The last segment whose base is at or below the offset holds it.
    let idx = scan
        .segments
        .iter()
        .rposition(|s| s.base <= offset)
        .expect("offset >= base_offset implies a containing segment");
    let mut bytes = Vec::with_capacity((end - offset) as usize);
    for (i, seg) in scan.segments.iter().enumerate().skip(idx) {
        let mut file = File::open(&seg.path)?;
        if i == idx {
            file.seek(SeekFrom::Start(offset - seg.base))?;
        }
        file.read_to_end(&mut bytes)?;
    }
    Ok(decode_records(&bytes, offset, None, false))
}

fn decode_records(
    bytes: &[u8],
    base_offset: u64,
    base_answers: Option<u64>,
    expect_create: bool,
) -> WalReplay {
    let abs_base = base_answers.unwrap_or(0);
    let mut out = WalReplay {
        meta: None,
        answers: Vec::new(),
        records: Vec::new(),
        deleted: false,
        quarantine: None,
        base_offset,
        base_answers: abs_base,
        valid_len: base_offset,
        torn: None,
    };
    let total = bytes.len() as u64;
    let mut pos = 0u64;
    let torn = |at: u64, reason: String| TornTail {
        at: base_offset + at,
        dropped_bytes: total - at,
        reason,
    };
    while pos < total {
        let remaining = total - pos;
        if remaining < FRAME_HEADER {
            out.torn = Some(torn(pos, format!("truncated frame header ({remaining} bytes)")));
            break;
        }
        let head = &bytes[pos as usize..(pos + FRAME_HEADER) as usize];
        let len = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD || len as u64 > remaining - FRAME_HEADER {
            out.torn = Some(torn(pos, format!("implausible record length {len}")));
            break;
        }
        let start = (pos + FRAME_HEADER) as usize;
        let payload = &bytes[start..start + len as usize];
        if crc32(payload) != crc {
            out.torn = Some(torn(pos, "checksum mismatch".into()));
            break;
        }
        let mut c = Cursor::new(payload);
        let kind = match c.u8() {
            Ok(k) => k,
            Err(e) => {
                out.torn = Some(torn(pos, format!("empty payload: {e}")));
                break;
            }
        };
        let is_first = out.records.is_empty();
        let decode_failure = match kind {
            KIND_CREATE => {
                if !expect_create || !is_first {
                    Some("unexpected create record".to_string())
                } else {
                    match TableMeta::decode(&mut c) {
                        Ok(meta) if c.is_empty() => {
                            out.meta = Some(meta);
                            None
                        }
                        Ok(_) => Some("trailing bytes after create record".into()),
                        Err(e) => Some(format!("undecodable create record: {e}")),
                    }
                }
            }
            KIND_APPEND => {
                if expect_create && is_first {
                    Some("first record is not a create record".to_string())
                } else if out.deleted {
                    Some("append after deletion tombstone".to_string())
                } else {
                    match binary::get_answers(&mut c) {
                        Ok(batch) if c.is_empty() => {
                            out.answers.extend(batch);
                            None
                        }
                        Ok(_) => Some("trailing bytes after append record".into()),
                        Err(e) => Some(format!("undecodable append record: {e}")),
                    }
                }
            }
            KIND_DELETE => {
                if expect_create && is_first {
                    Some("first record is not a create record".to_string())
                } else {
                    out.deleted = true;
                    None
                }
            }
            KIND_QUARANTINE => {
                if expect_create && is_first {
                    Some("first record is not a create record".to_string())
                } else if out.deleted {
                    Some("quarantine after deletion tombstone".to_string())
                } else {
                    match decode_quarantine(&mut c) {
                        // Full-replacement semantics: the last record wins.
                        Ok(entries) if c.is_empty() => {
                            out.quarantine = Some(entries);
                            None
                        }
                        Ok(_) => Some("trailing bytes after quarantine record".into()),
                        Err(e) => Some(format!("undecodable quarantine record: {e}")),
                    }
                }
            }
            KIND_SEGMENT => {
                if expect_create && is_first {
                    Some("first record is not a create record".to_string())
                } else {
                    match segment::decode_header_body(&mut c) {
                        Ok(h) if c.is_empty() => {
                            let at = base_offset + pos;
                            if h.base_offset != at {
                                Some(format!(
                                    "segment header claims base offset {} at logical offset {at}",
                                    h.base_offset
                                ))
                            } else if base_answers
                                .is_some_and(|b| h.answers_before != b + out.answers.len() as u64)
                            {
                                Some(format!(
                                    "segment header claims {} answers before it; the chain \
                                     carries {}",
                                    h.answers_before,
                                    abs_base + out.answers.len() as u64
                                ))
                            } else {
                                None
                            }
                        }
                        Ok(_) => Some("trailing bytes after segment header".into()),
                        Err(e) => Some(format!("undecodable segment header: {e}")),
                    }
                }
            }
            other => Some(format!("unknown record kind {other}")),
        };
        if let Some(reason) = decode_failure {
            out.torn = Some(torn(pos, reason));
            break;
        }
        pos += FRAME_HEADER + len as u64;
        out.valid_len = base_offset + pos;
        out.records.push(RecordInfo {
            kind,
            end_offset: out.valid_len,
            answers_after: abs_base + out.answers.len() as u64,
        });
    }
    out
}

/// Enforce a replayed valid prefix on disk: truncate the segment containing
/// logical offset `valid_len`, delete every later segment, and clear
/// orphaned segment files and rotation residue. Idempotent and cheap when
/// there is nothing to drop; recovery runs it after every replay.
pub fn truncate_to_valid(dir: &Path, valid_len: u64) -> Result<(), StoreError> {
    let scan = segment::scan_segments(dir)?;
    for orphan in &scan.orphans {
        std::fs::remove_file(orphan)?;
    }
    segment::remove_stale_tmp(dir)?;
    for seg in &scan.segments {
        if seg.seq != 0 && seg.base >= valid_len {
            // Entirely past the prefix: the whole segment goes. (Segment 0
            // is kept and truncated instead — `wal.log` existing, possibly
            // empty, is what marks a non-head-compacted table.)
            std::fs::remove_file(&seg.path)?;
        } else if seg.base + seg.len > valid_len {
            let keep = valid_len.saturating_sub(seg.base);
            let f = std::fs::OpenOptions::new().write(true).open(&seg.path)?;
            f.set_len(keep)?;
            f.sync_data()?;
        }
    }
    sync_dir(dir);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrowd_tabular::{CellId, Column, ColumnType, Value, WorkerId};

    fn meta() -> TableMeta {
        TableMeta {
            rows: 4,
            schema: Schema::new(
                "t",
                "k",
                vec![
                    Column::new("c", ColumnType::categorical_with_cardinality(3)),
                    Column::new("x", ColumnType::Continuous { min: 0.0, max: 1.0 }),
                ],
            ),
            config: vec![("policy".into(), "structure-aware".into()), ("seed".into(), "1".into())],
        }
    }

    fn answer(i: u32) -> Answer {
        Answer {
            worker: WorkerId(i % 5),
            cell: CellId::new(i % 4, i % 2),
            value: if i % 2 == 0 {
                Value::Categorical(i % 3)
            } else {
                Value::Continuous(0.1 * i as f64)
            },
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("tcrowd_store_wal_tests")
            .join(format!("{}_{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_batches_and_positions() {
        let dir = tmp("roundtrip");
        let m = meta();
        let mut wal = Wal::create(&dir, &m, FsyncPolicy::Flush).unwrap();
        let batches: Vec<Vec<Answer>> =
            vec![(0..3).map(answer).collect(), vec![], (3..8).map(answer).collect()];
        let mut positions = vec![wal.position()];
        for b in &batches {
            positions.push(wal.append_answers(b).unwrap());
        }
        assert_eq!(positions.last().unwrap().answers, 8);
        drop(wal);
        let replayed = replay(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(replayed.meta.as_ref(), Some(&m));
        let expected: Vec<Answer> = batches.concat();
        assert_eq!(replayed.answers, expected);
        assert!(replayed.torn.is_none());
        assert!(!replayed.deleted);
        // Record boundaries line up with the positions the writer reported.
        let ends: Vec<u64> = replayed.records.iter().map(|r| r.end_offset).collect();
        assert_eq!(ends, positions.iter().map(|p| p.offset).collect::<Vec<_>>());
        // Tail replay from any committed position yields exactly the rest.
        for (i, p) in positions.iter().enumerate() {
            let tail = replay_tail(&dir.join(WAL_FILE), p.offset).unwrap();
            let expect: Vec<Answer> = batches[i..].concat();
            assert_eq!(tail.answers, expect, "tail from position {i}");
            assert!(tail.torn.is_none());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_truncates_at_first_bad_checksum() {
        let dir = tmp("torn");
        let m = meta();
        let mut wal = Wal::create(&dir, &m, FsyncPolicy::Always).unwrap();
        let p1 = wal.append_answers(&(0..4).map(answer).collect::<Vec<_>>()).unwrap();
        let p2 = wal.append_answers(&(4..9).map(answer).collect::<Vec<_>>()).unwrap();
        drop(wal);
        let path = dir.join(WAL_FILE);
        let full = std::fs::read(&path).unwrap();
        assert_eq!(full.len() as u64, p2.offset);

        // Cut anywhere strictly inside the second record: replay must return
        // exactly the first batch and report the torn tail at p1.
        for cut in (p1.offset + 1)..p2.offset {
            std::fs::write(&path, &full[..cut as usize]).unwrap();
            let r = replay(&path).unwrap();
            assert_eq!(r.answers.len(), 4, "cut at {cut}");
            assert_eq!(r.valid_len, p1.offset);
            let torn = r.torn.expect("torn tail reported");
            assert_eq!(torn.at, p1.offset);
            assert_eq!(torn.dropped_bytes, cut - p1.offset);
        }

        // A flipped byte inside the *first* record drops everything after it.
        let mut flipped = full.clone();
        flipped[(p1.offset - 3) as usize] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        let r = replay(&path).unwrap();
        assert_eq!(r.answers.len(), 0);
        assert!(r.torn.unwrap().reason.contains("checksum"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delete_tombstone_and_reopen_for_append() {
        let dir = tmp("delete");
        let m = meta();
        let mut wal = Wal::create(&dir, &m, FsyncPolicy::Never).unwrap();
        wal.append_answers(&[answer(0)]).unwrap();
        wal.sync().unwrap();
        let pos = wal.position();
        drop(wal);
        // Reopen and continue appending.
        let mut wal = Wal::open_for_append(dir.join(WAL_FILE), pos, FsyncPolicy::Always).unwrap();
        wal.append_answers(&[answer(1), answer(2)]).unwrap();
        wal.append_delete().unwrap();
        drop(wal);
        let r = replay(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(r.answers.len(), 3);
        assert!(r.deleted);
        assert!(r.torn.is_none());
        // Reopening at a stale position is rejected.
        assert!(Wal::open_for_append(dir.join(WAL_FILE), pos, FsyncPolicy::Flush).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_records_replace_and_survive_replay() {
        let dir = tmp("quarantine");
        let m = meta();
        let mut wal = Wal::create(&dir, &m, FsyncPolicy::Flush).unwrap();
        wal.append_answers(&(0..4).map(answer).collect::<Vec<_>>()).unwrap();
        let q1 = vec![
            QuarantineEntry { worker: WorkerId(3), manual: false },
            QuarantineEntry { worker: WorkerId(1), manual: true },
        ];
        wal.append_quarantine(&q1).unwrap();
        wal.append_answers(&(4..6).map(answer).collect::<Vec<_>>()).unwrap();
        // A later record replaces the whole set.
        let q2 = vec![QuarantineEntry { worker: WorkerId(1), manual: true }];
        let p_before_last = wal.position();
        wal.append_quarantine(&q2).unwrap();
        drop(wal);
        let r = replay(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(r.answers.len(), 6, "quarantine records carry no answers");
        assert_eq!(r.quarantine, Some(q2.clone()), "last record wins");
        assert!(r.torn.is_none());
        // Entries come back sorted by worker regardless of append order.
        let tail = replay_tail(&dir.join(WAL_FILE), 0).is_ok();
        assert!(tail);
        let head = replay_tail(&dir.join(WAL_FILE), p_before_last.offset).unwrap();
        assert_eq!(head.quarantine, Some(q2));
        // A tail that saw no quarantine record reports None, not empty.
        let full = replay(&dir.join(WAL_FILE)).unwrap();
        let first_q = full.records.iter().find(|rec| rec.kind == KIND_QUARANTINE).unwrap();
        let no_q_tail = replay_tail(&dir.join(WAL_FILE), first_q.end_offset).unwrap();
        assert_eq!(no_q_tail.answers.len(), 2);
        // The second quarantine record is after this offset, so it IS seen;
        // cut the file right before it to get a quarantine-free tail.
        let bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        std::fs::write(dir.join(WAL_FILE), &bytes[..p_before_last.offset as usize]).unwrap();
        let cut_tail = replay_tail(&dir.join(WAL_FILE), first_q.end_offset).unwrap();
        assert_eq!(cut_tail.quarantine, None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_rejects_logs_that_do_not_start_with_create() {
        let dir = tmp("nocreate");
        // A file whose first frame is an append record: valid CRC, wrong kind.
        let mut payload = vec![KIND_APPEND];
        binary::put_answers(&mut payload, &[answer(0)]);
        std::fs::write(dir.join(WAL_FILE), frame(&payload)).unwrap();
        let r = replay(&dir.join(WAL_FILE)).unwrap();
        assert!(r.meta.is_none());
        assert_eq!(r.valid_len, 0);
        assert!(r.torn.unwrap().reason.contains("not a create record"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
