//! **Group commit**: one thread per table coalesces concurrently submitted
//! answer batches into a single `write + fsync`.
//!
//! ```text
//! submitter A ──┐  submit(batch) → Ticket         ┌─▶ wal.append_group
//! submitter B ──┼─▶ queue (mutex+condvar) ─ drain ┤   (N frames, 1 commit)
//! submitter C ──┘                                 └─▶ sink.committed(…)
//!                                                     tickets resolved
//! ```
//!
//! Each submitter parks on its [`Ticket`] and is woken only after the
//! commit thread has (a) durably committed the group (per the WAL's
//! [`crate::FsyncPolicy`]) and (b) handed the batches, in WAL order, to the
//! [`CommitSink`] — the service's sink pushes them into the in-memory
//! answer log and advances the [`DurableMark`]. WAL-before-ack is
//! preserved exactly: a ticket resolves `Ok` only when its frame's commit
//! completed; on any append error every ticket in the group resolves `Err`
//! and the WAL is poisoned (nothing partial was acknowledged; recovery's
//! CRC truncation drops the partial frame).
//!
//! The payoff is the lock profile: submitters never hold any lock across
//! an fsync, and under load one fsync amortises over many frames — which
//! is what closes the `fsync=always` vs `flush` throughput gap
//! (`bench_persistence` measures it; CI gates it at ≤ 3x).

use crate::obs::{noop_obs, ObsHandle};
use crate::wal::{Wal, WalPosition};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use tcrowd_tabular::Answer;

/// The commit thread's **durable watermark**: the last WAL position whose
/// batches have been both committed and delivered to the sink. The
/// refresher pins snapshots to this mark instead of syncing the WAL under
/// the ingest lock; the sink's contract is to advance it *while holding
/// whatever lock guards the in-memory log*, so `mark.answers` always
/// equals the log length under that lock.
#[derive(Debug, Clone, Default)]
pub struct DurableMark(Arc<Mutex<WalPosition>>);

impl DurableMark {
    /// A mark starting at `pos` (recovery's reopened position).
    pub fn starting_at(pos: WalPosition) -> DurableMark {
        DurableMark(Arc::new(Mutex::new(pos)))
    }

    /// The current watermark.
    pub fn get(&self) -> WalPosition {
        *self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Advance (or, after a WAL rebuild, reset) the watermark.
    pub fn set(&self, pos: WalPosition) {
        *self.0.lock().unwrap_or_else(|p| p.into_inner()) = pos;
    }
}

/// One batch the commit thread just made durable, in WAL order.
pub struct CommittedBatch<'a> {
    /// The batch's answers.
    pub answers: &'a [Answer],
    /// The WAL position just past the batch's frame.
    pub position: WalPosition,
}

/// Where committed batches land *before* their submitters are woken. The
/// service implements this to push answers into the in-memory log and
/// advance the [`DurableMark`] under the ingest lock, keeping "log ==
/// acknowledged prefix" true at every instant.
pub trait CommitSink: Send + Sync {
    /// Called once per commit group, after durability, before any ticket
    /// in the group resolves. `batches` is in WAL order.
    fn committed(&self, batches: &[CommittedBatch<'_>]);
}

/// A sink that only advances a [`DurableMark`] (store-level tests and
/// benches that keep no in-memory log).
pub struct MarkSink(pub DurableMark);

impl CommitSink for MarkSink {
    fn committed(&self, batches: &[CommittedBatch<'_>]) {
        if let Some(last) = batches.last() {
            self.0.set(last.position);
        }
    }
}

/// A submitter's parking spot: resolved by the commit thread with the
/// batch's durable position, or the group's append error.
pub struct Ticket {
    done: Mutex<Option<Result<WalPosition, String>>>,
    cond: Condvar,
}

impl Ticket {
    fn new() -> Arc<Ticket> {
        Arc::new(Ticket { done: Mutex::new(None), cond: Condvar::new() })
    }

    fn resolve(&self, result: Result<WalPosition, String>) {
        let mut done = self.done.lock().unwrap_or_else(|p| p.into_inner());
        *done = Some(result);
        self.cond.notify_all();
    }

    /// Block until the commit thread resolves this ticket.
    pub fn wait(&self) -> Result<WalPosition, String> {
        let mut done = self.done.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(result) = done.take() {
                return result;
            }
            done = self.cond.wait(done).unwrap_or_else(|p| p.into_inner());
        }
    }
}

struct Entry {
    answers: Vec<Answer>,
    ticket: Arc<Ticket>,
}

struct QueueState {
    pending: Vec<Entry>,
    shutdown: bool,
}

struct Queue {
    state: Mutex<QueueState>,
    cond: Condvar,
}

/// Coalescing counters — `frames > groups` under load is the observable
/// proof that group commit actually batches.
#[derive(Debug, Default)]
pub struct CommitStats {
    groups: AtomicU64,
    frames: AtomicU64,
    answers: AtomicU64,
}

/// A point-in-time copy of [`CommitStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommitStatsView {
    /// Commit groups written (one `write+fsync` each).
    pub groups: u64,
    /// Frames (submitted batches) committed across all groups.
    pub frames: u64,
    /// Answers committed across all groups.
    pub answers: u64,
}

/// The per-table commit thread and its submission queue.
pub struct GroupCommit {
    queue: Arc<Queue>,
    stats: Arc<CommitStats>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for GroupCommit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCommit").field("stats", &self.stats()).finish()
    }
}

impl GroupCommit {
    /// Spawn the commit thread over `wal`. The thread takes the WAL mutex
    /// only while appending (never while touching the queue or the sink),
    /// so direct appenders — quarantine records, tombstones — interleave
    /// freely under their own lock orders.
    pub fn spawn(wal: Arc<Mutex<Wal>>, sink: Arc<dyn CommitSink>, obs: ObsHandle) -> GroupCommit {
        let queue = Arc::new(Queue {
            state: Mutex::new(QueueState { pending: Vec::new(), shutdown: false }),
            cond: Condvar::new(),
        });
        let stats = Arc::new(CommitStats::default());
        let worker = {
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("tcrowd-commit".to_string())
                .spawn(move || commit_loop(&queue, &wal, &sink, &stats, &obs))
                .expect("spawn commit thread")
        };
        GroupCommit { queue, stats, handle: Mutex::new(Some(worker)) }
    }

    /// Like [`GroupCommit::spawn`] without observability (tests/benches).
    pub fn spawn_plain(wal: Arc<Mutex<Wal>>, sink: Arc<dyn CommitSink>) -> GroupCommit {
        GroupCommit::spawn(wal, sink, noop_obs())
    }

    /// Enqueue one batch and return the ticket to park on. Errs only when
    /// the committer is already shut down (the table is being removed).
    pub fn submit(&self, answers: Vec<Answer>) -> Result<Arc<Ticket>, String> {
        let ticket = Ticket::new();
        {
            let mut state = self.queue.state.lock().unwrap_or_else(|p| p.into_inner());
            if state.shutdown {
                return Err("commit thread is shut down".to_string());
            }
            state.pending.push(Entry { answers, ticket: Arc::clone(&ticket) });
        }
        self.queue.cond.notify_all();
        Ok(ticket)
    }

    /// Coalescing counters.
    pub fn stats(&self) -> CommitStatsView {
        CommitStatsView {
            groups: self.stats.groups.load(Ordering::Relaxed),
            frames: self.stats.frames.load(Ordering::Relaxed),
            answers: self.stats.answers.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting submissions, drain what is already queued, and join
    /// the thread. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        {
            let mut state = self.queue.state.lock().unwrap_or_else(|p| p.into_inner());
            state.shutdown = true;
        }
        self.queue.cond.notify_all();
        let handle = self.handle.lock().unwrap_or_else(|p| p.into_inner()).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for GroupCommit {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn commit_loop(
    queue: &Queue,
    wal: &Mutex<Wal>,
    sink: &Arc<dyn CommitSink>,
    stats: &CommitStats,
    obs: &ObsHandle,
) {
    loop {
        let group: Vec<Entry> = {
            let mut state = queue.state.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if !state.pending.is_empty() {
                    break std::mem::take(&mut state.pending);
                }
                if state.shutdown {
                    return;
                }
                state = queue.cond.wait(state).unwrap_or_else(|p| p.into_inner());
            }
        };
        let t = std::time::Instant::now();
        let batches: Vec<&[Answer]> = group.iter().map(|e| e.answers.as_slice()).collect();
        let appended = {
            let mut wal = wal.lock().unwrap_or_else(|p| p.into_inner());
            wal.append_group(&batches)
        };
        match appended {
            Ok(positions) => {
                let answers: u64 = batches.iter().map(|b| b.len() as u64).sum();
                stats.groups.fetch_add(1, Ordering::Relaxed);
                stats.frames.fetch_add(group.len() as u64, Ordering::Relaxed);
                stats.answers.fetch_add(answers, Ordering::Relaxed);
                let committed: Vec<CommittedBatch<'_>> = group
                    .iter()
                    .zip(&positions)
                    .map(|(e, &position)| CommittedBatch { answers: &e.answers, position })
                    .collect();
                // Deliver before waking anyone: an acked submitter must be
                // able to read its own write from the in-memory log.
                sink.committed(&committed);
                obs.commit_group(
                    group.len() as u64,
                    answers,
                    t.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                );
                for (e, position) in group.iter().zip(positions) {
                    e.ticket.resolve(Ok(position));
                }
            }
            Err(e) => {
                // The WAL poisoned itself and discarded the buffered group;
                // nothing was acknowledged. Later groups fail fast on the
                // poison check until the service's repair path rebuilds the
                // log.
                let msg = format!("WAL group append failed: {e}");
                for entry in &group {
                    entry.ticket.resolve(Err(msg.clone()));
                }
            }
        }
    }
}
