//! Injectable storage I/O: every byte the WAL and snapshot writers push
//! toward the disk goes through a [`StoreIo`] handle, so durability failure
//! modes — `ENOSPC` on the Nth write, `EIO` on fsync, short writes, rename
//! failure — are drivable at runtime instead of only via post-hoc file
//! corruption.
//!
//! The default handle ([`RealIo`], via [`real_io`]) is a passthrough to
//! `std::fs`; tests and chaos harnesses substitute a [`FaultyIo`], which
//! executes a deterministic fault schedule: one-shot faults keyed by a
//! per-operation counter (optionally seeded with [`FaultyIo::seeded`]), plus
//! sticky per-operation failures for scripted fault *windows*
//! ([`FaultyIo::break_op`] / [`FaultyIo::heal`]).
//!
//! Only the **write path** is injectable (writes, fsync, rename): that is
//! where durability promises are made. Read-side corruption is already
//! covered by the CRC/torn-tail machinery and its kill-bytes tests.

use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// `errno` for "no space left on device" (what a full disk returns).
pub const ENOSPC: i32 = 28;
/// `errno` for a low-level I/O error (what a dying disk returns on fsync).
pub const EIO: i32 = 5;

/// The file operations the durability layer performs on its write path.
/// `path` identifies the file for fault targeting; the handle must not use
/// it to re-open anything.
pub trait StoreIo: Send + Sync + std::fmt::Debug {
    /// Write all of `bytes` to `file` (which lives at `path`). On error, an
    /// unknown prefix of `bytes` may have reached the file — exactly the
    /// torn-write contract the WAL's poisoning and recovery are built for.
    fn write_all(&self, path: &Path, file: &mut File, bytes: &[u8]) -> std::io::Result<()>;

    /// `fsync`/`fdatasync` the file's data.
    fn sync_data(&self, path: &Path, file: &File) -> std::io::Result<()>;

    /// Atomically rename `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()>;
}

/// A shared, dynamically-dispatched [`StoreIo`] handle.
pub type IoHandle = Arc<dyn StoreIo>;

/// The default passthrough to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl StoreIo for RealIo {
    fn write_all(&self, _path: &Path, file: &mut File, bytes: &[u8]) -> std::io::Result<()> {
        file.write_all(bytes)
    }

    fn sync_data(&self, _path: &Path, file: &File) -> std::io::Result<()> {
        file.sync_data()
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        std::fs::rename(from, to)
    }
}

/// The real-filesystem handle every non-injected path uses.
pub fn real_io() -> IoHandle {
    Arc::new(RealIo)
}

/// Which operation a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// A `write_all` call.
    Write,
    /// A `sync_data` call.
    Sync,
    /// A `rename` call.
    Rename,
}

impl FaultOp {
    fn index(self) -> usize {
        match self {
            FaultOp::Write => 0,
            FaultOp::Sync => 1,
            FaultOp::Rename => 2,
        }
    }
}

/// What happens when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail with the given `errno` without touching the file.
    Error(i32),
    /// Write only the first `keep` bytes of the buffer, then fail with the
    /// `errno` — a torn write (meaningful for [`FaultOp::Write`] only).
    ShortWrite {
        /// Bytes that do reach the file before the failure.
        keep: usize,
        /// The `errno` reported after the partial write.
        errno: i32,
    },
}

impl FaultKind {
    fn error(self) -> std::io::Error {
        let errno = match self {
            FaultKind::Error(e) | FaultKind::ShortWrite { errno: e, .. } => e,
        };
        std::io::Error::from_raw_os_error(errno)
    }
}

/// One scheduled fault: fires when the `op` counter reaches `nth` (1-based,
/// counted across the whole [`FaultyIo`]) and the operation's path contains
/// `path_contains` (when set). One-shot: consumed when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Operation targeted.
    pub op: FaultOp,
    /// 1-based operation count at which the fault fires.
    pub nth: u64,
    /// Only fire when the operation's path contains this substring.
    pub path_contains: Option<String>,
    /// What firing does.
    pub kind: FaultKind,
}

#[derive(Debug, Clone)]
struct Sticky {
    path_contains: Option<String>,
    errno: i32,
}

#[derive(Debug, Default)]
struct FaultState {
    /// Per-op call counters (write, sync, rename), incremented whether or
    /// not a fault fires.
    counts: [u64; 3],
    /// Faults that have fired so far.
    fired: u64,
    /// Armed one-shot faults.
    schedule: Vec<Fault>,
    /// Sticky per-op failures (fault *windows*), active until [`FaultyIo::heal`].
    sticky: [Option<Sticky>; 3],
}

/// A [`StoreIo`] that executes a deterministic fault schedule in front of
/// the real filesystem. Thread-safe; counters are shared across every file
/// the handle touches.
#[derive(Debug, Default)]
pub struct FaultyIo {
    state: Mutex<FaultState>,
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultyIo {
    /// A handle with no faults armed (behaves like [`RealIo`] until armed).
    pub fn new() -> Arc<FaultyIo> {
        Arc::new(FaultyIo::default())
    }

    /// A handle pre-armed with an explicit schedule.
    pub fn with_schedule(schedule: Vec<Fault>) -> Arc<FaultyIo> {
        let io = FaultyIo::new();
        for f in schedule {
            io.arm(f);
        }
        io
    }

    /// A deterministic seeded schedule: `n` faults spread over the first
    /// `horizon` calls of each operation — ENOSPC (plain or short-write) on
    /// writes, EIO on fsync and rename. The same seed always produces the
    /// same schedule.
    pub fn seeded(seed: u64, n: usize, horizon: u64) -> Arc<FaultyIo> {
        let mut s = seed;
        let horizon = horizon.max(1);
        let mut schedule = Vec::with_capacity(n);
        for _ in 0..n {
            let r = splitmix64(&mut s);
            let op = match r % 4 {
                0 | 1 => FaultOp::Write,
                2 => FaultOp::Sync,
                _ => FaultOp::Rename,
            };
            let nth = 1 + splitmix64(&mut s) % horizon;
            let kind = match op {
                FaultOp::Write => {
                    if splitmix64(&mut s) % 2 == 0 {
                        FaultKind::ShortWrite {
                            keep: (splitmix64(&mut s) % 64) as usize,
                            errno: ENOSPC,
                        }
                    } else {
                        FaultKind::Error(ENOSPC)
                    }
                }
                FaultOp::Sync | FaultOp::Rename => FaultKind::Error(EIO),
            };
            schedule.push(Fault { op, nth, path_contains: None, kind });
        }
        FaultyIo::with_schedule(schedule)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Arm one additional one-shot fault. `nth` counts from the handle's
    /// creation, not from this call.
    pub fn arm(&self, fault: Fault) {
        self.lock().schedule.push(fault);
    }

    /// Open a sticky fault window: every `op` whose path contains
    /// `path_contains` (all paths when `None`) fails with `errno` until
    /// [`Self::heal`]. Replaces any previous window on the same op.
    pub fn break_op(&self, op: FaultOp, path_contains: Option<&str>, errno: i32) {
        self.lock().sticky[op.index()] =
            Some(Sticky { path_contains: path_contains.map(str::to_string), errno });
    }

    /// Clear every armed fault — one-shot schedule and sticky windows. The
    /// handle behaves like [`RealIo`] again.
    pub fn heal(&self) {
        let mut st = self.lock();
        st.schedule.clear();
        st.sticky = [None, None, None];
    }

    /// `(writes, syncs, renames)` performed so far (attempted, faulted or
    /// not).
    pub fn counts(&self) -> (u64, u64, u64) {
        let st = self.lock();
        (st.counts[0], st.counts[1], st.counts[2])
    }

    /// How many faults have fired.
    pub fn fired(&self) -> u64 {
        self.lock().fired
    }

    /// One-shot faults still armed (sticky windows not included).
    pub fn pending_faults(&self) -> usize {
        self.lock().schedule.len()
    }

    /// Count the call, consume a matching scheduled fault or match the
    /// sticky window, and return what should happen.
    fn next_fault(&self, op: FaultOp, path: &Path) -> Option<FaultKind> {
        let mut st = self.lock();
        let idx = op.index();
        st.counts[idx] += 1;
        let n = st.counts[idx];
        let path_str = path.to_string_lossy();
        let matches = |filter: &Option<String>| match filter {
            Some(s) => path_str.contains(s.as_str()),
            None => true,
        };
        if let Some(pos) =
            st.schedule.iter().position(|f| f.op == op && f.nth == n && matches(&f.path_contains))
        {
            let f = st.schedule.remove(pos);
            st.fired += 1;
            return Some(f.kind);
        }
        if let Some(s) = st.sticky[idx].clone() {
            if matches(&s.path_contains) {
                st.fired += 1;
                return Some(FaultKind::Error(s.errno));
            }
        }
        None
    }
}

impl StoreIo for FaultyIo {
    fn write_all(&self, path: &Path, file: &mut File, bytes: &[u8]) -> std::io::Result<()> {
        match self.next_fault(FaultOp::Write, path) {
            None => file.write_all(bytes),
            Some(kind) => {
                if let FaultKind::ShortWrite { keep, .. } = kind {
                    // The torn prefix really lands (and errors here are
                    // subsumed by the injected one).
                    let _ = file.write_all(&bytes[..keep.min(bytes.len())]);
                }
                Err(kind.error())
            }
        }
    }

    fn sync_data(&self, path: &Path, file: &File) -> std::io::Result<()> {
        match self.next_fault(FaultOp::Sync, path) {
            None => file.sync_data(),
            Some(kind) => Err(kind.error()),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        match self.next_fault(FaultOp::Rename, from) {
            None => std::fs::rename(from, to),
            Some(kind) => Err(kind.error()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("tcrowd_store_io_tests")
            .join(format!("{}_{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn scheduled_faults_fire_once_at_their_count() {
        let dir = tmp("sched");
        let io = FaultyIo::with_schedule(vec![Fault {
            op: FaultOp::Write,
            nth: 2,
            path_contains: None,
            kind: FaultKind::Error(ENOSPC),
        }]);
        let path = dir.join("f");
        let mut f = File::create(&path).unwrap();
        assert!(io.write_all(&path, &mut f, b"one").is_ok());
        let err = io.write_all(&path, &mut f, b"two").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(ENOSPC));
        // One-shot: the third write succeeds.
        assert!(io.write_all(&path, &mut f, b"three").is_ok());
        assert_eq!(io.counts().0, 3);
        assert_eq!(io.fired(), 1);
        assert_eq!(io.pending_faults(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_write_leaves_a_torn_prefix() {
        let dir = tmp("short");
        let io = FaultyIo::with_schedule(vec![Fault {
            op: FaultOp::Write,
            nth: 1,
            path_contains: None,
            kind: FaultKind::ShortWrite { keep: 3, errno: ENOSPC },
        }]);
        let path = dir.join("f");
        let mut f = File::create(&path).unwrap();
        assert!(io.write_all(&path, &mut f, b"abcdef").is_err());
        drop(f);
        let mut got = String::new();
        File::open(&path).unwrap().read_to_string(&mut got).unwrap();
        assert_eq!(got, "abc");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sticky_windows_filter_by_path_and_heal() {
        let dir = tmp("sticky");
        let io = FaultyIo::new();
        io.break_op(FaultOp::Sync, Some("wal"), EIO);
        let wal = dir.join("wal.log");
        let other = dir.join("snapshot.snap");
        let fw = File::create(&wal).unwrap();
        let fo = File::create(&other).unwrap();
        assert_eq!(io.sync_data(&wal, &fw).unwrap_err().raw_os_error(), Some(EIO));
        assert!(io.sync_data(&other, &fo).is_ok());
        // Still broken on the next call (sticky), then healed.
        assert!(io.sync_data(&wal, &fw).is_err());
        io.heal();
        assert!(io.sync_data(&wal, &fw).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seeded_schedules_are_deterministic() {
        let a = FaultyIo::seeded(42, 8, 100);
        let b = FaultyIo::seeded(42, 8, 100);
        assert_eq!(a.lock().schedule, b.lock().schedule);
        assert_eq!(a.pending_faults(), 8);
        let c = FaultyIo::seeded(43, 8, 100);
        assert_ne!(a.lock().schedule, c.lock().schedule);
    }

    #[test]
    fn rename_faults_block_the_rename() {
        let dir = tmp("rename");
        let io = FaultyIo::new();
        io.break_op(FaultOp::Rename, None, EIO);
        let from = dir.join("a");
        let to = dir.join("b");
        std::fs::write(&from, b"x").unwrap();
        assert!(io.rename(&from, &to).is_err());
        assert!(from.exists() && !to.exists());
        io.heal();
        assert!(io.rename(&from, &to).is_ok());
        assert!(to.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
