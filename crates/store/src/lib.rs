//! # tcrowd-store
//!
//! The **durability subsystem**: crowd answers are expensive and
//! unrepeatable, so the answer log — the system of record every posterior,
//! freeze and EM fit is a pure function of (paper §5, Algorithm 2) — must
//! survive process death. This crate gives each served table:
//!
//! * a per-table append-only **write-ahead log** ([`wal`]) of
//!   length-prefixed, CRC-32-checksummed binary records (table create,
//!   answer-batch append, deletion tombstone) with group-commit batching and
//!   a configurable [`FsyncPolicy`];
//! * periodic **snapshot files** ([`snapshot`]) of `(log@epoch,
//!   warm-startable fit parameters, WAL offset)` so recovery replays only
//!   the WAL tail and seeds EM at the previous optimum instead of
//!   re-running it from scratch;
//! * **crash recovery** ([`Store::recover_all`]) that tolerates torn tails
//!   (truncate at the first bad checksum) and reconstructs a bit-identical
//!   [`tcrowd_tabular::AnswerLog`] — exactly the acknowledged prefix.
//!
//! ```text
//! ingest batch ──▶ wal.append_answers (frame + CRC + flush/fsync) ──▶ ack
//!                        │                       refresher, after publish:
//!                        │                  snapshot.write (log@epoch, fit,
//!                        ▼                        wal offset; tmp+rename)
//!        crash ▶ Store::recover_table:
//!          read snapshot ──▶ replay WAL tail from snapshot.wal_offset
//!          (none/corrupt ──▶ full replay from byte 0)
//!          truncate torn tail at first bad checksum
//!          AnswerLog (bit-identical) + FitParams (warm EM restart)
//! ```
//!
//! Everything is `std`-only and hand-rolled (the build environment has no
//! `serde`); the byte-level codec lives in `tcrowd_tabular::io::binary` so
//! the answer wire format is owned by the storage crate that owns the
//! in-memory answer types.
//!
//! The store is deliberately **service-agnostic**: it persists a
//! [`TableMeta`] (shape + schema + opaque config key/values) and batches of
//! answers, and knows nothing about HTTP, policies or refresh cadences —
//! `tcrowd-service` threads a [`Wal`] through its ingest path and calls
//! [`snapshot::write_snapshot`] after each publish.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commit;
pub mod crc;
pub mod io;
pub mod obs;
pub mod segment;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use commit::{
    CommitSink, CommitStatsView, CommittedBatch, DurableMark, GroupCommit, MarkSink, Ticket,
};
pub use crc::crc32;
pub use io::{
    real_io, Fault, FaultKind, FaultOp, FaultyIo, IoHandle, RealIo, StoreIo, EIO, ENOSPC,
};
pub use obs::{noop_obs, NoopObs, ObsHandle, ObsSink};
pub use segment::{
    compact_cold_segments, count_segments, parse_segment_file_name, scan_segments,
    segment_file_name, SegmentInfo, SegmentScan, SEGMENT_MAX_DEFAULT,
};
pub use snapshot::{
    read_snapshot, read_snapshot_chain, remove_snapshot, remove_snapshot_deltas, write_snapshot,
    write_snapshot_delta, write_snapshot_delta_observed, write_snapshot_delta_with_io,
    write_snapshot_observed, write_snapshot_with_io, ChainInfo, SnapshotDelta, TableSnapshot,
    DELTA_PREFIX, SNAPSHOT_FILE,
};
pub use store::{rewrite_wal, CompactReport, Recovered, SnapshotCheck, Store, VerifyReport};
pub use wal::{
    record_kind_name, replay, replay_tail, truncate_to_valid, FsyncPolicy, QuarantineEntry,
    RecordInfo, TableMeta, TornTail, Wal, WalPosition, WalReplay, WAL_FILE,
};

use std::path::{Path, PathBuf};

/// Errors of the durability layer.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// On-disk state that cannot be trusted (failed checksum, impossible
    /// framing, violated invariant), with the file and byte offset.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// Byte offset of the problem.
        offset: u64,
        /// What is wrong.
        message: String,
    },
}

impl StoreError {
    pub(crate) fn corrupt(path: impl AsRef<Path>, offset: u64, message: String) -> StoreError {
        StoreError::Corrupt { path: path.as_ref().to_path_buf(), offset, message }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Corrupt { path, offset, message } => {
                write!(f, "corrupt store file {} at byte {offset}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
