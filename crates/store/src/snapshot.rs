//! Snapshot files: a durable photograph of `(log@epoch, fit parameters)`
//! plus the WAL byte offset the epoch corresponds to — stored as an
//! **incremental chain**: one full base snapshot plus delta files each
//! carrying only the answers since the previous chain element.
//!
//! A snapshot exists to make recovery cheap, never to make it possible — the
//! WAL alone fully determines the table. What the snapshot buys:
//!
//! * **decode skip** — recovery resumes WAL decoding at the chain tip's
//!   `wal_offset` instead of byte zero (the chain carries the answers
//!   before it);
//! * **no EM on boot** — the persisted [`FitParams`] let recovery
//!   republish the pre-crash published fit by *evaluating* the posterior at
//!   the stored parameters (`TCrowd::evaluate_seeded`, one E-step) when the
//!   chain covers the whole log, and warm-seed the catch-up refit when a
//!   WAL tail extends past it;
//! * **O(Δ) persistence** — a publish appends one delta with the answers
//!   since the last snapshot ([`write_snapshot_delta`]) instead of
//!   re-serializing the whole log; the writer collapses the chain back
//!   into a full base periodically (and `tcrowd store compact` always
//!   does), so chains stay short and geometrically bounded.
//!
//! A corrupt, stale or missing snapshot therefore degrades recovery time,
//! not correctness: a corrupt *base* falls back to a full WAL replay; a
//! corrupt *delta* truncates the chain at that link and WAL tail replay
//! covers the difference ([`ChainInfo::broken`] records what was dropped).
//!
//! ## File formats
//!
//! ```text
//! snapshot.snap      magic "TCSNAP02" ++ len: u64LE ++ crc: u32LE ++ payload
//!                    payload = epoch u64 ++ wal_offset u64 ++ TableMeta
//!                              ++ log (io::binary) ++ fit? ++ quarantine
//! snapshot.delta.N   magic "TCSNPD02" ++ len: u64LE ++ crc: u32LE ++ payload
//!                    payload = seq u64 ++ parent_epoch u64 ++ epoch u64
//!                              ++ wal_offset u64 ++ answers ++ fit?
//!                              ++ quarantine
//! ```
//!
//! `quarantine` is the complete quarantined-worker set at the file's epoch
//! (same codec as the WAL's Quarantine record); a delta's set supersedes the
//! chain's, mirroring the WAL's last-record-wins semantics. It must live in
//! the snapshot because snapshot-assisted recovery replays only the WAL
//! *tail* — a Quarantine record before `wal_offset` would otherwise be
//! skipped. Version-01 files (pre-quarantine) fail the magic check and take
//! the corrupt-base path: a full WAL replay, which is always correct.
//!
//! A delta is *chained*: it applies only when its `parent_epoch` equals the
//! epoch reached by the chain so far, and its `wal_offset` supersedes the
//! tip's. All files are written to a temporary name, flushed, fsynced and
//! renamed into place, so a crash mid-write leaves the previous chain
//! intact.

use crate::crc::crc32;
use crate::io::{real_io, IoHandle};
use crate::wal::{sync_dir, QuarantineEntry, TableMeta};
use crate::StoreError;
use std::fs::{self, File, OpenOptions};
use std::io::Read;
use std::path::Path;
use tcrowd_core::FitParams;
use tcrowd_tabular::io::binary::{self, Cursor};
use tcrowd_tabular::{Answer, AnswerLog, WorkerId};

/// File name of the per-table base snapshot inside its table directory.
pub const SNAPSHOT_FILE: &str = "snapshot.snap";
/// File-name prefix of incremental snapshot deltas (`snapshot.delta.<seq>`).
pub const DELTA_PREFIX: &str = "snapshot.delta.";
const TMP_FILE: &str = "snapshot.snap.tmp";
const DELTA_TMP_FILE: &str = "snapshot.delta.tmp";
const MAGIC: &[u8; 8] = b"TCSNAP02";
const DELTA_MAGIC: &[u8; 8] = b"TCSNPD02";
/// Header: magic + u64 payload length + u32 CRC.
const HEADER: usize = 8 + 8 + 4;

/// The decoded content of a snapshot file.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSnapshot {
    /// Number of answers this snapshot covers (`log.len()`).
    pub epoch: u64,
    /// WAL byte offset right after the record that brought the log to
    /// `epoch` answers — where tail replay resumes.
    pub wal_offset: u64,
    /// Table metadata (duplicated from the WAL Create record so the
    /// snapshot is self-contained).
    pub meta: TableMeta,
    /// The answer log at `epoch`, in append order (shape-validated against
    /// [`TableMeta`] at decode time).
    pub log: AnswerLog,
    /// The published fit's warm-start seed, when one existed.
    pub fit: Option<FitParams>,
    /// The complete quarantined-worker set at `epoch` (sorted by worker).
    /// Carried here because tail replay would miss Quarantine records
    /// before `wal_offset`.
    pub quarantine: Vec<QuarantineEntry>,
}

fn put_f64_lane(buf: &mut Vec<u8>, lane: &[f64]) {
    binary::put_u64(buf, lane.len() as u64);
    for &v in lane {
        binary::put_f64(buf, v);
    }
}

fn get_f64_lane(c: &mut Cursor<'_>) -> Result<Vec<f64>, binary::CodecError> {
    let n = c.u64()? as usize;
    if n.saturating_mul(8) > c.remaining() {
        return Err(binary::CodecError {
            at: c.position(),
            message: format!("lane of {n} floats overruns the buffer"),
        });
    }
    (0..n).map(|_| c.f64()).collect()
}

fn put_fit(buf: &mut Vec<u8>, fit: &FitParams) {
    binary::put_u64(buf, fit.rows as u64);
    binary::put_u64(buf, fit.cols as u64);
    put_f64_lane(buf, &fit.alpha);
    put_f64_lane(buf, &fit.beta);
    binary::put_u64(buf, fit.workers.len() as u64);
    for w in &fit.workers {
        binary::put_u32(buf, w.0);
    }
    put_f64_lane(buf, &fit.phi);
    binary::put_f64(buf, fit.renorm_shift.0);
    binary::put_f64(buf, fit.renorm_shift.1);
}

fn get_fit(c: &mut Cursor<'_>) -> Result<FitParams, binary::CodecError> {
    let rows = c.u64()? as usize;
    let cols = c.u64()? as usize;
    let alpha = get_f64_lane(c)?;
    let beta = get_f64_lane(c)?;
    let n_workers = c.u64()? as usize;
    if n_workers.saturating_mul(4) > c.remaining() {
        return Err(binary::CodecError {
            at: c.position(),
            message: format!("worker lane of {n_workers} ids overruns the buffer"),
        });
    }
    let workers: Vec<WorkerId> =
        (0..n_workers).map(|_| c.u32().map(WorkerId)).collect::<Result<_, _>>()?;
    let phi = get_f64_lane(c)?;
    if phi.len() != workers.len() {
        return Err(binary::CodecError {
            at: c.position(),
            message: format!(
                "phi lane ({}) does not match worker lane ({})",
                phi.len(),
                workers.len()
            ),
        });
    }
    let renorm_shift = (c.f64()?, c.f64()?);
    Ok(FitParams { rows, cols, alpha, beta, workers, phi, renorm_shift })
}

fn encode(snap: &TableSnapshot) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64 + snap.log.len() * 17);
    binary::put_u64(&mut payload, snap.epoch);
    binary::put_u64(&mut payload, snap.wal_offset);
    let mut meta = Vec::new();
    // TableMeta's codec is private to the wal module; reuse it through the
    // record-free helper below.
    crate::wal::encode_meta(&mut meta, &snap.meta);
    payload.extend_from_slice(&meta);
    binary::put_log(&mut payload, &snap.log);
    match &snap.fit {
        None => binary::put_u8(&mut payload, 0),
        Some(fit) => {
            binary::put_u8(&mut payload, 1);
            put_fit(&mut payload, fit);
        }
    }
    crate::wal::encode_quarantine(&mut payload, &snap.quarantine);
    let mut out = Vec::with_capacity(HEADER + payload.len());
    out.extend_from_slice(MAGIC);
    binary::put_u64(&mut out, payload.len() as u64);
    binary::put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

fn decode(path: &Path, bytes: &[u8]) -> Result<TableSnapshot, StoreError> {
    let corrupt = |at: usize, msg: String| StoreError::corrupt(path, at as u64, msg);
    if bytes.len() < HEADER || &bytes[..8] != MAGIC {
        return Err(corrupt(0, "missing snapshot magic".into()));
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let crc = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    // Compare in u64 with the header already subtracted: `HEADER + len`
    // would overflow on a corrupt/hostile length field.
    if (bytes.len() - HEADER) as u64 != len {
        return Err(corrupt(8, format!("payload length {len} does not match file size")));
    }
    let payload = &bytes[HEADER..];
    if crc32(payload) != crc {
        return Err(corrupt(16, "snapshot checksum mismatch".into()));
    }
    let mut c = Cursor::new(payload);
    let inner = (|| -> Result<TableSnapshot, binary::CodecError> {
        let epoch = c.u64()?;
        let wal_offset = c.u64()?;
        let meta = crate::wal::decode_meta(&mut c)?;
        let log = binary::get_log(&mut c)?;
        let fit = match c.u8()? {
            0 => None,
            1 => Some(get_fit(&mut c)?),
            tag => {
                return Err(binary::CodecError {
                    at: c.position() - 1,
                    message: format!("unknown fit tag {tag}"),
                })
            }
        };
        let quarantine = crate::wal::decode_quarantine(&mut c)?;
        Ok(TableSnapshot { epoch, wal_offset, meta, log, fit, quarantine })
    })();
    let snap = inner.map_err(|e| corrupt(HEADER + e.at, e.message))?;
    if !c.is_empty() {
        return Err(corrupt(HEADER + c.position(), "trailing bytes in snapshot".into()));
    }
    if snap.epoch != snap.log.len() as u64 {
        return Err(corrupt(
            HEADER,
            format!("epoch {} does not match {} stored answers", snap.epoch, snap.log.len()),
        ));
    }
    if snap.log.rows() != snap.meta.rows || snap.log.cols() != snap.meta.schema.num_columns() {
        return Err(corrupt(
            HEADER,
            format!(
                "snapshot log shape {}x{} does not match the table meta ({}x{})",
                snap.log.rows(),
                snap.log.cols(),
                snap.meta.rows,
                snap.meta.schema.num_columns()
            ),
        ));
    }
    Ok(snap)
}

/// One incremental link of a snapshot chain: the answers appended between
/// `parent_epoch` and `epoch`, plus the WAL offset and fit at `epoch`.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotDelta {
    /// Chain sequence number (also the file-name suffix); strictly
    /// increasing within a chain.
    pub seq: u64,
    /// The epoch this delta extends — must equal the chain's epoch so far.
    pub parent_epoch: u64,
    /// The epoch reached after applying this delta.
    pub epoch: u64,
    /// WAL byte offset right after the record that brought the log to
    /// `epoch` answers — supersedes the chain tip's offset.
    pub wal_offset: u64,
    /// The answers at log positions `parent_epoch .. epoch`, in log order.
    pub answers: Vec<Answer>,
    /// The fit published at `epoch` (supersedes the chain tip's fit).
    pub fit: Option<FitParams>,
    /// The complete quarantined-worker set at `epoch` (supersedes the chain
    /// tip's set — last link wins, like the WAL's Quarantine records).
    pub quarantine: Vec<QuarantineEntry>,
}

/// What a chain read found, beyond the combined [`TableSnapshot`]: the
/// bookkeeping a writer needs to *extend* the chain, and what `verify`
/// audits per link.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChainInfo {
    /// Delta links applied on top of the base.
    pub links: u64,
    /// Sequence number of the last applied delta (0 when none).
    pub tip_seq: u64,
    /// Highest delta sequence present on disk, applied or not — a writer
    /// must allocate above this so a stale orphan can never shadow a new
    /// link.
    pub max_seq_on_disk: u64,
    /// The base snapshot's epoch.
    pub base_epoch: u64,
    /// Answers carried by the base snapshot.
    pub base_answers: u64,
    /// Answers carried by the applied delta links.
    pub chain_answers: u64,
    /// `(epoch, wal_offset)` of the base and every applied link, in chain
    /// order — each must be a real WAL record boundary, which `verify`
    /// checks.
    pub link_marks: Vec<(u64, u64)>,
    /// Why the chain was truncated early, if it was (corrupt/mismatched
    /// link). Recovery proceeds with the prefix — the WAL tail replay
    /// covers the difference — but `verify` flags it.
    pub broken: Option<String>,
}

fn encode_delta(delta: &SnapshotDelta) -> Vec<u8> {
    let mut payload = Vec::with_capacity(48 + delta.answers.len() * 17);
    binary::put_u64(&mut payload, delta.seq);
    binary::put_u64(&mut payload, delta.parent_epoch);
    binary::put_u64(&mut payload, delta.epoch);
    binary::put_u64(&mut payload, delta.wal_offset);
    binary::put_answers(&mut payload, &delta.answers);
    match &delta.fit {
        None => binary::put_u8(&mut payload, 0),
        Some(fit) => {
            binary::put_u8(&mut payload, 1);
            put_fit(&mut payload, fit);
        }
    }
    crate::wal::encode_quarantine(&mut payload, &delta.quarantine);
    let mut out = Vec::with_capacity(HEADER + payload.len());
    out.extend_from_slice(DELTA_MAGIC);
    binary::put_u64(&mut out, payload.len() as u64);
    binary::put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

fn decode_delta(path: &Path, bytes: &[u8]) -> Result<SnapshotDelta, StoreError> {
    let corrupt = |at: usize, msg: String| StoreError::corrupt(path, at as u64, msg);
    if bytes.len() < HEADER || &bytes[..8] != DELTA_MAGIC {
        return Err(corrupt(0, "missing snapshot-delta magic".into()));
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let crc = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    if (bytes.len() - HEADER) as u64 != len {
        return Err(corrupt(8, format!("payload length {len} does not match file size")));
    }
    let payload = &bytes[HEADER..];
    if crc32(payload) != crc {
        return Err(corrupt(16, "snapshot-delta checksum mismatch".into()));
    }
    let mut c = Cursor::new(payload);
    let inner = (|| -> Result<SnapshotDelta, binary::CodecError> {
        let seq = c.u64()?;
        let parent_epoch = c.u64()?;
        let epoch = c.u64()?;
        let wal_offset = c.u64()?;
        let answers = binary::get_answers(&mut c)?;
        let fit = match c.u8()? {
            0 => None,
            1 => Some(get_fit(&mut c)?),
            tag => {
                return Err(binary::CodecError {
                    at: c.position() - 1,
                    message: format!("unknown fit tag {tag}"),
                })
            }
        };
        let quarantine = crate::wal::decode_quarantine(&mut c)?;
        Ok(SnapshotDelta { seq, parent_epoch, epoch, wal_offset, answers, fit, quarantine })
    })();
    let delta = inner.map_err(|e| corrupt(HEADER + e.at, e.message))?;
    if !c.is_empty() {
        return Err(corrupt(HEADER + c.position(), "trailing bytes in snapshot delta".into()));
    }
    if delta.epoch < delta.parent_epoch
        || delta.answers.len() as u64 != delta.epoch - delta.parent_epoch
    {
        return Err(corrupt(
            HEADER,
            format!(
                "delta claims epochs {}..{} but stores {} answers",
                delta.parent_epoch,
                delta.epoch,
                delta.answers.len()
            ),
        ));
    }
    Ok(delta)
}

/// Write `bytes` to `dir/tmp_name`, fsync, and rename to `dir/final_name`,
/// with every fallible step routed through `io` (fault injection).
fn write_atomically(
    dir: &Path,
    tmp_name: &str,
    final_name: &str,
    bytes: &[u8],
    io: &IoHandle,
) -> Result<(), StoreError> {
    let tmp = dir.join(tmp_name);
    {
        let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
        io.write_all(&tmp, &mut f, bytes)?;
        io.sync_data(&tmp, &f)?;
    }
    io.rename(&tmp, &dir.join(final_name))?;
    sync_dir(dir);
    Ok(())
}

/// Atomically (tmp + rename) write `snap` as `dir`'s current **base**
/// snapshot. Existing delta links are *not* removed here — a base write at
/// epoch `E` makes any older delta unreachable (its `parent_epoch` no
/// longer matches), and the caller deletes them afterwards with
/// [`remove_snapshot_deltas`]; that order is crash-safe at every step.
pub fn write_snapshot(dir: &Path, snap: &TableSnapshot) -> Result<(), StoreError> {
    write_snapshot_with_io(dir, snap, &real_io())
}

/// [`write_snapshot`] with an explicit [`IoHandle`] (fault injection).
pub fn write_snapshot_with_io(
    dir: &Path,
    snap: &TableSnapshot,
    io: &IoHandle,
) -> Result<(), StoreError> {
    write_atomically(dir, TMP_FILE, SNAPSHOT_FILE, &encode(snap), io)
}

/// [`write_snapshot_with_io`] that reports the duration of a successful
/// persist (encode + write + fsync + rename) to `obs`.
pub fn write_snapshot_observed(
    dir: &Path,
    snap: &TableSnapshot,
    io: &IoHandle,
    obs: &crate::obs::ObsHandle,
) -> Result<(), StoreError> {
    let t = std::time::Instant::now();
    write_snapshot_with_io(dir, snap, io)?;
    obs.snapshot_persist_ns(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    Ok(())
}

/// Atomically write one chain link as `snapshot.delta.<seq>`. The caller
/// owns chain discipline: `parent_epoch` must equal the epoch already
/// durable (base + applied deltas) and `seq` must exceed every sequence on
/// disk ([`ChainInfo::max_seq_on_disk`]).
pub fn write_snapshot_delta(dir: &Path, delta: &SnapshotDelta) -> Result<(), StoreError> {
    write_snapshot_delta_with_io(dir, delta, &real_io())
}

/// [`write_snapshot_delta`] with an explicit [`IoHandle`] (fault injection).
pub fn write_snapshot_delta_with_io(
    dir: &Path,
    delta: &SnapshotDelta,
    io: &IoHandle,
) -> Result<(), StoreError> {
    write_atomically(
        dir,
        DELTA_TMP_FILE,
        &format!("{DELTA_PREFIX}{}", delta.seq),
        &encode_delta(delta),
        io,
    )
}

/// [`write_snapshot_delta_with_io`] that reports the duration of a
/// successful persist to `obs`.
pub fn write_snapshot_delta_observed(
    dir: &Path,
    delta: &SnapshotDelta,
    io: &IoHandle,
    obs: &crate::obs::ObsHandle,
) -> Result<(), StoreError> {
    let t = std::time::Instant::now();
    write_snapshot_delta_with_io(dir, delta, io)?;
    obs.snapshot_persist_ns(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    Ok(())
}

/// The delta files present in `dir`, sorted by sequence number ascending.
/// Files whose suffix is not a number are ignored (the tmp file).
fn delta_files(dir: &Path) -> std::io::Result<Vec<(u64, std::path::PathBuf)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        other => other?,
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name.strip_prefix(DELTA_PREFIX).and_then(|s| s.parse::<u64>().ok()) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_by_key(|&(seq, _)| seq);
    Ok(out)
}

/// Read `dir`'s snapshot **chain**: the base snapshot with every valid
/// delta link folded in, plus the chain bookkeeping. `Ok(None)` when no
/// base snapshot exists; `Err(StoreError::Corrupt…)` when the base exists
/// but cannot be trusted (the caller falls back to a full WAL replay).
/// Broken *links* never error — the chain is truncated there and
/// [`ChainInfo::broken`] records why.
pub fn read_snapshot_chain(dir: &Path) -> Result<Option<(TableSnapshot, ChainInfo)>, StoreError> {
    let path = dir.join(SNAPSHOT_FILE);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
    }
    let mut snap = decode(&path, &bytes)?;
    let mut info = ChainInfo {
        base_epoch: snap.epoch,
        base_answers: snap.log.len() as u64,
        link_marks: vec![(snap.epoch, snap.wal_offset)],
        ..ChainInfo::default()
    };
    let rows = snap.meta.rows;
    let cols = snap.meta.schema.num_columns();
    for (seq, delta_path) in delta_files(dir)? {
        info.max_seq_on_disk = info.max_seq_on_disk.max(seq);
        if info.broken.is_some() {
            continue; // keep scanning only to compute max_seq_on_disk
        }
        let delta = match fs::read(&delta_path)
            .map_err(StoreError::from)
            .and_then(|bytes| decode_delta(&delta_path, &bytes))
        {
            Ok(d) => d,
            Err(e) => {
                info.broken = Some(format!("delta {seq}: {e}"));
                continue;
            }
        };
        if delta.seq != seq {
            info.broken = Some(format!("delta file {seq} claims sequence {}", delta.seq));
            continue;
        }
        if delta.parent_epoch != snap.epoch {
            info.broken = Some(format!(
                "delta {seq} chains from epoch {} but the chain is at {}",
                delta.parent_epoch, snap.epoch
            ));
            continue;
        }
        if let Some(bad) = delta
            .answers
            .iter()
            .find(|a| a.cell.row as usize >= rows || a.cell.col as usize >= cols)
        {
            info.broken = Some(format!(
                "delta {seq}: answer addresses cell ({}, {}) outside the {rows}x{cols} table",
                bad.cell.row, bad.cell.col
            ));
            continue;
        }
        for a in &delta.answers {
            snap.log.push(*a);
        }
        snap.epoch = delta.epoch;
        snap.wal_offset = delta.wal_offset;
        if delta.fit.is_some() {
            snap.fit = delta.fit;
        }
        snap.quarantine = delta.quarantine;
        info.links += 1;
        info.tip_seq = seq;
        info.chain_answers += delta.answers.len() as u64;
        info.link_marks.push((delta.epoch, delta.wal_offset));
    }
    debug_assert_eq!(snap.epoch, snap.log.len() as u64);
    Ok(Some((snap, info)))
}

/// Read `dir`'s snapshot chain as one combined [`TableSnapshot`]. `Ok(None)`
/// when no snapshot exists; `Err(StoreError::Corrupt…)` when the base
/// exists but cannot be trusted (the caller falls back to a full WAL
/// replay).
pub fn read_snapshot(dir: &Path) -> Result<Option<TableSnapshot>, StoreError> {
    Ok(read_snapshot_chain(dir)?.map(|(snap, _)| snap))
}

/// Remove `dir`'s delta links, leaving the base snapshot in place (a base
/// write at a newer epoch makes them unreachable; this reclaims the disk).
pub fn remove_snapshot_deltas(dir: &Path) -> std::io::Result<()> {
    for (_, path) in delta_files(dir)? {
        match fs::remove_file(&path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            other => other?,
        }
    }
    Ok(())
}

/// Remove `dir`'s snapshot — base and every delta link — if present
/// (compaction does this *before* rewriting the WAL, so a crash in between
/// can never pair a stale snapshot offset with a new WAL layout). The base
/// is removed first: a crash mid-removal must not leave a headless chain
/// that silently re-chains under a future base.
pub fn remove_snapshot(dir: &Path) -> std::io::Result<()> {
    match fs::remove_file(dir.join(SNAPSHOT_FILE)) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        other => other?,
    }
    remove_snapshot_deltas(dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrowd_tabular::{Answer, CellId, Column, ColumnType, Schema, Value};

    fn sample() -> TableSnapshot {
        TableSnapshot {
            epoch: 2,
            wal_offset: 777,
            meta: TableMeta {
                rows: 3,
                schema: Schema::new(
                    "t",
                    "k",
                    vec![
                        Column::new("c", ColumnType::categorical_with_cardinality(2)),
                        Column::new("x", ColumnType::Continuous { min: -1.0, max: 1.0 }),
                    ],
                ),
                config: vec![("refit_every".into(), "64".into())],
            },
            log: {
                let mut log = AnswerLog::new(3, 2);
                log.push(Answer {
                    worker: WorkerId(3),
                    cell: CellId::new(0, 0),
                    value: Value::Categorical(1),
                });
                log.push(Answer {
                    worker: WorkerId(5),
                    cell: CellId::new(2, 1),
                    value: Value::Continuous(0.25),
                });
                log
            },
            fit: Some(FitParams {
                rows: 3,
                cols: 2,
                alpha: vec![1.0, 0.9, 1.2],
                beta: vec![1.1, 0.8],
                workers: vec![WorkerId(3), WorkerId(5)],
                phi: vec![0.2, 0.4],
                renorm_shift: (0.01, -0.02),
            }),
            quarantine: vec![
                QuarantineEntry { worker: WorkerId(5), manual: true },
                QuarantineEntry { worker: WorkerId(7), manual: false },
            ],
        }
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("tcrowd_store_snap_tests")
            .join(format!("{}_{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_including_fit() {
        let dir = tmp_dir("roundtrip");
        let snap = sample();
        write_snapshot(&dir, &snap).unwrap();
        assert_eq!(read_snapshot(&dir).unwrap().unwrap(), snap);
        // Overwrite with a fit-less snapshot: atomic replacement.
        let mut no_fit = sample();
        no_fit.fit = None;
        write_snapshot(&dir, &no_fit).unwrap();
        assert_eq!(read_snapshot(&dir).unwrap().unwrap(), no_fit);
        remove_snapshot(&dir).unwrap();
        assert_eq!(read_snapshot(&dir).unwrap(), None);
        remove_snapshot(&dir).unwrap(); // idempotent
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_detected_not_propagated() {
        let dir = tmp_dir("corrupt");
        write_snapshot(&dir, &sample()).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let good = std::fs::read(&path).unwrap();
        // Any single corrupted byte must be caught (magic, length, crc or
        // payload).
        for at in [0usize, 9, 17, HEADER + 3, good.len() - 1] {
            let mut bad = good.clone();
            bad[at] ^= 0x01;
            std::fs::write(&path, &bad).unwrap();
            assert!(read_snapshot(&dir).is_err(), "flip at byte {at} went unnoticed");
        }
        // Truncations too.
        for cut in [0usize, 7, HEADER - 1, HEADER + 5, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(read_snapshot(&dir).is_err(), "truncation at {cut} went unnoticed");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    fn delta_answer(i: u32) -> Answer {
        Answer {
            worker: WorkerId(10 + i),
            cell: CellId::new(i % 3, i % 2),
            value: if i % 2 == 0 { Value::Categorical(i % 2) } else { Value::Continuous(0.5) },
        }
    }

    /// Build `sample()` as a base plus `n` single-answer delta links.
    fn chained(dir: &std::path::Path, n: u32) -> Vec<Answer> {
        let base = sample();
        write_snapshot(dir, &base).unwrap();
        let mut appended = Vec::new();
        for i in 0..n {
            let epoch = base.epoch + i as u64;
            let a = delta_answer(i);
            appended.push(a);
            write_snapshot_delta(
                dir,
                &SnapshotDelta {
                    seq: (i + 1) as u64,
                    parent_epoch: epoch,
                    epoch: epoch + 1,
                    wal_offset: 1000 + i as u64,
                    answers: vec![a],
                    fit: base.fit.clone(),
                    quarantine: vec![QuarantineEntry { worker: WorkerId(100 + i), manual: false }],
                },
            )
            .unwrap();
        }
        appended
    }

    #[test]
    fn chain_read_folds_deltas_in_sequence() {
        let dir = tmp_dir("chain_fold");
        let appended = chained(&dir, 3);
        let (snap, info) = read_snapshot_chain(&dir).unwrap().unwrap();
        assert_eq!(snap.epoch, sample().epoch + 3);
        assert_eq!(snap.wal_offset, 1002, "tip offset supersedes the base's");
        assert_eq!(info.links, 3);
        assert_eq!(info.tip_seq, 3);
        assert_eq!(info.max_seq_on_disk, 3);
        assert_eq!(info.base_epoch, sample().epoch);
        assert_eq!(info.chain_answers, 3);
        assert_eq!(info.link_marks.len(), 4, "base + three links");
        assert!(info.broken.is_none());
        assert_eq!(&snap.log.all()[sample().epoch as usize..], appended.as_slice());
        assert_eq!(snap.log.all()[..sample().epoch as usize], *sample().log.all());
        // The tip delta's quarantine set supersedes the base's.
        assert_eq!(snap.quarantine, vec![QuarantineEntry { worker: WorkerId(102), manual: false }]);
        // The convenience reader returns the same combined snapshot.
        assert_eq!(read_snapshot(&dir).unwrap().unwrap(), snap);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn broken_link_truncates_the_chain_not_the_base() {
        let dir = tmp_dir("chain_broken");
        chained(&dir, 3);
        // Corrupt the middle link: the chain must stop before it and the
        // later link must become unreachable, without erroring.
        let victim = dir.join(format!("{DELTA_PREFIX}2"));
        let mut bytes = std::fs::read(&victim).unwrap();
        let at = bytes.len() - 1;
        bytes[at] ^= 0x40;
        std::fs::write(&victim, &bytes).unwrap();
        let (snap, info) = read_snapshot_chain(&dir).unwrap().unwrap();
        assert_eq!(info.links, 1, "only the first link survives");
        assert_eq!(snap.epoch, sample().epoch + 1);
        assert_eq!(snap.wal_offset, 1000);
        assert!(info.broken.is_some(), "truncation must be reported");
        assert_eq!(info.max_seq_on_disk, 3, "orphans still reserve their sequences");
        // A delta chaining from the wrong epoch is equally fatal for the
        // tail: removing the corrupt file does not resurrect link 3.
        std::fs::remove_file(&victim).unwrap();
        let (snap, info) = read_snapshot_chain(&dir).unwrap().unwrap();
        assert_eq!(info.links, 1);
        assert_eq!(snap.epoch, sample().epoch + 1);
        assert!(info.broken.unwrap().contains("chains from epoch"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remove_snapshot_clears_the_whole_chain() {
        let dir = tmp_dir("chain_remove");
        chained(&dir, 2);
        remove_snapshot(&dir).unwrap();
        assert_eq!(read_snapshot_chain(&dir).unwrap(), None);
        assert!(!dir.join(format!("{DELTA_PREFIX}1")).exists());
        assert!(!dir.join(format!("{DELTA_PREFIX}2")).exists());
        // And deltas alone can be dropped after a base collapse.
        chained(&dir, 2);
        remove_snapshot_deltas(&dir).unwrap();
        assert!(dir.join(SNAPSHOT_FILE).exists());
        let (_, info) = read_snapshot_chain(&dir).unwrap().unwrap();
        assert_eq!(info.links, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delta_rejects_epoch_answer_mismatch() {
        let dir = tmp_dir("chain_mismatch");
        let base = sample();
        write_snapshot(&dir, &base).unwrap();
        // Claims two epochs of growth but stores one answer.
        write_snapshot_delta(
            &dir,
            &SnapshotDelta {
                seq: 1,
                parent_epoch: base.epoch,
                epoch: base.epoch + 2,
                wal_offset: 999,
                answers: vec![delta_answer(0)],
                fit: None,
                quarantine: Vec::new(),
            },
        )
        .unwrap();
        let (snap, info) = read_snapshot_chain(&dir).unwrap().unwrap();
        assert_eq!(info.links, 0);
        assert_eq!(snap.epoch, base.epoch);
        assert!(info.broken.unwrap().contains("stores 1 answers"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn epoch_answer_mismatch_is_rejected() {
        let dir = tmp_dir("epoch");
        let mut snap = sample();
        snap.epoch = 9; // claims more answers than it stores
        write_snapshot(&dir, &snap).unwrap();
        let err = read_snapshot(&dir).unwrap_err();
        assert!(err.to_string().contains("does not match"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
