//! Snapshot files: a durable photograph of `(log@epoch, fit parameters)`
//! plus the WAL byte offset the epoch corresponds to.
//!
//! A snapshot exists to make recovery cheap, never to make it possible — the
//! WAL alone fully determines the table. What the snapshot buys:
//!
//! * **decode skip** — recovery resumes WAL decoding at `wal_offset`
//!   instead of byte zero (the snapshot carries the answers before it);
//! * **no EM on boot** — the persisted [`FitParams`] let recovery
//!   republish the pre-crash published fit by *evaluating* the posterior at
//!   the stored parameters (`TCrowd::evaluate_seeded`, one E-step) when the
//!   snapshot covers the whole log, and warm-seed the catch-up refit when a
//!   WAL tail extends past it.
//!
//! A corrupt, stale or missing snapshot therefore degrades recovery time,
//! not correctness: every inconsistency falls back to a full WAL replay and
//! a cold fit.
//!
//! ## File format
//!
//! ```text
//! magic "TCSNAP01" ++ len: u64LE ++ crc: u32LE ++ payload (len bytes)
//! payload = epoch u64 ++ wal_offset u64 ++ TableMeta ++ log (io::binary) ++ fit?
//! ```
//!
//! Snapshots are written to a temporary file, flushed, fsynced and renamed
//! into place, so a crash mid-write leaves the previous snapshot intact.

use crate::crc::crc32;
use crate::wal::{sync_dir, TableMeta};
use crate::StoreError;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;
use tcrowd_core::FitParams;
use tcrowd_tabular::io::binary::{self, Cursor};
use tcrowd_tabular::{AnswerLog, WorkerId};

/// File name of the per-table snapshot inside its table directory.
pub const SNAPSHOT_FILE: &str = "snapshot.snap";
const TMP_FILE: &str = "snapshot.snap.tmp";
const MAGIC: &[u8; 8] = b"TCSNAP01";
/// Header: magic + u64 payload length + u32 CRC.
const HEADER: usize = 8 + 8 + 4;

/// The decoded content of a snapshot file.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSnapshot {
    /// Number of answers this snapshot covers (`log.len()`).
    pub epoch: u64,
    /// WAL byte offset right after the record that brought the log to
    /// `epoch` answers — where tail replay resumes.
    pub wal_offset: u64,
    /// Table metadata (duplicated from the WAL Create record so the
    /// snapshot is self-contained).
    pub meta: TableMeta,
    /// The answer log at `epoch`, in append order (shape-validated against
    /// [`TableMeta`] at decode time).
    pub log: AnswerLog,
    /// The published fit's warm-start seed, when one existed.
    pub fit: Option<FitParams>,
}

fn put_f64_lane(buf: &mut Vec<u8>, lane: &[f64]) {
    binary::put_u64(buf, lane.len() as u64);
    for &v in lane {
        binary::put_f64(buf, v);
    }
}

fn get_f64_lane(c: &mut Cursor<'_>) -> Result<Vec<f64>, binary::CodecError> {
    let n = c.u64()? as usize;
    if n.saturating_mul(8) > c.remaining() {
        return Err(binary::CodecError {
            at: c.position(),
            message: format!("lane of {n} floats overruns the buffer"),
        });
    }
    (0..n).map(|_| c.f64()).collect()
}

fn put_fit(buf: &mut Vec<u8>, fit: &FitParams) {
    binary::put_u64(buf, fit.rows as u64);
    binary::put_u64(buf, fit.cols as u64);
    put_f64_lane(buf, &fit.alpha);
    put_f64_lane(buf, &fit.beta);
    binary::put_u64(buf, fit.workers.len() as u64);
    for w in &fit.workers {
        binary::put_u32(buf, w.0);
    }
    put_f64_lane(buf, &fit.phi);
    binary::put_f64(buf, fit.renorm_shift.0);
    binary::put_f64(buf, fit.renorm_shift.1);
}

fn get_fit(c: &mut Cursor<'_>) -> Result<FitParams, binary::CodecError> {
    let rows = c.u64()? as usize;
    let cols = c.u64()? as usize;
    let alpha = get_f64_lane(c)?;
    let beta = get_f64_lane(c)?;
    let n_workers = c.u64()? as usize;
    if n_workers.saturating_mul(4) > c.remaining() {
        return Err(binary::CodecError {
            at: c.position(),
            message: format!("worker lane of {n_workers} ids overruns the buffer"),
        });
    }
    let workers: Vec<WorkerId> =
        (0..n_workers).map(|_| c.u32().map(WorkerId)).collect::<Result<_, _>>()?;
    let phi = get_f64_lane(c)?;
    if phi.len() != workers.len() {
        return Err(binary::CodecError {
            at: c.position(),
            message: format!(
                "phi lane ({}) does not match worker lane ({})",
                phi.len(),
                workers.len()
            ),
        });
    }
    let renorm_shift = (c.f64()?, c.f64()?);
    Ok(FitParams { rows, cols, alpha, beta, workers, phi, renorm_shift })
}

fn encode(snap: &TableSnapshot) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64 + snap.log.len() * 17);
    binary::put_u64(&mut payload, snap.epoch);
    binary::put_u64(&mut payload, snap.wal_offset);
    let mut meta = Vec::new();
    // TableMeta's codec is private to the wal module; reuse it through the
    // record-free helper below.
    crate::wal::encode_meta(&mut meta, &snap.meta);
    payload.extend_from_slice(&meta);
    binary::put_log(&mut payload, &snap.log);
    match &snap.fit {
        None => binary::put_u8(&mut payload, 0),
        Some(fit) => {
            binary::put_u8(&mut payload, 1);
            put_fit(&mut payload, fit);
        }
    }
    let mut out = Vec::with_capacity(HEADER + payload.len());
    out.extend_from_slice(MAGIC);
    binary::put_u64(&mut out, payload.len() as u64);
    binary::put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

fn decode(path: &Path, bytes: &[u8]) -> Result<TableSnapshot, StoreError> {
    let corrupt = |at: usize, msg: String| StoreError::corrupt(path, at as u64, msg);
    if bytes.len() < HEADER || &bytes[..8] != MAGIC {
        return Err(corrupt(0, "missing snapshot magic".into()));
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let crc = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    // Compare in u64 with the header already subtracted: `HEADER + len`
    // would overflow on a corrupt/hostile length field.
    if (bytes.len() - HEADER) as u64 != len {
        return Err(corrupt(8, format!("payload length {len} does not match file size")));
    }
    let payload = &bytes[HEADER..];
    if crc32(payload) != crc {
        return Err(corrupt(16, "snapshot checksum mismatch".into()));
    }
    let mut c = Cursor::new(payload);
    let inner = (|| -> Result<TableSnapshot, binary::CodecError> {
        let epoch = c.u64()?;
        let wal_offset = c.u64()?;
        let meta = crate::wal::decode_meta(&mut c)?;
        let log = binary::get_log(&mut c)?;
        let fit = match c.u8()? {
            0 => None,
            1 => Some(get_fit(&mut c)?),
            tag => {
                return Err(binary::CodecError {
                    at: c.position() - 1,
                    message: format!("unknown fit tag {tag}"),
                })
            }
        };
        Ok(TableSnapshot { epoch, wal_offset, meta, log, fit })
    })();
    let snap = inner.map_err(|e| corrupt(HEADER + e.at, e.message))?;
    if !c.is_empty() {
        return Err(corrupt(HEADER + c.position(), "trailing bytes in snapshot".into()));
    }
    if snap.epoch != snap.log.len() as u64 {
        return Err(corrupt(
            HEADER,
            format!("epoch {} does not match {} stored answers", snap.epoch, snap.log.len()),
        ));
    }
    if snap.log.rows() != snap.meta.rows || snap.log.cols() != snap.meta.schema.num_columns() {
        return Err(corrupt(
            HEADER,
            format!(
                "snapshot log shape {}x{} does not match the table meta ({}x{})",
                snap.log.rows(),
                snap.log.cols(),
                snap.meta.rows,
                snap.meta.schema.num_columns()
            ),
        ));
    }
    Ok(snap)
}

/// Atomically (tmp + rename) write `snap` as `dir`'s current snapshot.
pub fn write_snapshot(dir: &Path, snap: &TableSnapshot) -> Result<(), StoreError> {
    let bytes = encode(snap);
    let tmp = dir.join(TMP_FILE);
    {
        let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, dir.join(SNAPSHOT_FILE))?;
    sync_dir(dir);
    Ok(())
}

/// Read `dir`'s snapshot. `Ok(None)` when no snapshot exists;
/// `Err(StoreError::Corrupt…)` when one exists but cannot be trusted (the
/// caller falls back to a full WAL replay).
pub fn read_snapshot(dir: &Path) -> Result<Option<TableSnapshot>, StoreError> {
    let path = dir.join(SNAPSHOT_FILE);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
    }
    decode(&path, &bytes).map(Some)
}

/// Remove `dir`'s snapshot if present (compaction does this *before*
/// rewriting the WAL, so a crash in between can never pair a stale snapshot
/// offset with a new WAL layout).
pub fn remove_snapshot(dir: &Path) -> std::io::Result<()> {
    match fs::remove_file(dir.join(SNAPSHOT_FILE)) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcrowd_tabular::{Answer, CellId, Column, ColumnType, Schema, Value};

    fn sample() -> TableSnapshot {
        TableSnapshot {
            epoch: 2,
            wal_offset: 777,
            meta: TableMeta {
                rows: 3,
                schema: Schema::new(
                    "t",
                    "k",
                    vec![
                        Column::new("c", ColumnType::categorical_with_cardinality(2)),
                        Column::new("x", ColumnType::Continuous { min: -1.0, max: 1.0 }),
                    ],
                ),
                config: vec![("refit_every".into(), "64".into())],
            },
            log: {
                let mut log = AnswerLog::new(3, 2);
                log.push(Answer {
                    worker: WorkerId(3),
                    cell: CellId::new(0, 0),
                    value: Value::Categorical(1),
                });
                log.push(Answer {
                    worker: WorkerId(5),
                    cell: CellId::new(2, 1),
                    value: Value::Continuous(0.25),
                });
                log
            },
            fit: Some(FitParams {
                rows: 3,
                cols: 2,
                alpha: vec![1.0, 0.9, 1.2],
                beta: vec![1.1, 0.8],
                workers: vec![WorkerId(3), WorkerId(5)],
                phi: vec![0.2, 0.4],
                renorm_shift: (0.01, -0.02),
            }),
        }
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("tcrowd_store_snap_tests")
            .join(format!("{}_{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_including_fit() {
        let dir = tmp_dir("roundtrip");
        let snap = sample();
        write_snapshot(&dir, &snap).unwrap();
        assert_eq!(read_snapshot(&dir).unwrap().unwrap(), snap);
        // Overwrite with a fit-less snapshot: atomic replacement.
        let mut no_fit = sample();
        no_fit.fit = None;
        write_snapshot(&dir, &no_fit).unwrap();
        assert_eq!(read_snapshot(&dir).unwrap().unwrap(), no_fit);
        remove_snapshot(&dir).unwrap();
        assert_eq!(read_snapshot(&dir).unwrap(), None);
        remove_snapshot(&dir).unwrap(); // idempotent
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_detected_not_propagated() {
        let dir = tmp_dir("corrupt");
        write_snapshot(&dir, &sample()).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let good = std::fs::read(&path).unwrap();
        // Any single corrupted byte must be caught (magic, length, crc or
        // payload).
        for at in [0usize, 9, 17, HEADER + 3, good.len() - 1] {
            let mut bad = good.clone();
            bad[at] ^= 0x01;
            std::fs::write(&path, &bad).unwrap();
            assert!(read_snapshot(&dir).is_err(), "flip at byte {at} went unnoticed");
        }
        // Truncations too.
        for cut in [0usize, 7, HEADER - 1, HEADER + 5, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(read_snapshot(&dir).is_err(), "truncation at {cut} went unnoticed");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn epoch_answer_mismatch_is_rejected() {
        let dir = tmp_dir("epoch");
        let mut snap = sample();
        snap.epoch = 9; // claims more answers than it stores
        write_snapshot(&dir, &snap).unwrap();
        let err = read_snapshot(&dir).unwrap_err();
        assert!(err.to_string().contains("does not match"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
