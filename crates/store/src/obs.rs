//! Observability sink: the durability layer reports WAL append, fsync, and
//! snapshot-persist durations through an [`ObsSink`] handle without
//! depending on any metrics implementation — the same injection shape as
//! [`StoreIo`](crate::StoreIo). The service layer implements the trait
//! over its metrics registry; everything else runs on the free
//! [`NoopObs`].
//!
//! All durations are nanoseconds; every method has an empty default body so
//! a sink implements only what it cares about.

use std::sync::Arc;

/// Receiver for durability-layer timing observations.
pub trait ObsSink: Send + Sync + std::fmt::Debug {
    /// A WAL answer-batch append completed (encode + buffer + commit),
    /// taking `_ns` nanoseconds.
    fn wal_append_ns(&self, _ns: u64) {}

    /// A WAL fsync (`sync_data`) completed, taking `_ns` nanoseconds.
    fn wal_fsync_ns(&self, _ns: u64) {}

    /// A snapshot (base or delta) was written and renamed into place,
    /// taking `_ns` nanoseconds.
    fn snapshot_persist_ns(&self, _ns: u64) {}

    /// The commit thread durably committed one group: `_frames` coalesced
    /// batches carrying `_answers` answers, in `_ns` nanoseconds end to end
    /// (queue drain → append → fsync → sink delivery).
    fn commit_group(&self, _frames: u64, _answers: u64, _ns: u64) {}

    /// The live WAL segment count changed (rotation or cold compaction).
    fn wal_segments(&self, _live: u64) {}
}

/// A shared, dynamically-dispatched [`ObsSink`] handle.
pub type ObsHandle = Arc<dyn ObsSink>;

/// The default sink: drops every observation.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObs;

impl ObsSink for NoopObs {}

/// The sink every non-instrumented path uses.
pub fn noop_obs() -> ObsHandle {
    Arc::new(NoopObs)
}
